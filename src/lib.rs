//! **ttmqo** — umbrella crate of the TTMQO reproduction
//! (*Two-Tier Multiple Query Optimization for Sensor Networks*,
//! Xiang, Lim, Tan & Zhou, ICDCS 2007).
//!
//! This crate re-exports the workspace's public surface so examples and
//! downstream users can depend on one crate:
//!
//! * [`query`] — TinyDB-style query model, parser and merge algebra;
//! * [`stats`] — selectivity estimation and routing-level statistics;
//! * [`sim`] — the discrete-event wireless sensor network simulator;
//! * [`tinydb`] — the single-query-optimized baseline;
//! * [`core`] — both TTMQO tiers and the experiment runner;
//! * [`workloads`] — the paper's experimental workload generators.
//!
//! # Quickstart
//!
//! ```
//! use ttmqo::core::{run_experiment, ExperimentConfig, Strategy, WorkloadEvent};
//! use ttmqo::query::{parse_query, QueryId};
//! use ttmqo::sim::SimTime;
//!
//! let workload = vec![
//!     WorkloadEvent::pose(0, parse_query(QueryId(1),
//!         "select light where 280 < light < 600 epoch duration 2048")?),
//!     WorkloadEvent::pose(0, parse_query(QueryId(2),
//!         "select light where 100 < light < 300 epoch duration 4096")?),
//! ];
//! let config = ExperimentConfig {
//!     strategy: Strategy::TwoTier,
//!     grid_n: 4,
//!     duration: SimTime::from_ms(20 * 2048),
//!     ..ExperimentConfig::default()
//! };
//! let report = run_experiment(&config, &workload);
//! println!("avg transmission time: {:.3}%", report.avg_transmission_time_pct());
//! # Ok::<(), ttmqo::query::ParseQueryError>(())
//! ```

#![warn(missing_docs)]

pub use ttmqo_core as core;
pub use ttmqo_query as query;
pub use ttmqo_sim as sim;
pub use ttmqo_stats as stats;
pub use ttmqo_tinydb as tinydb;
pub use ttmqo_workloads as workloads;
