//! Property tests over the whole pipeline: random query workloads through
//! the optimizer must always preserve coverage invariants, and random small
//! simulations must be deterministic and answer-exact.

use proptest::prelude::*;
use ttmqo::core::{BaseStationOptimizer, CostModel, NetworkOp, OptimizerOptions};
use ttmqo::query::{
    covers_query, AggOp, Attribute, EpochDuration, PredicateSet, Query, QueryId, Selection,
};
use ttmqo::sim::Topology;
use ttmqo::stats::{LevelStats, SelectivityEstimator};

fn arb_attr() -> impl Strategy<Value = Attribute> {
    prop_oneof![
        Just(Attribute::NodeId),
        Just(Attribute::Light),
        Just(Attribute::Temp),
        Just(Attribute::Humidity),
    ]
}

fn arb_selection() -> impl Strategy<Value = Selection> {
    prop_oneof![
        prop::collection::vec(arb_attr(), 1..3).prop_map(Selection::attributes),
        (
            prop_oneof![Just(AggOp::Min), Just(AggOp::Max), Just(AggOp::Avg)],
            arb_attr()
        )
            .prop_map(|(op, attr)| Selection::aggregates([(op, attr)])),
    ]
}

fn arb_predicates() -> impl Strategy<Value = PredicateSet> {
    prop::collection::vec((arb_attr(), 0.0f64..1.0, 0.1f64..1.0), 0..2).prop_map(|specs| {
        let mut ps = PredicateSet::new();
        let mut used = Vec::new();
        for (attr, start, cover) in specs {
            if used.contains(&attr) {
                continue;
            }
            used.push(attr);
            let (lo, hi) = attr.domain();
            let width = hi - lo;
            let s = start.min(1.0 - cover.min(1.0)).max(0.0);
            if let Ok(p) = ttmqo::query::Predicate::new(
                attr,
                lo + s * width,
                lo + (s + cover.min(1.0 - s)) * width,
            ) {
                ps.and(p);
            }
        }
        ps
    })
}

prop_compose! {
    fn arb_query(id: u64)(
        selection in arb_selection(),
        predicates in arb_predicates(),
        epoch_mult in 1u64..8,
    ) -> Query {
        Query::from_parts(
            QueryId(id),
            selection,
            predicates,
            EpochDuration::from_base_multiples(epoch_mult),
        ).expect("generated query valid")
    }
}

fn optimizer() -> BaseStationOptimizer {
    let topo = Topology::grid(4).unwrap();
    let model = CostModel::new(
        4.0,
        0.2,
        LevelStats::from_levels(topo.levels().iter().copied()),
        SelectivityEstimator::uniform(),
    );
    BaseStationOptimizer::with_options(model, OptimizerOptions::default())
}

/// Every live user query must be covered by its synthetic query, and the
/// injected set must mirror the synthetic set.
fn assert_optimizer_invariants(opt: &BaseStationOptimizer, live: &[Query]) {
    for q in live {
        let syn_id = opt
            .mapping(q.id())
            .unwrap_or_else(|| panic!("live query {} unmapped", q.id()));
        let sq = opt.synthetic(syn_id).expect("mapped synthetic exists");
        assert!(
            covers_query(sq.query(), q),
            "synthetic {} does not cover {}",
            sq.query(),
            q
        );
    }
    assert_eq!(opt.user_count(), live.len());
    assert!(opt.synthetic_count() <= live.len().max(1));
    // Note: the benefit ratio may legitimately go *negative* — Algorithm 2
    // deliberately keeps stale synthetic queries after terminations (α), and
    // §3.1.2 forces same-predicate aggregation merges even when marginal.
    assert!(opt.benefit_ratio() <= 1.0 + 1e-9, "ratio cannot exceed 1");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random insert/terminate interleavings never break coverage, and the
    /// network-op stream is consistent (abort only what was injected).
    #[test]
    fn optimizer_invariants_under_random_interleavings(
        queries in prop::collection::vec(arb_selection(), 4..12),
        predicates in prop::collection::vec(arb_predicates(), 4..12),
        epochs in prop::collection::vec(1u64..8, 4..12),
        kill_order in prop::collection::vec(0usize..12, 0..8),
    ) {
        let n = queries.len().min(predicates.len()).min(epochs.len());
        let mut opt = optimizer();
        let mut live: Vec<Query> = Vec::new();
        let mut injected: std::collections::BTreeSet<QueryId> = Default::default();

        let apply_ops = |ops: Vec<NetworkOp>, injected: &mut std::collections::BTreeSet<QueryId>| {
            for op in ops {
                match op {
                    NetworkOp::Inject(q) => {
                        prop_assert!(injected.insert(q.id()), "double inject of {}", q.id());
                    }
                    NetworkOp::Abort(id) => {
                        prop_assert!(injected.remove(&id), "abort of never-injected {id}");
                    }
                }
            }
            Ok(())
        };

        for i in 0..n {
            let q = Query::from_parts(
                QueryId(i as u64),
                queries[i].clone(),
                predicates[i].clone(),
                EpochDuration::from_base_multiples(epochs[i]),
            ).expect("valid");
            live.push(q.clone());
            let ops = opt.insert(q).expect("unique ids");
            apply_ops(ops, &mut injected)?;
            assert_optimizer_invariants(&opt, &live);
        }
        for &k in &kill_order {
            if k < live.len() {
                let q = live.remove(k);
                let ops = opt.terminate(q.id());
                apply_ops(ops, &mut injected)?;
                assert_optimizer_invariants(&opt, &live);
            }
        }
        // The injected set equals the optimizer's synthetic set at all times.
        let current: std::collections::BTreeSet<QueryId> =
            opt.synthetic_queries().map(|q| q.id()).collect();
        prop_assert_eq!(injected, current);
    }

    /// Inserting then immediately terminating every query leaves nothing
    /// running and aborts everything injected.
    #[test]
    fn full_teardown_leaves_clean_state(ids in prop::collection::vec(0u64..32, 1..10)) {
        let mut unique = ids.clone();
        unique.sort_unstable();
        unique.dedup();
        let mut opt = optimizer();
        for &id in &unique {
            let q = Query::from_parts(
                QueryId(id),
                Selection::attributes([Attribute::Light]),
                PredicateSet::new(),
                EpochDuration::from_base_multiples(1 + id % 4),
            ).unwrap();
            opt.insert(q).unwrap();
        }
        for &id in &unique {
            opt.terminate(QueryId(id));
        }
        prop_assert_eq!(opt.user_count(), 0);
        prop_assert_eq!(opt.synthetic_count(), 0);
        let stats = opt.stats();
        prop_assert_eq!(stats.injections, stats.abortions);
    }
}
