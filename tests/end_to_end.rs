//! Workspace-level integration tests: the full pipeline from query text to
//! delivered answers, across every strategy, exercised through the umbrella
//! crate exactly as a downstream user would.

use ttmqo::core::{run_experiment, ExperimentConfig, FieldKind, Strategy, WorkloadEvent};
use ttmqo::query::{parse_query, AggOp, Attribute, EpochAnswer, QueryId};
use ttmqo::sim::{RadioParams, SimConfig, SimTime};
use ttmqo::workloads::{
    random_workload, selectivity_workload, workload_a, workload_b, workload_c,
    RandomWorkloadParams, SelectivityWorkloadParams,
};

fn quiet_config(strategy: Strategy, grid_n: usize, epochs: u64) -> ExperimentConfig {
    ExperimentConfig {
        strategy,
        grid_n,
        duration: SimTime::from_ms(epochs * 2048),
        radio: RadioParams::lossless(),
        sim: SimConfig {
            maintenance_interval_ms: None,
            ..SimConfig::default()
        },
        ..ExperimentConfig::default()
    }
}

#[test]
fn paper_workloads_all_strategies_complete_and_answer() {
    for (name, workload) in [
        ("A", workload_a()),
        ("B", workload_b()),
        ("C", workload_c()),
    ] {
        for strategy in Strategy::ALL {
            let report = run_experiment(&quiet_config(strategy, 4, 30), &workload);
            // Every one of the 8 user queries must receive answers.
            for i in 0..8u64 {
                let answers = report
                    .answers
                    .get(&QueryId(i))
                    .unwrap_or_else(|| panic!("{name}/{strategy}: q{i} unanswered"));
                assert!(
                    answers.len() >= 3,
                    "{name}/{strategy}: q{i} got only {} epochs",
                    answers.len()
                );
            }
            assert!(report.avg_transmission_time_pct() > 0.0);
        }
    }
}

#[test]
fn two_tier_beats_baseline_on_every_paper_workload() {
    for (name, workload) in [
        ("A", workload_a()),
        ("B", workload_b()),
        ("C", workload_c()),
    ] {
        for grid_n in [4usize, 8] {
            let base = run_experiment(&quiet_config(Strategy::Baseline, grid_n, 48), &workload);
            let two = run_experiment(&quiet_config(Strategy::TwoTier, grid_n, 48), &workload);
            assert!(
                two.avg_transmission_time_pct() < base.avg_transmission_time_pct(),
                "{name}/{}-nodes: two-tier {:.4} !< baseline {:.4}",
                grid_n * grid_n,
                two.avg_transmission_time_pct(),
                base.avg_transmission_time_pct()
            );
        }
    }
}

#[test]
fn selectivity_one_acquisition_answers_are_identical_rows() {
    // 8 identical full-selectivity acquisition queries: every query's answer
    // at a shared epoch must be identical across queries and strategies.
    let workload = selectivity_workload(&SelectivityWorkloadParams {
        selectivity: 1.0,
        ..SelectivityWorkloadParams::default()
    });
    let report = run_experiment(&quiet_config(Strategy::TwoTier, 4, 16), &workload);
    let reference = &report.answers[&QueryId(0)];
    assert!(!reference.is_empty());
    for i in 1..8u64 {
        assert_eq!(
            &report.answers[&QueryId(i)],
            reference,
            "q{i} must see exactly the same rows"
        );
    }
    // Full selectivity: all 15 sensing nodes appear in steady-state epochs.
    let steady: Vec<_> = reference.iter().filter(|(e, _)| *e >= 3 * 2048).collect();
    for (epoch, answer) in steady {
        let EpochAnswer::Rows(rows) = answer else {
            panic!("expected rows")
        };
        assert_eq!(rows.len(), 15, "epoch {epoch}: all nodes qualify");
    }
}

#[test]
fn random_workload_runs_end_to_end_under_two_tier() {
    // A dynamic workload with arrivals and departures over ~25 simulated
    // minutes; checks the pipeline never wedges and queries that lived long
    // enough got answers.
    let events = random_workload(&RandomWorkloadParams {
        n_queries: 30,
        target_concurrency: 6.0,
        mean_arrival_ms: 30_000.0,
        nodeid_max: 15.0,
        seed: 77,
        ..RandomWorkloadParams::default()
    });
    let end_ms = ttmqo::workloads::workload_end_ms(&events);
    let config = ExperimentConfig {
        strategy: Strategy::TwoTier,
        grid_n: 4,
        duration: SimTime::from_ms(end_ms + 8 * 2048),
        radio: RadioParams::lossless(),
        ..ExperimentConfig::default()
    };
    let report = run_experiment(&config, &events);

    // Queries alive for at least 3 of their epochs must have answers.
    let mut lived: std::collections::BTreeMap<QueryId, (u64, u64, u64)> = Default::default();
    for e in &events {
        match &e.action {
            ttmqo::core::WorkloadAction::Pose(q) => {
                lived.insert(q.id(), (e.at.as_ms(), u64::MAX, q.epoch().as_ms()));
            }
            ttmqo::core::WorkloadAction::Terminate(qid) => {
                if let Some(v) = lived.get_mut(qid) {
                    v.1 = e.at.as_ms();
                }
            }
        }
    }
    let mut answered = 0;
    let mut expected = 0;
    for (qid, (start, end, epoch)) in &lived {
        if end.saturating_sub(*start) > 4 * epoch {
            expected += 1;
            if report.answers.get(qid).is_some_and(|a| !a.is_empty()) {
                answered += 1;
            }
        }
    }
    assert!(expected > 5, "workload too short to be meaningful");
    assert_eq!(
        answered, expected,
        "all sufficiently-lived queries answered"
    );
}

#[test]
fn correlated_field_preserves_cross_strategy_equivalence() {
    let workload = vec![
        WorkloadEvent::pose(
            0,
            parse_query(
                QueryId(1),
                "select light, temp where 300<=light<=900 epoch duration 2048",
            )
            .unwrap(),
        ),
        WorkloadEvent::pose(
            0,
            parse_query(
                QueryId(2),
                "select max(temp) where 300<=light<=900 epoch duration 4096",
            )
            .unwrap(),
        ),
    ];
    let mut config = quiet_config(Strategy::Baseline, 4, 20);
    config.field = FieldKind::Correlated;
    let base = run_experiment(&config, &workload);
    config.strategy = Strategy::TwoTier;
    let two = run_experiment(&config, &workload);

    let window = |answers: &[(u64, EpochAnswer)]| {
        answers
            .iter()
            .filter(|(e, _)| (3 * 2048..16 * 2048).contains(e))
            .cloned()
            .collect::<Vec<_>>()
    };
    assert_eq!(
        window(&base.answers[&QueryId(1)]),
        window(&two.answers[&QueryId(1)]),
        "acquisition answers must match under the correlated field"
    );
    assert_eq!(
        window(&base.answers[&QueryId(2)]),
        window(&two.answers[&QueryId(2)]),
        "aggregation answers must match under the correlated field"
    );
}

#[test]
fn aggregates_of_folded_queries_match_direct_computation() {
    // MAX over the acquisition stream must equal the max over the rows the
    // acquisition query itself reports.
    let workload = vec![
        WorkloadEvent::pose(
            0,
            parse_query(QueryId(1), "select light epoch duration 2048").unwrap(),
        ),
        WorkloadEvent::pose(
            0,
            parse_query(QueryId(2), "select max(light) epoch duration 2048").unwrap(),
        ),
    ];
    let report = run_experiment(&quiet_config(Strategy::TwoTier, 3, 16), &workload);
    let rows_by_epoch: std::collections::BTreeMap<u64, f64> = report.answers[&QueryId(1)]
        .iter()
        .filter_map(|(e, a)| match a {
            EpochAnswer::Rows(rows) if !rows.is_empty() => Some((
                *e,
                rows.iter()
                    .filter_map(|r| r.readings.get(Attribute::Light))
                    .fold(f64::NEG_INFINITY, f64::max),
            )),
            _ => None,
        })
        .collect();
    let mut checked = 0;
    for (e, a) in &report.answers[&QueryId(2)] {
        if let EpochAnswer::Aggregates(vals) = a {
            if let Some(v) = vals.iter().find(|v| v.op == AggOp::Max) {
                if let Some(direct) = rows_by_epoch.get(e) {
                    assert_eq!(v.value, *direct, "epoch {e}");
                    checked += 1;
                }
            }
        }
    }
    assert!(checked >= 5, "only {checked} epochs verified");
}

#[test]
fn lossy_radio_still_converges_to_useful_answers() {
    // 10% random loss with retransmission: answers may occasionally miss a
    // row, but the pipeline must keep delivering epoch after epoch.
    let workload = vec![WorkloadEvent::pose(
        0,
        parse_query(QueryId(1), "select light epoch duration 2048").unwrap(),
    )];
    let mut config = quiet_config(Strategy::TwoTier, 4, 40);
    config.radio = RadioParams {
        loss_rate: 0.1,
        max_retries: 3,
        ..RadioParams::default()
    };
    let report = run_experiment(&config, &workload);
    let answers = &report.answers[&QueryId(1)];
    assert!(answers.len() >= 35, "got {} epochs", answers.len());
    assert!(
        report.metrics.retransmissions() > 0,
        "loss must trigger retries"
    );
    // Most epochs should still see most of the 15 nodes.
    let total_rows: usize = answers.iter().map(|(_, a)| a.len()).sum();
    assert!(
        total_rows as f64 / answers.len() as f64 > 12.0,
        "too many rows lost: {:.1}/epoch",
        total_rows as f64 / answers.len() as f64
    );
}
