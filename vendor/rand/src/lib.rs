//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors the
//! subset of the rand 0.8 API it actually uses: [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over integer and float ranges, and [`Rng::gen_bool`].
//! [`rngs::StdRng`] is a xoshiro256++ generator seeded through SplitMix64 —
//! deterministic for a given seed, which is all the workspace's
//! reproducibility guarantees require. It makes no attempt to match upstream
//! rand's stream bit-for-bit.

use std::ops::{Range, RangeInclusive};

/// A seedable random number generator (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// The raw 64-bit source every generator implements.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// A value uniformly distributed over `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0, 1]: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Maps 64 random bits to a float in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Provided generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut sm);
            }
            // An all-zero state would be a fixed point; SplitMix64 cannot
            // produce four zero outputs in a row, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types `gen_range` can sample uniformly. Keeping the range impls generic
/// over this trait (rather than one impl per concrete range type) lets type
/// inference flow through `gen_range` the way it does with upstream rand,
/// e.g. when the result is used as a slice index.
pub trait SampleUniform: Copy + PartialOrd {
    /// A uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`
    /// (`inclusive = true`).
    fn sample_uniform<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        T::sample_uniform(start, end, true, rng)
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                _inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let u = unit_f64(rng.next_u64()) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1 << 40), b.gen_range(0u64..1 << 40));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
