//! Collection strategies (`prop::collection::vec`, `prop::collection::btree_set`).

use crate::strategy::Strategy;
use crate::TestRng;
use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

/// A collection size specification: an exact count or a range of counts.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl SizeRange {
    fn draw(&self, rng: &mut TestRng) -> usize {
        rng.sample(self.lo..=self.hi_inclusive)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(!r.is_empty(), "empty collection size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(!r.is_empty(), "empty collection size range");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// A `Vec` of values from `element`, with length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.draw(rng);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

/// A `BTreeSet` of values from `element`, with target size drawn from `size`.
///
/// As in proptest, the set may come out smaller than the drawn target when
/// the element domain is too small to supply enough distinct values.
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`btree_set`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.draw(rng);
        let mut set = BTreeSet::new();
        let mut attempts = 0;
        while set.len() < target && attempts < target.saturating_mul(20) + 20 {
            set.insert(self.element.new_value(rng));
            attempts += 1;
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_lengths_in_range() {
        let strat = vec(0u32..10, 2..5);
        let mut rng = TestRng::for_case(0);
        for _ in 0..100 {
            let v = strat.new_value(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn exact_size_from_usize() {
        let strat = vec(0.0f64..1.0, 6);
        let mut rng = TestRng::for_case(2);
        for _ in 0..20 {
            assert_eq!(strat.new_value(&mut rng).len(), 6);
        }
    }

    #[test]
    fn btree_set_is_distinct_and_bounded() {
        let strat = btree_set(0u64..4, 0..4);
        let mut rng = TestRng::for_case(1);
        for _ in 0..100 {
            let s = strat.new_value(&mut rng);
            assert!(s.len() < 4);
            assert!(s.iter().all(|&x| x < 4));
        }
    }
}
