//! Offline vendored stand-in for `proptest`.
//!
//! The build environment has no registry access, so the workspace vendors a
//! deterministic mini property-testing engine implementing the subset of the
//! proptest API its tests use: the [`proptest!`], [`prop_compose!`],
//! [`prop_oneof!`], [`prop_assert!`] and [`prop_assert_eq!`] macros, the
//! [`strategy::Strategy`] trait with `prop_map`, range / tuple / [`Just`] /
//! string-pattern strategies, and [`collection::vec`] /
//! [`collection::btree_set`].
//!
//! Differences from upstream proptest, deliberately accepted:
//!
//! * no shrinking — a failing case reports its inputs' case number only;
//! * deterministic per-case seeding (no persistence; `*.proptest-regressions`
//!   files are ignored);
//! * string strategies implement just enough regex (`.`, a literal char
//!   class, `{m,n}` repetition) for the patterns the workspace uses.
//!
//! The number of cases per property defaults to 256 and can be overridden
//! with the `PROPTEST_CASES` environment variable or
//! [`test_runner::Config::with_cases`].

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::{Just, Strategy};

use rand::rngs::StdRng;
use rand::{Rng, SampleRange, SeedableRng};

/// Re-export of the crate root under the name the proptest prelude uses
/// (`prop::collection::vec`, ...).
pub mod prop {
    pub use crate::collection;
}

/// The subset of `proptest::prelude` the workspace imports.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::TestCaseError;
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_compose, prop_oneof, proptest};
}

/// Failure raised by `prop_assert!`-style macros; aborts the current case.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failed case with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic per-case random source handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// The generator for case number `case`; the same case always sees the
    /// same stream.
    pub fn for_case(case: u64) -> Self {
        TestRng(StdRng::seed_from_u64(
            0x7072_6F70_7465_7374u64 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }

    /// Uniform draw from a range (integer or float).
    pub fn sample<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        self.0.gen_range(range)
    }

    /// A random unicode scalar value, biased toward ASCII half the time to
    /// exercise both paths of text-handling code.
    pub fn sample_char(&mut self) -> char {
        if self.0.gen_bool(0.5) {
            self.0.gen_range(0x20u32..0x7F) as u8 as char
        } else {
            loop {
                let v = self.0.gen_range(0u32..0x11_0000);
                if let Some(c) = char::from_u32(v) {
                    return c;
                }
            }
        }
    }
}

/// Runs all cases of one property, panicking on the first failure.
///
/// Used by the [`proptest!`] expansion; not part of the public proptest API.
#[doc(hidden)]
pub fn run_cases<F>(name: &str, config: &test_runner::Config, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    for i in 0..config.cases as u64 {
        let mut rng = TestRng::for_case(i);
        if let Err(e) = case(&mut rng) {
            panic!("property `{name}` failed at case {i}/{}: {e}", config.cases);
        }
    }
}

/// Asserts a condition inside a `proptest!` body, failing the current case
/// (not the whole process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                ::std::concat!("assertion failed: ", ::std::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body, failing the current case when
/// the operands differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
                __l,
                __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`: {}",
                __l,
                __r,
                ::std::format!($($fmt)+)
            )));
        }
    }};
}

/// Chooses uniformly among the given strategies (all must yield the same
/// value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(::std::vec![
            $($crate::strategy::IntoBoxed::into_boxed($arm)),+
        ])
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over many generated cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! { config = $cfg; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns! { config = $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (
        config = $cfg:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                $crate::run_cases(::std::stringify!($name), &__config, |__rng| {
                    $(let $arg = $crate::Strategy::new_value(&$strat, __rng);)+
                    $body
                    ::core::result::Result::Ok(())
                });
            }
        )*
    };
}

/// Defines a function returning a strategy built from other strategies, as in
/// proptest's `prop_compose!`.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($param:ident: $pty:ty),* $(,)?)(
            $($arg:pat in $strat:expr),+ $(,)?
        ) -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($param: $pty),*) -> impl $crate::Strategy<Value = $ret> {
            $crate::strategy::FnStrategy::new(move |__rng: &mut $crate::TestRng| {
                $(let $arg = $crate::Strategy::new_value(&$strat, __rng);)+
                $body
            })
        }
    };
}
