//! The [`Strategy`] trait and the combinators the workspace's property tests
//! use.

use crate::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type from a [`TestRng`].
///
/// The upstream proptest trait also carries shrinking machinery; this
/// vendored stand-in only generates.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Strategy backed by a plain generation function; used by `prop_compose!`.
pub struct FnStrategy<F>(F);

impl<F> FnStrategy<F> {
    /// Wraps a generation function.
    pub fn new(f: F) -> Self {
        FnStrategy(f)
    }
}

impl<T, F> Strategy for FnStrategy<F>
where
    F: Fn(&mut TestRng) -> T,
{
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

trait Erased<T> {
    fn erased_value(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> Erased<S::Value> for S {
    fn erased_value(&self, rng: &mut TestRng) -> S::Value {
        self.new_value(rng)
    }
}

/// A type-erased strategy; what `prop_oneof!` arms are boxed into.
pub struct BoxedStrategy<T>(Box<dyn Erased<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        self.0.erased_value(rng)
    }
}

/// Conversion into [`BoxedStrategy`]; blanket-implemented for every strategy.
pub trait IntoBoxed {
    /// The generated value type.
    type Value;

    /// Boxes the strategy.
    fn into_boxed(self) -> BoxedStrategy<Self::Value>;
}

impl<S: Strategy + 'static> IntoBoxed for S {
    type Value = S::Value;

    fn into_boxed(self) -> BoxedStrategy<S::Value> {
        BoxedStrategy(Box::new(self))
    }
}

/// Uniform choice among boxed strategies; what `prop_oneof!` builds.
pub struct OneOf<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// A uniform choice among `arms`.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let idx = rng.sample(0..self.arms.len());
        self.arms[idx].new_value(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.sample(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.sample(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($S:ident . $idx:tt),+))*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (S0.0)
    (S0.0, S1.1)
    (S0.0, S1.1, S2.2)
    (S0.0, S1.1, S2.2, S3.3)
    (S0.0, S1.1, S2.2, S3.3, S4.4)
    (S0.0, S1.1, S2.2, S3.3, S4.4, S5.5)
}

/// `&str` patterns act as string strategies, as in proptest's regex
/// strategies. Supported subset: a single element — `.` (any char except
/// newline), a literal character, or a `[abc]` class — followed by an
/// optional `{m,n}` repetition. Anything else is treated as a literal
/// string.
impl Strategy for &str {
    type Value = String;

    fn new_value(&self, rng: &mut TestRng) -> String {
        match parse_pattern(self) {
            Some((element, lo, hi)) => {
                let len = rng.sample(lo..=hi);
                (0..len).map(|_| element.sample(rng)).collect()
            }
            None => (*self).to_string(),
        }
    }
}

enum Element {
    AnyChar,
    Literal(char),
    Class(Vec<char>),
}

impl Element {
    fn sample(&self, rng: &mut TestRng) -> char {
        match self {
            Element::AnyChar => loop {
                let c = rng.sample_char();
                if c != '\n' {
                    return c;
                }
            },
            Element::Literal(c) => *c,
            Element::Class(chars) => chars[rng.sample(0..chars.len())],
        }
    }
}

/// Parses `<element>{m,n}` (or a bare element, meaning `{1,1}`); `None`
/// means "not a supported pattern, treat as a literal".
fn parse_pattern(pattern: &str) -> Option<(Element, usize, usize)> {
    let mut chars = pattern.chars().peekable();
    let element = match chars.next()? {
        '.' => Element::AnyChar,
        '[' => {
            let mut class = Vec::new();
            for c in chars.by_ref() {
                if c == ']' {
                    break;
                }
                class.push(c);
            }
            if class.is_empty() {
                return None;
            }
            Element::Class(class)
        }
        c if c.is_alphanumeric() || c == ' ' => Element::Literal(c),
        _ => return None,
    };
    match chars.peek() {
        None => Some((element, 1, 1)),
        Some('{') => {
            chars.next();
            let body: String = chars.by_ref().take_while(|&c| c != '}').collect();
            if chars.next().is_some() {
                return None; // trailing garbage after `}`
            }
            let (lo, hi) = match body.split_once(',') {
                Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
                None => {
                    let n = body.trim().parse().ok()?;
                    (n, n)
                }
            };
            (lo <= hi).then_some((element, lo, hi))
        }
        Some(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TestRng;

    #[test]
    fn dot_repetition_respects_bounds() {
        let mut rng = TestRng::for_case(0);
        for _ in 0..50 {
            let s = ".{0,200}".new_value(&mut rng);
            assert!(s.chars().count() <= 200);
            assert!(!s.contains('\n'));
        }
    }

    #[test]
    fn unsupported_patterns_fall_back_to_literal() {
        let mut rng = TestRng::for_case(1);
        assert_eq!("select".new_value(&mut rng), "select");
    }

    #[test]
    fn oneof_draws_every_arm() {
        let strat = crate::prop_oneof![Just(1u32), Just(2u32), Just(3u32)];
        let mut rng = TestRng::for_case(2);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            seen.insert(strat.new_value(&mut rng));
        }
        assert_eq!(seen.into_iter().collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn prop_map_applies() {
        let strat = (1u64..=4).prop_map(|n| n * 2048);
        let mut rng = TestRng::for_case(3);
        for _ in 0..50 {
            let v = strat.new_value(&mut rng);
            assert_eq!(v % 2048, 0);
            assert!((2048..=8192).contains(&v));
        }
    }
}
