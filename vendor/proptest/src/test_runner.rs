//! Run configuration (`ProptestConfig` in the prelude).

/// How many cases each property runs.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Config {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    /// 256 cases, overridable with the `PROPTEST_CASES` environment variable.
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        Config { cases }
    }
}
