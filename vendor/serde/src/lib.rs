//! Offline vendored stand-in for `serde`.
//!
//! The build environment has no registry access. Workspace types annotate
//! themselves with `#[derive(Serialize, Deserialize)]` but nothing in the
//! workspace drives a serde serializer, so `Serialize`/`Deserialize` are
//! marker traits with blanket implementations and the derives are no-ops.
//! Actual JSON emission (the campaign observability report) is hand-rolled in
//! `ttmqo-core::campaign`, which documents this substitution.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all
/// types.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

#[cfg(test)]
mod tests {
    #[allow(unused_imports)]
    use super::{Deserialize, Serialize};

    #[derive(super::Serialize, super::Deserialize)]
    struct Plain {
        #[allow(dead_code)]
        field: u32,
    }

    #[derive(super::Serialize, super::Deserialize)]
    enum Kinds {
        #[allow(dead_code)]
        Unit,
        #[allow(dead_code)]
        Tuple(f64),
        #[allow(dead_code)]
        Named { x: String },
    }

    fn assert_serialize<T: crate::Serialize>() {}

    #[test]
    fn derives_compile_and_marker_holds() {
        assert_serialize::<Plain>();
        assert_serialize::<Kinds>();
        assert_serialize::<Vec<u8>>();
    }
}
