//! Offline vendored stand-in for `serde_derive`.
//!
//! The vendored `serde` crate's `Serialize`/`Deserialize` are marker traits
//! with blanket implementations, so the derives only need to *exist* for
//! `#[derive(Serialize, Deserialize)]` attributes to compile — they expand to
//! nothing.

use proc_macro::TokenStream;

/// No-op derive for the vendored `serde::Serialize` marker trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op derive for the vendored `serde::Deserialize` marker trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
