//! Offline vendored stand-in for `bytes`.
//!
//! `Vec<u8>`-backed [`Bytes`] and [`BytesMut`] with the basic construction,
//! extension and freeze/deref API — none of upstream's zero-copy reference
//! counting, which nothing in this workspace relies on.

use std::ops::Deref;

/// An immutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes(Vec::new())
    }

    /// A buffer copying `data`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(data.to_vec())
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes(v.to_vec())
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// An empty buffer with `capacity` reserved.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut(Vec::with_capacity(capacity))
    }

    /// Appends `data`.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.0.extend_from_slice(data);
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, b: u8) {
        self.0.push(b);
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::BytesMut;

    #[test]
    fn build_and_freeze() {
        let mut b = BytesMut::with_capacity(4);
        b.extend_from_slice(&[1, 2]);
        b.put_u8(3);
        let frozen = b.freeze();
        assert_eq!(&*frozen, &[1, 2, 3]);
    }
}
