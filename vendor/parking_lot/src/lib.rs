//! Offline vendored stand-in for `parking_lot`.
//!
//! Thin wrappers over `std::sync` primitives with parking_lot's
//! non-poisoning API shape: `lock()`/`read()`/`write()` return guards
//! directly. A panic while holding a lock makes later acquisitions panic
//! (upstream parking_lot would instead hand the lock to the next waiter).

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// Mutual exclusion without lock poisoning in the API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// A new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consumes the mutex, returning its value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().expect("a previous holder panicked")
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().expect("a previous holder panicked")
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().expect("a previous holder panicked")
    }
}

/// Reader-writer lock without lock poisoning in the API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// A new lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    /// Consumes the lock, returning its value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().expect("a previous holder panicked")
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().expect("a previous holder panicked")
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().expect("a previous holder panicked")
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().expect("a previous holder panicked")
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(String::from("a"));
        l.write().push('b');
        assert_eq!(&*l.read(), "ab");
    }
}
