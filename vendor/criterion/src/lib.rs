//! Offline vendored stand-in for `criterion`.
//!
//! Provides the API subset the workspace's `harness = false` benches use —
//! [`Criterion::bench_function`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`criterion_group!`] and [`criterion_main!`] —
//! backed by a simple calibrated timing loop instead of criterion's
//! statistical machinery. Each benchmark prints `name: median ns/iter` style
//! output; there is no HTML report, warm-up phase configuration, or outlier
//! analysis.

use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup (all variants behave identically
/// here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// The benchmark driver handed to registered benchmark functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

/// Target measurement time per benchmark.
const TARGET: Duration = Duration::from_millis(300);

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher);
        let per_iter = if bencher.iters == 0 {
            Duration::ZERO
        } else {
            bencher.total / bencher.iters as u32
        };
        println!(
            "bench {name}: {:>12.1} ns/iter ({} iters)",
            per_iter.as_nanos() as f64,
            bencher.iters
        );
        self
    }
}

/// Runs the measured routine and accumulates timing.
#[derive(Debug)]
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, repeating until the measurement budget is spent.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        loop {
            black_box(routine());
            self.iters += 1;
            let elapsed = start.elapsed();
            if elapsed >= TARGET {
                self.total = elapsed;
                break;
            }
        }
    }

    /// Times `routine` over fresh inputs from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        loop {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.total += start.elapsed();
            self.iters += 1;
            if self.total >= TARGET {
                break;
            }
        }
    }
}

/// Registers benchmark functions under a group name, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups, as in criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
