//! Offline vendored stand-in for `crossbeam`.
//!
//! Only the scoped-thread API is provided, implemented on top of
//! `std::thread::scope` (stable since Rust 1.63). The signatures mirror
//! crossbeam 0.8: the scope closure and every spawned closure receive a
//! `&Scope` they can spawn further work on, and `scope` returns a `Result`
//! (always `Ok` here — as with `std::thread::scope`, a panic in an unjoined
//! spawned thread propagates when the scope exits instead of being captured).

pub use thread::scope;

/// Scoped threads (stand-in for `crossbeam::thread`).
pub mod thread {
    use std::any::Any;

    /// A scope handle threads are spawned on.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle joining one spawned thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result or the
        /// payload of its panic.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives this scope so it can
        /// spawn nested work.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Creates a scope: all threads spawned inside are joined before it
    /// returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_share_borrows_and_join() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = super::scope(|s| {
            let handles: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 100);
    }

    #[test]
    fn nested_spawn_via_scope_arg() {
        let r = super::scope(|s| {
            s.spawn(|s2| s2.spawn(|_| 7).join().unwrap())
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(r, 7);
    }
}
