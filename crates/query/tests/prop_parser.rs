//! Parser robustness: arbitrary input never panics, and valid queries
//! round-trip through their `Display` form.

use proptest::prelude::*;
use ttmqo_query::{parse_query, QueryId};

proptest! {
    /// The parser returns `Ok` or `Err` — it must never panic, whatever the
    /// input bytes.
    #[test]
    fn parser_never_panics_on_arbitrary_input(text in ".{0,200}") {
        let _ = parse_query(QueryId(1), &text);
    }

    /// Same for inputs built from the language's own token vocabulary, which
    /// reach much deeper into the grammar than random unicode.
    #[test]
    fn parser_never_panics_on_token_soup(
        tokens in prop::collection::vec(
            prop_oneof![
                Just("select"), Just("where"), Just("and"), Just("epoch"),
                Just("duration"), Just("from"), Just("sensors"), Just("between"),
                Just("light"), Just("temp"), Just("nodeid"), Just("max"), Just("min"),
                Just("("), Just(")"), Just(","), Just("<"), Just("<="), Just(">"),
                Just(">="), Just("="), Just("2048"), Just("100"), Just("-5"), Just("3.7"),
            ],
            0..24,
        )
    ) {
        let text = tokens.join(" ");
        let _ = parse_query(QueryId(1), &text);
    }

    /// A successfully parsed query's Display form re-parses to an equivalent
    /// query (same selection, predicates and epoch).
    #[test]
    fn display_roundtrips(
        attrs in prop::collection::vec(
            prop_oneof![Just("light"), Just("temp"), Just("humidity")], 1..3),
        lo in 0u32..400,
        width in 1u32..500,
        epoch_mult in 1u64..6,
    ) {
        let mut uniq = attrs.clone();
        uniq.sort_unstable();
        uniq.dedup();
        let text = format!(
            "select {} where {} <= light <= {} epoch duration {}",
            uniq.join(", "),
            lo,
            lo + width,
            epoch_mult * 2048,
        );
        let q1 = parse_query(QueryId(1), &text).expect("constructed text is valid");
        let q2 = parse_query(QueryId(1), &q1.to_string()).expect("display re-parses");
        prop_assert_eq!(q1.selection(), q2.selection());
        prop_assert!(q1.predicates().equivalent(q2.predicates()));
        prop_assert_eq!(q1.epoch(), q2.epoch());
    }
}
