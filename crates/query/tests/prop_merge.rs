//! Property tests for the query rewrite algebra.

use proptest::prelude::*;
use ttmqo_query::{
    covers_query, integrate, AggOp, Attribute, Predicate, PredicateSet, Query, QueryId, Selection,
};

fn arb_attr() -> impl Strategy<Value = Attribute> {
    prop_oneof![
        Just(Attribute::NodeId),
        Just(Attribute::Light),
        Just(Attribute::Temp),
        Just(Attribute::Humidity),
        Just(Attribute::Voltage),
    ]
}

fn arb_agg_op() -> impl Strategy<Value = AggOp> {
    prop_oneof![
        Just(AggOp::Min),
        Just(AggOp::Max),
        Just(AggOp::Sum),
        Just(AggOp::Count),
        Just(AggOp::Avg),
    ]
}

fn arb_predicate() -> impl Strategy<Value = Predicate> {
    (arb_attr(), 0.0f64..1.0, 0.0f64..1.0).prop_map(|(attr, a, b)| {
        let (lo, hi) = attr.domain();
        let width = hi - lo;
        let (f1, f2) = if a <= b { (a, b) } else { (b, a) };
        Predicate::new(attr, lo + f1 * width, lo + f2 * width).expect("bounds inside domain")
    })
}

fn arb_predicates() -> impl Strategy<Value = PredicateSet> {
    prop::collection::vec(arb_predicate(), 0..3).prop_map(|ps| {
        // Intersections of random ranges on the same attribute can be empty;
        // keep only the first predicate per attribute so queries stay valid.
        let mut set = PredicateSet::new();
        let mut seen = Vec::new();
        for p in ps {
            if !seen.contains(&p.attr()) {
                seen.push(p.attr());
                set.and(p);
            }
        }
        set
    })
}

fn arb_epoch_ms() -> impl Strategy<Value = u64> {
    (1u64..=12).prop_map(|n| n * 2048)
}

fn arb_selection() -> impl Strategy<Value = Selection> {
    prop_oneof![
        prop::collection::vec(arb_attr(), 1..4).prop_map(Selection::attributes),
        prop::collection::vec((arb_agg_op(), arb_attr()), 1..3).prop_map(Selection::aggregates),
    ]
}

prop_compose! {
    fn arb_query(id: u64)(
        selection in arb_selection(),
        predicates in arb_predicates(),
        epoch_ms in arb_epoch_ms(),
    ) -> Query {
        Query::from_parts(
            QueryId(id),
            selection,
            predicates,
            ttmqo_query::EpochDuration::from_ms(epoch_ms).unwrap(),
        )
        .expect("generated queries are valid")
    }
}

proptest! {
    /// Whenever `integrate` succeeds, the merged query covers both members.
    #[test]
    fn integration_covers_both_members(a in arb_query(1), b in arb_query(2)) {
        if let Some(m) = integrate(QueryId(100), &a, &b) {
            prop_assert!(covers_query(&m, &a), "merged {m} must cover {a}");
            prop_assert!(covers_query(&m, &b), "merged {m} must cover {b}");
        }
    }

    /// Integration succeeds symmetrically and both directions cover both.
    #[test]
    fn integration_is_symmetric(a in arb_query(1), b in arb_query(2)) {
        let ab = integrate(QueryId(100), &a, &b);
        let ba = integrate(QueryId(101), &b, &a);
        prop_assert_eq!(ab.is_some(), ba.is_some());
        if let (Some(m1), Some(m2)) = (ab, ba) {
            prop_assert_eq!(m1.epoch(), m2.epoch());
            prop_assert!(m1.predicates().equivalent(m2.predicates()));
        }
    }

    /// Coverage is transitive: if a covers b and b covers c then a covers c.
    #[test]
    fn coverage_is_transitive(a in arb_query(1), b in arb_query(2), c in arb_query(3)) {
        if covers_query(&a, &b) && covers_query(&b, &c) {
            prop_assert!(covers_query(&a, &c));
        }
    }

    /// Every query covers itself.
    #[test]
    fn coverage_is_reflexive(a in arb_query(1)) {
        prop_assert!(covers_query(&a, &a));
    }

    /// The merged epoch divides both member epochs.
    #[test]
    fn merged_epoch_divides_members(a in arb_query(1), b in arb_query(2)) {
        if let Some(m) = integrate(QueryId(100), &a, &b) {
            prop_assert!(m.epoch().divides(a.epoch()));
            prop_assert!(m.epoch().divides(b.epoch()));
        }
    }

    /// union_cover really is an upper bound in the covers order.
    #[test]
    fn union_cover_is_upper_bound(a in arb_predicates(), b in arb_predicates()) {
        let u = a.union_cover(&b);
        prop_assert!(u.covers(&a));
        prop_assert!(u.covers(&b));
    }

    /// union_cover is commutative up to equivalence.
    #[test]
    fn union_cover_is_commutative(a in arb_predicates(), b in arb_predicates()) {
        let u1 = a.union_cover(&b);
        let u2 = b.union_cover(&a);
        prop_assert!(u1.equivalent(&u2));
    }

    /// Uniform selectivity is monotone under coverage.
    #[test]
    fn selectivity_monotone_under_coverage(a in arb_predicates(), b in arb_predicates()) {
        if a.covers(&b) {
            prop_assert!(a.uniform_selectivity() >= b.uniform_selectivity() - 1e-12);
        }
    }

    /// Matching rows of the member always match the merged query's predicates.
    #[test]
    fn merged_predicates_accept_member_rows(
        a in arb_query(1),
        b in arb_query(2),
        light in 0.0f64..1000.0,
        temp in -400.0f64..1000.0,
        humidity in 0.0f64..100.0,
        voltage in 1800.0f64..3300.0,
        node in 0.0f64..64.0,
    ) {
        let lookup = |attr: Attribute| match attr {
            Attribute::Light => light,
            Attribute::Temp => temp,
            Attribute::Humidity => humidity,
            Attribute::Voltage => voltage,
            Attribute::NodeId => node,
        };
        if let Some(m) = integrate(QueryId(100), &a, &b) {
            if a.predicates().matches_with(lookup) || b.predicates().matches_with(lookup) {
                prop_assert!(m.predicates().matches_with(lookup));
            }
        }
    }
}
