//! Result-side data types: readings, rows and per-epoch answers.

use crate::agg::{AggOp, PartialAgg};
use crate::attr::Attribute;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// One node's sampled values for a set of attributes at one instant.
///
/// # Examples
///
/// ```
/// use ttmqo_query::{Attribute, Readings};
///
/// let mut r = Readings::new();
/// r.set(Attribute::Light, 512.0);
/// assert_eq!(r.get(Attribute::Light), Some(512.0));
/// assert_eq!(r.get(Attribute::Temp), None);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Readings {
    values: BTreeMap<Attribute, f64>,
}

impl Readings {
    /// An empty set of readings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a sampled value, replacing any previous value and returning it.
    pub fn set(&mut self, attr: Attribute, value: f64) -> Option<f64> {
        self.values.insert(attr, value)
    }

    /// The sampled value for `attr`, if present.
    pub fn get(&self, attr: Attribute) -> Option<f64> {
        self.values.get(&attr).copied()
    }

    /// Iterates `(attribute, value)` pairs in canonical attribute order.
    pub fn iter(&self) -> impl Iterator<Item = (Attribute, f64)> + '_ {
        self.values.iter().map(|(&a, &v)| (a, v))
    }

    /// Number of sampled attributes.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether nothing has been sampled.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Keeps only the given attributes.
    pub fn project(&self, attrs: &[Attribute]) -> Readings {
        Readings {
            values: self
                .values
                .iter()
                .filter(|(a, _)| attrs.contains(a))
                .map(|(&a, &v)| (a, v))
                .collect(),
        }
    }
}

impl FromIterator<(Attribute, f64)> for Readings {
    fn from_iter<I: IntoIterator<Item = (Attribute, f64)>>(iter: I) -> Self {
        Readings {
            values: iter.into_iter().collect(),
        }
    }
}

impl Extend<(Attribute, f64)> for Readings {
    fn extend<I: IntoIterator<Item = (Attribute, f64)>>(&mut self, iter: I) {
        self.values.extend(iter);
    }
}

impl fmt::Display for Readings {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.iter().map(|(a, v)| format!("{a}={v}")).collect();
        write!(f, "{{{}}}", parts.join(", "))
    }
}

/// A result row: one node's qualifying readings at one epoch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Raw id of the producing node.
    pub node: u16,
    /// Simulation time of the epoch the row belongs to, in milliseconds.
    pub time_ms: u64,
    /// The projected readings.
    pub readings: Readings,
}

/// A finalized aggregate value for one `(op, attr)` pair at one epoch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggValue {
    /// The aggregation operator.
    pub op: AggOp,
    /// The aggregated attribute.
    pub attr: Attribute,
    /// The finalized value.
    pub value: f64,
}

/// A query's answer for one epoch: rows for acquisition queries, aggregate
/// values for aggregation queries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EpochAnswer {
    /// Acquisition answer: the qualifying rows.
    Rows(Vec<Row>),
    /// Aggregation answer: one value per requested aggregate.
    Aggregates(Vec<AggValue>),
}

impl EpochAnswer {
    /// Number of rows / aggregate values.
    pub fn len(&self) -> usize {
        match self {
            EpochAnswer::Rows(r) => r.len(),
            EpochAnswer::Aggregates(a) => a.len(),
        }
    }

    /// Whether the answer is empty (no node qualified this epoch).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Computes finalized aggregates over a set of rows.
///
/// Rows lacking the aggregated attribute are skipped; an empty input yields an
/// empty output (TinyDB emits no aggregate row for an empty epoch).
pub fn aggregate_rows(rows: &[Row], aggs: &[(AggOp, Attribute)]) -> Vec<AggValue> {
    aggs.iter()
        .filter_map(|&(op, attr)| {
            let mut acc: Option<PartialAgg> = None;
            for row in rows {
                if let Some(v) = row.readings.get(attr) {
                    match &mut acc {
                        Some(p) => p
                            .merge(&op.seed(v))
                            .expect("seeded partials share the operator"),
                        None => acc = Some(op.seed(v)),
                    }
                }
            }
            acc.map(|p| AggValue {
                op,
                attr,
                value: p.finalize(),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(node: u16, light: f64, temp: f64) -> Row {
        Row {
            node,
            time_ms: 0,
            readings: [(Attribute::Light, light), (Attribute::Temp, temp)]
                .into_iter()
                .collect(),
        }
    }

    #[test]
    fn readings_set_get_project() {
        let mut r = Readings::new();
        assert!(r.is_empty());
        assert_eq!(r.set(Attribute::Light, 1.0), None);
        assert_eq!(r.set(Attribute::Light, 2.0), Some(1.0));
        r.set(Attribute::Temp, 3.0);
        assert_eq!(r.len(), 2);
        let p = r.project(&[Attribute::Temp]);
        assert_eq!(p.get(Attribute::Temp), Some(3.0));
        assert_eq!(p.get(Attribute::Light), None);
    }

    #[test]
    fn readings_display() {
        let mut r = Readings::new();
        r.set(Attribute::Light, 5.0);
        assert_eq!(r.to_string(), "{light=5}");
    }

    #[test]
    fn aggregate_rows_computes_all_ops() {
        let rows = vec![row(1, 10.0, 1.0), row(2, 30.0, 2.0), row(3, 20.0, 6.0)];
        let aggs = [
            (AggOp::Min, Attribute::Light),
            (AggOp::Max, Attribute::Light),
            (AggOp::Sum, Attribute::Light),
            (AggOp::Count, Attribute::Light),
            (AggOp::Avg, Attribute::Temp),
        ];
        let vals = aggregate_rows(&rows, &aggs);
        assert_eq!(vals.len(), 5);
        assert_eq!(vals[0].value, 10.0);
        assert_eq!(vals[1].value, 30.0);
        assert_eq!(vals[2].value, 60.0);
        assert_eq!(vals[3].value, 3.0);
        assert_eq!(vals[4].value, 3.0);
    }

    #[test]
    fn aggregate_rows_empty_input_is_empty_output() {
        let vals = aggregate_rows(&[], &[(AggOp::Max, Attribute::Light)]);
        assert!(vals.is_empty());
    }

    #[test]
    fn aggregate_rows_skips_missing_attribute() {
        let mut r = Readings::new();
        r.set(Attribute::Temp, 7.0);
        let rows = vec![Row {
            node: 1,
            time_ms: 0,
            readings: r,
        }];
        let vals = aggregate_rows(&rows, &[(AggOp::Max, Attribute::Light)]);
        assert!(vals.is_empty());
    }

    #[test]
    fn epoch_answer_len() {
        let a = EpochAnswer::Rows(vec![row(1, 1.0, 1.0)]);
        assert_eq!(a.len(), 1);
        assert!(!a.is_empty());
        let b = EpochAnswer::Aggregates(vec![]);
        assert!(b.is_empty());
    }
}
