//! TinyDB-style declarative query model for the TTMQO reproduction.
//!
//! This crate defines the query language shared by every other crate in the
//! workspace: sensor [attributes](Attribute), [aggregation
//! operators](AggOp) with decomposable [partial state](PartialAgg), conjunctive
//! [range predicates](PredicateSet), validated [epoch
//! durations](EpochDuration), the [`Query`] type itself with its
//! [builder](QueryBuilder) and [text parser](parse_query), result-side types
//! ([`Row`], [`EpochAnswer`]), and the [rewrite algebra](integrate) the
//! base-station optimizer builds on.
//!
//! # Quick example
//!
//! ```
//! use ttmqo_query::{parse_query, integrate, covers_query, QueryId};
//!
//! let q1 = parse_query(QueryId(1), "select light where 280<light<600 epoch duration 2048")?;
//! let q2 = parse_query(QueryId(2), "select light where 100<light<300 epoch duration 4096")?;
//!
//! // A semantically correct merged query always exists for acquisition pairs…
//! let merged = integrate(QueryId(100), &q1, &q2).unwrap();
//! assert!(covers_query(&merged, &q1) && covers_query(&merged, &q2));
//! // …whether it is *beneficial* is the cost model's call (see `ttmqo-core`).
//! # Ok::<(), ttmqo_query::ParseQueryError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod agg;
mod attr;
mod epoch;
mod merge;
mod parser;
mod predicate;
mod query;
mod region;
mod result;

pub use agg::{AggOp, MergePartialError, ParseAggOpError, PartialAgg};
pub use attr::{Attribute, ParseAttributeError};
pub use epoch::{gcd_u64, EpochDuration, InvalidEpochError, BASE_EPOCH_MS};
pub use merge::{can_integrate, covers_query, integrate, needed_attributes};
pub use parser::{parse_query, ParseQueryError};
pub use predicate::{InvalidPredicateError, Predicate, PredicateSet};
pub use query::{BuildQueryError, Query, QueryBuilder, QueryId, Selection};
pub use region::{InvalidRegionError, Region};
pub use result::{aggregate_rows, AggValue, EpochAnswer, Readings, Row};
