//! Region clauses — spatial restriction of a query to a rectangle of the
//! deployment (§3.2.2's "region-based queries").
//!
//! A region is evaluated against a node's *physical position* (known to the
//! base station and to the node itself), not against sampled data. Queries
//! without a region clause cover the whole deployment.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An axis-aligned rectangle of the deployment plane, in feet.
///
/// # Examples
///
/// ```
/// use ttmqo_query::Region;
///
/// let r = Region::new(0.0, 0.0, 60.0, 40.0)?;
/// assert!(r.contains(20.0, 40.0));
/// assert!(!r.contains(61.0, 0.0));
/// # Ok::<(), ttmqo_query::InvalidRegionError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Region {
    x_min: f64,
    y_min: f64,
    x_max: f64,
    y_max: f64,
}

/// Error constructing a degenerate or non-finite region.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvalidRegionError;

impl fmt::Display for InvalidRegionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("region bounds must be finite with min <= max")
    }
}

impl std::error::Error for InvalidRegionError {}

impl Region {
    /// Creates a region from its corner coordinates.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidRegionError`] if any bound is not finite or a min
    /// exceeds its max.
    pub fn new(x_min: f64, y_min: f64, x_max: f64, y_max: f64) -> Result<Self, InvalidRegionError> {
        if ![x_min, y_min, x_max, y_max].iter().all(|v| v.is_finite())
            || x_min > x_max
            || y_min > y_max
        {
            return Err(InvalidRegionError);
        }
        Ok(Region {
            x_min,
            y_min,
            x_max,
            y_max,
        })
    }

    /// West bound.
    pub fn x_min(&self) -> f64 {
        self.x_min
    }

    /// North bound (the deployment's y grows southward from the base station).
    pub fn y_min(&self) -> f64 {
        self.y_min
    }

    /// East bound.
    pub fn x_max(&self) -> f64 {
        self.x_max
    }

    /// South bound.
    pub fn y_max(&self) -> f64 {
        self.y_max
    }

    /// Whether a position lies inside (bounds inclusive).
    pub fn contains(&self, x: f64, y: f64) -> bool {
        x >= self.x_min && x <= self.x_max && y >= self.y_min && y <= self.y_max
    }

    /// Whether `self` contains `other` entirely.
    pub fn contains_region(&self, other: &Region) -> bool {
        self.x_min <= other.x_min
            && self.y_min <= other.y_min
            && self.x_max >= other.x_max
            && self.y_max >= other.y_max
    }

    /// Whether the two rectangles overlap (boundaries touching counts).
    pub fn intersects(&self, other: &Region) -> bool {
        self.x_min <= other.x_max
            && other.x_min <= self.x_max
            && self.y_min <= other.y_max
            && other.y_min <= self.y_max
    }

    /// The smallest rectangle containing both.
    pub fn union_cover(&self, other: &Region) -> Region {
        Region {
            x_min: self.x_min.min(other.x_min),
            y_min: self.y_min.min(other.y_min),
            x_max: self.x_max.max(other.x_max),
            y_max: self.y_max.max(other.y_max),
        }
    }

    /// Covering union of optional regions: `None` means "everywhere", which
    /// absorbs any rectangle.
    pub fn union_opt(a: Option<Region>, b: Option<Region>) -> Option<Region> {
        match (a, b) {
            (Some(ra), Some(rb)) => Some(ra.union_cover(&rb)),
            _ => None,
        }
    }

    /// Whether optional region `outer` covers optional region `inner`
    /// (`None` = everywhere).
    pub fn covers_opt(outer: Option<&Region>, inner: Option<&Region>) -> bool {
        match (outer, inner) {
            (None, _) => true,
            (Some(_), None) => false,
            (Some(o), Some(i)) => o.contains_region(i),
        }
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "region({}, {}, {}, {})",
            self.x_min, self.y_min, self.x_max, self.y_max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(a: f64, b: f64, c: f64, d: f64) -> Region {
        Region::new(a, b, c, d).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(Region::new(0.0, 0.0, -1.0, 5.0).is_err());
        assert!(Region::new(0.0, 5.0, 1.0, 0.0).is_err());
        assert!(Region::new(f64::NAN, 0.0, 1.0, 1.0).is_err());
        assert!(
            Region::new(0.0, 0.0, 0.0, 0.0).is_ok(),
            "a point is a region"
        );
    }

    #[test]
    fn contains_is_inclusive() {
        let reg = r(0.0, 0.0, 10.0, 20.0);
        assert!(reg.contains(0.0, 0.0));
        assert!(reg.contains(10.0, 20.0));
        assert!(!reg.contains(10.1, 0.0));
        assert!(!reg.contains(0.0, -0.1));
    }

    #[test]
    fn containment_and_intersection() {
        let big = r(0.0, 0.0, 100.0, 100.0);
        let small = r(10.0, 10.0, 20.0, 20.0);
        let apart = r(200.0, 200.0, 300.0, 300.0);
        assert!(big.contains_region(&small));
        assert!(!small.contains_region(&big));
        assert!(big.intersects(&small));
        assert!(!big.intersects(&apart));
        // Touching boundaries intersect.
        assert!(r(0.0, 0.0, 10.0, 10.0).intersects(&r(10.0, 0.0, 20.0, 10.0)));
    }

    #[test]
    fn union_cover_is_the_bounding_box() {
        let a = r(0.0, 0.0, 10.0, 10.0);
        let b = r(20.0, 5.0, 30.0, 40.0);
        let u = a.union_cover(&b);
        assert!(u.contains_region(&a) && u.contains_region(&b));
        assert_eq!(
            (u.x_min(), u.y_min(), u.x_max(), u.y_max()),
            (0.0, 0.0, 30.0, 40.0)
        );
    }

    #[test]
    fn optional_region_semantics() {
        let a = r(0.0, 0.0, 10.0, 10.0);
        assert_eq!(Region::union_opt(Some(a), None), None, "everywhere absorbs");
        assert_eq!(Region::union_opt(None, None), None);
        assert!(Region::covers_opt(None, Some(&a)));
        assert!(!Region::covers_opt(Some(&a), None));
        assert!(Region::covers_opt(Some(&a), Some(&a)));
    }

    #[test]
    fn display_form() {
        assert_eq!(r(1.0, 2.0, 3.0, 4.0).to_string(), "region(1, 2, 3, 4)");
    }
}
