//! The query type: a TinyDB-style continuous query.
//!
//! Queries follow the semantics of TinyDB's acquisitional SQL (§2 of the
//! paper): a `SELECT`-`FROM`-`WHERE` clause supporting selection, projection
//! and aggregation, plus an `EPOCH DURATION` clause giving the sampling
//! period. A single query is either a *data acquisition* query (projecting raw
//! attributes) or an *aggregation* query (computing aggregates) — never both.

use crate::agg::AggOp;
use crate::attr::Attribute;
use crate::epoch::EpochDuration;
use crate::predicate::{Predicate, PredicateSet};
use crate::region::Region;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Unique identifier of a user query.
///
/// ```
/// use ttmqo_query::QueryId;
/// let q = QueryId(7);
/// assert_eq!(q.to_string(), "q7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct QueryId(pub u64);

impl fmt::Display for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// What a query asks the network for: raw attributes or aggregates.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Selection {
    /// Data acquisition: project these raw attributes from every qualifying
    /// node each epoch. Sorted and deduplicated.
    Attributes(Vec<Attribute>),
    /// Aggregation: compute these `(op, attribute)` aggregates over all
    /// qualifying nodes each epoch. Sorted and deduplicated.
    Aggregates(Vec<(AggOp, Attribute)>),
}

impl Selection {
    /// Acquisition selection over the given attributes (sorted, deduped).
    pub fn attributes<I: IntoIterator<Item = Attribute>>(attrs: I) -> Self {
        let mut v: Vec<Attribute> = attrs.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        Selection::Attributes(v)
    }

    /// Aggregation selection over the given `(op, attr)` pairs (sorted, deduped).
    pub fn aggregates<I: IntoIterator<Item = (AggOp, Attribute)>>(aggs: I) -> Self {
        let mut v: Vec<(AggOp, Attribute)> = aggs.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        Selection::Aggregates(v)
    }

    /// Whether this is an acquisition selection.
    pub fn is_acquisition(&self) -> bool {
        matches!(self, Selection::Attributes(_))
    }

    /// Whether this is an aggregation selection.
    pub fn is_aggregation(&self) -> bool {
        matches!(self, Selection::Aggregates(_))
    }

    /// Every attribute the selection needs sampled (for aggregates, the
    /// aggregated attributes).
    pub fn sampled_attributes(&self) -> Vec<Attribute> {
        let mut v = match self {
            Selection::Attributes(attrs) => attrs.clone(),
            Selection::Aggregates(aggs) => aggs.iter().map(|&(_, a)| a).collect(),
        };
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Payload bytes a single result tuple of this selection occupies.
    pub fn wire_size(&self) -> usize {
        match self {
            Selection::Attributes(attrs) => attrs.iter().map(|a| a.wire_size()).sum(),
            Selection::Aggregates(aggs) => aggs.iter().map(|&(op, _)| op.wire_size()).sum(),
        }
    }

    /// Whether the selection requests nothing.
    pub fn is_empty(&self) -> bool {
        match self {
            Selection::Attributes(v) => v.is_empty(),
            Selection::Aggregates(v) => v.is_empty(),
        }
    }
}

impl fmt::Display for Selection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Selection::Attributes(attrs) => {
                let names: Vec<String> = attrs.iter().map(|a| a.to_string()).collect();
                f.write_str(&names.join(", "))
            }
            Selection::Aggregates(aggs) => {
                let names: Vec<String> = aggs.iter().map(|(op, a)| format!("{op}({a})")).collect();
                f.write_str(&names.join(", "))
            }
        }
    }
}

/// A validated user query.
///
/// Construct with [`Query::builder`] or parse from text with
/// [`parse_query`](crate::parse_query).
///
/// # Examples
///
/// ```
/// use ttmqo_query::{Attribute, Query, QueryId};
///
/// let q = Query::builder(QueryId(1))
///     .select_attr(Attribute::Light)
///     .filter(Attribute::Light, 280.0, 600.0)
///     .epoch_ms(2048)
///     .build()?;
/// assert!(q.is_acquisition());
/// assert_eq!(q.epoch().as_ms(), 2048);
/// # Ok::<(), ttmqo_query::BuildQueryError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Query {
    id: QueryId,
    selection: Selection,
    predicates: PredicateSet,
    epoch: EpochDuration,
    region: Option<Region>,
}

impl Query {
    /// Starts building a query with the given id.
    pub fn builder(id: QueryId) -> QueryBuilder {
        QueryBuilder {
            id,
            attrs: Vec::new(),
            aggs: Vec::new(),
            predicates: PredicateSet::new(),
            epoch: None,
            region: None,
            error: None,
        }
    }

    /// Constructs a query from parts, validating the combination.
    ///
    /// # Errors
    ///
    /// Returns [`BuildQueryError`] if the selection is empty, mixes
    /// acquisition and aggregation, or the predicates are unsatisfiable.
    pub fn from_parts(
        id: QueryId,
        selection: Selection,
        predicates: PredicateSet,
        epoch: EpochDuration,
    ) -> Result<Self, BuildQueryError> {
        if selection.is_empty() {
            return Err(BuildQueryError::EmptySelection);
        }
        if predicates.is_unsatisfiable() {
            return Err(BuildQueryError::UnsatisfiablePredicates);
        }
        Ok(Query {
            id,
            selection,
            predicates: predicates.normalize(),
            epoch,
            region: None,
        })
    }

    /// Returns a copy restricted to the given deployment region (§3.2.2's
    /// region-based queries): only nodes physically inside the rectangle can
    /// contribute.
    pub fn with_region(&self, region: Region) -> Query {
        Query {
            region: Some(region),
            ..self.clone()
        }
    }

    /// The spatial restriction, if any (`None` = the whole deployment).
    pub fn region(&self) -> Option<&Region> {
        self.region.as_ref()
    }

    /// The query's unique identifier.
    pub fn id(&self) -> QueryId {
        self.id
    }

    /// Returns a copy of this query carrying a different id.
    pub fn with_id(&self, id: QueryId) -> Query {
        Query { id, ..self.clone() }
    }

    /// The selection clause.
    pub fn selection(&self) -> &Selection {
        &self.selection
    }

    /// The `WHERE` clause as a normalized predicate set.
    pub fn predicates(&self) -> &PredicateSet {
        &self.predicates
    }

    /// The epoch duration.
    pub fn epoch(&self) -> EpochDuration {
        self.epoch
    }

    /// Whether this is a data acquisition query.
    pub fn is_acquisition(&self) -> bool {
        self.selection.is_acquisition()
    }

    /// Whether this is an aggregation query.
    pub fn is_aggregation(&self) -> bool {
        self.selection.is_aggregation()
    }

    /// Attributes that must be sampled to evaluate this query (selection
    /// attributes plus predicate attributes).
    pub fn sampled_attributes(&self) -> Vec<Attribute> {
        let mut v = self.selection.sampled_attributes();
        v.extend(self.predicates.attrs());
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Payload bytes of one result tuple for this query (Eq. 3's `len(q)`).
    pub fn result_len(&self) -> usize {
        self.selection.wire_size()
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "select {}", self.selection)?;
        match (&self.region, self.predicates.is_empty()) {
            (None, true) => {}
            (None, false) => write!(f, " where {}", self.predicates)?,
            (Some(region), true) => write!(f, " where {region}")?,
            (Some(region), false) => write!(f, " where {} and {region}", self.predicates)?,
        }
        write!(f, " epoch duration {}", self.epoch)
    }
}

/// Error building an invalid query.
#[derive(Debug, Clone, PartialEq)]
pub enum BuildQueryError {
    /// No attribute or aggregate was selected.
    EmptySelection,
    /// Both raw attributes and aggregates were selected.
    MixedSelection,
    /// A predicate range is invalid.
    InvalidPredicate(String),
    /// The conjunction of predicates can never be satisfied.
    UnsatisfiablePredicates,
    /// No epoch duration was given, or it was invalid.
    InvalidEpoch(String),
}

impl fmt::Display for BuildQueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildQueryError::EmptySelection => f.write_str("query selects nothing"),
            BuildQueryError::MixedSelection => {
                f.write_str("query mixes raw attributes and aggregates")
            }
            BuildQueryError::InvalidPredicate(msg) => write!(f, "invalid predicate: {msg}"),
            BuildQueryError::UnsatisfiablePredicates => {
                f.write_str("predicates can never be satisfied")
            }
            BuildQueryError::InvalidEpoch(msg) => write!(f, "invalid epoch: {msg}"),
        }
    }
}

impl std::error::Error for BuildQueryError {}

/// Incremental builder for [`Query`]; see [`Query::builder`].
#[derive(Debug, Clone)]
pub struct QueryBuilder {
    id: QueryId,
    attrs: Vec<Attribute>,
    aggs: Vec<(AggOp, Attribute)>,
    predicates: PredicateSet,
    epoch: Option<EpochDuration>,
    region: Option<Region>,
    error: Option<BuildQueryError>,
}

impl QueryBuilder {
    /// Adds a raw attribute to the selection (acquisition query).
    pub fn select_attr(mut self, attr: Attribute) -> Self {
        self.attrs.push(attr);
        self
    }

    /// Adds an aggregate to the selection (aggregation query).
    pub fn select_agg(mut self, op: AggOp, attr: Attribute) -> Self {
        self.aggs.push((op, attr));
        self
    }

    /// Conjoins a range predicate `min <= attr <= max`.
    pub fn filter(mut self, attr: Attribute, min: f64, max: f64) -> Self {
        match Predicate::new(attr, min, max) {
            Ok(p) => self.predicates.and(p),
            Err(e) => {
                self.error
                    .get_or_insert(BuildQueryError::InvalidPredicate(e.to_string()));
            }
        }
        self
    }

    /// Sets the epoch duration in milliseconds.
    pub fn epoch_ms(mut self, ms: u64) -> Self {
        match EpochDuration::from_ms(ms) {
            Ok(e) => self.epoch = Some(e),
            Err(e) => {
                self.error
                    .get_or_insert(BuildQueryError::InvalidEpoch(e.to_string()));
            }
        }
        self
    }

    /// Sets the epoch duration directly.
    pub fn epoch(mut self, e: EpochDuration) -> Self {
        self.epoch = Some(e);
        self
    }

    /// Restricts the query to a deployment rectangle.
    pub fn in_region(mut self, x_min: f64, y_min: f64, x_max: f64, y_max: f64) -> Self {
        match Region::new(x_min, y_min, x_max, y_max) {
            Ok(r) => self.region = Some(r),
            Err(e) => {
                self.error
                    .get_or_insert(BuildQueryError::InvalidPredicate(e.to_string()));
            }
        }
        self
    }

    /// Finishes the build.
    ///
    /// # Errors
    ///
    /// Returns the first [`BuildQueryError`] encountered while building, or a
    /// validation error from [`Query::from_parts`].
    pub fn build(self) -> Result<Query, BuildQueryError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        if !self.attrs.is_empty() && !self.aggs.is_empty() {
            return Err(BuildQueryError::MixedSelection);
        }
        let selection = if self.aggs.is_empty() {
            Selection::attributes(self.attrs)
        } else {
            Selection::aggregates(self.aggs)
        };
        let epoch = self
            .epoch
            .ok_or_else(|| BuildQueryError::InvalidEpoch("missing epoch duration".into()))?;
        let q = Query::from_parts(self.id, selection, self.predicates, epoch)?;
        Ok(match self.region {
            Some(r) => q.with_region(r),
            None => q,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_builds_acquisition_query() {
        let q = Query::builder(QueryId(1))
            .select_attr(Attribute::Light)
            .select_attr(Attribute::Temp)
            .select_attr(Attribute::Light) // duplicate ignored
            .filter(Attribute::Light, 100.0, 300.0)
            .epoch_ms(4096)
            .build()
            .unwrap();
        assert!(q.is_acquisition());
        assert_eq!(
            q.selection(),
            &Selection::attributes([Attribute::Light, Attribute::Temp])
        );
        assert_eq!(q.result_len(), 4);
        assert_eq!(
            q.sampled_attributes(),
            vec![Attribute::Light, Attribute::Temp]
        );
    }

    #[test]
    fn builder_builds_aggregation_query() {
        let q = Query::builder(QueryId(2))
            .select_agg(AggOp::Max, Attribute::Light)
            .epoch_ms(2048)
            .build()
            .unwrap();
        assert!(q.is_aggregation());
        assert_eq!(q.result_len(), 2);
    }

    #[test]
    fn mixed_selection_is_rejected() {
        let err = Query::builder(QueryId(3))
            .select_attr(Attribute::Light)
            .select_agg(AggOp::Max, Attribute::Light)
            .epoch_ms(2048)
            .build()
            .unwrap_err();
        assert_eq!(err, BuildQueryError::MixedSelection);
    }

    #[test]
    fn empty_selection_is_rejected() {
        let err = Query::builder(QueryId(4))
            .epoch_ms(2048)
            .build()
            .unwrap_err();
        assert_eq!(err, BuildQueryError::EmptySelection);
    }

    #[test]
    fn missing_epoch_is_rejected() {
        let err = Query::builder(QueryId(5))
            .select_attr(Attribute::Light)
            .build()
            .unwrap_err();
        assert!(matches!(err, BuildQueryError::InvalidEpoch(_)));
    }

    #[test]
    fn invalid_epoch_is_reported() {
        let err = Query::builder(QueryId(6))
            .select_attr(Attribute::Light)
            .epoch_ms(1000)
            .build()
            .unwrap_err();
        assert!(matches!(err, BuildQueryError::InvalidEpoch(_)));
    }

    #[test]
    fn unsatisfiable_predicates_rejected() {
        let err = Query::builder(QueryId(7))
            .select_attr(Attribute::Light)
            .filter(Attribute::Light, 0.0, 100.0)
            .filter(Attribute::Light, 200.0, 300.0)
            .epoch_ms(2048)
            .build()
            .unwrap_err();
        assert_eq!(err, BuildQueryError::UnsatisfiablePredicates);
    }

    #[test]
    fn invalid_predicate_reported_before_build() {
        let err = Query::builder(QueryId(8))
            .select_attr(Attribute::Light)
            .filter(Attribute::Light, 500.0, 100.0)
            .epoch_ms(2048)
            .build()
            .unwrap_err();
        assert!(matches!(err, BuildQueryError::InvalidPredicate(_)));
    }

    #[test]
    fn sampled_attributes_include_predicate_attrs() {
        let q = Query::builder(QueryId(9))
            .select_agg(AggOp::Max, Attribute::Light)
            .filter(Attribute::Temp, 0.0, 100.0)
            .epoch_ms(2048)
            .build()
            .unwrap();
        assert_eq!(
            q.sampled_attributes(),
            vec![Attribute::Light, Attribute::Temp]
        );
    }

    #[test]
    fn display_matches_paper_style() {
        let q = Query::builder(QueryId(1))
            .select_attr(Attribute::Light)
            .filter(Attribute::Light, 280.0, 600.0)
            .epoch_ms(2048)
            .build()
            .unwrap();
        assert_eq!(
            q.to_string(),
            "select light where 280 <= light <= 600 epoch duration 2048 ms"
        );
    }

    #[test]
    fn with_id_changes_only_id() {
        let q = Query::builder(QueryId(1))
            .select_attr(Attribute::Light)
            .epoch_ms(2048)
            .build()
            .unwrap();
        let q2 = q.with_id(QueryId(42));
        assert_eq!(q2.id(), QueryId(42));
        assert_eq!(q2.selection(), q.selection());
        assert_eq!(q2.epoch(), q.epoch());
    }
}
