//! Sensor attributes known to the (simulated) network.
//!
//! TinyDB exposes a virtual table `sensors` whose columns are the attributes
//! every mote can sample. The TTMQO paper's experiments use `nodeid`, `light`
//! and `temp`; we additionally model `humidity` and `voltage` so workloads can
//! exercise wider schemas.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A sensor attribute (a column of the virtual `sensors` table).
///
/// Each attribute has a fixed value domain, mirroring the calibrated ranges of
/// TinyDB-era motes. The domain is used for predicate normalization and for
/// uniform selectivity estimation.
///
/// # Examples
///
/// ```
/// use ttmqo_query::Attribute;
///
/// let a: Attribute = "light".parse().unwrap();
/// assert_eq!(a, Attribute::Light);
/// assert_eq!(a.domain(), (0.0, 1000.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Attribute {
    /// The unique node identifier (integer-valued).
    NodeId,
    /// Photosynthetically active light, raw ADC-style units in `[0, 1000]`.
    Light,
    /// Temperature in tenths of degrees Celsius, `[-400, 1000]`.
    Temp,
    /// Relative humidity in percent, `[0, 100]`.
    Humidity,
    /// Battery voltage in millivolts, `[1800, 3300]`.
    Voltage,
}

impl Attribute {
    /// All attributes, in canonical order.
    pub const ALL: [Attribute; 5] = [
        Attribute::NodeId,
        Attribute::Light,
        Attribute::Temp,
        Attribute::Humidity,
        Attribute::Voltage,
    ];

    /// The closed value domain `(min, max)` of this attribute.
    ///
    /// `NodeId`'s domain is `[0, 1023]`, large enough for every topology used
    /// in the experiments.
    pub fn domain(self) -> (f64, f64) {
        match self {
            Attribute::NodeId => (0.0, 1023.0),
            Attribute::Light => (0.0, 1000.0),
            Attribute::Temp => (-400.0, 1000.0),
            Attribute::Humidity => (0.0, 100.0),
            Attribute::Voltage => (1800.0, 3300.0),
        }
    }

    /// Width of the value domain (`max - min`).
    pub fn domain_width(self) -> f64 {
        let (lo, hi) = self.domain();
        hi - lo
    }

    /// Size, in bytes, a reading of this attribute occupies in a radio
    /// message (TinyDB packs 16-bit samples).
    pub fn wire_size(self) -> usize {
        2
    }

    /// The lowercase column name used by the parser and `Display`.
    pub fn name(self) -> &'static str {
        match self {
            Attribute::NodeId => "nodeid",
            Attribute::Light => "light",
            Attribute::Temp => "temp",
            Attribute::Humidity => "humidity",
            Attribute::Voltage => "voltage",
        }
    }
}

impl fmt::Display for Attribute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown attribute name.
///
/// ```
/// use ttmqo_query::Attribute;
/// assert!("pressure".parse::<Attribute>().is_err());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAttributeError {
    name: String,
}

impl ParseAttributeError {
    /// The offending attribute name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl fmt::Display for ParseAttributeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown sensor attribute `{}`", self.name)
    }
}

impl std::error::Error for ParseAttributeError {}

impl FromStr for Attribute {
    type Err = ParseAttributeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.trim().to_ascii_lowercase();
        Attribute::ALL
            .iter()
            .copied()
            .find(|a| a.name() == lower)
            .ok_or(ParseAttributeError { name: lower })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip_all_attributes() {
        for a in Attribute::ALL {
            let parsed: Attribute = a.name().parse().unwrap();
            assert_eq!(parsed, a);
            assert_eq!(format!("{a}"), a.name());
        }
    }

    #[test]
    fn parse_is_case_insensitive_and_trims() {
        assert_eq!(" LIGHT ".parse::<Attribute>().unwrap(), Attribute::Light);
        assert_eq!("Temp".parse::<Attribute>().unwrap(), Attribute::Temp);
    }

    #[test]
    fn unknown_attribute_is_an_error() {
        let err = "sound".parse::<Attribute>().unwrap_err();
        assert_eq!(err.name(), "sound");
        assert!(err.to_string().contains("sound"));
    }

    #[test]
    fn domains_are_nonempty() {
        for a in Attribute::ALL {
            let (lo, hi) = a.domain();
            assert!(lo < hi, "{a} has empty domain");
            assert!(a.domain_width() > 0.0);
        }
    }

    #[test]
    fn wire_size_is_two_bytes() {
        for a in Attribute::ALL {
            assert_eq!(a.wire_size(), 2);
        }
    }
}
