//! Range predicates and conjunctive predicate sets.
//!
//! The paper stores predicates as `⟨attribute, min, max⟩` triples; a query's
//! `WHERE` clause is the conjunction of its triples. A [`PredicateSet`] is the
//! normalized form: at most one closed range per attribute, with unconstrained
//! attributes simply absent.
//!
//! The set algebra here is what the base-station rewriter builds on:
//! [`PredicateSet::covers`] decides whether one query's qualifying rows are a
//! superset of another's, and [`PredicateSet::union_cover`] computes the
//! tightest conjunctive box whose rows cover the union of two boxes (widening
//! shared ranges and *dropping* attributes constrained on only one side —
//! keeping such a constraint would wrongly exclude the other query's rows).

use crate::attr::Attribute;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A closed range predicate `min <= attr <= max` on one attribute.
///
/// # Examples
///
/// ```
/// use ttmqo_query::{Attribute, Predicate};
///
/// let p = Predicate::new(Attribute::Light, 280.0, 600.0).unwrap();
/// assert!(p.matches(300.0));
/// assert!(!p.matches(601.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Predicate {
    attr: Attribute,
    min: f64,
    max: f64,
}

/// Error constructing a predicate whose bounds are invalid.
#[derive(Debug, Clone, PartialEq)]
pub struct InvalidPredicateError {
    attr: Attribute,
    min: f64,
    max: f64,
}

impl fmt::Display for InvalidPredicateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid predicate range [{}, {}] on `{}`",
            self.min, self.max, self.attr
        )
    }
}

impl std::error::Error for InvalidPredicateError {}

impl Predicate {
    /// Creates a predicate, clamping the range to the attribute's domain.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidPredicateError`] if `min > max`, either bound is not
    /// finite, or the range does not intersect the attribute domain.
    pub fn new(attr: Attribute, min: f64, max: f64) -> Result<Self, InvalidPredicateError> {
        if !(min.is_finite() && max.is_finite()) || min > max {
            return Err(InvalidPredicateError { attr, min, max });
        }
        let (lo, hi) = attr.domain();
        let cmin = min.max(lo);
        let cmax = max.min(hi);
        if cmin > cmax {
            return Err(InvalidPredicateError { attr, min, max });
        }
        Ok(Predicate {
            attr,
            min: cmin,
            max: cmax,
        })
    }

    /// The full-domain (always-true) predicate for `attr`.
    pub fn full(attr: Attribute) -> Self {
        let (lo, hi) = attr.domain();
        Predicate {
            attr,
            min: lo,
            max: hi,
        }
    }

    /// The constrained attribute.
    pub fn attr(&self) -> Attribute {
        self.attr
    }

    /// Lower bound (inclusive).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Upper bound (inclusive).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Whether a reading satisfies this predicate.
    pub fn matches(&self, value: f64) -> bool {
        value >= self.min && value <= self.max
    }

    /// Whether this predicate's qualifying values are a superset of `other`'s.
    ///
    /// Only meaningful when both constrain the same attribute.
    pub fn contains(&self, other: &Predicate) -> bool {
        self.attr == other.attr && self.min <= other.min && self.max >= other.max
    }

    /// Fraction of the attribute domain this range covers, assuming a uniform
    /// distribution (the estimator the paper's experiments use).
    pub fn uniform_selectivity(&self) -> f64 {
        let width = self.attr.domain_width();
        if width == 0.0 {
            1.0
        } else {
            ((self.max - self.min) / width).clamp(0.0, 1.0)
        }
    }

    /// Whether this predicate spans the attribute's whole domain.
    pub fn is_full(&self) -> bool {
        let (lo, hi) = self.attr.domain();
        self.min <= lo && self.max >= hi
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} <= {} <= {}", self.min, self.attr, self.max)
    }
}

/// A normalized conjunction of range predicates: at most one range per
/// attribute; absent attributes are unconstrained.
///
/// # Examples
///
/// ```
/// use ttmqo_query::{Attribute, Predicate, PredicateSet};
///
/// let mut ps = PredicateSet::new();
/// ps.and(Predicate::new(Attribute::Light, 100.0, 300.0).unwrap());
/// ps.and(Predicate::new(Attribute::Light, 200.0, 500.0).unwrap());
/// // Conjunction on the same attribute intersects the ranges.
/// let r = ps.range(Attribute::Light).unwrap();
/// assert_eq!((r.min(), r.max()), (200.0, 300.0));
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PredicateSet {
    ranges: BTreeMap<Attribute, (f64, f64)>,
}

impl PredicateSet {
    /// The empty (always-true) predicate set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a set from a list of predicates, intersecting duplicates.
    pub fn from_predicates<I: IntoIterator<Item = Predicate>>(preds: I) -> Self {
        let mut set = Self::new();
        for p in preds {
            set.and(p);
        }
        set
    }

    /// Conjoins one more predicate (intersecting with any existing range on
    /// the same attribute). The resulting range may be empty, in which case
    /// the set is unsatisfiable ([`is_unsatisfiable`](Self::is_unsatisfiable)).
    pub fn and(&mut self, p: Predicate) {
        let entry = self.ranges.entry(p.attr()).or_insert_with(|| {
            let (lo, hi) = p.attr().domain();
            (lo, hi)
        });
        entry.0 = entry.0.max(p.min());
        entry.1 = entry.1.min(p.max());
    }

    /// The range constraining `attr`, if any. Full-domain ranges are reported
    /// too if they were explicitly added.
    pub fn range(&self, attr: Attribute) -> Option<Predicate> {
        self.ranges
            .get(&attr)
            .and_then(|&(min, max)| Predicate::new(attr, min, max).ok())
    }

    /// The effective range of `attr`: the stored range, or the full domain.
    pub fn effective_range(&self, attr: Attribute) -> Predicate {
        self.range(attr).unwrap_or_else(|| Predicate::full(attr))
    }

    /// Attributes explicitly constrained by this set.
    pub fn attrs(&self) -> impl Iterator<Item = Attribute> + '_ {
        self.ranges.keys().copied()
    }

    /// Iterates the normalized predicates.
    pub fn iter(&self) -> impl Iterator<Item = Predicate> + '_ {
        self.ranges
            .iter()
            .map(|(&attr, &(min, max))| Predicate { attr, min, max })
    }

    /// Number of constrained attributes.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// Whether no attribute is constrained (the set accepts every row).
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Whether some range became empty (`min > max`) so no row can qualify.
    pub fn is_unsatisfiable(&self) -> bool {
        self.ranges.values().any(|&(min, max)| min > max)
    }

    /// Whether a full row of readings satisfies every predicate.
    ///
    /// `lookup` maps an attribute to the reading's value for it.
    pub fn matches_with<F: Fn(Attribute) -> f64>(&self, lookup: F) -> bool {
        self.ranges.iter().all(|(&attr, &(min, max))| {
            let v = lookup(attr);
            v >= min && v <= max
        })
    }

    /// Whether the rows qualifying under `self` are a superset of those
    /// qualifying under `other`.
    ///
    /// For conjunctive boxes this holds iff every attribute `self` constrains
    /// is also constrained by `other` to a sub-range.
    pub fn covers(&self, other: &PredicateSet) -> bool {
        self.ranges.iter().all(|(&attr, &(min, max))| {
            match other.ranges.get(&attr) {
                Some(&(omin, omax)) => min <= omin && max >= omax,
                // `other` leaves attr unconstrained; we only cover it if our
                // range is the whole domain.
                None => {
                    let (lo, hi) = attr.domain();
                    min <= lo && max >= hi
                }
            }
        })
    }

    /// Whether the two sets qualify exactly the same rows.
    pub fn equivalent(&self, other: &PredicateSet) -> bool {
        self.covers(other) && other.covers(self)
    }

    /// The tightest conjunctive box whose qualifying rows include every row
    /// qualifying under `self` *or* `other`.
    ///
    /// Attributes constrained by both sets get the widened range; attributes
    /// constrained by only one side must be dropped (otherwise rows from the
    /// unconstrained side would be excluded).
    pub fn union_cover(&self, other: &PredicateSet) -> PredicateSet {
        let mut ranges = BTreeMap::new();
        for (&attr, &(min, max)) in &self.ranges {
            if let Some(&(omin, omax)) = other.ranges.get(&attr) {
                ranges.insert(attr, (min.min(omin), max.max(omax)));
            }
        }
        PredicateSet { ranges }.normalized()
    }

    /// Uniform-distribution selectivity: product of per-attribute range
    /// fractions (attribute independence, as the paper assumes).
    pub fn uniform_selectivity(&self) -> f64 {
        self.iter().map(|p| p.uniform_selectivity()).product()
    }

    /// Drops explicit full-domain ranges (they do not filter anything).
    fn normalized(mut self) -> Self {
        self.ranges.retain(|attr, &mut (min, max)| {
            let (lo, hi) = attr.domain();
            !(min <= lo && max >= hi)
        });
        self
    }

    /// Returns a copy with explicit full-domain ranges removed.
    pub fn normalize(&self) -> Self {
        self.clone().normalized()
    }
}

impl FromIterator<Predicate> for PredicateSet {
    fn from_iter<I: IntoIterator<Item = Predicate>>(iter: I) -> Self {
        Self::from_predicates(iter)
    }
}

impl Extend<Predicate> for PredicateSet {
    fn extend<I: IntoIterator<Item = Predicate>>(&mut self, iter: I) {
        for p in iter {
            self.and(p);
        }
    }
}

impl fmt::Display for PredicateSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.ranges.is_empty() {
            return f.write_str("true");
        }
        let mut first = true;
        for p in self.iter() {
            if !first {
                f.write_str(" and ")?;
            }
            write!(f, "{p}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn light(min: f64, max: f64) -> Predicate {
        Predicate::new(Attribute::Light, min, max).unwrap()
    }

    #[test]
    fn new_clamps_to_domain() {
        let p = light(-50.0, 2000.0);
        assert_eq!((p.min(), p.max()), (0.0, 1000.0));
        assert!(p.is_full());
    }

    #[test]
    fn new_rejects_inverted_and_nonfinite() {
        assert!(Predicate::new(Attribute::Light, 5.0, 1.0).is_err());
        assert!(Predicate::new(Attribute::Light, f64::NAN, 1.0).is_err());
        assert!(Predicate::new(Attribute::Light, 0.0, f64::INFINITY).is_err());
        // Entirely outside the domain.
        assert!(Predicate::new(Attribute::Light, 2000.0, 3000.0).is_err());
    }

    #[test]
    fn matches_is_inclusive() {
        let p = light(100.0, 300.0);
        assert!(p.matches(100.0));
        assert!(p.matches(300.0));
        assert!(!p.matches(99.9));
        assert!(!p.matches(300.1));
    }

    #[test]
    fn contains_requires_same_attr() {
        let p = light(100.0, 300.0);
        let q = Predicate::new(Attribute::Temp, 150.0, 200.0).unwrap();
        assert!(!p.contains(&q));
        assert!(p.contains(&light(150.0, 200.0)));
        assert!(!p.contains(&light(50.0, 200.0)));
    }

    #[test]
    fn uniform_selectivity_is_range_fraction() {
        assert!((light(0.0, 500.0).uniform_selectivity() - 0.5).abs() < 1e-12);
        assert_eq!(Predicate::full(Attribute::Light).uniform_selectivity(), 1.0);
    }

    #[test]
    fn set_conjunction_intersects_same_attribute() {
        let mut ps = PredicateSet::new();
        ps.and(light(100.0, 300.0));
        ps.and(light(200.0, 500.0));
        let r = ps.range(Attribute::Light).unwrap();
        assert_eq!((r.min(), r.max()), (200.0, 300.0));
        assert!(!ps.is_unsatisfiable());
    }

    #[test]
    fn disjoint_conjunction_is_unsatisfiable() {
        let mut ps = PredicateSet::new();
        ps.and(light(100.0, 200.0));
        ps.and(light(300.0, 400.0));
        assert!(ps.is_unsatisfiable());
    }

    #[test]
    fn empty_set_matches_everything_and_covers_all() {
        let empty = PredicateSet::new();
        assert!(empty.matches_with(|_| 12345.0));
        let mut narrow = PredicateSet::new();
        narrow.and(light(1.0, 2.0));
        assert!(empty.covers(&narrow));
        assert!(!narrow.covers(&empty));
        assert_eq!(empty.uniform_selectivity(), 1.0);
    }

    #[test]
    fn covers_handles_unconstrained_attributes() {
        let mut a = PredicateSet::new();
        a.and(light(0.0, 1000.0)); // full domain, explicitly
        let b = PredicateSet::new();
        assert!(
            a.covers(&b),
            "full-domain explicit range covers unconstrained"
        );
    }

    #[test]
    fn union_cover_widens_shared_and_drops_one_sided() {
        let mut a = PredicateSet::new();
        a.and(light(280.0, 600.0));
        a.and(Predicate::new(Attribute::Temp, 0.0, 100.0).unwrap());
        let mut b = PredicateSet::new();
        b.and(light(100.0, 300.0));

        let u = a.union_cover(&b);
        let r = u.range(Attribute::Light).unwrap();
        assert_eq!((r.min(), r.max()), (100.0, 600.0));
        // Temp constrained only by `a`, so it must be dropped.
        assert!(u.range(Attribute::Temp).is_none());
        assert!(u.covers(&a));
        assert!(u.covers(&b));
    }

    #[test]
    fn union_cover_with_empty_is_empty() {
        let mut a = PredicateSet::new();
        a.and(light(280.0, 600.0));
        let u = a.union_cover(&PredicateSet::new());
        assert!(u.is_empty());
        assert!(u.covers(&a));
    }

    #[test]
    fn matches_with_checks_all_attrs() {
        let mut ps = PredicateSet::new();
        ps.and(light(100.0, 300.0));
        ps.and(Predicate::new(Attribute::Temp, 0.0, 50.0).unwrap());
        let vals = |attr: Attribute| match attr {
            Attribute::Light => 150.0,
            Attribute::Temp => 25.0,
            _ => 0.0,
        };
        assert!(ps.matches_with(vals));
        let bad = |attr: Attribute| match attr {
            Attribute::Light => 150.0,
            Attribute::Temp => 99.0,
            _ => 0.0,
        };
        assert!(!ps.matches_with(bad));
    }

    #[test]
    fn display_forms() {
        assert_eq!(PredicateSet::new().to_string(), "true");
        let mut ps = PredicateSet::new();
        ps.and(light(1.0, 2.0));
        assert_eq!(ps.to_string(), "1 <= light <= 2");
    }

    #[test]
    fn equivalent_ignores_explicit_full_ranges() {
        let mut a = PredicateSet::new();
        a.and(Predicate::full(Attribute::Light));
        let b = PredicateSet::new();
        assert!(a.equivalent(&b));
    }
}
