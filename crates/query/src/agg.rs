//! Aggregation operators and decomposable partial aggregates.
//!
//! TinyDB computes aggregates in-network by combining *partial state records*
//! as messages flow up the routing tree (the TAG scheme). Every operator here
//! is decomposable: `merge(partial(a), partial(b)) == partial(a ∪ b)`, which
//! is exactly the property both the baseline and the TTMQO in-network tier
//! rely on.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// An aggregation operator over a single attribute.
///
/// # Examples
///
/// ```
/// use ttmqo_query::AggOp;
///
/// let op: AggOp = "max".parse().unwrap();
/// assert_eq!(op, AggOp::Max);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AggOp {
    /// Minimum value.
    Min,
    /// Maximum value.
    Max,
    /// Sum of values.
    Sum,
    /// Number of qualifying readings.
    Count,
    /// Arithmetic mean (carried as sum + count partials).
    Avg,
}

impl AggOp {
    /// All operators, in canonical order.
    pub const ALL: [AggOp; 5] = [AggOp::Min, AggOp::Max, AggOp::Sum, AggOp::Count, AggOp::Avg];

    /// The lowercase keyword used by the parser and `Display`.
    pub fn name(self) -> &'static str {
        match self {
            AggOp::Min => "min",
            AggOp::Max => "max",
            AggOp::Sum => "sum",
            AggOp::Count => "count",
            AggOp::Avg => "avg",
        }
    }

    /// Fresh partial state for this operator containing a single reading.
    pub fn seed(self, value: f64) -> PartialAgg {
        match self {
            AggOp::Min => PartialAgg::Min(value),
            AggOp::Max => PartialAgg::Max(value),
            AggOp::Sum => PartialAgg::Sum(value),
            AggOp::Count => PartialAgg::Count(1),
            AggOp::Avg => PartialAgg::Avg {
                sum: value,
                count: 1,
            },
        }
    }

    /// Size, in bytes, a partial state record of this operator occupies in a
    /// radio message (`Avg` carries sum and count).
    pub fn wire_size(self) -> usize {
        match self {
            AggOp::Avg => 4,
            _ => 2,
        }
    }
}

impl fmt::Display for AggOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown aggregation operator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAggOpError {
    name: String,
}

impl ParseAggOpError {
    /// The offending operator name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl fmt::Display for ParseAggOpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown aggregation operator `{}`", self.name)
    }
}

impl std::error::Error for ParseAggOpError {}

impl FromStr for AggOp {
    type Err = ParseAggOpError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.trim().to_ascii_lowercase();
        AggOp::ALL
            .iter()
            .copied()
            .find(|o| o.name() == lower)
            .ok_or(ParseAggOpError { name: lower })
    }
}

/// Decomposable partial aggregation state.
///
/// Two partials produced by the same [`AggOp`] can be [`merged`](PartialAgg::merge);
/// [`finalize`](PartialAgg::finalize) turns the state into the user-visible value.
///
/// # Examples
///
/// ```
/// use ttmqo_query::{AggOp, PartialAgg};
///
/// let mut p = AggOp::Avg.seed(10.0);
/// p.merge(&AggOp::Avg.seed(20.0)).unwrap();
/// assert_eq!(p.finalize(), 15.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PartialAgg {
    /// Running minimum.
    Min(f64),
    /// Running maximum.
    Max(f64),
    /// Running sum.
    Sum(f64),
    /// Running count.
    Count(u64),
    /// Running sum and count for the mean.
    Avg {
        /// Sum of all readings folded so far.
        sum: f64,
        /// Number of readings folded so far.
        count: u64,
    },
}

/// Error merging two partials produced by different operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergePartialError;

impl fmt::Display for MergePartialError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("cannot merge partial aggregates of different operators")
    }
}

impl std::error::Error for MergePartialError {}

impl PartialAgg {
    /// The operator that produced this partial.
    pub fn op(&self) -> AggOp {
        match self {
            PartialAgg::Min(_) => AggOp::Min,
            PartialAgg::Max(_) => AggOp::Max,
            PartialAgg::Sum(_) => AggOp::Sum,
            PartialAgg::Count(_) => AggOp::Count,
            PartialAgg::Avg { .. } => AggOp::Avg,
        }
    }

    /// Fold another partial of the same operator into this one.
    ///
    /// # Errors
    ///
    /// Returns [`MergePartialError`] if the operators differ.
    pub fn merge(&mut self, other: &PartialAgg) -> Result<(), MergePartialError> {
        match (self, other) {
            (PartialAgg::Min(a), PartialAgg::Min(b)) => *a = a.min(*b),
            (PartialAgg::Max(a), PartialAgg::Max(b)) => *a = a.max(*b),
            (PartialAgg::Sum(a), PartialAgg::Sum(b)) => *a += *b,
            (PartialAgg::Count(a), PartialAgg::Count(b)) => *a += *b,
            (PartialAgg::Avg { sum: s1, count: c1 }, PartialAgg::Avg { sum: s2, count: c2 }) => {
                *s1 += *s2;
                *c1 += *c2;
            }
            _ => return Err(MergePartialError),
        }
        Ok(())
    }

    /// The user-visible aggregate value.
    ///
    /// An `Avg` over zero readings finalizes to `NaN`; callers suppress empty
    /// aggregates before finalizing, matching TinyDB's behaviour of emitting
    /// no row for an epoch with no qualifying readings.
    pub fn finalize(&self) -> f64 {
        match self {
            PartialAgg::Min(v) | PartialAgg::Max(v) | PartialAgg::Sum(v) => *v,
            PartialAgg::Count(c) => *c as f64,
            PartialAgg::Avg { sum, count } => {
                if *count == 0 {
                    f64::NAN
                } else {
                    sum / *count as f64
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip_all_ops() {
        for op in AggOp::ALL {
            assert_eq!(op.name().parse::<AggOp>().unwrap(), op);
        }
        assert!("median".parse::<AggOp>().is_err());
    }

    #[test]
    fn seed_then_finalize_is_identity_for_value_ops() {
        for op in [AggOp::Min, AggOp::Max, AggOp::Sum, AggOp::Avg] {
            assert_eq!(op.seed(42.0).finalize(), 42.0, "{op}");
        }
        assert_eq!(AggOp::Count.seed(42.0).finalize(), 1.0);
    }

    #[test]
    fn merge_semantics_per_operator() {
        let mut min = AggOp::Min.seed(5.0);
        min.merge(&AggOp::Min.seed(3.0)).unwrap();
        assert_eq!(min.finalize(), 3.0);

        let mut max = AggOp::Max.seed(5.0);
        max.merge(&AggOp::Max.seed(9.0)).unwrap();
        assert_eq!(max.finalize(), 9.0);

        let mut sum = AggOp::Sum.seed(5.0);
        sum.merge(&AggOp::Sum.seed(9.0)).unwrap();
        assert_eq!(sum.finalize(), 14.0);

        let mut count = AggOp::Count.seed(5.0);
        count.merge(&AggOp::Count.seed(9.0)).unwrap();
        assert_eq!(count.finalize(), 2.0);
    }

    #[test]
    fn merge_mismatched_ops_fails() {
        let mut min = AggOp::Min.seed(1.0);
        let err = min.merge(&AggOp::Max.seed(1.0)).unwrap_err();
        assert_eq!(err, MergePartialError);
    }

    #[test]
    fn merge_is_associative_and_commutative_for_avg() {
        let a = AggOp::Avg.seed(1.0);
        let b = AggOp::Avg.seed(2.0);
        let c = AggOp::Avg.seed(6.0);

        let mut ab_c = a;
        ab_c.merge(&b).unwrap();
        ab_c.merge(&c).unwrap();

        let mut a_bc = b;
        a_bc.merge(&c).unwrap();
        a_bc.merge(&a).unwrap();

        assert_eq!(ab_c.finalize(), 3.0);
        assert_eq!(a_bc.finalize(), 3.0);
    }

    #[test]
    fn op_accessor_matches_seed() {
        for op in AggOp::ALL {
            assert_eq!(op.seed(0.0).op(), op);
        }
    }

    #[test]
    fn empty_avg_is_nan() {
        let avg = PartialAgg::Avg { sum: 0.0, count: 0 };
        assert!(avg.finalize().is_nan());
    }
}
