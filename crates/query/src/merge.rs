//! Query rewrite algebra: coverage tests and semantically-correct integration.
//!
//! The base-station tier (§3.1) rewrites user queries into synthetic queries.
//! This module implements the *semantic* half of that rewriting — which
//! integrations are correct at all, and what the merged query looks like —
//! leaving the *cost-based* half (whether the merge is beneficial) to the
//! optimizer in `ttmqo-core`.
//!
//! Correctness rules (§3.1.2):
//!
//! * **aggregation + aggregation** — only integrable when the two queries have
//!   equivalent predicates; the merged query is an aggregation query over the
//!   union of the aggregate lists and the GCD epoch.
//! * **acquisition + anything** — the merged query is an acquisition query;
//!   attributes are the union of what each member needs (its selected or
//!   aggregated attributes, plus any predicate attribute the member must be
//!   re-filtered on at the base station), predicates are the covering union
//!   box, and the epoch is the GCD.
//!
//! A merged query always requests a *superset* of the data its members need,
//! so the base station can reconstruct every member's exact answer by
//! re-filtering, projecting, aggregating and epoch-aligning (`ttmqo-core`'s
//! result mapper).

use crate::attr::Attribute;
use crate::query::{Query, QueryId, Selection};
use crate::region::Region;

/// Whether `outer`'s result stream contains all data needed to answer `inner`
/// exactly at the base station.
///
/// Requires:
/// 1. `outer.epoch` divides `inner.epoch` (aligned schedules: every firing of
///    `inner` coincides with a firing of `outer`);
/// 2. `outer`'s predicates qualify a superset of `inner`'s rows;
/// 3. `outer` carries the values `inner` needs: for an acquisition `outer`,
///    its attribute list must include `inner`'s needed attributes (selected or
///    aggregated attributes plus re-filtering attributes); an aggregation
///    `outer` can only cover an aggregation `inner` with *equivalent*
///    predicates and a superset aggregate list.
///
/// # Examples
///
/// ```
/// use ttmqo_query::{covers_query, parse_query, QueryId};
///
/// let broad = parse_query(QueryId(1), "select light where 100 <= light <= 600 epoch duration 2048")?;
/// let narrow = parse_query(QueryId(2), "select light where 200 <= light <= 500 epoch duration 4096")?;
/// assert!(covers_query(&broad, &narrow));
/// assert!(!covers_query(&narrow, &broad));
/// # Ok::<(), ttmqo_query::ParseQueryError>(())
/// ```
pub fn covers_query(outer: &Query, inner: &Query) -> bool {
    if !outer.epoch().divides(inner.epoch()) {
        return false;
    }
    if !outer.predicates().covers(inner.predicates()) {
        return false;
    }
    if !Region::covers_opt(outer.region(), inner.region()) {
        return false;
    }
    match (outer.selection(), inner.selection()) {
        (Selection::Attributes(outer_attrs), _) => needed_attributes(inner, outer)
            .iter()
            .all(|a| outer_attrs.contains(a)),
        (Selection::Aggregates(outer_aggs), Selection::Aggregates(inner_aggs)) => {
            outer.predicates().equivalent(inner.predicates())
                && inner_aggs.iter().all(|p| outer_aggs.contains(p))
        }
        // An aggregation stream can never answer an acquisition query.
        (Selection::Aggregates(_), Selection::Attributes(_)) => false,
    }
}

/// The attributes an acquisition-style carrier must include so the base
/// station can answer `member` exactly.
///
/// That is `member`'s selected (or aggregated) attributes, plus every
/// predicate attribute on which the carrier's predicates are strictly wider
/// than `member`'s (those rows must be re-filtered, which requires the value
/// to travel with the row).
pub fn needed_attributes(member: &Query, carrier: &Query) -> Vec<Attribute> {
    let mut attrs = member.selection().sampled_attributes();
    for p in member.predicates().iter() {
        let carrier_range = carrier.predicates().effective_range(p.attr());
        let member_range = member.predicates().effective_range(p.attr());
        let identical =
            carrier_range.min() == member_range.min() && carrier_range.max() == member_range.max();
        if !identical {
            attrs.push(p.attr());
        }
    }
    attrs.sort_unstable();
    attrs.dedup();
    attrs
}

/// Whether the two queries may be integrated at all under the paper's
/// semantic-correctness constraints (ignoring cost).
pub fn can_integrate(a: &Query, b: &Query) -> bool {
    match (a.selection(), b.selection()) {
        (Selection::Aggregates(_), Selection::Aggregates(_)) => {
            // §3.1.2: aggregation pairs need identical qualifying row sets —
            // equivalent predicates *and* the same spatial restriction.
            a.predicates().equivalent(b.predicates()) && a.region() == b.region()
        }
        _ => true,
    }
}

/// Integrates two queries into one covering both, or `None` when no
/// semantically correct integration exists.
///
/// The merged query gets id `id`; its epoch is the GCD of the members'
/// epochs; its predicates the covering union box; its selection per the rules
/// in the module docs. The result is guaranteed to [`covers_query`] both
/// inputs.
///
/// # Examples
///
/// ```
/// use ttmqo_query::{integrate, covers_query, parse_query, QueryId};
///
/// let q2 = parse_query(QueryId(2), "select light where 100<light<300 epoch duration 4096")?;
/// let q3 = parse_query(QueryId(3), "select light where 150<light<500 epoch duration 4096")?;
/// let merged = integrate(QueryId(100), &q2, &q3).unwrap();
/// assert!(covers_query(&merged, &q2));
/// assert!(covers_query(&merged, &q3));
/// assert_eq!(merged.epoch().as_ms(), 4096);
/// # Ok::<(), ttmqo_query::ParseQueryError>(())
/// ```
pub fn integrate(id: QueryId, a: &Query, b: &Query) -> Option<Query> {
    if !can_integrate(a, b) {
        return None;
    }
    let epoch = a.epoch().gcd(b.epoch());
    let predicates = a.predicates().union_cover(b.predicates());

    let selection = match (a.selection(), b.selection()) {
        (Selection::Aggregates(aggs_a), Selection::Aggregates(aggs_b)) => {
            Selection::aggregates(aggs_a.iter().chain(aggs_b.iter()).copied())
        }
        _ => {
            // Acquisition carrier. Build a probe carrier to compute the
            // attribute set each member needs for re-filtering.
            let probe = Query::from_parts(
                id,
                Selection::attributes([Attribute::NodeId]),
                predicates.clone(),
                epoch,
            )
            .ok()?;
            let mut attrs = needed_attributes(a, &probe);
            attrs.extend(needed_attributes(b, &probe));
            Selection::attributes(attrs)
        }
    };

    let merged = Query::from_parts(id, selection, predicates, epoch).ok()?;
    Ok::<_, ()>(
        match Region::union_opt(a.region().copied(), b.region().copied()) {
            Some(r) => merged.with_region(r),
            None => merged,
        },
    )
    .ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggOp;
    use crate::parser::parse_query;

    fn q(id: u64, text: &str) -> Query {
        parse_query(QueryId(id), text).unwrap()
    }

    #[test]
    fn acquisition_merge_covers_both_members() {
        let a = q(1, "select light where 280<light<600 epoch duration 2048");
        let b = q(2, "select light where 100<light<300 epoch duration 4096");
        let m = integrate(QueryId(10), &a, &b).unwrap();
        assert!(covers_query(&m, &a));
        assert!(covers_query(&m, &b));
        assert_eq!(m.epoch().as_ms(), 2048);
        let r = m.predicates().range(Attribute::Light).unwrap();
        assert_eq!((r.min(), r.max()), (101.0, 599.0));
    }

    #[test]
    fn aggregation_pair_requires_equivalent_predicates() {
        let a = q(1, "select max(light) where 0<=temp<=50 epoch duration 2048");
        let b = q(2, "select min(light) where 0<=temp<=50 epoch duration 4096");
        let c = q(3, "select min(light) where 0<=temp<=60 epoch duration 4096");
        assert!(can_integrate(&a, &b));
        assert!(!can_integrate(&a, &c));
        assert!(integrate(QueryId(10), &a, &c).is_none());

        let m = integrate(QueryId(10), &a, &b).unwrap();
        assert!(m.is_aggregation());
        assert!(covers_query(&m, &a));
        assert!(covers_query(&m, &b));
        assert_eq!(
            m.selection(),
            &Selection::aggregates([
                (AggOp::Min, Attribute::Light),
                (AggOp::Max, Attribute::Light)
            ])
        );
    }

    #[test]
    fn aggregation_folds_into_acquisition() {
        let acq = q(1, "select light, temp epoch duration 2048");
        let agg = q(2, "select max(light) epoch duration 4096");
        let m = integrate(QueryId(10), &acq, &agg).unwrap();
        assert!(m.is_acquisition());
        assert!(covers_query(&m, &acq));
        assert!(covers_query(&m, &agg));
    }

    #[test]
    fn refilter_attribute_is_added_to_carrier() {
        // b selects only light but filters on temp; merging with a (different
        // temp range) forces temp into the carrier's attribute list so the
        // base station can re-filter b's rows.
        let a = q(1, "select light epoch duration 2048");
        let b = q(2, "select light where 0<=temp<=50 epoch duration 2048");
        let m = integrate(QueryId(10), &a, &b).unwrap();
        match m.selection() {
            Selection::Attributes(attrs) => {
                assert!(attrs.contains(&Attribute::Temp), "carrier must carry temp");
                assert!(attrs.contains(&Attribute::Light));
            }
            _ => panic!("expected acquisition"),
        }
        assert!(covers_query(&m, &b));
    }

    #[test]
    fn coverage_requires_epoch_divisibility() {
        let outer = q(1, "select light epoch duration 4096");
        let inner = q(2, "select light epoch duration 6144");
        // 4096 does not divide 6144: the 6144-query fires at t=6144 where the
        // 4096-query produces nothing.
        assert!(!covers_query(&outer, &inner));
        let outer2 = q(3, "select light epoch duration 2048");
        assert!(covers_query(&outer2, &inner));
    }

    #[test]
    fn coverage_requires_predicate_superset() {
        let outer = q(1, "select light where 200<=light<=400 epoch duration 2048");
        let inner = q(2, "select light where 100<=light<=300 epoch duration 4096");
        assert!(!covers_query(&outer, &inner));
    }

    #[test]
    fn aggregation_stream_cannot_cover_acquisition() {
        let outer = q(1, "select max(light) epoch duration 2048");
        let inner = q(2, "select light epoch duration 4096");
        assert!(!covers_query(&outer, &inner));
    }

    #[test]
    fn aggregation_coverage_requires_equivalent_predicates() {
        let outer = q(
            1,
            "select max(light) where 0<=light<=600 epoch duration 2048",
        );
        let inner = q(
            2,
            "select max(light) where 0<=light<=300 epoch duration 4096",
        );
        // outer's rows are a superset but MAX over the superset is wrong for inner.
        assert!(!covers_query(&outer, &inner));
    }

    #[test]
    fn integrate_is_symmetric_in_coverage() {
        let a = q(1, "select light where 100<light<300 epoch duration 4096");
        let b = q(2, "select temp where 0<=temp<=50 epoch duration 6144");
        let m1 = integrate(QueryId(10), &a, &b).unwrap();
        let m2 = integrate(QueryId(11), &b, &a).unwrap();
        for m in [&m1, &m2] {
            assert!(covers_query(m, &a));
            assert!(covers_query(m, &b));
        }
        assert_eq!(m1.epoch(), m2.epoch());
        assert!(m1.predicates().equivalent(m2.predicates()));
    }

    #[test]
    fn self_integration_covers_self() {
        let a = q(1, "select light where 100<light<300 epoch duration 4096");
        let m = integrate(QueryId(10), &a, &a).unwrap();
        assert!(covers_query(&m, &a));
        assert_eq!(m.epoch(), a.epoch());
    }
}
