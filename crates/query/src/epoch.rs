//! Epoch durations — the sampling-period dimension of sensor queries.
//!
//! TinyDB queries carry an `EPOCH DURATION` clause giving the period, in
//! milliseconds, at which the network must produce a result. The paper fixes
//! the smallest allowed epoch at 2048 ms and assumes every epoch duration is a
//! multiple of it (§3.2.1); the in-network tier fires node clocks at the GCD
//! of all running epochs.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The smallest allowed epoch duration, in milliseconds (§3.2.1).
pub const BASE_EPOCH_MS: u64 = 2048;

/// A validated epoch duration: a positive multiple of [`BASE_EPOCH_MS`].
///
/// # Examples
///
/// ```
/// use ttmqo_query::EpochDuration;
///
/// let e = EpochDuration::from_ms(4096)?;
/// assert_eq!(e.as_ms(), 4096);
/// assert!(EpochDuration::from_ms(3000).is_err());
/// # Ok::<(), ttmqo_query::InvalidEpochError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EpochDuration(u64);

/// Error constructing an epoch duration that is zero or not a multiple of
/// [`BASE_EPOCH_MS`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidEpochError {
    ms: u64,
}

impl InvalidEpochError {
    /// The rejected duration in milliseconds.
    pub fn ms(&self) -> u64 {
        self.ms
    }
}

impl fmt::Display for InvalidEpochError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid epoch duration {} ms (must be a positive multiple of {} ms)",
            self.ms, BASE_EPOCH_MS
        )
    }
}

impl std::error::Error for InvalidEpochError {}

impl EpochDuration {
    /// The smallest allowed epoch.
    pub const BASE: EpochDuration = EpochDuration(BASE_EPOCH_MS);

    /// Creates an epoch duration from milliseconds.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidEpochError`] if `ms` is zero or not a multiple of
    /// [`BASE_EPOCH_MS`].
    pub fn from_ms(ms: u64) -> Result<Self, InvalidEpochError> {
        if ms == 0 || !ms.is_multiple_of(BASE_EPOCH_MS) {
            Err(InvalidEpochError { ms })
        } else {
            Ok(EpochDuration(ms))
        }
    }

    /// Creates an epoch lasting `n` base epochs.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn from_base_multiples(n: u64) -> Self {
        assert!(n > 0, "epoch must span at least one base epoch");
        EpochDuration(n * BASE_EPOCH_MS)
    }

    /// Duration in milliseconds.
    pub fn as_ms(self) -> u64 {
        self.0
    }

    /// Whether `self` divides `other` exactly — i.e. every firing of `other`
    /// coincides with a firing of `self` on the aligned schedule.
    pub fn divides(self, other: EpochDuration) -> bool {
        other.0.is_multiple_of(self.0)
    }

    /// Greatest common divisor of two epochs. Because both are multiples of
    /// the base epoch, the result is too.
    pub fn gcd(self, other: EpochDuration) -> EpochDuration {
        EpochDuration(gcd_u64(self.0, other.0))
    }

    /// GCD over any non-empty collection of epochs.
    ///
    /// Returns `None` for an empty iterator.
    pub fn gcd_all<I: IntoIterator<Item = EpochDuration>>(epochs: I) -> Option<EpochDuration> {
        epochs.into_iter().reduce(|a, b| a.gcd(b))
    }

    /// Whether a clock aligned at multiples of this epoch fires at time `t_ms`.
    ///
    /// The in-network tier aligns every query's epoch start so that firing
    /// times are exactly the multiples of its duration (§3.2.1).
    pub fn fires_at(self, t_ms: u64) -> bool {
        t_ms.is_multiple_of(self.0)
    }

    /// The first aligned firing time at or after `t_ms`.
    pub fn next_fire_at(self, t_ms: u64) -> u64 {
        t_ms.div_ceil(self.0) * self.0
    }
}

impl fmt::Display for EpochDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ms", self.0)
    }
}

/// Binary GCD on raw u64 values.
pub fn gcd_u64(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_ms_validates() {
        assert!(EpochDuration::from_ms(0).is_err());
        assert!(EpochDuration::from_ms(1000).is_err());
        assert_eq!(EpochDuration::from_ms(2048).unwrap(), EpochDuration::BASE);
        assert_eq!(EpochDuration::from_ms(6144).unwrap().as_ms(), 6144);
        let err = EpochDuration::from_ms(3000).unwrap_err();
        assert_eq!(err.ms(), 3000);
    }

    #[test]
    fn from_base_multiples_scales() {
        assert_eq!(EpochDuration::from_base_multiples(3).as_ms(), 3 * 2048);
    }

    #[test]
    #[should_panic(expected = "at least one base epoch")]
    fn zero_multiples_panics() {
        let _ = EpochDuration::from_base_multiples(0);
    }

    #[test]
    fn divides_matches_paper_examples() {
        let e2048 = EpochDuration::from_ms(2048).unwrap();
        let e4096 = EpochDuration::from_ms(4096).unwrap();
        let e6144 = EpochDuration::from_ms(6144).unwrap();
        // 2048 divides 4096 (mergeable case from §3.2.1)...
        assert!(e2048.divides(e4096));
        // ...but 4096 does not divide 6144 (the sharing-over-time case).
        assert!(!e4096.divides(e6144));
        assert!(e2048.divides(e6144));
    }

    #[test]
    fn gcd_of_4096_and_6144_is_2048() {
        let a = EpochDuration::from_ms(4096).unwrap();
        let b = EpochDuration::from_ms(6144).unwrap();
        assert_eq!(a.gcd(b).as_ms(), 2048);
    }

    #[test]
    fn gcd_all_over_menu() {
        let epochs = [8192u64, 12288, 24576]
            .into_iter()
            .map(|ms| EpochDuration::from_ms(ms).unwrap());
        assert_eq!(EpochDuration::gcd_all(epochs).unwrap().as_ms(), 4096);
        assert!(EpochDuration::gcd_all(std::iter::empty()).is_none());
    }

    #[test]
    fn fires_at_aligned_times_only() {
        let e = EpochDuration::from_ms(4096).unwrap();
        assert!(e.fires_at(0));
        assert!(e.fires_at(8192));
        assert!(!e.fires_at(2048));
        assert_eq!(e.next_fire_at(1), 4096);
        assert_eq!(e.next_fire_at(4096), 4096);
        assert_eq!(e.next_fire_at(4097), 8192);
    }

    #[test]
    fn gcd_u64_basics() {
        assert_eq!(gcd_u64(12, 18), 6);
        assert_eq!(gcd_u64(0, 5), 5);
        assert_eq!(gcd_u64(5, 0), 5);
        assert_eq!(gcd_u64(7, 13), 1);
    }
}
