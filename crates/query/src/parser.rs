//! Parser for the TinyDB-style declarative query language.
//!
//! Grammar (case-insensitive keywords):
//!
//! ```text
//! query    := SELECT sel_list [FROM sensors] [WHERE cond (AND cond)*]
//!             EPOCH DURATION <int> [ms]
//! sel_list := sel_item (',' sel_item)*
//! sel_item := attr | aggop '(' attr ')'
//! cond     := attr cmp num | num cmp attr | num cmp attr cmp num
//!           | attr BETWEEN num AND num
//!           | REGION '(' num ',' num ',' num ',' num ')'
//! cmp      := '<' | '<=' | '>' | '>=' | '='
//! ```
//!
//! Sensor readings are integral (ADC counts), so a strict bound is translated
//! to an inclusive one: `light < 600` becomes `light <= 599`, matching the
//! paper's `280<light<600` examples.

use crate::agg::AggOp;
use crate::attr::Attribute;
use crate::query::{BuildQueryError, Query, QueryBuilder, QueryId};
use std::fmt;

/// Error produced when a query string cannot be parsed or validated.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseQueryError {
    /// Lexical or syntactic problem, with a human-readable description.
    Syntax(String),
    /// The query parsed but failed validation.
    Build(BuildQueryError),
}

impl fmt::Display for ParseQueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseQueryError::Syntax(msg) => write!(f, "syntax error: {msg}"),
            ParseQueryError::Build(e) => write!(f, "invalid query: {e}"),
        }
    }
}

impl std::error::Error for ParseQueryError {}

impl From<BuildQueryError> for ParseQueryError {
    fn from(e: BuildQueryError) -> Self {
        ParseQueryError::Build(e)
    }
}

/// Parses a query string into a validated [`Query`].
///
/// # Examples
///
/// ```
/// use ttmqo_query::{parse_query, QueryId, Attribute};
///
/// let q = parse_query(QueryId(1), "SELECT light WHERE 280 < light < 600 EPOCH DURATION 2048")?;
/// assert!(q.is_acquisition());
/// let r = q.predicates().range(Attribute::Light).unwrap();
/// assert_eq!((r.min(), r.max()), (281.0, 599.0));
/// # Ok::<(), ttmqo_query::ParseQueryError>(())
/// ```
///
/// # Errors
///
/// Returns [`ParseQueryError`] on malformed syntax or an invalid query (see
/// [`BuildQueryError`]).
pub fn parse_query(id: QueryId, text: &str) -> Result<Query, ParseQueryError> {
    Parser::new(text)?.parse(id)
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Number(f64),
    Comma,
    LParen,
    RParen,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "`{s}`"),
            Token::Number(n) => write!(f, "`{n}`"),
            Token::Comma => f.write_str("`,`"),
            Token::LParen => f.write_str("`(`"),
            Token::RParen => f.write_str("`)`"),
            Token::Lt => f.write_str("`<`"),
            Token::Le => f.write_str("`<=`"),
            Token::Gt => f.write_str("`>`"),
            Token::Ge => f.write_str("`>=`"),
            Token::Eq => f.write_str("`=`"),
        }
    }
}

fn tokenize(text: &str) -> Result<Vec<Token>, ParseQueryError> {
    let mut tokens = Vec::new();
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Le);
                    i += 2;
                } else {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Ge);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                tokens.push(Token::Ident(text[start..i].to_ascii_lowercase()));
            }
            c if c.is_ascii_digit() || c == '-' || c == '.' => {
                let start = i;
                i += 1;
                while i < bytes.len() && ((bytes[i] as char).is_ascii_digit() || bytes[i] == b'.') {
                    i += 1;
                }
                let s = &text[start..i];
                let n: f64 = s
                    .parse()
                    .map_err(|_| ParseQueryError::Syntax(format!("bad number `{s}`")))?;
                tokens.push(Token::Number(n));
            }
            other => {
                return Err(ParseQueryError::Syntax(format!(
                    "unexpected character `{other}`"
                )))
            }
        }
    }
    Ok(tokens)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn new(text: &str) -> Result<Self, ParseQueryError> {
        Ok(Parser {
            tokens: tokenize(text)?,
            pos: 0,
        })
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseQueryError> {
        match self.next() {
            Some(Token::Ident(s)) if s == kw => Ok(()),
            Some(t) => Err(ParseQueryError::Syntax(format!(
                "expected `{kw}`, found {t}"
            ))),
            None => Err(ParseQueryError::Syntax(format!(
                "expected `{kw}`, found end of input"
            ))),
        }
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s == kw)
    }

    fn parse(mut self, id: QueryId) -> Result<Query, ParseQueryError> {
        self.expect_keyword("select")?;
        let mut builder = Query::builder(id);
        builder = self.parse_select_list(builder)?;

        if self.peek_keyword("from") {
            self.next();
            self.expect_keyword("sensors")?;
        }

        if self.peek_keyword("where") {
            self.next();
            builder = self.parse_condition(builder)?;
            while self.peek_keyword("and") {
                self.next();
                builder = self.parse_condition(builder)?;
            }
        }

        self.expect_keyword("epoch")?;
        self.expect_keyword("duration")?;
        let ms = match self.next() {
            Some(Token::Number(n)) if n > 0.0 && n.fract() == 0.0 => n as u64,
            Some(t) => {
                return Err(ParseQueryError::Syntax(format!(
                    "expected integer epoch duration, found {t}"
                )))
            }
            None => {
                return Err(ParseQueryError::Syntax(
                    "expected epoch duration, found end of input".into(),
                ))
            }
        };
        if self.peek_keyword("ms") {
            self.next();
        }
        if let Some(t) = self.peek() {
            return Err(ParseQueryError::Syntax(format!("trailing input at {t}")));
        }
        builder = builder.epoch_ms(ms);
        Ok(builder.build()?)
    }

    fn parse_select_list(&mut self, mut b: QueryBuilder) -> Result<QueryBuilder, ParseQueryError> {
        loop {
            b = self.parse_select_item(b)?;
            if matches!(self.peek(), Some(Token::Comma)) {
                self.next();
            } else {
                return Ok(b);
            }
        }
    }

    fn parse_select_item(&mut self, b: QueryBuilder) -> Result<QueryBuilder, ParseQueryError> {
        let name = match self.next() {
            Some(Token::Ident(s)) => s,
            Some(t) => {
                return Err(ParseQueryError::Syntax(format!(
                    "expected selection item, found {t}"
                )))
            }
            None => {
                return Err(ParseQueryError::Syntax(
                    "expected selection item, found end of input".into(),
                ))
            }
        };
        if matches!(self.peek(), Some(Token::LParen)) {
            // aggregate: op(attr)
            self.next();
            let op: AggOp = name
                .parse()
                .map_err(|e| ParseQueryError::Syntax(format!("{e}")))?;
            let attr = self.parse_attr()?;
            match self.next() {
                Some(Token::RParen) => Ok(b.select_agg(op, attr)),
                _ => Err(ParseQueryError::Syntax(
                    "expected `)` after aggregate".into(),
                )),
            }
        } else {
            let attr: Attribute = name
                .parse()
                .map_err(|e| ParseQueryError::Syntax(format!("{e}")))?;
            Ok(b.select_attr(attr))
        }
    }

    fn parse_attr(&mut self) -> Result<Attribute, ParseQueryError> {
        match self.next() {
            Some(Token::Ident(s)) => s
                .parse()
                .map_err(|e| ParseQueryError::Syntax(format!("{e}"))),
            Some(t) => Err(ParseQueryError::Syntax(format!(
                "expected attribute, found {t}"
            ))),
            None => Err(ParseQueryError::Syntax(
                "expected attribute, found end of input".into(),
            )),
        }
    }

    fn parse_number(&mut self) -> Result<f64, ParseQueryError> {
        match self.next() {
            Some(Token::Number(n)) => Ok(n),
            Some(t) => Err(ParseQueryError::Syntax(format!(
                "expected number, found {t}"
            ))),
            None => Err(ParseQueryError::Syntax(
                "expected number, found end of input".into(),
            )),
        }
    }

    /// Parses one condition, producing `[min, max]` bounds on one attribute.
    fn parse_condition(&mut self, b: QueryBuilder) -> Result<QueryBuilder, ParseQueryError> {
        match self.peek().cloned() {
            Some(Token::Number(_)) => {
                // num cmp attr [cmp num]   (e.g. `280 < light < 600`)
                let lo_num = self.parse_number()?;
                let op1 = self.parse_cmp()?;
                let attr = self.parse_attr()?;
                let (mut min, mut max) = full_bounds(attr);
                apply_bound_from_left(&mut min, &mut max, lo_num, op1, attr)?;
                if matches!(
                    self.peek(),
                    Some(Token::Lt | Token::Le | Token::Gt | Token::Ge)
                ) {
                    let op2 = self.parse_cmp()?;
                    let hi_num = self.parse_number()?;
                    apply_bound_from_right(&mut min, &mut max, hi_num, op2, attr)?;
                }
                Ok(b.filter(attr, min, max))
            }
            Some(Token::Ident(name)) if name == "region" => {
                self.next();
                match self.next() {
                    Some(Token::LParen) => {}
                    _ => return Err(ParseQueryError::Syntax("expected `(` after region".into())),
                }
                let mut coords = [0.0f64; 4];
                for (i, c) in coords.iter_mut().enumerate() {
                    if i > 0 {
                        match self.next() {
                            Some(Token::Comma) => {}
                            _ => {
                                return Err(ParseQueryError::Syntax(
                                    "expected `,` between region coordinates".into(),
                                ))
                            }
                        }
                    }
                    *c = self.parse_number()?;
                }
                match self.next() {
                    Some(Token::RParen) => {}
                    _ => {
                        return Err(ParseQueryError::Syntax(
                            "expected `)` after region coordinates".into(),
                        ))
                    }
                }
                Ok(b.in_region(coords[0], coords[1], coords[2], coords[3]))
            }
            Some(Token::Ident(_)) => {
                let attr = self.parse_attr()?;
                if self.peek_keyword("between") {
                    self.next();
                    let lo = self.parse_number()?;
                    self.expect_keyword("and")?;
                    let hi = self.parse_number()?;
                    return Ok(b.filter(attr, lo, hi));
                }
                let op = self.parse_cmp()?;
                let num = self.parse_number()?;
                let (mut min, mut max) = full_bounds(attr);
                apply_bound_from_right(&mut min, &mut max, num, op, attr)?;
                Ok(b.filter(attr, min, max))
            }
            Some(t) => Err(ParseQueryError::Syntax(format!(
                "expected condition, found {t}"
            ))),
            None => Err(ParseQueryError::Syntax(
                "expected condition, found end of input".into(),
            )),
        }
    }

    fn parse_cmp(&mut self) -> Result<Token, ParseQueryError> {
        match self.next() {
            Some(t @ (Token::Lt | Token::Le | Token::Gt | Token::Ge | Token::Eq)) => Ok(t),
            Some(t) => Err(ParseQueryError::Syntax(format!(
                "expected comparison, found {t}"
            ))),
            None => Err(ParseQueryError::Syntax(
                "expected comparison, found end of input".into(),
            )),
        }
    }
}

fn full_bounds(attr: Attribute) -> (f64, f64) {
    attr.domain()
}

/// Readings are integral, so strict bounds tighten by one unit.
const STRICT_STEP: f64 = 1.0;

/// Applies `num OP attr` (number on the left).
fn apply_bound_from_left(
    min: &mut f64,
    max: &mut f64,
    num: f64,
    op: Token,
    attr: Attribute,
) -> Result<(), ParseQueryError> {
    match op {
        Token::Lt => *min = min.max(num + STRICT_STEP), // num < attr
        Token::Le => *min = min.max(num),               // num <= attr
        Token::Gt => *max = max.min(num - STRICT_STEP), // num > attr
        Token::Ge => *max = max.min(num),               // num >= attr
        Token::Eq => {
            *min = min.max(num);
            *max = max.min(num);
        }
        t => {
            return Err(ParseQueryError::Syntax(format!(
                "operator {t} not valid in a range condition on `{attr}`"
            )))
        }
    }
    Ok(())
}

/// Applies `attr OP num` (number on the right).
fn apply_bound_from_right(
    min: &mut f64,
    max: &mut f64,
    num: f64,
    op: Token,
    attr: Attribute,
) -> Result<(), ParseQueryError> {
    match op {
        Token::Lt => *max = max.min(num - STRICT_STEP),
        Token::Le => *max = max.min(num),
        Token::Gt => *min = min.max(num + STRICT_STEP),
        Token::Ge => *min = min.max(num),
        Token::Eq => {
            *min = min.max(num);
            *max = max.min(num);
        }
        t => {
            return Err(ParseQueryError::Syntax(format!(
                "operator {t} not valid in a range condition on `{attr}`"
            )))
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Selection;

    fn parse(text: &str) -> Query {
        parse_query(QueryId(1), text).unwrap()
    }

    #[test]
    fn paper_example_q1() {
        let q = parse("select light where 280<light<600 epoch duration 2048");
        let r = q.predicates().range(Attribute::Light).unwrap();
        assert_eq!((r.min(), r.max()), (281.0, 599.0));
        assert_eq!(q.epoch().as_ms(), 2048);
        assert!(q.is_acquisition());
    }

    #[test]
    fn select_multiple_attributes() {
        let q = parse("SELECT nodeid, light, temp FROM sensors EPOCH DURATION 4096");
        assert_eq!(
            q.selection(),
            &Selection::attributes([Attribute::NodeId, Attribute::Light, Attribute::Temp])
        );
        assert!(q.predicates().is_empty());
    }

    #[test]
    fn aggregate_query() {
        let q = parse("SELECT MAX(light) WHERE temp >= 100 EPOCH DURATION 8192");
        assert_eq!(
            q.selection(),
            &Selection::aggregates([(AggOp::Max, Attribute::Light)])
        );
        let r = q.predicates().range(Attribute::Temp).unwrap();
        assert_eq!(r.min(), 100.0);
    }

    #[test]
    fn multiple_aggregates() {
        let q = parse("select min(temp), max(temp) epoch duration 2048");
        assert_eq!(
            q.selection(),
            &Selection::aggregates([(AggOp::Min, Attribute::Temp), (AggOp::Max, Attribute::Temp)])
        );
    }

    #[test]
    fn between_condition() {
        let q = parse("select light where light between 100 and 300 epoch duration 2048");
        let r = q.predicates().range(Attribute::Light).unwrap();
        assert_eq!((r.min(), r.max()), (100.0, 300.0));
    }

    #[test]
    fn and_of_conditions() {
        let q = parse(
            "select light where light > 100 and light < 300 and temp <= 50 epoch duration 2048",
        );
        let l = q.predicates().range(Attribute::Light).unwrap();
        assert_eq!((l.min(), l.max()), (101.0, 299.0));
        let t = q.predicates().range(Attribute::Temp).unwrap();
        assert_eq!(t.max(), 50.0);
    }

    #[test]
    fn equality_condition() {
        let q = parse("select light where nodeid = 5 epoch duration 2048");
        let r = q.predicates().range(Attribute::NodeId).unwrap();
        assert_eq!((r.min(), r.max()), (5.0, 5.0));
    }

    #[test]
    fn ms_suffix_accepted() {
        let q = parse("select light epoch duration 2048 ms");
        assert_eq!(q.epoch().as_ms(), 2048);
    }

    #[test]
    fn syntax_errors() {
        for bad in [
            "light epoch duration 2048",                         // missing SELECT
            "select epoch duration 2048",                        // epoch parsed as attr
            "select light epoch duration",                       // missing number
            "select light epoch duration 2048 extra",            // trailing
            "select light where light !! 3 epoch duration 2048", // bad char
            "select max(light epoch duration 2048",              // missing paren
            "select pressure epoch duration 2048",               // unknown attr
            "select median(light) epoch duration 2048",          // unknown agg
        ] {
            assert!(
                parse_query(QueryId(1), bad).is_err(),
                "expected error for: {bad}"
            );
        }
    }

    #[test]
    fn build_errors_propagate() {
        let err = parse_query(QueryId(1), "select light epoch duration 1000").unwrap_err();
        assert!(matches!(err, ParseQueryError::Build(_)));
        let err = parse_query(
            QueryId(1),
            "select light where light > 900 and light < 100 epoch duration 2048",
        )
        .unwrap_err();
        assert!(matches!(
            err,
            ParseQueryError::Build(BuildQueryError::UnsatisfiablePredicates)
        ));
    }

    #[test]
    fn negative_numbers_in_conditions() {
        let q = parse("select temp where temp >= -100 epoch duration 2048");
        let r = q.predicates().range(Attribute::Temp).unwrap();
        assert_eq!(r.min(), -100.0);
    }
}

#[cfg(test)]
mod region_tests {
    use super::*;

    #[test]
    fn region_clause_parses() {
        let q = parse_query(
            QueryId(1),
            "select light where region(0, 0, 60, 40) epoch duration 2048",
        )
        .unwrap();
        let r = q.region().expect("region set");
        assert_eq!(
            (r.x_min(), r.y_min(), r.x_max(), r.y_max()),
            (0.0, 0.0, 60.0, 40.0)
        );
    }

    #[test]
    fn region_combines_with_value_predicates() {
        let q = parse_query(
            QueryId(1),
            "select max(light) where light >= 200 and region(20, 20, 100, 100) epoch duration 4096",
        )
        .unwrap();
        assert!(q.region().is_some());
        assert!(q.predicates().range(crate::Attribute::Light).is_some());
    }

    #[test]
    fn malformed_region_clauses_error() {
        for bad in [
            "select light where region(0, 0, 60) epoch duration 2048",
            "select light where region(0 0 60 40) epoch duration 2048",
            "select light where region 0, 0, 60, 40 epoch duration 2048",
            "select light where region(60, 0, 0, 40) epoch duration 2048", // inverted
        ] {
            assert!(parse_query(QueryId(1), bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn region_display_roundtrips() {
        let q = parse_query(
            QueryId(1),
            "select light where region(0, 0, 60, 40) epoch duration 2048",
        )
        .unwrap();
        let q2 = parse_query(QueryId(1), &q.to_string()).unwrap();
        assert_eq!(q.region(), q2.region());
    }
}
