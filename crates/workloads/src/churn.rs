//! Streaming churn workload: a Poisson arrival/departure process over a
//! fixed menu of query *templates*.
//!
//! Where [`random_workload`](crate::random_workload) draws every query
//! fresh, real sensor-network front-ends see the same dashboard and alert
//! queries posed over and over by different users. This generator first
//! draws `n_templates` queries from the §4.3 random model, then lets every
//! arrival instantiate one of the templates under its own query id — so the
//! optimizer sees heavy overlap (most arrivals are covered or merge
//! cheaply) while queries continuously arrive and depart. By Little's law
//! the steady-state live count is `target_concurrency`; the process runs
//! until `n_queries` have arrived, and every query departs.

use crate::random::{exponential, random_query};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ttmqo_core::WorkloadEvent;
use ttmqo_query::{Query, QueryId};

/// Parameters of the churn workload generator.
#[derive(Debug, Clone)]
pub struct ChurnWorkloadParams {
    /// Total number of queries that arrive (each also departs).
    pub n_queries: usize,
    /// Number of distinct query templates the arrivals draw from.
    pub n_templates: usize,
    /// Mean inter-arrival time, ms.
    pub mean_arrival_ms: f64,
    /// Desired average number of concurrently live queries (Little's law:
    /// mean lifetime = `target_concurrency × mean_arrival_ms`).
    pub target_concurrency: f64,
    /// Fraction of aggregation templates (the rest are acquisitions).
    pub aggregation_fraction: f64,
    /// Largest deployed node id (see
    /// [`RandomWorkloadParams`](crate::RandomWorkloadParams)).
    pub nodeid_max: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ChurnWorkloadParams {
    fn default() -> Self {
        ChurnWorkloadParams {
            n_queries: 500,
            n_templates: 24,
            mean_arrival_ms: 5_000.0,
            target_concurrency: 32.0,
            aggregation_fraction: 0.3,
            nodeid_max: 63.0,
            seed: 0xC0FFEE,
        }
    }
}

/// Generates the template-churn workload: pose and terminate events sorted
/// by time. Deterministic per seed.
///
/// # Examples
///
/// ```
/// use ttmqo_workloads::{churn_workload, ChurnWorkloadParams};
///
/// let events = churn_workload(&ChurnWorkloadParams {
///     n_queries: 40,
///     ..ChurnWorkloadParams::default()
/// });
/// assert_eq!(events.len(), 80); // 40 poses + 40 terminations
/// ```
pub fn churn_workload(params: &ChurnWorkloadParams) -> Vec<WorkloadEvent> {
    let queries = churn_queries(params);
    let mut rng = StdRng::seed_from_u64(params.seed ^ 0x5EED_CAFE);
    let mean_lifetime_ms = params.target_concurrency * params.mean_arrival_ms;
    let mut events = Vec::with_capacity(queries.len() * 2);
    let mut t = 0.0f64;
    for query in queries {
        t += exponential(&mut rng, params.mean_arrival_ms);
        let lifetime = exponential(&mut rng, mean_lifetime_ms).max(1000.0);
        let qid = query.id();
        events.push(WorkloadEvent::pose(t as u64, query));
        events.push(WorkloadEvent::terminate((t + lifetime) as u64, qid));
    }
    events.sort_by_key(|e| e.at);
    events
}

/// The arrival sequence alone (no timestamps, no departures): query `i`
/// instantiates a seeded template under id `i`. This is what the churn
/// bench feeds straight into the optimizer when it measures pure admission
/// throughput without simulating time.
pub fn churn_queries(params: &ChurnWorkloadParams) -> Vec<Query> {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let n_templates = params.n_templates.max(1);
    let templates: Vec<Query> = (0..n_templates)
        .map(|i| {
            random_query(
                &mut rng,
                QueryId(i as u64),
                params.aggregation_fraction,
                params.nodeid_max,
            )
        })
        .collect();
    (0..params.n_queries)
        .map(|i| templates[rng.gen_range(0..n_templates)].with_id(QueryId(i as u64)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ttmqo_core::WorkloadAction;

    #[test]
    fn every_arrival_departs_and_events_are_sorted() {
        let events = churn_workload(&ChurnWorkloadParams {
            n_queries: 200,
            ..ChurnWorkloadParams::default()
        });
        let poses = events
            .iter()
            .filter(|e| matches!(e.action, WorkloadAction::Pose(_)))
            .count();
        let terms = events
            .iter()
            .filter(|e| matches!(e.action, WorkloadAction::Terminate(_)))
            .count();
        assert_eq!(poses, 200);
        assert_eq!(terms, 200);
        assert!(events.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn is_bit_identical_per_seed() {
        let p = ChurnWorkloadParams {
            n_queries: 64,
            ..ChurnWorkloadParams::default()
        };
        let a = format!("{:?}", churn_workload(&p));
        let b = format!("{:?}", churn_workload(&p));
        assert_eq!(a, b, "same seed must reproduce the workload exactly");
        let c = format!(
            "{:?}",
            churn_workload(&ChurnWorkloadParams { seed: 9, ..p })
        );
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn arrivals_reuse_the_template_menu() {
        let p = ChurnWorkloadParams {
            n_queries: 300,
            n_templates: 8,
            ..ChurnWorkloadParams::default()
        };
        let queries = churn_queries(&p);
        assert_eq!(queries.len(), 300);
        // Ids are the arrival sequence.
        for (i, q) in queries.iter().enumerate() {
            assert_eq!(q.id(), QueryId(i as u64));
        }
        // Id-stripped shapes collapse to at most the template count.
        let mut shapes: Vec<String> = queries
            .iter()
            .map(|q| format!("{:?}", q.with_id(QueryId(0))))
            .collect();
        shapes.sort();
        shapes.dedup();
        assert!(
            shapes.len() <= 8,
            "300 arrivals over 8 templates collapsed to {} shapes",
            shapes.len()
        );
        assert!(shapes.len() > 1, "templates should be diverse");
    }

    #[test]
    fn concurrency_tracks_target() {
        let events = churn_workload(&ChurnWorkloadParams {
            n_queries: 500,
            target_concurrency: 32.0,
            seed: 3,
            ..ChurnWorkloadParams::default()
        });
        let last_pose = events
            .iter()
            .filter(|e| matches!(e.action, WorkloadAction::Pose(_)))
            .map(|e| e.at.as_ms())
            .max()
            .expect("workload has poses");
        let mut live = 0i64;
        let mut weighted = 0.0;
        let mut last = 0u64;
        for e in &events {
            let t = e.at.as_ms().min(last_pose);
            weighted += live as f64 * (t - last) as f64;
            last = t;
            match e.action {
                WorkloadAction::Pose(_) => live += 1,
                WorkloadAction::Terminate(_) => live -= 1,
            }
        }
        let mean = weighted / last_pose as f64;
        assert!(
            (mean - 32.0).abs() < 32.0 * 0.35,
            "target 32, measured {mean}"
        );
    }
}
