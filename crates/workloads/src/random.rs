//! The adaptive random workload of §4.3 (Figure 4).
//!
//! "…a model of queries that randomly select attributes (nodeid, light,
//! temp), aggregations (MAX, MIN), predicates and epoch durations (from
//! shortest 8092ms to longest 24576ms, all divisible by 4096ms). We keep the
//! average arrival frequency at 40s per query, but we vary the average
//! duration so that the average number of concurrent queries is changing. A
//! set of workload is complete after the termination of 500 queries."
//!
//! Note: 8092 is not divisible by 4096 — an evident typo for 8192, which we
//! use. By Little's law the mean query duration is `target_concurrency ×
//! mean_arrival`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ttmqo_core::WorkloadEvent;
use ttmqo_query::{AggOp, Attribute, Query, QueryId, Selection};

/// Parameters of the random workload generator.
#[derive(Debug, Clone)]
pub struct RandomWorkloadParams {
    /// Number of queries in the workload (the paper uses 500).
    pub n_queries: usize,
    /// Mean inter-arrival time, ms (the paper uses 40 s).
    pub mean_arrival_ms: f64,
    /// Desired average number of concurrently running queries (8–48 in
    /// Figure 4).
    pub target_concurrency: f64,
    /// Fraction of aggregation queries (the rest are acquisitions).
    pub aggregation_fraction: f64,
    /// Largest deployed node id: `nodeid` predicates are placed inside
    /// `[0, nodeid_max]` so they filter deployed nodes, not the empty tail of
    /// the id domain.
    pub nodeid_max: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomWorkloadParams {
    fn default() -> Self {
        RandomWorkloadParams {
            n_queries: 500,
            mean_arrival_ms: 40_000.0,
            target_concurrency: 8.0,
            aggregation_fraction: 0.3,
            nodeid_max: 63.0,
            seed: 0xBADC0DE,
        }
    }
}

/// The paper's epoch menu: 8192…24576 ms, all divisible by 4096 ms.
pub const EPOCH_MENU_MS: [u64; 5] = [8192, 12288, 16384, 20480, 24576];

/// Attributes the random queries draw from (§4.3).
pub const ATTR_MENU: [Attribute; 3] = [Attribute::NodeId, Attribute::Light, Attribute::Temp];

/// Generates the Poisson-arrival, exponential-duration workload.
///
/// Returns pose and terminate events sorted by time; exactly
/// `params.n_queries` queries are posed and all of them terminate.
///
/// # Examples
///
/// ```
/// use ttmqo_workloads::{random_workload, RandomWorkloadParams};
///
/// let events = random_workload(&RandomWorkloadParams {
///     n_queries: 50,
///     ..RandomWorkloadParams::default()
/// });
/// assert_eq!(events.len(), 100); // 50 poses + 50 terminations
/// ```
pub fn random_workload(params: &RandomWorkloadParams) -> Vec<WorkloadEvent> {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mean_duration_ms = params.target_concurrency * params.mean_arrival_ms;
    let mut events = Vec::with_capacity(params.n_queries * 2);
    let mut t = 0.0f64;
    for i in 0..params.n_queries {
        t += exponential(&mut rng, params.mean_arrival_ms);
        let duration = exponential(&mut rng, mean_duration_ms).max(1000.0);
        let query = random_query(
            &mut rng,
            QueryId(i as u64),
            params.aggregation_fraction,
            params.nodeid_max,
        );
        events.push(WorkloadEvent::pose(t as u64, query));
        events.push(WorkloadEvent::terminate(
            (t + duration) as u64,
            QueryId(i as u64),
        ));
    }
    events.sort_by_key(|e| e.at);
    events
}

/// End time of the last event, ms.
pub fn workload_end_ms(events: &[WorkloadEvent]) -> u64 {
    events.iter().map(|e| e.at.as_ms()).max().unwrap_or(0)
}

pub(crate) fn exponential(rng: &mut StdRng, mean: f64) -> f64 {
    let u: f64 = rng.gen_range(1e-12..1.0);
    -mean * u.ln()
}

/// One random query per the §4.3 model.
pub(crate) fn random_query(
    rng: &mut StdRng,
    id: QueryId,
    agg_fraction: f64,
    nodeid_max: f64,
) -> Query {
    let epoch = EPOCH_MENU_MS[rng.gen_range(0..EPOCH_MENU_MS.len())];
    let selection = if rng.gen_bool(agg_fraction.clamp(0.0, 1.0)) {
        let op = if rng.gen_bool(0.5) {
            AggOp::Max
        } else {
            AggOp::Min
        };
        let attr = [Attribute::Light, Attribute::Temp][rng.gen_range(0..2)];
        Selection::aggregates([(op, attr)])
    } else {
        // Non-empty random subset of the attribute menu.
        let mut attrs: Vec<Attribute> = ATTR_MENU
            .iter()
            .copied()
            .filter(|_| rng.gen_bool(0.5))
            .collect();
        if attrs.is_empty() {
            attrs.push(ATTR_MENU[rng.gen_range(0..ATTR_MENU.len())]);
        }
        Selection::attributes(attrs)
    };
    // Zero, one or two random range predicates on distinct attributes
    // (same-attribute ranges could intersect to an unsatisfiable conjunction).
    let mut predicates = ttmqo_query::PredicateSet::new();
    let n_preds = rng.gen_range(0..=2);
    let mut menu = ATTR_MENU.to_vec();
    for _ in 0..n_preds {
        let attr = menu.remove(rng.gen_range(0..menu.len()));
        let (lo, hi) = if attr == Attribute::NodeId {
            (0.0, nodeid_max)
        } else {
            attr.domain()
        };
        let width = hi - lo;
        let coverage = rng.gen_range(0.2..1.0);
        let start = rng.gen_range(0.0..=(1.0 - coverage));
        predicates.and(
            ttmqo_query::Predicate::new(attr, lo + start * width, lo + (start + coverage) * width)
                .expect("generated range is inside the domain"),
        );
    }
    Query::from_parts(
        id,
        selection,
        predicates,
        ttmqo_query::EpochDuration::from_ms(epoch).expect("menu epochs are valid"),
    )
    .expect("generated query is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ttmqo_core::WorkloadAction;

    #[test]
    fn generates_paired_pose_and_terminate() {
        let events = random_workload(&RandomWorkloadParams {
            n_queries: 100,
            ..RandomWorkloadParams::default()
        });
        let poses = events
            .iter()
            .filter(|e| matches!(e.action, WorkloadAction::Pose(_)))
            .count();
        let terms = events
            .iter()
            .filter(|e| matches!(e.action, WorkloadAction::Terminate(_)))
            .count();
        assert_eq!(poses, 100);
        assert_eq!(terms, 100);
        // Sorted by time.
        assert!(events.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn is_deterministic_per_seed() {
        let p = RandomWorkloadParams {
            n_queries: 30,
            ..RandomWorkloadParams::default()
        };
        let a = format!("{:?}", random_workload(&p));
        let b = format!("{:?}", random_workload(&p));
        assert_eq!(a, b);
        let c = format!(
            "{:?}",
            random_workload(&RandomWorkloadParams { seed: 1, ..p })
        );
        assert_ne!(a, c);
    }

    #[test]
    fn epochs_come_from_the_menu() {
        let events = random_workload(&RandomWorkloadParams {
            n_queries: 200,
            ..RandomWorkloadParams::default()
        });
        for e in &events {
            if let WorkloadAction::Pose(q) = &e.action {
                assert!(EPOCH_MENU_MS.contains(&q.epoch().as_ms()), "{}", q.epoch());
            }
        }
    }

    #[test]
    fn concurrency_tracks_target() {
        for target in [8.0, 24.0, 48.0] {
            let events = random_workload(&RandomWorkloadParams {
                n_queries: 500,
                target_concurrency: target,
                seed: 7,
                ..RandomWorkloadParams::default()
            });
            // Time-weighted mean concurrency over the arrival window only:
            // after the last pose the process drains to zero, and folding
            // that non-stationary tail into the mean biases it down by
            // roughly `mean_duration / pose_span` (≈ target/n_queries), which
            // for large targets swamps the tolerance. Little's law predicts
            // the target only while arrivals are active.
            let last_pose = events
                .iter()
                .filter(|e| matches!(e.action, WorkloadAction::Pose(_)))
                .map(|e| e.at.as_ms())
                .max()
                .expect("workload has poses");
            let mut live = 0i64;
            let mut weighted = 0.0;
            let mut last = 0u64;
            for e in &events {
                let t = e.at.as_ms().min(last_pose);
                weighted += live as f64 * (t - last) as f64;
                last = t;
                match e.action {
                    WorkloadAction::Pose(_) => live += 1,
                    WorkloadAction::Terminate(_) => live -= 1,
                }
            }
            let mean = weighted / last_pose as f64;
            assert!(
                (mean - target).abs() < target * 0.35,
                "target {target}, measured {mean}"
            );
        }
    }

    #[test]
    fn aggregation_fraction_respected() {
        let events = random_workload(&RandomWorkloadParams {
            n_queries: 400,
            aggregation_fraction: 0.5,
            ..RandomWorkloadParams::default()
        });
        let (mut agg, mut acq) = (0, 0);
        for e in &events {
            if let WorkloadAction::Pose(q) = &e.action {
                if q.is_aggregation() {
                    agg += 1;
                } else {
                    acq += 1;
                }
            }
        }
        let frac = agg as f64 / (agg + acq) as f64;
        assert!((frac - 0.5).abs() < 0.1, "fraction {frac}");
    }
}
