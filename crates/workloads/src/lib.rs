//! Workload generators reproducing the TTMQO paper's experimental workloads.
//!
//! * [`workload_a`] / [`workload_b`] / [`workload_c`] — the static workloads
//!   of Figure 3 (reconstructed per §4.2's stated properties);
//! * [`random_workload`] — the adaptive random workload of Figure 4
//!   (Poisson arrivals every ~40 s, 500 queries, concurrency controlled via
//!   Little's law);
//! * [`selectivity_workload`] — the predicate-selectivity sweep of Figure 5;
//! * [`churn_workload`] — a streaming arrival/departure process over a
//!   fixed menu of query templates, for the admission/departure paths.
//!
//! All generators are deterministic given their seed.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod churn;
mod random;
mod selectivity;
mod static_abc;

pub use churn::{churn_queries, churn_workload, ChurnWorkloadParams};
pub use random::{
    random_workload, workload_end_ms, RandomWorkloadParams, ATTR_MENU, EPOCH_MENU_MS,
};
pub use selectivity::{selectivity_workload, SelectivityWorkloadParams};
pub use static_abc::{workload_a, workload_b, workload_c};
