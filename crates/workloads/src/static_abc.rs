//! The static workloads of §4.2 (Figure 3).
//!
//! The paper's technical report with the exact query listings is no longer
//! available; these workloads are reconstructed from the properties §4.2
//! states each must have (see DESIGN.md §5):
//!
//! * [`workload_a`] — savings achievable by *both* tiers;
//! * [`workload_b`] — savings only the *in-network* tier can capture;
//! * [`workload_c`] — savings requiring both tiers together.

use ttmqo_core::WorkloadEvent;
use ttmqo_query::{parse_query, Query, QueryId};

fn q(id: u64, text: &str) -> Query {
    parse_query(QueryId(id), text).unwrap_or_else(|e| panic!("workload query `{text}`: {e}"))
}

/// WORKLOAD_A: eight queries with heavy, *rewritable* overlap.
///
/// Six acquisition queries over `light` with nested predicates and harmonic
/// epochs (2048/4096/8192 ms) — the base-station tier folds them into one
/// synthetic query, and the in-network tier alternatively shares their
/// aligned firings and messages. Two same-predicate `MAX(light)` queries
/// complete the set (mergeable by tier 1, shareable by tier 2).
pub fn workload_a() -> Vec<WorkloadEvent> {
    [
        q(0, "select light where 100<=light<=800 epoch duration 2048"),
        q(1, "select light where 150<=light<=700 epoch duration 4096"),
        q(2, "select light where 200<=light<=750 epoch duration 4096"),
        q(3, "select light where 120<=light<=780 epoch duration 8192"),
        q(4, "select light where 300<=light<=600 epoch duration 2048"),
        q(5, "select light where 250<=light<=650 epoch duration 8192"),
        q(6, "select max(light) epoch duration 4096"),
        q(7, "select max(light) epoch duration 8192"),
    ]
    .into_iter()
    .map(|query| WorkloadEvent::pose(0, query))
    .collect()
}

/// WORKLOAD_B: eight queries the base-station tier *cannot* merge
/// beneficially, but the in-network tier can still share.
///
/// Acquisition pairs with non-divisible epochs (4096 vs 6144 ms — a GCD
/// carrier would fire every 2048 ms, more than either query needs, so tier 1
/// keeps them separate) and aggregation queries with pairwise *different*
/// predicates (tier 1's semantic-correctness constraint forbids merging;
/// tier 2 still shares sampling, routes and equal partial values).
pub fn workload_b() -> Vec<WorkloadEvent> {
    [
        // Same-predicate acquisition pairs whose epochs do not divide: a GCD
        // carrier would fire every 2048 ms, more often than either member
        // needs, so tier 1 correctly refuses to merge them.
        q(0, "select light where 100<=light<=700 epoch duration 4096"),
        q(1, "select light where 100<=light<=700 epoch duration 6144"),
        q(2, "select temp where 0<=temp<=500 epoch duration 4096"),
        q(3, "select temp where 0<=temp<=500 epoch duration 6144"),
        // Aggregations over attributes no acquisition query carries, with
        // pairwise different predicates: tier 1's semantic constraints forbid
        // merging them with anything; folding them into an acquisition
        // carrier would drop its predicates (selectivity → 1), which the cost
        // model correctly rejects.
        q(
            4,
            "select max(humidity) where 10<=humidity<=60 epoch duration 4096",
        ),
        q(
            5,
            "select max(humidity) where 20<=humidity<=70 epoch duration 6144",
        ),
        q(
            6,
            "select min(voltage) where 2000<=voltage<=2800 epoch duration 4096",
        ),
        q(
            7,
            "select min(voltage) where 2200<=voltage<=3000 epoch duration 6144",
        ),
    ]
    .into_iter()
    .map(|query| WorkloadEvent::pose(0, query))
    .collect()
}

/// WORKLOAD_C: the mutual-complementarity mix.
///
/// Contains (a) aggregation queries derivable from a concurrently running
/// acquisition stream — only tier 1 can suppress those from the network;
/// (b) non-divisible-epoch acquisition pairs — only tier 2 can share those;
/// (c) overlapping acquisition queries both tiers can exploit.
pub fn workload_c() -> Vec<WorkloadEvent> {
    [
        // (c) selective acquisition carrier with harmonics — both tiers help.
        q(
            0,
            "select light, temp where 200<=light<=800 epoch duration 2048",
        ),
        q(1, "select light where 300<=light<=700 epoch duration 4096"),
        // (a) aggregations answerable from q0's stream (same predicates):
        // only tier 1 can suppress these from the network entirely.
        q(
            2,
            "select max(light) where 200<=light<=800 epoch duration 4096",
        ),
        q(
            3,
            "select min(temp) where 200<=light<=800 epoch duration 8192",
        ),
        // (b) same-predicate humidity pair with *non-divisible* epochs: a GCD
        // carrier would fire every 2048 ms (more than either query needs), so
        // tier 1 keeps them apart; only tier 2 shares their common firings.
        q(
            4,
            "select humidity where 20<=humidity<=80 epoch duration 4096",
        ),
        q(
            5,
            "select humidity where 20<=humidity<=80 epoch duration 6144",
        ),
        // Aggregations with different predicates: tier 2 only.
        q(
            6,
            "select max(light) where 0<=light<=500 epoch duration 4096",
        ),
        q(
            7,
            "select max(light) where 100<=light<=600 epoch duration 6144",
        ),
    ]
    .into_iter()
    .map(|query| WorkloadEvent::pose(0, query))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ttmqo_core::WorkloadAction;
    use ttmqo_query::EpochDuration;

    fn queries(events: &[WorkloadEvent]) -> Vec<Query> {
        events
            .iter()
            .filter_map(|e| match &e.action {
                WorkloadAction::Pose(q) => Some(q.clone()),
                WorkloadAction::Terminate(_) => None,
            })
            .collect()
    }

    #[test]
    fn each_workload_has_eight_unique_queries() {
        for events in [workload_a(), workload_b(), workload_c()] {
            let qs = queries(&events);
            assert_eq!(qs.len(), 8);
            let mut ids: Vec<u64> = qs.iter().map(|q| q.id().0).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), 8);
        }
    }

    #[test]
    fn workload_a_is_fully_mergeable_by_tier1() {
        // All acquisition predicates are over light and pairwise overlapping;
        // all epochs are harmonics of 2048.
        for query in queries(&workload_a()) {
            assert!(EpochDuration::from_ms(2048).unwrap().divides(query.epoch()));
        }
    }

    #[test]
    fn workload_b_contains_non_divisible_epoch_pairs() {
        let qs = queries(&workload_b());
        let e0 = qs[0].epoch();
        let e1 = qs[1].epoch();
        assert!(
            !e0.divides(e1) && !e1.divides(e0),
            "4096 vs 6144 must not divide"
        );
    }

    #[test]
    fn workload_b_aggregations_have_distinct_predicates() {
        let qs = queries(&workload_b());
        let aggs: Vec<&Query> = qs.iter().filter(|q| q.is_aggregation()).collect();
        assert!(aggs.len() >= 4);
        for (i, a) in aggs.iter().enumerate() {
            for b in &aggs[i + 1..] {
                assert!(
                    !a.predicates().equivalent(b.predicates()),
                    "{a} vs {b}: tier 1 must not merge workload B aggregations"
                );
            }
        }
    }

    #[test]
    fn workload_c_has_foldable_aggregations() {
        let qs = queries(&workload_c());
        // q2 (MAX light) is derivable from q0's light+temp acquisition.
        assert!(ttmqo_query::covers_query(&qs[0], &qs[2]));
        assert!(ttmqo_query::covers_query(&qs[0], &qs[3]));
    }

    #[test]
    fn all_events_arrive_at_time_zero() {
        for events in [workload_a(), workload_b(), workload_c()] {
            assert!(events.iter().all(|e| e.at.as_ms() == 0));
        }
    }
}
