//! The selectivity-controlled workloads of §4.3 (Figure 5).
//!
//! "…the number of concurrent queries is 8; data acquisition queries retrieve
//! all the attributes; aggregation queries request for MAX(light);
//! selectivity of predicates = 0.6 means that one of the attributes (nodeid,
//! light, temp) is randomly specified in the query predicate with a range
//! coverage as 0.6."

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ttmqo_core::WorkloadEvent;
use ttmqo_query::{
    AggOp, Attribute, EpochDuration, Predicate, PredicateSet, Query, QueryId, Selection,
};

/// Parameters of the Figure 5 workload.
#[derive(Debug, Clone)]
pub struct SelectivityWorkloadParams {
    /// Number of concurrent queries (the paper uses 8).
    pub n_queries: usize,
    /// Fraction of aggregation queries: 0.0, 0.5 and 1.0 in Figure 5.
    pub aggregation_fraction: f64,
    /// Range coverage of the single random predicate, `(0, 1]`.
    pub selectivity: f64,
    /// Epoch duration shared by all queries, ms (the quoted 89.7%-savings
    /// data point uses a common epoch).
    pub epoch_ms: u64,
    /// Largest deployed node id. A `nodeid` predicate's coverage is relative
    /// to the *deployed* id range `[0, nodeid_max]`, not the full id domain —
    /// covering 60% of ids nobody owns would filter nothing meaningful.
    pub nodeid_max: f64,
    /// RNG seed (governs predicate attribute and placement).
    pub seed: u64,
}

impl Default for SelectivityWorkloadParams {
    fn default() -> Self {
        SelectivityWorkloadParams {
            n_queries: 8,
            aggregation_fraction: 0.0,
            selectivity: 0.6,
            epoch_ms: 2048,
            nodeid_max: 15.0,
            seed: 0x5E1,
        }
    }
}

/// Attributes eligible for the random predicate.
const PRED_ATTRS: [Attribute; 3] = [Attribute::NodeId, Attribute::Light, Attribute::Temp];

/// Builds the Figure 5 workload: all queries posed at t = 0.
///
/// With `selectivity == 1.0` the predicate covers the whole domain and is
/// omitted, making the queries maximally similar (the paper's sharpest data
/// point).
///
/// # Panics
///
/// Panics if `selectivity` is outside `(0, 1]` or `n_queries` is zero.
pub fn selectivity_workload(params: &SelectivityWorkloadParams) -> Vec<WorkloadEvent> {
    assert!(
        params.selectivity > 0.0 && params.selectivity <= 1.0,
        "selectivity must be in (0, 1]"
    );
    assert!(params.n_queries > 0, "need at least one query");
    let mut rng = StdRng::seed_from_u64(params.seed);
    let n_agg = (params.n_queries as f64 * params.aggregation_fraction).round() as usize;
    let epoch = EpochDuration::from_ms(params.epoch_ms).expect("valid epoch");

    (0..params.n_queries)
        .map(|i| {
            let selection = if i < n_agg {
                Selection::aggregates([(AggOp::Max, Attribute::Light)])
            } else {
                // "data acquisition queries retrieve all the attributes".
                Selection::attributes([Attribute::NodeId, Attribute::Light, Attribute::Temp])
            };
            let mut predicates = PredicateSet::new();
            if params.selectivity < 1.0 {
                let attr = PRED_ATTRS[rng.gen_range(0..PRED_ATTRS.len())];
                let (lo, hi) = if attr == Attribute::NodeId {
                    (0.0, params.nodeid_max)
                } else {
                    attr.domain()
                };
                let width = hi - lo;
                let start = rng.gen_range(0.0..=(1.0 - params.selectivity));
                predicates.and(
                    Predicate::new(
                        attr,
                        lo + start * width,
                        lo + (start + params.selectivity) * width,
                    )
                    .expect("range inside the domain"),
                );
            }
            let query = Query::from_parts(QueryId(i as u64), selection, predicates, epoch)
                .expect("generated query is valid");
            WorkloadEvent::pose(0, query)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ttmqo_core::WorkloadAction;

    fn queries(events: &[WorkloadEvent]) -> Vec<Query> {
        events
            .iter()
            .filter_map(|e| match &e.action {
                WorkloadAction::Pose(q) => Some(q.clone()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn full_selectivity_means_no_predicates() {
        let events = selectivity_workload(&SelectivityWorkloadParams {
            selectivity: 1.0,
            ..SelectivityWorkloadParams::default()
        });
        for q in queries(&events) {
            assert!(q.predicates().is_empty(), "{q}");
        }
    }

    #[test]
    fn partial_selectivity_sets_one_predicate_of_right_width() {
        let events = selectivity_workload(&SelectivityWorkloadParams {
            selectivity: 0.6,
            ..SelectivityWorkloadParams::default()
        });
        for q in queries(&events) {
            assert_eq!(q.predicates().len(), 1, "{q}");
            let p = q.predicates().iter().next().unwrap();
            // Coverage is relative to the meaningful domain: the deployed id
            // range for `nodeid`, the full domain for value attributes.
            let domain_width = if p.attr() == Attribute::NodeId {
                15.0
            } else {
                p.attr().domain_width()
            };
            assert!(
                ((p.max() - p.min()) / domain_width - 0.6).abs() < 1e-9,
                "{q}"
            );
        }
    }

    #[test]
    fn aggregation_fraction_splits_the_mix() {
        for (frac, expect_agg) in [(0.0, 0), (0.5, 4), (1.0, 8)] {
            let events = selectivity_workload(&SelectivityWorkloadParams {
                aggregation_fraction: frac,
                ..SelectivityWorkloadParams::default()
            });
            let qs = queries(&events);
            let agg = qs.iter().filter(|q| q.is_aggregation()).count();
            assert_eq!(agg, expect_agg, "fraction {frac}");
            for q in qs.iter().filter(|q| q.is_aggregation()) {
                assert_eq!(
                    q.selection(),
                    &Selection::aggregates([(AggOp::Max, Attribute::Light)])
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "selectivity must be in (0, 1]")]
    fn zero_selectivity_panics() {
        selectivity_workload(&SelectivityWorkloadParams {
            selectivity: 0.0,
            ..SelectivityWorkloadParams::default()
        });
    }

    #[test]
    fn all_queries_share_the_epoch() {
        let events = selectivity_workload(&SelectivityWorkloadParams::default());
        for q in queries(&events) {
            assert_eq!(q.epoch().as_ms(), 2048);
        }
    }
}
