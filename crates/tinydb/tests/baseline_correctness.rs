//! End-to-end correctness of the TinyDB baseline: answers delivered by the
//! base station must equal ground truth computed directly from the sensor
//! field.

use ttmqo_query::{parse_query, AggOp, Attribute, EpochAnswer, Query, QueryId};
use ttmqo_sim::{
    ConstantField, MsgKind, NodeId, RadioParams, SensorField, SimConfig, SimTime, Simulator,
    Topology, UniformField,
};
use ttmqo_tinydb::{Command, Output, TinyDbApp, TinyDbConfig};

fn new_sim(topo: Topology, field: Box<dyn SensorField + Send + Sync>) -> Simulator<TinyDbApp> {
    Simulator::new(
        topo,
        RadioParams::lossless(),
        SimConfig {
            maintenance_interval_ms: Some(30_000),
            ..SimConfig::default()
        },
        field,
        |_, _| TinyDbApp::new(TinyDbConfig::default()),
    )
}

fn answers_for(sim: &Simulator<TinyDbApp>, qid: QueryId) -> Vec<(u64, EpochAnswer)> {
    sim.outputs()
        .iter()
        .filter_map(|o| match &o.output {
            Output::Answer {
                qid: id,
                epoch_ms,
                answer,
            } if *id == qid => Some((*epoch_ms, answer.clone())),
            _ => None,
        })
        .collect()
}

#[test]
fn acquisition_collects_all_qualifying_rows() {
    let topo = Topology::grid(4).unwrap();
    let field = UniformField::new(77);
    let mut sim = new_sim(topo, Box::new(field));
    let q = parse_query(
        QueryId(1),
        "select nodeid, light where light >= 500 epoch duration 2048",
    )
    .unwrap();
    sim.schedule_command(SimTime::ZERO, NodeId::BASE_STATION, Command::Pose(q));
    sim.run_until(SimTime::from_ms(8 * 2048));

    let answers = answers_for(&sim, QueryId(1));
    assert!(
        answers.len() >= 5,
        "expected several epochs, got {}",
        answers.len()
    );
    for (epoch_ms, answer) in &answers {
        let EpochAnswer::Rows(rows) = answer else {
            panic!("expected rows")
        };
        // Ground truth from the field: every node (except the base station)
        // whose light reading at the epoch qualifies.
        let t = SimTime::from_ms(*epoch_ms);
        let expected: Vec<u16> = (1..16u16)
            .filter(|&n| field.reading(NodeId(n), Attribute::Light, t) >= 500.0)
            .collect();
        let got: Vec<u16> = rows.iter().map(|r| r.node).collect();
        assert_eq!(got, expected, "epoch {epoch_ms}");
        for row in rows {
            let v = row.readings.get(Attribute::Light).unwrap();
            assert_eq!(
                v,
                field.reading(NodeId(row.node), Attribute::Light, t),
                "row value must be the sampled reading"
            );
            assert_eq!(row.readings.get(Attribute::NodeId), Some(row.node as f64));
        }
    }
}

#[test]
fn aggregation_computes_exact_max_and_min() {
    let topo = Topology::grid(4).unwrap();
    let field = UniformField::new(123);
    let mut sim = new_sim(topo, Box::new(field));
    let q = parse_query(
        QueryId(2),
        "select max(light), min(light) epoch duration 2048",
    )
    .unwrap();
    sim.schedule_command(SimTime::ZERO, NodeId::BASE_STATION, Command::Pose(q));
    sim.run_until(SimTime::from_ms(6 * 2048));

    let answers = answers_for(&sim, QueryId(2));
    assert!(answers.len() >= 4);
    for (epoch_ms, answer) in &answers {
        let EpochAnswer::Aggregates(vals) = answer else {
            panic!("expected aggregates")
        };
        let t = SimTime::from_ms(*epoch_ms);
        let readings: Vec<f64> = (1..16u16)
            .map(|n| field.reading(NodeId(n), Attribute::Light, t))
            .collect();
        let expected_max = readings.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let expected_min = readings.iter().cloned().fold(f64::INFINITY, f64::min);
        // Selection::aggregates sorts (Min < Max by enum order).
        let min = vals.iter().find(|v| v.op == AggOp::Min).unwrap();
        let max = vals.iter().find(|v| v.op == AggOp::Max).unwrap();
        assert_eq!(min.value, expected_min, "epoch {epoch_ms}");
        assert_eq!(max.value, expected_max, "epoch {epoch_ms}");
    }
}

#[test]
fn aggregation_with_predicate_filters_contributors() {
    let topo = Topology::grid(3).unwrap();
    let field = UniformField::new(9);
    let mut sim = new_sim(topo, Box::new(field));
    let q = parse_query(
        QueryId(3),
        "select count(light) where light >= 300 epoch duration 2048",
    )
    .unwrap();
    sim.schedule_command(SimTime::ZERO, NodeId::BASE_STATION, Command::Pose(q));
    sim.run_until(SimTime::from_ms(6 * 2048));

    for (epoch_ms, answer) in answers_for(&sim, QueryId(3)) {
        let EpochAnswer::Aggregates(vals) = answer else {
            panic!("expected aggregates")
        };
        let t = SimTime::from_ms(epoch_ms);
        let expected = (1..9u16)
            .filter(|&n| field.reading(NodeId(n), Attribute::Light, t) >= 300.0)
            .count() as f64;
        if expected == 0.0 {
            assert!(vals.is_empty(), "no contributors ⇒ no aggregate row");
        } else {
            assert_eq!(vals[0].value, expected, "epoch {epoch_ms}");
        }
    }
}

#[test]
fn epochs_are_aligned_to_the_global_grid() {
    let topo = Topology::grid(3).unwrap();
    let mut sim = new_sim(topo, Box::new(ConstantField));
    let q = parse_query(QueryId(4), "select light epoch duration 4096").unwrap();
    // Posed at an odd time: epochs must still land on multiples of 4096.
    sim.schedule_command(
        SimTime::from_ms(1000),
        NodeId::BASE_STATION,
        Command::Pose(q),
    );
    sim.run_until(SimTime::from_ms(8 * 4096));

    let answers = answers_for(&sim, QueryId(4));
    assert!(!answers.is_empty());
    for (epoch_ms, _) in &answers {
        assert_eq!(epoch_ms % 4096, 0, "unaligned epoch {epoch_ms}");
    }
    // Consecutive epochs are one duration apart.
    for w in answers.windows(2) {
        assert_eq!(w[1].0 - w[0].0, 4096);
    }
}

#[test]
fn termination_stops_answers_and_floods_abort() {
    let topo = Topology::grid(3).unwrap();
    let mut sim = new_sim(topo, Box::new(ConstantField));
    let q = parse_query(QueryId(5), "select light epoch duration 2048").unwrap();
    sim.schedule_command(SimTime::ZERO, NodeId::BASE_STATION, Command::Pose(q));
    sim.schedule_command(
        SimTime::from_ms(5 * 2048),
        NodeId::BASE_STATION,
        Command::Terminate(QueryId(5)),
    );
    sim.run_until(SimTime::from_ms(12 * 2048));

    let answers = answers_for(&sim, QueryId(5));
    let last_epoch = answers.iter().map(|(e, _)| *e).max().unwrap();
    assert!(
        last_epoch <= 6 * 2048,
        "answers kept arriving after termination (last at {last_epoch})"
    );
    assert!(sim.metrics().tx_count(MsgKind::QueryAbort) >= 1);
    // After the abort flood no node still has the query installed.
    for n in 0..9u16 {
        assert_eq!(
            sim.node(NodeId(n)).installed_queries().count(),
            0,
            "node {n}"
        );
    }
}

#[test]
fn two_identical_queries_cost_twice_as_much() {
    // The defining baseline property: no sharing whatsoever.
    let run = |n_queries: u64| {
        let topo = Topology::grid(4).unwrap();
        let mut sim = new_sim(topo, Box::new(ConstantField));
        for i in 0..n_queries {
            let q = parse_query(QueryId(i), "select light epoch duration 2048").unwrap();
            sim.schedule_command(SimTime::ZERO, NodeId::BASE_STATION, Command::Pose(q));
        }
        sim.run_until(SimTime::from_ms(10 * 2048));
        (
            sim.metrics().tx_count(MsgKind::Result),
            sim.metrics().samples(),
        )
    };
    let (msgs1, samples1) = run(1);
    let (msgs2, samples2) = run(2);
    assert!(
        msgs2 >= 2 * msgs1 * 9 / 10,
        "two queries should ≈double result traffic: {msgs1} -> {msgs2}"
    );
    assert_eq!(samples2, 2 * samples1, "duplicated sampling per query");
}

#[test]
fn query_flood_reaches_every_node_once() {
    let topo = Topology::grid(4).unwrap();
    let mut sim = new_sim(topo, Box::new(ConstantField));
    let q: Query = parse_query(QueryId(6), "select light epoch duration 8192").unwrap();
    sim.schedule_command(SimTime::ZERO, NodeId::BASE_STATION, Command::Pose(q));
    sim.run_until(SimTime::from_ms(2000));

    for n in 0..16u16 {
        assert_eq!(
            sim.node(NodeId(n)).installed_queries().count(),
            1,
            "node {n} missing the query"
        );
    }
    // Flooding relays once per node.
    assert_eq!(sim.metrics().tx_count(MsgKind::QueryPropagation), 16);
}
