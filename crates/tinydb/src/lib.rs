//! TinyDB-style acquisitional query processing — the paper's baseline.
//!
//! This crate implements single-query-optimized query processing over the
//! simulated sensor network of [`ttmqo_sim`]: a fixed link-quality routing
//! tree, query flooding, per-query epoch sampling, per-query acquisition row
//! forwarding, and TAG-style slotted in-network aggregation. Running several
//! queries means running several completely independent instances of this
//! machinery — exactly the uncooperative baseline the TTMQO paper improves
//! upon.
//!
//! The node behaviour is [`TinyDbApp`]; drive it with
//! [`Simulator`](ttmqo_sim::Simulator) and inject queries via
//! [`Command::Pose`] / [`Command::Terminate`] commands addressed to the base
//! station (node 0). Answers appear as [`Output::Answer`] records.
//!
//! ```
//! use ttmqo_query::{parse_query, QueryId};
//! use ttmqo_sim::{ConstantField, NodeId, RadioParams, SimConfig, SimTime, Simulator, Topology};
//! use ttmqo_tinydb::{Command, Output, TinyDbApp, TinyDbConfig};
//!
//! let topo = Topology::grid(3)?;
//! let mut sim = Simulator::new(
//!     topo,
//!     RadioParams::lossless(),
//!     SimConfig::default(),
//!     Box::new(ConstantField),
//!     |_, _| TinyDbApp::new(TinyDbConfig::default()),
//! );
//! let q = parse_query(QueryId(1), "select light epoch duration 2048").unwrap();
//! sim.schedule_command(SimTime::ZERO, NodeId::BASE_STATION, Command::Pose(q));
//! sim.run_until(SimTime::from_ms(10 * 2048));
//! let answers = sim
//!     .outputs()
//!     .iter()
//!     .filter(|o| matches!(o.output, Output::Answer { .. }))
//!     .count();
//! assert!(answers >= 8, "one answer per completed epoch, got {answers}");
//! # Ok::<(), ttmqo_sim::TopologyError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod app;
mod messages;
mod srt;

pub use app::{TinyDbApp, TinyDbConfig};
pub use messages::{Command, Output, TinyDbPayload};
pub use srt::Srt;
