//! Wire messages, commands and outputs shared by the TinyDB-style baseline
//! (and reused by the TTMQO runner for its base-station tier).

use ttmqo_query::{EpochAnswer, PartialAgg, Query, QueryId, Row};

/// Radio payloads of the baseline protocol.
#[derive(Debug, Clone)]
pub enum TinyDbPayload {
    /// Query dissemination flood.
    Query(Query),
    /// Query abortion flood.
    Abort(QueryId),
    /// Acquisition result rows for one query flowing up the tree.
    Rows {
        /// The query the rows answer.
        qid: QueryId,
        /// Epoch start time the rows belong to, ms.
        epoch_ms: u64,
        /// The rows themselves.
        rows: Vec<Row>,
    },
    /// Partial aggregate state for one query flowing up the tree, aligned
    /// with the query's aggregate list.
    Partials {
        /// The query the partials answer.
        qid: QueryId,
        /// Epoch start time the partials belong to, ms.
        epoch_ms: u64,
        /// One partial per `(op, attr)` in the query's aggregate list;
        /// `None` where no qualifying reading contributed yet.
        partials: Vec<Option<PartialAgg>>,
    },
}

impl TinyDbPayload {
    /// Application payload length in bytes, mirroring TinyDB's packed
    /// representations: 2-byte values, 2-byte ids, 2-byte epoch counter.
    pub fn wire_size(&self) -> usize {
        match self {
            // qid + epoch + flags + attribute bitmap + per-predicate bounds
            // (+ four 2-byte coordinates for a region clause).
            TinyDbPayload::Query(q) => {
                8 + 4 * q.predicates().len() + if q.region().is_some() { 8 } else { 0 }
            }
            TinyDbPayload::Abort(_) => 2,
            TinyDbPayload::Rows { rows, .. } => {
                4 + rows.iter().map(|r| 2 + 2 * r.readings.len()).sum::<usize>()
            }
            TinyDbPayload::Partials { partials, .. } => {
                4 + partials
                    .iter()
                    .map(|p| p.as_ref().map_or(0, |p| p.op().wire_size()))
                    .sum::<usize>()
            }
        }
    }
}

/// External commands to the base station.
#[derive(Debug, Clone)]
pub enum Command {
    /// A user poses a new query.
    Pose(Query),
    /// A user terminates a running query.
    Terminate(QueryId),
}

/// Records the base station emits to the outside world.
#[derive(Debug, Clone, PartialEq)]
pub enum Output {
    /// One query's complete answer for one epoch.
    Answer {
        /// The answered query.
        qid: QueryId,
        /// Start of the answered epoch, ms.
        epoch_ms: u64,
        /// The answer.
        answer: EpochAnswer,
    },
}

use ttmqo_sim::{Restorable, SnapReader, SnapWriter, Snapshot, SnapshotError};

impl Snapshot for TinyDbPayload {
    fn write(&self, w: &mut SnapWriter) {
        match self {
            TinyDbPayload::Query(q) => {
                w.put_u8(0);
                q.write(w);
            }
            TinyDbPayload::Abort(qid) => {
                w.put_u8(1);
                qid.write(w);
            }
            TinyDbPayload::Rows {
                qid,
                epoch_ms,
                rows,
            } => {
                w.put_u8(2);
                qid.write(w);
                w.put_u64(*epoch_ms);
                rows.write(w);
            }
            TinyDbPayload::Partials {
                qid,
                epoch_ms,
                partials,
            } => {
                w.put_u8(3);
                qid.write(w);
                w.put_u64(*epoch_ms);
                partials.write(w);
            }
        }
    }
}

impl Restorable for TinyDbPayload {
    fn read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(match r.u8()? {
            0 => TinyDbPayload::Query(Query::read(r)?),
            1 => TinyDbPayload::Abort(QueryId::read(r)?),
            2 => TinyDbPayload::Rows {
                qid: QueryId::read(r)?,
                epoch_ms: r.u64()?,
                rows: Vec::read(r)?,
            },
            3 => TinyDbPayload::Partials {
                qid: QueryId::read(r)?,
                epoch_ms: r.u64()?,
                partials: Vec::read(r)?,
            },
            b => {
                return Err(SnapshotError::Corrupt(format!(
                    "invalid TinyDbPayload tag {b}"
                )))
            }
        })
    }
}

impl Snapshot for Command {
    fn write(&self, w: &mut SnapWriter) {
        match self {
            Command::Pose(q) => {
                w.put_u8(0);
                q.write(w);
            }
            Command::Terminate(qid) => {
                w.put_u8(1);
                qid.write(w);
            }
        }
    }
}

impl Restorable for Command {
    fn read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(match r.u8()? {
            0 => Command::Pose(Query::read(r)?),
            1 => Command::Terminate(QueryId::read(r)?),
            b => return Err(SnapshotError::Corrupt(format!("invalid Command tag {b}"))),
        })
    }
}

impl Snapshot for Output {
    fn write(&self, w: &mut SnapWriter) {
        match self {
            Output::Answer {
                qid,
                epoch_ms,
                answer,
            } => {
                w.put_u8(0);
                qid.write(w);
                w.put_u64(*epoch_ms);
                answer.write(w);
            }
        }
    }
}

impl Restorable for Output {
    fn read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(match r.u8()? {
            0 => Output::Answer {
                qid: QueryId::read(r)?,
                epoch_ms: r.u64()?,
                answer: EpochAnswer::read(r)?,
            },
            b => return Err(SnapshotError::Corrupt(format!("invalid Output tag {b}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ttmqo_query::{AggOp, Attribute, QueryId, Readings};

    #[test]
    fn wire_sizes_scale_with_content() {
        let q = ttmqo_query::parse_query(
            QueryId(1),
            "select light where 100<light<300 epoch duration 2048",
        )
        .unwrap();
        let qmsg = TinyDbPayload::Query(q);
        assert_eq!(qmsg.wire_size(), 12);
        assert_eq!(TinyDbPayload::Abort(QueryId(1)).wire_size(), 2);

        let mut readings = Readings::new();
        readings.set(Attribute::Light, 1.0);
        readings.set(Attribute::Temp, 2.0);
        let row = Row {
            node: 1,
            time_ms: 0,
            readings,
        };
        let one = TinyDbPayload::Rows {
            qid: QueryId(1),
            epoch_ms: 0,
            rows: vec![row.clone()],
        };
        let two = TinyDbPayload::Rows {
            qid: QueryId(1),
            epoch_ms: 0,
            rows: vec![row.clone(), row],
        };
        assert_eq!(one.wire_size(), 4 + 6);
        assert_eq!(two.wire_size(), 4 + 12);

        let p = TinyDbPayload::Partials {
            qid: QueryId(1),
            epoch_ms: 0,
            partials: vec![Some(AggOp::Max.seed(5.0)), None, Some(AggOp::Avg.seed(2.0))],
        };
        assert_eq!(p.wire_size(), (4 + 2) + 4);
    }
}
