//! Semantic Routing Tree (SRT) — TinyDB's dissemination pruning.
//!
//! §3.2.2 of the TTMQO paper: "If the query is a region-based query or a
//! node-id based query, the set of answer nodes are known in advance, and
//! more efficient techniques such as SRT can be used [instead of flooding]."
//!
//! The classic SRT keeps, at every node, the interval of attribute values
//! (here: node ids) present in its routing subtree. A query carrying a
//! `nodeid` range predicate is forwarded into a subtree only if the subtree's
//! interval intersects the predicate. Intervals over-approximate the id set,
//! so pruning can only suppress provably irrelevant forwards — never a
//! relevant one: every matching node's ancestor chain (whose subtrees all
//! contain it) keeps forwarding.

use ttmqo_query::{Attribute, Query, Region};
use ttmqo_sim::{NodeId, Topology};

/// Per-node `[min, max]` id intervals and spatial bounding boxes of the fixed
/// routing tree's subtrees.
#[derive(Debug, Clone)]
pub struct Srt {
    ranges: Vec<(u16, u16)>,
    bboxes: Vec<Region>,
    positions: Vec<(f64, f64)>,
}

impl Srt {
    /// Builds the SRT over the topology's fixed (link-quality) routing tree.
    pub fn build(topo: &Topology) -> Self {
        Self::build_with_parents(topo, |node| topo.default_parent(node))
    }

    /// Builds the SRT over the routing tree that survives after `dead` nodes
    /// crash: each surviving node reparents to its best-link *live* upper
    /// neighbour (the same rule [`Topology::default_parent`] uses, restricted
    /// to survivors). Dead nodes keep their own point interval but fold into
    /// nobody; a survivor whose upper neighbours are all dead is orphaned and
    /// likewise folds into nobody. With an empty `dead` list the result is
    /// identical to [`Srt::build`]. This is the tree-repair step of the
    /// self-healing extension — the paper leaves node failures to future
    /// work.
    pub fn build_excluding(topo: &Topology, dead: &[NodeId]) -> Self {
        let mut is_dead = vec![false; topo.node_count()];
        for d in dead {
            if d.index() < is_dead.len() {
                is_dead[d.index()] = true;
            }
        }
        Self::build_with_parents(topo, |node| {
            if is_dead[node.index()] {
                return None;
            }
            topo.upper_neighbors(node)
                .into_iter()
                .filter(|n| !is_dead[n.index()])
                .max_by(|&a, &b| {
                    topo.link_quality(node, a)
                        .partial_cmp(&topo.link_quality(node, b))
                        .expect("link qualities are finite")
                        .then(b.0.cmp(&a.0).reverse())
                })
        })
    }

    fn build_with_parents<F: Fn(NodeId) -> Option<NodeId>>(topo: &Topology, parent_of: F) -> Self {
        let n = topo.node_count();
        let mut ranges: Vec<(u16, u16)> = (0..n as u16).map(|i| (i, i)).collect();
        let mut bboxes: Vec<Region> = topo
            .nodes()
            .map(|node| {
                let p = topo.position(node);
                Region::new(p.x, p.y, p.x, p.y).expect("point region")
            })
            .collect();
        // Children ordered by decreasing level so each node's interval is
        // complete before its parent folds it in.
        let mut order: Vec<NodeId> = topo.nodes().collect();
        order.sort_by_key(|&node| std::cmp::Reverse(topo.level(node)));
        for node in order {
            if let Some(parent) = parent_of(node) {
                let (clo, chi) = ranges[node.index()];
                let r = &mut ranges[parent.index()];
                r.0 = r.0.min(clo);
                r.1 = r.1.max(chi);
                let child_box = bboxes[node.index()];
                let parent_box = &mut bboxes[parent.index()];
                *parent_box = parent_box.union_cover(&child_box);
            }
        }
        let positions = topo
            .nodes()
            .map(|node| {
                let p = topo.position(node);
                (p.x, p.y)
            })
            .collect();
        Srt {
            ranges,
            bboxes,
            positions,
        }
    }

    /// The id interval covered by `node`'s subtree (itself included).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn subtree_range(&self, node: NodeId) -> (u16, u16) {
        self.ranges[node.index()]
    }

    /// The spatial bounding box of `node`'s subtree (itself included).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn subtree_bbox(&self, node: NodeId) -> Region {
        self.bboxes[node.index()]
    }

    /// Whether `node` should forward the dissemination of `query`.
    ///
    /// `true` unless the query carries a `nodeid` range predicate that misses
    /// the node's whole subtree interval, or a region clause disjoint from
    /// the subtree's spatial bounding box.
    pub fn forwards(&self, node: NodeId, query: &Query) -> bool {
        if let Some(region) = query.region() {
            if !region.intersects(&self.bboxes[node.index()]) {
                return false;
            }
        }
        let Some(range) = query.predicates().range(Attribute::NodeId) else {
            return true;
        };
        let (lo, hi) = (range.min(), range.max());
        let (smin, smax) = self.ranges[node.index()];
        hi >= smin as f64 && lo <= smax as f64
    }

    /// Whether `node` itself can ever produce data for `query` (its own id
    /// satisfies any `nodeid` predicate and its position any region clause).
    pub fn node_matches(&self, node: NodeId, query: &Query) -> bool {
        if let Some(region) = query.region() {
            let (x, y) = self.positions[node.index()];
            if !region.contains(x, y) {
                return false;
            }
        }
        match query.predicates().range(Attribute::NodeId) {
            Some(range) => range.matches(node.0 as f64),
            None => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ttmqo_query::{parse_query, QueryId};

    fn q(text: &str) -> Query {
        parse_query(QueryId(1), text).unwrap()
    }

    #[test]
    fn subtree_ranges_cover_descendants() {
        let topo = Topology::grid(4).unwrap();
        let srt = Srt::build(&topo);
        // The base station's subtree is the whole network.
        assert_eq!(srt.subtree_range(NodeId(0)), (0, 15));
        // Every node's interval contains its own id.
        for node in topo.nodes() {
            let (lo, hi) = srt.subtree_range(node);
            assert!(lo <= node.0 && node.0 <= hi);
        }
        // A parent's interval contains each child's interval.
        for node in topo.nodes() {
            if let Some(parent) = topo.default_parent(node) {
                let (clo, chi) = srt.subtree_range(node);
                let (plo, phi) = srt.subtree_range(parent);
                assert!(plo <= clo && phi >= chi, "{node} ⊄ {parent}");
            }
        }
    }

    #[test]
    fn queries_without_nodeid_predicate_always_forward() {
        let topo = Topology::grid(4).unwrap();
        let srt = Srt::build(&topo);
        let query = q("select light where 100<light<300 epoch duration 2048");
        for node in topo.nodes() {
            assert!(srt.forwards(node, &query));
        }
    }

    #[test]
    fn disjoint_nodeid_range_prunes_leaf_subtrees() {
        let topo = Topology::grid(4).unwrap();
        let srt = Srt::build(&topo);
        let query = q("select light where nodeid = 3 epoch duration 2048");
        // The base station always forwards (its subtree holds everything).
        assert!(srt.forwards(NodeId(0), &query));
        // A leaf whose id (and subtree) is far from 3 does not.
        let pruned = topo.nodes().filter(|&n| !srt.forwards(n, &query)).count();
        assert!(pruned > 0, "some subtree must be prunable");
        // Every ancestor of node 3 still forwards.
        let mut node = NodeId(3);
        while let Some(parent) = topo.default_parent(node) {
            assert!(
                srt.forwards(parent, &query),
                "ancestor {parent} must forward"
            );
            node = parent;
        }
    }

    /// The live-parent rule of `build_excluding`, replicated so tests can
    /// walk the repaired tree independently.
    fn live_parent(topo: &Topology, node: NodeId, dead: &[NodeId]) -> Option<NodeId> {
        if dead.contains(&node) {
            return None;
        }
        topo.upper_neighbors(node)
            .into_iter()
            .filter(|n| !dead.contains(n))
            .max_by(|&a, &b| {
                topo.link_quality(node, a)
                    .partial_cmp(&topo.link_quality(node, b))
                    .unwrap()
                    .then(b.0.cmp(&a.0).reverse())
            })
    }

    #[test]
    fn build_excluding_nothing_matches_build() {
        let topo = Topology::grid(4).unwrap();
        let a = Srt::build(&topo);
        let b = Srt::build_excluding(&topo, &[]);
        for node in topo.nodes() {
            assert_eq!(a.subtree_range(node), b.subtree_range(node));
            assert_eq!(a.subtree_bbox(node), b.subtree_bbox(node));
        }
    }

    #[test]
    fn dead_corner_leaf_leaves_the_root_interval() {
        let topo = Topology::grid(4).unwrap();
        let srt = Srt::build_excluding(&topo, &[NodeId(15)]);
        // Node 15 is the far-corner leaf with the maximum id: dead, it folds
        // into nobody, so the base station's interval shrinks past it.
        assert_eq!(srt.subtree_range(NodeId(0)), (0, 14));
        assert_eq!(srt.subtree_range(NodeId(15)), (15, 15));
    }

    #[test]
    fn survivors_reparent_around_dead_interior_nodes() {
        let topo = Topology::grid(4).unwrap();
        let dead = [NodeId(1), NodeId(5)];
        let srt = Srt::build_excluding(&topo, &dead);
        for node in topo.nodes() {
            if dead.contains(&node) || node == NodeId(0) {
                continue;
            }
            // Every survivor still has a live route to the base station…
            let mut chain = Vec::new();
            let mut cur = node;
            while let Some(p) = live_parent(&topo, cur, &dead) {
                chain.push(p);
                cur = p;
            }
            assert_eq!(cur, NodeId(0), "{node} must reach the base station");
            // …and pruning stays sound along it: a query targeting exactly
            // this node is forwarded by every live ancestor.
            let query = q(&format!(
                "select light where nodeid = {} epoch duration 2048",
                node.0
            ));
            for ancestor in chain {
                assert!(
                    srt.forwards(ancestor, &query),
                    "live ancestor {ancestor} of {node} must forward"
                );
            }
        }
    }

    #[test]
    fn node_matches_respects_the_id_predicate() {
        let topo = Topology::grid(4).unwrap();
        let srt = Srt::build(&topo);
        let query = q("select light where 4 <= nodeid <= 6 epoch duration 2048");
        assert!(!srt.node_matches(NodeId(3), &query));
        assert!(srt.node_matches(NodeId(4), &query));
        assert!(srt.node_matches(NodeId(6), &query));
        assert!(!srt.node_matches(NodeId(7), &query));
        let free = q("select light epoch duration 2048");
        assert!(srt.node_matches(NodeId(3), &free));
    }
}

#[cfg(test)]
mod bbox_tests {
    use super::*;
    use ttmqo_query::{parse_query, QueryId};

    #[test]
    fn subtree_bboxes_nest_along_the_tree() {
        let topo = Topology::grid(4).unwrap();
        let srt = Srt::build(&topo);
        for node in topo.nodes() {
            let own = topo.position(node);
            let bbox = srt.subtree_bbox(node);
            assert!(bbox.contains(own.x, own.y), "{node}'s bbox misses itself");
            if let Some(parent) = topo.default_parent(node) {
                assert!(
                    srt.subtree_bbox(parent).contains_region(&bbox),
                    "{parent}'s bbox must contain {node}'s"
                );
            }
        }
    }

    #[test]
    fn region_disjoint_from_subtree_is_pruned() {
        let topo = Topology::grid(4).unwrap();
        let srt = Srt::build(&topo);
        // A region containing nothing but the far SE corner.
        let query = parse_query(
            QueryId(1),
            "select light where region(55, 55, 60, 60) epoch duration 2048",
        )
        .unwrap();
        // The base station's subtree covers everything, so it forwards.
        assert!(srt.forwards(NodeId(0), &query));
        // At least one node's subtree is entirely north-west of the region.
        let pruned = topo.nodes().filter(|&n| !srt.forwards(n, &query)).count();
        assert!(pruned > 0, "some subtree must be outside the region");
        // Node 15 at (60, 60) matches and all its ancestors forward.
        assert!(srt.node_matches(NodeId(15), &query));
        let mut node = NodeId(15);
        while let Some(parent) = topo.default_parent(node) {
            assert!(srt.forwards(parent, &query));
            node = parent;
        }
    }

    #[test]
    fn region_and_id_predicates_prune_conjunctively() {
        let topo = Topology::grid(4).unwrap();
        let srt = Srt::build(&topo);
        let query = parse_query(
            QueryId(1),
            "select light where nodeid = 15 and region(0, 0, 10, 10) epoch duration 2048",
        )
        .unwrap();
        // Node 15's position (60, 60) is outside the region: it never matches
        // even though its id does.
        assert!(!srt.node_matches(NodeId(15), &query));
    }
}

use ttmqo_sim::{Restorable, SnapReader, SnapWriter, Snapshot, SnapshotError};

impl Snapshot for Srt {
    // The SRT is a pure function of the topology and the dead set it was
    // built from, but the dead set is not retained — so the derived tables
    // are serialized rather than rebuilt.
    fn write(&self, w: &mut SnapWriter) {
        let Srt {
            ranges,
            bboxes,
            positions,
        } = self;
        ranges.write(w);
        bboxes.write(w);
        positions.write(w);
    }
}

impl Restorable for Srt {
    fn read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let ranges: Vec<(u16, u16)> = Vec::read(r)?;
        let bboxes: Vec<Region> = Vec::read(r)?;
        let positions: Vec<(f64, f64)> = Vec::read(r)?;
        if bboxes.len() != ranges.len() || positions.len() != ranges.len() {
            return Err(SnapshotError::Corrupt("SRT table lengths disagree".into()));
        }
        Ok(Srt {
            ranges,
            bboxes,
            positions,
        })
    }
}
