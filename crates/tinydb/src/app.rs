//! The baseline node application: TinyDB-style acquisitional query
//! processing, one routing tree, every query handled independently.
//!
//! This is the comparison point of the paper's §4.1: "each query is optimized
//! by TinyDB, and multiple queries that have been sent to the base station are
//! all injected into the network to run concurrently without multi-query
//! optimization". Concretely:
//!
//! * one **fixed routing tree** built from link quality (each node parents on
//!   its best upper-level neighbour);
//! * queries are **flooded** through the network and installed everywhere;
//! * every query **samples separately** each epoch, even when another query
//!   samples the same attribute at the same instant;
//! * acquisition rows travel **per query** up the tree, forwarded hop by hop;
//! * aggregation uses TAG-style slotted in-network aggregation, **per query**:
//!   deeper levels transmit earlier so parents can merge partials.

use crate::messages::{Command, Output, TinyDbPayload};
use crate::srt::Srt;
use std::collections::{BTreeMap, HashMap, HashSet};
use ttmqo_query::{AggValue, EpochAnswer, PartialAgg, Query, QueryId, Readings, Row, Selection};
use ttmqo_sim::{Ctx, Destination, MsgKind, NodeApp, NodeId, ProvenanceId, TraceEvent};

/// Timer-key kinds (low 4 bits of the key).
const KIND_SAMPLE: u64 = 0;
const KIND_SLOT: u64 = 1;
const KIND_CLOSE: u64 = 2;
const KIND_FLOOD_QUERY: u64 = 3;
const KIND_FLOOD_ABORT: u64 = 4;

fn key(kind: u64, qid: QueryId, epoch_idx: u64) -> u64 {
    (epoch_idx << 32) | ((qid.0 & 0x0FFF_FFFF) << 4) | kind
}

fn key_parts(key: u64) -> (u64, QueryId, u64) {
    (key & 0xF, QueryId((key >> 4) & 0x0FFF_FFFF), key >> 32)
}

/// Per-node configuration of the baseline.
#[derive(Debug, Clone)]
pub struct TinyDbConfig {
    /// Length of one TAG transmission slot, ms.
    pub slot_ms: u64,
    /// Maximum random jitter added to flood rebroadcasts and slot
    /// transmissions, ms.
    pub jitter_ms: u64,
    /// Whether the Semantic Routing Tree prunes the dissemination of
    /// queries with `nodeid` predicates (TinyDB's SRT; off by default to
    /// match the paper's flooding baseline).
    pub srt: bool,
}

impl Default for TinyDbConfig {
    fn default() -> Self {
        TinyDbConfig {
            slot_ms: 64,
            jitter_ms: 24,
            srt: false,
        }
    }
}

/// The baseline TinyDB-style node application.
///
/// Use [`TinyDbApp::new`] in the factory passed to
/// [`Simulator::new`](ttmqo_sim::Simulator::new); node 0 automatically acts
/// as the base station.
#[derive(Debug)]
pub struct TinyDbApp {
    config: TinyDbConfig,
    /// Installed queries.
    queries: BTreeMap<QueryId, Query>,
    /// Queries whose dissemination flood we already relayed.
    seen_query_floods: HashSet<QueryId>,
    /// Aborts we already relayed.
    seen_abort_floods: HashSet<QueryId>,
    /// Aggregation partials per (query, epoch start ms), aligned with the
    /// query's aggregate list.
    agg_buffers: HashMap<(QueryId, u64), Vec<Option<PartialAgg>>>,
    /// Base station only: acquisition rows per (query, epoch start ms).
    row_buffers: HashMap<(QueryId, u64), Vec<Row>>,
    /// Semantic routing tree (built lazily when `config.srt` is on).
    srt: Option<Srt>,
}

impl TinyDbApp {
    /// Creates a baseline node with the given configuration.
    pub fn new(config: TinyDbConfig) -> Self {
        TinyDbApp {
            config,
            queries: BTreeMap::new(),
            seen_query_floods: HashSet::new(),
            seen_abort_floods: HashSet::new(),
            agg_buffers: HashMap::new(),
            row_buffers: HashMap::new(),
            srt: None,
        }
    }

    fn srt(&mut self, ctx: &Ctx<'_, TinyDbPayload, Output>) -> &Srt {
        self.srt.get_or_insert_with(|| Srt::build(ctx.topology()))
    }

    /// Currently installed queries (for tests and inspection).
    pub fn installed_queries(&self) -> impl Iterator<Item = &Query> {
        self.queries.values()
    }

    fn install(&mut self, ctx: &mut Ctx<'_, TinyDbPayload, Output>, query: Query) {
        let qid = query.id();
        if self.queries.contains_key(&qid) {
            return;
        }
        let epoch = query.epoch();
        self.queries.insert(qid, query);
        // First firing strictly in the future, aligned to the global epoch
        // grid (TinyDB synchronizes epochs via time sync).
        let now = ctx.now().as_ms();
        let t0 = epoch.next_fire_at(now + 1);
        ctx.set_timer(t0 - now, key(KIND_SAMPLE, qid, 0));
    }

    fn uninstall(&mut self, qid: QueryId) {
        self.queries.remove(&qid);
        self.agg_buffers.retain(|(id, _), _| *id != qid);
        self.row_buffers.retain(|(id, _), _| *id != qid);
    }

    fn relay_query_flood(&mut self, ctx: &mut Ctx<'_, TinyDbPayload, Output>, query: &Query) {
        let qid = query.id();
        if !self.seen_query_floods.insert(qid) {
            return;
        }
        let (forwards, matches) = if self.config.srt && !ctx.is_base_station() {
            let node = ctx.node();
            let srt = self.srt(ctx);
            (srt.forwards(node, query), srt.node_matches(node, query))
        } else {
            (true, true)
        };
        if forwards {
            // Re-broadcast after a short random jitter to desynchronize the
            // flood.
            let jitter = 1 + ctx.rand_u64() % self.config.jitter_ms.max(1);
            ctx.set_timer(jitter, key(KIND_FLOOD_QUERY, qid, 0));
        }
        if matches || ctx.is_base_station() {
            self.install(ctx, query.clone());
        } else {
            // SRT-pruned: keep the definition around so the flood-relay
            // timer can re-broadcast it, but bypass `install` — no sample
            // timer is ever armed, so this node never sources data for it.
            self.queries.entry(qid).or_insert_with(|| query.clone());
        }
    }

    fn relay_abort_flood(&mut self, ctx: &mut Ctx<'_, TinyDbPayload, Output>, qid: QueryId) {
        if !self.seen_abort_floods.insert(qid) {
            return;
        }
        let jitter = 1 + ctx.rand_u64() % self.config.jitter_ms.max(1);
        ctx.set_timer(jitter, key(KIND_FLOOD_ABORT, qid, 0));
        self.uninstall(qid);
    }

    /// The time this node's TAG slot opens within an epoch that started at
    /// `epoch_ms` (deeper levels transmit earlier).
    fn slot_time(&self, ctx: &Ctx<'_, TinyDbPayload, Output>, epoch_ms: u64) -> u64 {
        let depth_from_bottom = ctx.topology().max_level() - ctx.level();
        epoch_ms + depth_from_bottom as u64 * self.config.slot_ms
    }

    /// When the base station closes an epoch that started at `epoch_ms`.
    fn close_time(&self, ctx: &Ctx<'_, TinyDbPayload, Output>, epoch_ms: u64) -> u64 {
        epoch_ms + (ctx.topology().max_level() as u64 + 1) * self.config.slot_ms + 32
    }

    fn parent(&self, ctx: &Ctx<'_, TinyDbPayload, Output>) -> Option<NodeId> {
        ctx.topology().default_parent(ctx.node())
    }

    /// Whether this node's physical position satisfies the query's region
    /// clause (queries without a region cover the whole deployment).
    fn in_region(ctx: &Ctx<'_, TinyDbPayload, Output>, query: &Query) -> bool {
        query.region().is_none_or(|r| {
            let pos = ctx.topology().position(ctx.node());
            r.contains(pos.x, pos.y)
        })
    }

    fn handle_sample(
        &mut self,
        ctx: &mut Ctx<'_, TinyDbPayload, Output>,
        qid: QueryId,
        epoch_ms: u64,
    ) {
        let Some(query) = self.queries.get(&qid).cloned() else {
            return; // query terminated since the timer was set
        };
        // Re-arm the periodic sample timer.
        ctx.set_timer(query.epoch().as_ms(), key(KIND_SAMPLE, qid, 0));

        // One fire per query: the baseline shares nothing, so (unlike the
        // in-network tier's single fire listing every due query) each query's
        // epoch announces itself separately.
        if ctx.trace_enabled() {
            ctx.trace(TraceEvent::EpochFire {
                node: ctx.node(),
                epoch_ms,
                due: vec![qid],
            });
        }

        if ctx.is_base_station() {
            // The base station does not sense; it only closes the epoch.
            let close_at = self.close_time(ctx, epoch_ms);
            let epoch_idx = epoch_ms / ttmqo_query::BASE_EPOCH_MS;
            ctx.set_timer(close_at - epoch_ms, key(KIND_CLOSE, qid, epoch_idx));
            return;
        }
        if !Self::in_region(ctx, &query) {
            // Outside the query's region: never a source (still a relay).
            return;
        }

        // Sample every attribute this query needs — independently of any
        // other query (the baseline shares nothing).
        let mut readings = Readings::new();
        for attr in query.sampled_attributes() {
            let v = ctx.read_sensor(attr);
            readings.set(attr, v);
        }
        let qualifies = query.predicates().matches_with(|attr| {
            readings
                .get(attr)
                .expect("all predicate attributes were sampled")
        });

        match query.selection() {
            Selection::Attributes(attrs) => {
                if qualifies {
                    let row = Row {
                        node: ctx.node().0,
                        time_ms: epoch_ms,
                        readings: readings.project(attrs),
                    };
                    let payload = TinyDbPayload::Rows {
                        qid,
                        epoch_ms,
                        rows: vec![row],
                    };
                    if let Some(parent) = self.parent(ctx) {
                        if ctx.trace_enabled() {
                            ctx.trace(TraceEvent::ResultHop {
                                from: ctx.node(),
                                to: vec![parent],
                                epoch_ms,
                                prov: vec![ProvenanceId::new(ctx.node(), epoch_ms)],
                                qids: vec![qid],
                                origin: true,
                            });
                        }
                        let bytes = payload.wire_size();
                        ctx.send(
                            Destination::Unicast(parent),
                            MsgKind::Result,
                            bytes,
                            payload,
                        );
                    }
                }
            }
            Selection::Aggregates(aggs) => {
                if qualifies {
                    let seeded: Vec<Option<PartialAgg>> = aggs
                        .iter()
                        .map(|&(op, attr)| readings.get(attr).map(|v| op.seed(v)))
                        .collect();
                    merge_partials(
                        self.agg_buffers
                            .entry((qid, epoch_ms))
                            .or_insert_with(|| vec![None; aggs.len()]),
                        &seeded,
                    );
                }
                // Arm this node's TAG slot whether or not it qualified: it
                // may still need to forward children's partials.
                let epoch_idx = epoch_ms / ttmqo_query::BASE_EPOCH_MS;
                let slot_at =
                    self.slot_time(ctx, epoch_ms) + ctx.rand_u64() % self.config.jitter_ms.max(1);
                let now = ctx.now().as_ms();
                ctx.set_timer(
                    slot_at.saturating_sub(now).max(1),
                    key(KIND_SLOT, qid, epoch_idx),
                );
            }
        }
    }

    fn handle_slot(
        &mut self,
        ctx: &mut Ctx<'_, TinyDbPayload, Output>,
        qid: QueryId,
        epoch_ms: u64,
    ) {
        let Some(partials) = self.agg_buffers.remove(&(qid, epoch_ms)) else {
            return; // nothing to send this epoch
        };
        if partials.iter().all(Option::is_none) {
            return;
        }
        if let Some(parent) = self.parent(ctx) {
            // TAG merges per-origin identity away: no provenance to carry.
            if ctx.trace_enabled() {
                ctx.trace(TraceEvent::ResultHop {
                    from: ctx.node(),
                    to: vec![parent],
                    epoch_ms,
                    prov: Vec::new(),
                    qids: vec![qid],
                    origin: false,
                });
            }
            let payload = TinyDbPayload::Partials {
                qid,
                epoch_ms,
                partials,
            };
            let bytes = payload.wire_size();
            ctx.send(
                Destination::Unicast(parent),
                MsgKind::Result,
                bytes,
                payload,
            );
        }
    }

    fn handle_close(
        &mut self,
        ctx: &mut Ctx<'_, TinyDbPayload, Output>,
        qid: QueryId,
        epoch_ms: u64,
    ) {
        let Some(query) = self.queries.get(&qid) else {
            self.agg_buffers.remove(&(qid, epoch_ms));
            self.row_buffers.remove(&(qid, epoch_ms));
            return;
        };
        let answer = match query.selection() {
            Selection::Attributes(_) => {
                let mut rows = self
                    .row_buffers
                    .remove(&(qid, epoch_ms))
                    .unwrap_or_default();
                rows.sort_by_key(|r| r.node);
                EpochAnswer::Rows(rows)
            }
            Selection::Aggregates(aggs) => {
                let partials = self
                    .agg_buffers
                    .remove(&(qid, epoch_ms))
                    .unwrap_or_default();
                let values: Vec<AggValue> = aggs
                    .iter()
                    .zip(partials.iter().chain(std::iter::repeat(&None)))
                    .filter_map(|(&(op, attr), p)| {
                        p.as_ref().map(|p| AggValue {
                            op,
                            attr,
                            value: p.finalize(),
                        })
                    })
                    .collect();
                EpochAnswer::Aggregates(values)
            }
        };
        ctx.emit(Output::Answer {
            qid,
            epoch_ms,
            answer,
        });
    }
}

/// Merges `incoming` into `buffer` element-wise.
fn merge_partials(buffer: &mut Vec<Option<PartialAgg>>, incoming: &[Option<PartialAgg>]) {
    if buffer.len() < incoming.len() {
        buffer.resize(incoming.len(), None);
    }
    for (slot, inc) in buffer.iter_mut().zip(incoming) {
        match (slot.as_mut(), inc) {
            (Some(a), Some(b)) => a.merge(b).expect("aligned partials share operators"),
            (None, Some(b)) => *slot = Some(*b),
            _ => {}
        }
    }
}

impl NodeApp for TinyDbApp {
    type Payload = TinyDbPayload;
    type Command = Command;
    type Output = Output;

    fn on_start(&mut self, _ctx: &mut Ctx<'_, TinyDbPayload, Output>) {}

    fn on_timer(&mut self, ctx: &mut Ctx<'_, TinyDbPayload, Output>, timer_key: u64) {
        let (kind, qid, epoch_idx) = key_parts(timer_key);
        match kind {
            KIND_SAMPLE => {
                // The epoch that just started is "now" rounded to the grid.
                let Some(query) = self.queries.get(&qid) else {
                    return;
                };
                let now = ctx.now().as_ms();
                let epoch_ms = now - now % query.epoch().as_ms();
                self.handle_sample(ctx, qid, epoch_ms);
            }
            KIND_SLOT => {
                self.handle_slot(ctx, qid, epoch_idx * ttmqo_query::BASE_EPOCH_MS);
            }
            KIND_CLOSE => {
                self.handle_close(ctx, qid, epoch_idx * ttmqo_query::BASE_EPOCH_MS);
            }
            KIND_FLOOD_QUERY => {
                if let Some(query) = self.queries.get(&qid) {
                    let payload = TinyDbPayload::Query(query.clone());
                    let bytes = payload.wire_size();
                    ctx.send(
                        Destination::Broadcast,
                        MsgKind::QueryPropagation,
                        bytes,
                        payload,
                    );
                }
            }
            KIND_FLOOD_ABORT => {
                let payload = TinyDbPayload::Abort(qid);
                let bytes = payload.wire_size();
                ctx.send(Destination::Broadcast, MsgKind::QueryAbort, bytes, payload);
            }
            _ => unreachable!("unknown timer kind {kind}"),
        }
    }

    fn on_message(
        &mut self,
        ctx: &mut Ctx<'_, TinyDbPayload, Output>,
        _from: NodeId,
        _kind: MsgKind,
        payload: &TinyDbPayload,
    ) {
        match payload {
            TinyDbPayload::Query(q) => self.relay_query_flood(ctx, q),
            TinyDbPayload::Abort(qid) => self.relay_abort_flood(ctx, *qid),
            TinyDbPayload::Rows {
                qid,
                epoch_ms,
                rows,
            } => {
                if ctx.is_base_station() {
                    if ctx.trace_enabled() {
                        for row in rows {
                            ctx.trace(TraceEvent::ResultDelivered {
                                prov: ProvenanceId::new(NodeId(row.node), *epoch_ms),
                                qids: vec![*qid],
                                epoch_ms: *epoch_ms,
                            });
                        }
                    }
                    self.row_buffers
                        .entry((*qid, *epoch_ms))
                        .or_default()
                        .extend(rows.iter().cloned());
                } else if let Some(parent) = self.parent(ctx) {
                    if ctx.trace_enabled() {
                        ctx.trace(TraceEvent::ResultHop {
                            from: ctx.node(),
                            to: vec![parent],
                            epoch_ms: *epoch_ms,
                            prov: rows
                                .iter()
                                .map(|r| ProvenanceId::new(NodeId(r.node), *epoch_ms))
                                .collect(),
                            qids: vec![*qid],
                            origin: false,
                        });
                    }
                    // Hop-by-hop forwarding, unchanged: the baseline never
                    // merges traffic of different (or even the same) queries.
                    let payload = payload.clone();
                    let bytes = payload.wire_size();
                    ctx.send(
                        Destination::Unicast(parent),
                        MsgKind::Result,
                        bytes,
                        payload,
                    );
                }
            }
            TinyDbPayload::Partials {
                qid,
                epoch_ms,
                partials,
            } => {
                if ctx.is_base_station() {
                    merge_partials(
                        self.agg_buffers.entry((*qid, *epoch_ms)).or_default(),
                        partials,
                    );
                    return;
                }
                let my_slot = self.slot_time(ctx, *epoch_ms);
                if ctx.now().as_ms() > my_slot + self.config.jitter_ms {
                    // Our slot already passed (late child): forward as-is.
                    if let Some(parent) = self.parent(ctx) {
                        if ctx.trace_enabled() {
                            ctx.trace(TraceEvent::ResultHop {
                                from: ctx.node(),
                                to: vec![parent],
                                epoch_ms: *epoch_ms,
                                prov: Vec::new(),
                                qids: vec![*qid],
                                origin: false,
                            });
                        }
                        let payload = payload.clone();
                        let bytes = payload.wire_size();
                        ctx.send(
                            Destination::Unicast(parent),
                            MsgKind::Result,
                            bytes,
                            payload,
                        );
                    }
                } else {
                    merge_partials(
                        self.agg_buffers.entry((*qid, *epoch_ms)).or_default(),
                        partials,
                    );
                    // A pure relay (e.g. SRT-pruned) has no sample timer and
                    // therefore no slot timer yet: arm one. Duplicate slot
                    // fires are harmless — the buffer empties on the first.
                    let now = ctx.now().as_ms();
                    let epoch_idx = epoch_ms / ttmqo_query::BASE_EPOCH_MS;
                    ctx.set_timer(
                        my_slot.saturating_sub(now).max(1),
                        key(KIND_SLOT, *qid, epoch_idx),
                    );
                }
            }
        }
    }

    fn on_command(&mut self, ctx: &mut Ctx<'_, TinyDbPayload, Output>, cmd: Command) {
        debug_assert!(ctx.is_base_station(), "commands arrive at the base station");
        match cmd {
            Command::Pose(query) => self.relay_query_flood(ctx, &query),
            Command::Terminate(qid) => self.relay_abort_flood(ctx, qid),
        }
    }
}

use ttmqo_sim::{Restorable, SnapReader, SnapWriter, Snapshot, SnapshotError};

impl Snapshot for TinyDbConfig {
    fn write(&self, w: &mut SnapWriter) {
        let TinyDbConfig {
            slot_ms,
            jitter_ms,
            srt,
        } = *self;
        w.put_u64(slot_ms);
        w.put_u64(jitter_ms);
        w.put_bool(srt);
    }
}

impl Restorable for TinyDbConfig {
    fn read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(TinyDbConfig {
            slot_ms: r.u64()?,
            jitter_ms: r.u64()?,
            srt: r.bool()?,
        })
    }
}

impl Snapshot for TinyDbApp {
    fn write(&self, w: &mut SnapWriter) {
        let TinyDbApp {
            config,
            queries,
            seen_query_floods,
            seen_abort_floods,
            agg_buffers,
            row_buffers,
            srt,
        } = self;
        config.write(w);
        queries.write(w);
        seen_query_floods.write(w);
        seen_abort_floods.write(w);
        agg_buffers.write(w);
        row_buffers.write(w);
        srt.write(w);
    }
}

impl Restorable for TinyDbApp {
    fn read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(TinyDbApp {
            config: TinyDbConfig::read(r)?,
            queries: BTreeMap::read(r)?,
            seen_query_floods: HashSet::read(r)?,
            seen_abort_floods: HashSet::read(r)?,
            agg_buffers: HashMap::read(r)?,
            row_buffers: HashMap::read(r)?,
            srt: Option::read(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_key_roundtrip() {
        let k = key(KIND_SLOT, QueryId(12345), 678);
        let (kind, qid, epoch) = key_parts(k);
        assert_eq!(kind, KIND_SLOT);
        assert_eq!(qid, QueryId(12345));
        assert_eq!(epoch, 678);
    }

    #[test]
    fn merge_partials_elementwise() {
        use ttmqo_query::AggOp;
        let mut buf = vec![Some(AggOp::Max.seed(1.0)), None];
        merge_partials(
            &mut buf,
            &[Some(AggOp::Max.seed(5.0)), Some(AggOp::Min.seed(2.0))],
        );
        assert_eq!(buf[0].unwrap().finalize(), 5.0);
        assert_eq!(buf[1].unwrap().finalize(), 2.0);
    }

    #[test]
    fn merge_partials_grows_buffer() {
        use ttmqo_query::AggOp;
        let mut buf: Vec<Option<PartialAgg>> = vec![];
        merge_partials(&mut buf, &[Some(AggOp::Count.seed(0.0))]);
        assert_eq!(buf.len(), 1);
        assert_eq!(buf[0].unwrap().finalize(), 1.0);
    }
}
