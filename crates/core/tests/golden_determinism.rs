//! Golden determinism test: a small Workload-A cell must produce a
//! `MetricsSnapshot` bit-identical to the checked-in snapshot, on both the
//! baseline and the two-tier strategy.
//!
//! The golden file was generated from the engine as of PR 1 (before the
//! hot-path rewrite that introduced payload `Arc`-sharing and the frame
//! slab), so a passing run proves engine-internal memory optimizations do
//! not change simulated behaviour — not statistically, but down to the last
//! bit of every f64 counter. Regenerate only for *intentional* behaviour
//! changes: `UPDATE_GOLDEN=1 cargo test -p ttmqo-core --test
//! golden_determinism`.

use std::fmt::Write as _;
use std::sync::{Arc, Mutex};
use ttmqo_core::{run_experiment, ExperimentConfig, Strategy};
use ttmqo_sim::{
    JsonLinesSink, MetricsSnapshot, ProfileHandle, ProfilePhase, RingSink, SimTime,
    TimeseriesConfig, TraceHandle, TraceSink,
};
use ttmqo_workloads::workload_a;

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/workload_a_metrics.golden"
);

const GOLDEN_32X32_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/workload_a_32x32_metrics.golden"
);

/// Renders a snapshot canonically, one `key=value` line per counter. Floats
/// use Rust's shortest-roundtrip formatting, so equal strings ⇔ equal bits.
fn render(strategy: Strategy, snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let w = &mut out;
    writeln!(w, "[{strategy}]").unwrap();
    writeln!(
        w,
        "avg_transmission_time_pct={}",
        snap.avg_transmission_time_pct
    )
    .unwrap();
    writeln!(w, "total_tx_busy_ms={}", snap.total_tx_busy_ms).unwrap();
    writeln!(w, "total_rx_busy_ms={}", snap.total_rx_busy_ms).unwrap();
    writeln!(w, "total_sleep_ms={}", snap.total_sleep_ms).unwrap();
    for (kind, n) in &snap.tx_count {
        writeln!(w, "tx_count.{kind}={n}").unwrap();
    }
    for (kind, n) in &snap.tx_bytes {
        writeln!(w, "tx_bytes.{kind}={n}").unwrap();
    }
    writeln!(w, "retransmissions={}", snap.retransmissions).unwrap();
    writeln!(w, "collisions={}", snap.collisions).unwrap();
    writeln!(w, "losses={}", snap.losses).unwrap();
    writeln!(w, "gave_up={}", snap.gave_up).unwrap();
    writeln!(w, "samples={}", snap.samples).unwrap();
    writeln!(w, "horizon_ms={}", snap.horizon_ms).unwrap();
    out
}

fn golden_cell(strategy: Strategy) -> MetricsSnapshot {
    // Workload A on the paper's 4×4 grid with the default radio (collisions
    // and retries on), long enough for floods, epochs, retransmissions and
    // terminations to all occur.
    let config = ExperimentConfig {
        strategy,
        grid_n: 4,
        duration: SimTime::from_ms(24 * 2048),
        ..ExperimentConfig::default()
    };
    run_experiment(&config, &workload_a()).metrics.snapshot()
}

#[test]
fn workload_a_metrics_match_golden_snapshot() {
    let mut rendered = String::new();
    for strategy in [Strategy::Baseline, Strategy::TwoTier] {
        rendered.push_str(&render(strategy, &golden_cell(strategy)));
    }
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(std::path::Path::new(GOLDEN_PATH).parent().unwrap()).unwrap();
        std::fs::write(GOLDEN_PATH, &rendered).unwrap();
        eprintln!("regenerated {GOLDEN_PATH}");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden snapshot checked in at tests/golden/workload_a_metrics.golden");
    assert_eq!(
        rendered, golden,
        "MetricsSnapshot diverged from the golden Workload-A cell: the \
         engine's simulated behaviour changed (set UPDATE_GOLDEN=1 only if \
         the change is intentional)"
    );
}

fn golden_big_cell(strategy: Strategy) -> MetricsSnapshot {
    // The big-grid cell: Workload A on a 32×32 grid (1024 nodes), long
    // enough for SRT dissemination, several epoch rounds and retransmission
    // traffic. Generated from the engine as of PR 6 (global `BinaryHeap`
    // event queue, all-pairs O(n²) topology build), so a passing run proves
    // the calendar queue and the spatial grid-bucket index reproduce the old
    // engine's behaviour bit for bit at thousand-node scale.
    let config = ExperimentConfig {
        strategy,
        grid_n: 32,
        duration: SimTime::from_ms(8 * 2048),
        ..ExperimentConfig::default()
    };
    run_experiment(&config, &workload_a()).metrics.snapshot()
}

#[test]
fn workload_a_32x32_metrics_match_golden_snapshot() {
    let mut rendered = String::new();
    for strategy in [Strategy::Baseline, Strategy::TwoTier] {
        rendered.push_str(&render(strategy, &golden_big_cell(strategy)));
    }
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(std::path::Path::new(GOLDEN_32X32_PATH).parent().unwrap()).unwrap();
        std::fs::write(GOLDEN_32X32_PATH, &rendered).unwrap();
        eprintln!("regenerated {GOLDEN_32X32_PATH}");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_32X32_PATH)
        .expect("golden snapshot checked in at tests/golden/workload_a_32x32_metrics.golden");
    assert_eq!(
        rendered, golden,
        "MetricsSnapshot diverged from the golden 32×32 Workload-A cell: \
         the engine's simulated behaviour changed at big-grid scale (set \
         UPDATE_GOLDEN=1 only if the change is intentional)"
    );
}

#[test]
fn golden_cell_is_reproducible_within_a_process() {
    // The cheaper invariant behind the golden file: two in-process runs of
    // the same cell agree bit-for-bit.
    let a = golden_cell(Strategy::TwoTier);
    let b = golden_cell(Strategy::TwoTier);
    assert_eq!(a, b);
}

#[test]
fn tracing_leaves_the_golden_cell_untouched() {
    // Tracing is observability, not behaviour: the golden cell rendered with
    // an explicitly disabled handle AND with a live in-memory sink must both
    // match the untraced rendering byte for byte (tracing never draws from
    // the simulation RNG), and the run's engine stats must agree too.
    let run = |trace: TraceHandle| {
        let config = ExperimentConfig {
            strategy: Strategy::TwoTier,
            grid_n: 4,
            duration: SimTime::from_ms(24 * 2048),
            trace,
            ..ExperimentConfig::default()
        };
        let report = run_experiment(&config, &workload_a());
        (
            render(Strategy::TwoTier, &report.metrics.snapshot()),
            report.engine,
        )
    };

    let untraced = run(TraceHandle::disabled());
    let ring = Arc::new(Mutex::new(RingSink::new(0)));
    let traced = run(TraceHandle::shared(
        ring.clone() as Arc<Mutex<dyn TraceSink>>
    ));

    assert_eq!(untraced.0, traced.0, "metrics diverged under tracing");
    assert_eq!(untraced.1, traced.1, "engine stats diverged under tracing");
    assert!(
        !ring.lock().unwrap().is_empty(),
        "the traced run actually recorded events"
    );
}

/// Shared growable byte buffer usable as a `JsonLinesSink` writer.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl std::io::Write for SharedBuf {
    fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().write(b)
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn profiling_leaves_the_golden_cell_untouched() {
    // The profiler's determinism contract, pinned at full observability:
    // the golden cell run with profiling on AND a live trace sink must
    // produce a RunReport (profile field aside — it is wall-clock derived)
    // and a JSONL trace byte-identical to the profiler-off run. Profiling
    // reads timestamps but never draws from the simulation RNG and never
    // branches on simulated state.
    let run = |profile: ProfileHandle| {
        let buf = SharedBuf::default();
        let config = ExperimentConfig {
            strategy: Strategy::TwoTier,
            grid_n: 4,
            duration: SimTime::from_ms(24 * 2048),
            trace: TraceHandle::new(JsonLinesSink::new(buf.clone()).unwrap()),
            profile,
            ..ExperimentConfig::default()
        };
        let mut report = run_experiment(&config, &workload_a());
        config.trace.flush();
        let profile_report = report.profile.take();
        let trace = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        (format!("{report:?}"), trace, profile_report)
    };

    let off = run(ProfileHandle::disabled());
    let on = run(ProfileHandle::enabled());

    assert_eq!(off.0, on.0, "RunReport diverged under profiling");
    assert_eq!(off.1, on.1, "JSONL trace diverged under profiling");
    assert!(off.2.is_none(), "disabled run must not carry a profile");
    assert!(on.2.is_some(), "enabled run carries a profile");
}

#[test]
fn profile_report_reconciles_with_engine_stats() {
    // The profiler's counts are exact, not sampled: each engine phase's
    // event count must equal the corresponding EngineStats counter, and
    // the engine-phase wall attribution cannot exceed the measured wall
    // time of the whole experiment.
    let config = ExperimentConfig {
        strategy: Strategy::TwoTier,
        grid_n: 4,
        duration: SimTime::from_ms(24 * 2048),
        profile: ProfileHandle::enabled(),
        ..ExperimentConfig::default()
    };
    let start = std::time::Instant::now();
    let report = run_experiment(&config, &workload_a());
    let total_wall_ns = start.elapsed().as_nanos() as u64;

    let profile = report.profile.as_ref().expect("profiling was enabled");
    for (phase, expected) in [
        (ProfilePhase::Timer, report.engine.timer_events),
        (ProfilePhase::Deliver, report.engine.deliver_events),
        (ProfilePhase::Command, report.engine.command_events),
        (ProfilePhase::Maintenance, report.engine.maintenance_events),
        (ProfilePhase::Fault, report.engine.fault_events),
    ] {
        assert_eq!(
            profile.get(phase).events,
            expected,
            "{} count must match EngineStats exactly",
            phase.name()
        );
    }
    assert!(
        profile.engine_event_wall_ns() <= total_wall_ns,
        "attributed engine wall time ({} ns) cannot exceed the whole \
         experiment's wall time ({total_wall_ns} ns)",
        profile.engine_event_wall_ns()
    );
}

#[test]
fn auditing_leaves_the_golden_cell_untouched() {
    // The standing invariant auditor runs strictly after the simulation —
    // pure arithmetic over the finished run's counters. Arming it must not
    // perturb the golden cell in any way: the RunReport (audit field aside)
    // and the JSONL trace must be byte-identical to the unaudited run, and
    // the audit itself must come back clean on a healthy cell.
    let run = |audit: bool| {
        let buf = SharedBuf::default();
        let config = ExperimentConfig {
            strategy: Strategy::TwoTier,
            grid_n: 4,
            duration: SimTime::from_ms(24 * 2048),
            trace: TraceHandle::new(JsonLinesSink::new(buf.clone()).unwrap()),
            audit,
            ..ExperimentConfig::default()
        };
        let mut report = run_experiment(&config, &workload_a());
        config.trace.flush();
        let audit_report = report.audit.take();
        let trace = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        (format!("{report:?}"), trace, audit_report)
    };

    let off = run(false);
    let on = run(true);

    assert_eq!(off.0, on.0, "RunReport diverged under auditing");
    assert_eq!(off.1, on.1, "JSONL trace diverged under auditing");
    assert!(off.2.is_none(), "unaudited run must not carry an audit");
    let audit = on.2.expect("audited run carries an audit report");
    assert!(
        audit.is_clean(),
        "healthy golden cell must audit clean, got: {audit}"
    );
    assert!(audit.checks_run > 0, "the auditor actually ran checks");
}

#[test]
fn timeseries_leaves_the_golden_cell_untouched() {
    // Same contract as tracing: the windowed recorder mirrors counters the
    // engine already maintains, never draws from the simulation RNG, and
    // never perturbs event order — so the golden cell with collection on
    // must render identically to the cell with collection off.
    let run = |timeseries: Option<TimeseriesConfig>| {
        let config = ExperimentConfig {
            strategy: Strategy::TwoTier,
            grid_n: 4,
            duration: SimTime::from_ms(24 * 2048),
            timeseries,
            ..ExperimentConfig::default()
        };
        let report = run_experiment(&config, &workload_a());
        (
            render(Strategy::TwoTier, &report.metrics.snapshot()),
            report.engine,
            report.timeseries,
        )
    };

    let off = run(None);
    let on = run(Some(TimeseriesConfig::default()));

    assert_eq!(off.0, on.0, "metrics diverged under timeseries collection");
    assert_eq!(
        off.1, on.1,
        "engine stats diverged under timeseries collection"
    );
    assert!(off.2.is_none(), "disabled run must not carry a series");
    let series = on.2.expect("enabled run carries a series");
    assert!(!series.nodes.windows.is_empty(), "windows were recorded");
    assert!(
        !series.per_query.is_empty(),
        "per-query answer series were recorded"
    );
}
