//! Property tests for the query-aware DAG parent selection.

use proptest::prelude::*;
use std::collections::BTreeSet;
use ttmqo_core::DagState;
use ttmqo_query::QueryId;
use ttmqo_sim::NodeId;

prop_compose! {
    fn arb_dag()(
        n_upper in 1usize..6,
        links in prop::collection::vec(0.01f64..1.0, 6),
        knowledge in prop::collection::vec(
            prop::collection::btree_set(0u64..8, 0..5), 6),
    ) -> DagState {
        let upper: Vec<(NodeId, f64)> = (0..n_upper)
            .map(|i| (NodeId(i as u16 + 1), links[i]))
            .collect();
        let mut dag = DagState::new(upper);
        for (i, qids) in knowledge.iter().take(n_upper).enumerate() {
            dag.record_has_data(
                NodeId(i as u16 + 1),
                qids.iter().map(|&q| QueryId(q)),
            );
        }
        dag
    }
}

fn arb_queries() -> impl Strategy<Value = BTreeSet<QueryId>> {
    prop::collection::btree_set((0u64..8).prop_map(QueryId), 1..6)
}

proptest! {
    /// Every query is assigned to exactly one parent — the partition covers
    /// the whole set with no overlap.
    #[test]
    fn assignment_partitions_the_query_set(dag in arb_dag(), queries in arb_queries()) {
        let parents = dag.choose_parents(&queries);
        prop_assert!(!parents.is_empty(), "non-empty upper set always routes");
        let mut seen: BTreeSet<QueryId> = BTreeSet::new();
        for (_, qs) in &parents {
            for q in qs {
                prop_assert!(seen.insert(*q), "query {q} assigned twice");
            }
        }
        prop_assert_eq!(seen, queries);
    }

    /// Chosen parents are always actual upper-level neighbours.
    #[test]
    fn parents_come_from_the_upper_set(dag in arb_dag(), queries in arb_queries()) {
        let upper: BTreeSet<NodeId> = dag.upper_neighbors().iter().copied().collect();
        for (parent, _) in dag.choose_parents(&queries) {
            prop_assert!(upper.contains(&parent));
        }
    }

    /// Selection is deterministic: same state, same choice.
    #[test]
    fn selection_is_deterministic(dag in arb_dag(), queries in arb_queries()) {
        prop_assert_eq!(dag.choose_parents(&queries), dag.choose_parents(&queries));
    }

    /// A parent known to hold data for every query wins outright (unicast).
    #[test]
    fn full_knowledge_yields_unicast(queries in arb_queries(), links in prop::collection::vec(0.01f64..1.0, 3)) {
        let mut dag = DagState::new(vec![
            (NodeId(1), links[0]),
            (NodeId(2), links[1]),
            (NodeId(3), links[2]),
        ]);
        dag.record_has_data(NodeId(2), queries.iter().copied());
        let parents = dag.choose_parents(&queries);
        prop_assert_eq!(parents.len(), 1);
        prop_assert_eq!(parents[0].0, NodeId(2));
    }
}
