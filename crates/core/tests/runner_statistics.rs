//! Unit-level checks of the experiment runner's time-weighted statistics and
//! mapping snapshots.

use ttmqo_core::{run_experiment, ExperimentConfig, FieldKind, Strategy, WorkloadEvent};
use ttmqo_query::{parse_query, Query, QueryId};
use ttmqo_sim::{RadioParams, SimConfig, SimTime};

fn q(id: u64, text: &str) -> Query {
    parse_query(QueryId(id), text).unwrap()
}

fn config(strategy: Strategy, epochs: u64) -> ExperimentConfig {
    ExperimentConfig {
        strategy,
        grid_n: 3,
        duration: SimTime::from_ms(epochs * 2048),
        radio: RadioParams::lossless(),
        sim: SimConfig {
            maintenance_interval_ms: None,
            ..SimConfig::default()
        },
        field: FieldKind::Uniform,
        ..ExperimentConfig::default()
    }
}

#[test]
fn avg_synthetic_count_is_time_weighted() {
    // One query for the first half of the run, two for the second:
    // the time-weighted synthetic count must land near 1.5.
    let total_epochs = 40u64;
    let workload = vec![
        WorkloadEvent::pose(0, q(1, "select light epoch duration 2048")),
        WorkloadEvent::pose(
            (total_epochs / 2) * 2048,
            q(2, "select max(temp) where 0<=temp<=100 epoch duration 2048"),
        ),
    ];
    let report = run_experiment(&config(Strategy::TwoTier, total_epochs), &workload);
    assert!(
        (report.avg_synthetic_count - 1.5).abs() < 0.15,
        "expected ≈1.5, got {}",
        report.avg_synthetic_count
    );
}

#[test]
fn benefit_ratio_reflects_absorbed_queries() {
    // Three identical queries served by one synthetic: instantaneous ratio
    // 2/3 from the moment all three run.
    let workload: Vec<WorkloadEvent> = (0..3)
        .map(|i| WorkloadEvent::pose(0, q(i, "select light epoch duration 2048")))
        .collect();
    let report = run_experiment(&config(Strategy::TwoTier, 20), &workload);
    assert!(
        (report.avg_benefit_ratio - 2.0 / 3.0).abs() < 0.05,
        "expected ≈0.667, got {}",
        report.avg_benefit_ratio
    );
}

#[test]
fn strategies_without_tier1_report_user_count_as_synthetics() {
    let workload: Vec<WorkloadEvent> = (0..4)
        .map(|i| WorkloadEvent::pose(0, q(i, "select light epoch duration 2048")))
        .collect();
    let report = run_experiment(&config(Strategy::Baseline, 16), &workload);
    assert!((report.avg_synthetic_count - 4.0).abs() < 0.1);
    assert_eq!(report.avg_benefit_ratio, 0.0);
    assert!(report.optimizer_stats.is_none());
}

#[test]
fn answers_respect_membership_at_epoch_time() {
    // q2 joins mid-run and is absorbed into q1's synthetic; q2 must get no
    // answers for epochs before it was posed.
    let join_ms = 8 * 2048;
    let workload = vec![
        WorkloadEvent::pose(0, q(1, "select light, temp epoch duration 2048")),
        WorkloadEvent::pose(join_ms, q(2, "select light epoch duration 2048")),
    ];
    let report = run_experiment(&config(Strategy::TwoTier, 20), &workload);
    let a2 = &report.answers[&QueryId(2)];
    assert!(!a2.is_empty());
    assert!(
        a2.iter().all(|(e, _)| *e >= join_ms),
        "q2 answered before it existed: first epoch {}",
        a2[0].0
    );
    // And q1 kept receiving answers across the join.
    let a1 = &report.answers[&QueryId(1)];
    let before = a1.iter().filter(|(e, _)| *e < join_ms).count();
    let after = a1.iter().filter(|(e, _)| *e >= join_ms).count();
    assert!(before >= 5 && after >= 8, "before {before}, after {after}");
}

#[test]
fn duration_bounds_all_reported_epochs() {
    let workload = vec![WorkloadEvent::pose(
        0,
        q(1, "select light epoch duration 2048"),
    )];
    let report = run_experiment(&config(Strategy::TwoTier, 10), &workload);
    for (epoch, _) in &report.answers[&QueryId(1)] {
        assert!(*epoch < 10 * 2048);
    }
    assert_eq!(report.metrics.horizon().as_ms(), 10 * 2048);
}
