//! §3.1.2 statistics maintenance: the base station learns the data
//! distribution from the result stream and later rewriting decisions use it.

use ttmqo_core::{
    run_experiment, BaseStationOptimizer, CostModel, ExperimentConfig, Strategy, WorkloadEvent,
};
use ttmqo_query::{parse_query, Attribute, Query, QueryId};
use ttmqo_sim::{RadioParams, SimConfig, SimTime, Topology};
use ttmqo_stats::{LevelStats, SelectivityEstimator};

fn q(id: u64, text: &str) -> Query {
    parse_query(QueryId(id), text).unwrap()
}

#[test]
fn observed_readings_change_the_cost_estimate() {
    let topo = Topology::grid(4).unwrap();
    let model = CostModel::new(
        4.0,
        0.2,
        LevelStats::from_levels(topo.levels().iter().copied()),
        SelectivityEstimator::uniform().with_warmup(16),
    );
    let mut opt = BaseStationOptimizer::new(model, 0.6);
    let probe = q(
        99,
        "select light where 800<=light<=1000 epoch duration 2048",
    );

    let before = opt.cost_model().cost(&probe);
    // The field turns out to be heavily skewed toward high light values.
    for _ in 0..32 {
        opt.observe_reading(Attribute::Light, 900.0);
    }
    let after = opt.cost_model().cost(&probe);
    assert!(
        after > before * 4.0,
        "learned skew must raise the high-range cost estimate: {before} -> {after}"
    );
}

#[test]
fn adaptive_statistics_affect_merge_decisions() {
    // Two queries over the top light decile. Under the uniform assumption
    // each looks cheap (sel 0.1) and a merged carrier looks cheap too; if
    // the field actually concentrates there, a good estimator learns the
    // carrier costs full rate.
    let topo = Topology::grid(4).unwrap();
    let build = |warmup: u64| {
        let model = CostModel::new(
            4.0,
            0.2,
            LevelStats::from_levels(topo.levels().iter().copied()),
            SelectivityEstimator::uniform().with_warmup(warmup),
        );
        BaseStationOptimizer::new(model, 0.6)
    };

    // Learned estimator: all mass at light ≈ 900.
    let mut learned = build(8);
    for _ in 0..32 {
        learned.observe_reading(Attribute::Light, 900.0);
    }
    let q_low = q(1, "select light where 0<=light<=99 epoch duration 2048");
    let q_high = q(2, "select light where 800<=light<=1000 epoch duration 2048");
    // Under the learned skew the low-range query matches nothing: its cost
    // is ~0, so its benefit rate against anything is ~0 and it stays apart.
    learned.insert(q_high.clone()).unwrap();
    learned.insert(q_low.clone()).unwrap();
    assert_eq!(learned.synthetic_count(), 2, "learned: no beneficial merge");

    // Naive estimator with the same inserts may or may not merge, but its
    // *cost estimate* for the high query is 5× too low.
    let naive = build(u64::MAX);
    let learned_cost = learned.cost_model().cost(&q_high);
    let naive_cost = naive.cost_model().cost(&q_high);
    assert!(learned_cost > naive_cost * 3.0);
}

#[test]
fn end_to_end_adaptive_run_still_answers_exactly() {
    // Turning the feedback loop on must never change user-visible answers.
    let workload = vec![
        WorkloadEvent::pose(
            0,
            q(1, "select light where 300<=light<=900 epoch duration 2048"),
        ),
        WorkloadEvent::pose(
            4 * 2048,
            q(2, "select light where 400<=light<=800 epoch duration 4096"),
        ),
    ];
    let run = |adaptive: bool| {
        let config = ExperimentConfig {
            strategy: Strategy::TwoTier,
            grid_n: 3,
            duration: SimTime::from_ms(20 * 2048),
            radio: RadioParams::lossless(),
            sim: SimConfig {
                maintenance_interval_ms: None,
                ..SimConfig::default()
            },
            adaptive_statistics: adaptive,
            ..ExperimentConfig::default()
        };
        run_experiment(&config, &workload)
    };
    let plain = run(false);
    let adaptive = run(true);
    for qid in [QueryId(1), QueryId(2)] {
        let window = |r: &ttmqo_core::RunReport| {
            r.answers[&qid]
                .iter()
                .filter(|(e, _)| (6 * 2048..18 * 2048).contains(e))
                .cloned()
                .collect::<Vec<_>>()
        };
        assert_eq!(
            window(&plain),
            window(&adaptive),
            "{qid} answers must match"
        );
    }
}
