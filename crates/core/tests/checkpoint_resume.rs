//! Checkpoint/restore bit-identity: a run that stops mid-flight, serializes
//! itself and resumes must be indistinguishable — byte for byte — from a
//! run that never stopped.
//!
//! Pinned three ways:
//!
//! * against the checked-in **golden metric snapshots** (4×4 and 32×32
//!   Workload-A cells): a resumed run must render the exact golden bytes;
//! * against the **straight run's full `RunReport`** (every counter,
//!   answer, completeness and timeseries field, via the debug rendering
//!   whose float formatting is shortest-roundtrip: equal strings ⇔ equal
//!   bits);
//! * against the **straight run's JSONL trace**: the prefix session's trace
//!   plus the resumed session's trace must equal the uninterrupted trace
//!   line for line.

use std::fmt::Write as _;
use ttmqo_core::{
    run_campaign_sequential, run_experiment, CampaignSpec, ExperimentConfig, RunSession, Strategy,
    WorkloadEvent,
};
use ttmqo_query::{parse_query, QueryId};
use ttmqo_sim::{
    FaultPlan, JsonLinesSink, MetricsSnapshot, NodeId, SimTime, TimeseriesConfig, TraceHandle,
};
use ttmqo_workloads::{workload_a, workload_b};

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/workload_a_metrics.golden"
);

const GOLDEN_32X32_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/workload_a_32x32_metrics.golden"
);

/// Same canonical rendering as `golden_determinism.rs`: one `key=value`
/// line per counter, shortest-roundtrip floats.
fn render(strategy: Strategy, snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let w = &mut out;
    writeln!(w, "[{strategy}]").unwrap();
    writeln!(
        w,
        "avg_transmission_time_pct={}",
        snap.avg_transmission_time_pct
    )
    .unwrap();
    writeln!(w, "total_tx_busy_ms={}", snap.total_tx_busy_ms).unwrap();
    writeln!(w, "total_rx_busy_ms={}", snap.total_rx_busy_ms).unwrap();
    writeln!(w, "total_sleep_ms={}", snap.total_sleep_ms).unwrap();
    for (kind, n) in &snap.tx_count {
        writeln!(w, "tx_count.{kind}={n}").unwrap();
    }
    for (kind, n) in &snap.tx_bytes {
        writeln!(w, "tx_bytes.{kind}={n}").unwrap();
    }
    writeln!(w, "retransmissions={}", snap.retransmissions).unwrap();
    writeln!(w, "collisions={}", snap.collisions).unwrap();
    writeln!(w, "losses={}", snap.losses).unwrap();
    writeln!(w, "gave_up={}", snap.gave_up).unwrap();
    writeln!(w, "samples={}", snap.samples).unwrap();
    writeln!(w, "horizon_ms={}", snap.horizon_ms).unwrap();
    out
}

/// Runs the cell checkpointing at `cut_ms`, restoring, and finishing.
fn resumed_report(
    config: &ExperimentConfig,
    workload: &[WorkloadEvent],
    cut_ms: u64,
) -> ttmqo_core::RunReport {
    let mut session = RunSession::new(config, workload);
    session.run_to(SimTime::from_ms(cut_ms));
    let bytes = session.checkpoint();
    drop(session);
    RunSession::restore(&bytes, config, workload)
        .expect("own checkpoint restores")
        .finish()
}

#[test]
fn resumed_4x4_run_matches_golden_snapshot() {
    // The golden-determinism cell, interrupted mid-run at a non-aligned
    // instant: the resumed rendering must equal the checked-in goldens that
    // pin the uninterrupted engine's behaviour.
    let mut rendered = String::new();
    for strategy in [Strategy::Baseline, Strategy::TwoTier] {
        let config = ExperimentConfig {
            strategy,
            grid_n: 4,
            duration: SimTime::from_ms(24 * 2048),
            ..ExperimentConfig::default()
        };
        let report = resumed_report(&config, &workload_a(), 11 * 2048 + 317);
        rendered.push_str(&render(strategy, &report.metrics.snapshot()));
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH).expect("golden snapshot checked in");
    assert_eq!(
        rendered, golden,
        "a resumed 4×4 run diverged from the golden uninterrupted cell"
    );
}

#[test]
fn resumed_32x32_run_matches_golden_snapshot() {
    let mut rendered = String::new();
    for strategy in [Strategy::Baseline, Strategy::TwoTier] {
        let config = ExperimentConfig {
            strategy,
            grid_n: 32,
            duration: SimTime::from_ms(8 * 2048),
            ..ExperimentConfig::default()
        };
        let report = resumed_report(&config, &workload_a(), 3 * 2048 + 777);
        rendered.push_str(&render(strategy, &report.metrics.snapshot()));
    }
    let golden = std::fs::read_to_string(GOLDEN_32X32_PATH).expect("golden snapshot checked in");
    assert_eq!(
        rendered, golden,
        "a resumed 32×32 run diverged from the golden uninterrupted cell"
    );
}

#[test]
fn resume_reproduces_the_full_report_across_checkpoint_times() {
    // Beyond the metric goldens: the ENTIRE report — answers, completeness,
    // optimizer stats, engine counters, timeseries — must agree, for
    // checkpoint instants covering the interesting boundaries: time zero,
    // an audit-grid multiple, a misaligned mid-epoch cut, and the final
    // instant.
    let config = ExperimentConfig {
        strategy: Strategy::TwoTier,
        grid_n: 4,
        duration: SimTime::from_ms(16 * 2048),
        timeseries: Some(TimeseriesConfig::default()),
        ..ExperimentConfig::default()
    };
    let straight = format!("{:?}", run_experiment(&config, &workload_a()));
    for cut_ms in [0, 6 * 2048, 9 * 2048 + 123, 16 * 2048] {
        let resumed = format!("{:?}", resumed_report(&config, &workload_a(), cut_ms));
        assert_eq!(
            resumed, straight,
            "resume from t={cut_ms}ms diverged from the uninterrupted run"
        );
    }
}

#[test]
fn faulty_run_resume_is_bit_identical() {
    // Faults exercise every stateful subsystem the snapshot carries: the
    // engine's fault overlay and pending Fail/Recover events, the repair
    // monitor's audit bookkeeping, and the in-network failure detector.
    // Cut at an exact audit boundary (the trickiest instant: the straight
    // run audits it while passing through, so the stopping run must audit
    // it too before serializing) and at a misaligned one.
    let config = ExperimentConfig {
        strategy: Strategy::TwoTier,
        grid_n: 4,
        duration: SimTime::from_ms(20 * 2048),
        faults: FaultPlan::scripted(vec![
            (NodeId(5), 4 * 2048, Some(14 * 2048)),
            (NodeId(10), 7 * 2048, None),
        ]),
        ..ExperimentConfig::default()
    };
    let straight = format!("{:?}", run_experiment(&config, &workload_a()));
    for cut_ms in [8 * 2048, 9 * 2048 + 555] {
        let resumed = format!("{:?}", resumed_report(&config, &workload_a(), cut_ms));
        assert_eq!(
            resumed, straight,
            "faulty resume from t={cut_ms}ms diverged from the uninterrupted run"
        );
    }
}

#[test]
fn resumed_trace_continues_the_straight_trace_byte_for_byte() {
    let dir = std::env::temp_dir().join(format!("ttmqo-ckpt-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let base = ExperimentConfig {
        strategy: Strategy::TwoTier,
        grid_n: 4,
        duration: SimTime::from_ms(12 * 2048),
        faults: FaultPlan::scripted(vec![(NodeId(6), 3 * 2048, None)]),
        ..ExperimentConfig::default()
    };
    let with_trace = |path: &std::path::Path| ExperimentConfig {
        trace: TraceHandle::new(JsonLinesSink::create(path).unwrap()),
        ..base.clone()
    };

    // Uninterrupted traced run.
    let straight_path = dir.join("straight.jsonl");
    let config = with_trace(&straight_path);
    let straight = format!("{:?}", run_experiment(&config, &workload_a()));
    config.trace.flush();

    // Prefix run to the cut, then a resumed run with a fresh sink.
    let prefix_path = dir.join("prefix.jsonl");
    let config = with_trace(&prefix_path);
    let mut session = RunSession::new(&config, &workload_a());
    session.run_to(SimTime::from_ms(5 * 2048 + 200));
    let bytes = session.checkpoint();
    drop(session);
    config.trace.flush();

    let resumed_path = dir.join("resumed.jsonl");
    let config = with_trace(&resumed_path);
    let resumed = format!(
        "{:?}",
        RunSession::restore(&bytes, &config, &workload_a())
            .expect("own checkpoint restores")
            .finish()
    );
    config.trace.flush();
    assert_eq!(resumed, straight, "resumed report diverged");

    let read = |p: &std::path::Path| std::fs::read_to_string(p).unwrap();
    let straight_trace = read(&straight_path);
    let prefix_trace = read(&prefix_path);
    let resumed_trace = read(&resumed_path);
    // Every sink writes one header line at creation; the resumed file's
    // header is dropped when splicing the two traces together.
    let resumed_events = resumed_trace
        .split_once('\n')
        .map(|(_, rest)| rest)
        .unwrap_or("");
    let spliced = format!("{prefix_trace}{resumed_events}");
    assert_eq!(
        spliced, straight_trace,
        "prefix + resumed trace is not the uninterrupted trace"
    );
    assert!(
        prefix_trace.lines().count() > 1 && resumed_trace.lines().count() > 1,
        "both trace halves recorded events"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fork_replays_divergent_fault_plans_from_one_checkpoint() {
    // The fork primitive: restore the same snapshot N times, hand each
    // session a different fault plan from the restore point on, and the
    // futures diverge while the shared past stays fixed. Forking with the
    // plan unchanged must stay on the original trajectory.
    let config = ExperimentConfig {
        strategy: Strategy::TwoTier,
        grid_n: 4,
        duration: SimTime::from_ms(20 * 2048),
        ..ExperimentConfig::default()
    };
    let straight = format!("{:?}", run_experiment(&config, &workload_a()));
    let mut session = RunSession::new(&config, &workload_a());
    session.run_to(SimTime::from_ms(6 * 2048));
    let bytes = session.checkpoint();

    let unchanged = RunSession::restore(&bytes, &config, &workload_a())
        .unwrap()
        .finish();
    assert_eq!(format!("{unchanged:?}"), straight);

    let mut crashed = RunSession::restore(&bytes, &config, &workload_a()).unwrap();
    crashed.replace_fault_plan(&FaultPlan::scripted(vec![(NodeId(3), 9 * 2048, None)]));
    let crashed = crashed.finish();
    assert_ne!(
        format!("{crashed:?}"),
        straight,
        "a crash injected after the fork must change the outcome"
    );
    // The pre-fork past is shared: answers delivered before the fork point
    // are identical in both futures.
    let fork_ms = 6 * 2048;
    let unchanged_prefix: Vec<_> = unchanged
        .answers
        .iter()
        .flat_map(|(q, v)| v.iter().filter(|(e, _)| *e < fork_ms).map(move |a| (q, a)))
        .map(|(q, a)| format!("{q:?}:{a:?}"))
        .collect();
    let crashed_prefix: Vec<_> = crashed
        .answers
        .iter()
        .flat_map(|(q, v)| v.iter().filter(|(e, _)| *e < fork_ms).map(move |a| (q, a)))
        .map(|(q, a)| format!("{q:?}:{a:?}"))
        .collect();
    assert_eq!(unchanged_prefix, crashed_prefix);
}

#[test]
fn warm_started_campaign_is_bit_identical_to_cold() {
    // Cells sharing (strategy, grid, seed, fault) resume from one shared
    // prefix checkpoint; every record field except wall clock must match
    // the cold sweep exactly, across strategies WITH and WITHOUT each tier
    // and across a fault axis.
    let delay = |events: Vec<WorkloadEvent>, off: u64| -> Vec<WorkloadEvent> {
        events
            .into_iter()
            .map(|mut e| {
                e.at = SimTime::from_ms(e.at.as_ms() + off);
                e
            })
            .collect()
    };
    let base = ExperimentConfig {
        duration: SimTime::from_ms(12 * 2048),
        ..ExperimentConfig::default()
    };
    let spec = CampaignSpec::new(base)
        .strategies([Strategy::Baseline, Strategy::TwoTier])
        .grid_sizes([4])
        .fault_plan(
            "crash-one",
            FaultPlan::scripted(vec![(NodeId(8), 6 * 2048, None)]),
        )
        .workload("a", delay(workload_a(), 3 * 2048))
        .workload("b", delay(workload_b(), 4 * 2048));
    let cold = run_campaign_sequential(&spec);
    let warm = run_campaign_sequential(&spec.clone().warm_start());
    assert_eq!(cold.cells.len(), warm.cells.len());
    let strip = |line: &str| -> String {
        let start = line.find("\"wall_clock_ms\":").unwrap();
        let end = line[start..].find(',').unwrap() + start + 1;
        format!("{}{}", &line[..start], &line[end..])
    };
    for (c, w) in cold.to_jsonl().lines().zip(warm.to_jsonl().lines()) {
        assert_eq!(strip(c), strip(w), "warm cell diverged from cold cell");
    }

    // Workloads sharing a *live* common prefix: both run workload A from
    // t = 0, one poses an extra query later. The shared checkpoint now
    // contains real query traffic (poses, epoch firings, in-flight answers)
    // taken one millisecond before the diverging pose — still bit-identical.
    let mut extended = workload_a();
    extended.push(WorkloadEvent::pose(
        7 * 2048,
        ttmqo_query::parse_query(
            ttmqo_query::QueryId(90),
            "select temp where 0<=temp<=400 epoch duration 4096",
        )
        .unwrap(),
    ));
    let base = ExperimentConfig {
        duration: SimTime::from_ms(12 * 2048),
        ..ExperimentConfig::default()
    };
    let spec = CampaignSpec::new(base)
        .strategies([Strategy::Baseline, Strategy::TwoTier])
        .grid_sizes([4])
        .workload("base", workload_a())
        .workload("base+extra", extended);
    assert_eq!(
        spec.warm_prefix_time(),
        SimTime::from_ms(7 * 2048 - 1),
        "prefix must extend to just before the diverging pose"
    );
    let cold = run_campaign_sequential(&spec);
    let warm = run_campaign_sequential(&spec.clone().warm_start());
    assert_eq!(cold.cells.len(), warm.cells.len());
    for (c, w) in cold.to_jsonl().lines().zip(warm.to_jsonl().lines()) {
        assert_eq!(
            strip(c),
            strip(w),
            "live-prefix warm cell diverged from cold cell"
        );
    }
}

#[test]
fn checkpoint_strategy_mismatch_is_a_typed_error() {
    let config = ExperimentConfig {
        strategy: Strategy::TwoTier,
        duration: SimTime::from_ms(4 * 2048),
        ..ExperimentConfig::default()
    };
    let workload = vec![WorkloadEvent::pose(
        0,
        parse_query(QueryId(1), "select light epoch duration 2048").unwrap(),
    )];
    let mut session = RunSession::new(&config, &workload);
    session.run_to(SimTime::from_ms(2048));
    let bytes = session.checkpoint();
    let wrong = ExperimentConfig {
        strategy: Strategy::Baseline,
        ..config.clone()
    };
    let err =
        RunSession::restore(&bytes, &wrong, &workload).expect_err("strategy mismatch must fail");
    let msg = err.to_string();
    assert!(
        msg.contains("two-tier") && msg.contains("baseline"),
        "error names both strategies: {msg}"
    );
    // And the error machinery never masks a valid restore.
    assert!(RunSession::restore(&bytes, &config, &workload).is_ok());
}
