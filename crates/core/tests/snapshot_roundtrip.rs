//! Per-type snapshot roundtrips for every *public* snapshotted type of the
//! core and tinydb crates (the sim crate's own types are covered by
//! `crates/sim/src/snapshot.rs` unit tests, and whole-run state by
//! `checkpoint_resume.rs` / `prop_checkpoint.rs`).
//!
//! Together with the exhaustive (no `..`) destructuring inside every
//! `Snapshot` impl — which turns a forgotten new field into a compile error —
//! these tests pin the *wire* behaviour: encode, decode, verify nothing was
//! lost and no trailing bytes remain.

use std::collections::BTreeSet;

use ttmqo_core::{
    Demand, IndexStats, OptimizerOptions, OptimizerStats, PartialEntry, RowEntry, SyntheticQuery,
    TtmqoConfig, TtmqoPayload,
};
use ttmqo_query::{parse_query, AggOp, PartialAgg, Query, QueryId, Readings, Row};
use ttmqo_sim::{NodeId, Restorable, SnapReader, SnapWriter, Snapshot, Topology};
use ttmqo_tinydb::{Command, Output, Srt, TinyDbConfig, TinyDbPayload};

/// Encode → decode → require the reader fully consumed, returning the copy.
fn recode<T: Snapshot + Restorable>(value: &T) -> T {
    let mut w = SnapWriter::new();
    value.write(&mut w);
    let bytes = w.into_bytes();
    let mut r = SnapReader::new(&bytes);
    let back = T::read(&mut r).expect("roundtrip decodes");
    r.finish().expect("no trailing bytes");
    back
}

fn roundtrip_eq<T: Snapshot + Restorable + PartialEq + std::fmt::Debug>(value: T) {
    assert_eq!(recode(&value), value);
}

/// For types without `PartialEq`: the debug rendering prints every field
/// with shortest-roundtrip float formatting, so string equality is bit
/// equality.
fn roundtrip_debug<T: Snapshot + Restorable + std::fmt::Debug>(value: T) {
    assert_eq!(format!("{:?}", recode(&value)), format!("{:?}", value));
}

fn q(id: u64, text: &str) -> Query {
    parse_query(QueryId(id), text).unwrap()
}

fn qids(ids: &[u64]) -> Vec<QueryId> {
    ids.iter().map(|&i| QueryId(i)).collect()
}

#[test]
fn optimizer_types_roundtrip() {
    roundtrip_eq(OptimizerOptions::default());
    roundtrip_eq(OptimizerOptions {
        alpha: 0.85,
        reinsert: false,
        rank_by_rate: false,
        exhaustive: true,
    });
    roundtrip_eq(OptimizerStats {
        inserted: 12,
        terminated: 7,
        injections: 5,
        abortions: 2,
        absorbed_insertions: 4,
        absorbed_terminations: 3,
        reoptimizations: 1,
    });
    roundtrip_eq(IndexStats {
        lookups: 100,
        scanned: 42,
        pruned: 58,
    });
}

#[test]
fn synthetic_query_roundtrip_keeps_membership_bookkeeping() {
    let mut syn = SyntheticQuery::new(q(
        1001,
        "select light, temp where 100<light<300 epoch duration 2048",
    ));
    let member_a = q(1, "select light where 100<light<300 epoch duration 2048");
    let member_b = q(2, "select temp epoch duration 4096");
    syn.add_member(QueryId(1), &Demand::of(&member_a));
    syn.add_member(QueryId(2), &Demand::of(&member_b));
    syn.set_benefit(3.25);
    roundtrip_debug(syn);
}

#[test]
fn ttmqo_config_roundtrip() {
    roundtrip_debug(TtmqoConfig::default());
    roundtrip_debug(TtmqoConfig {
        slot_ms: 96,
        jitter_ms: 8,
        sleep: false,
        dynamic_parents: false,
        query_recovery: false,
        srt: true,
        dead_parent_after: 3,
    });
}

#[test]
fn ttmqo_payload_every_variant_roundtrips() {
    let row_entry = RowEntry {
        node: 9,
        qids: BTreeSet::from([QueryId(1), QueryId(4)]),
        readings: {
            let mut r = Readings::new();
            r.set(ttmqo_query::Attribute::Light, 512.0);
            r.set(ttmqo_query::Attribute::Temp, 21.5);
            r
        },
    };
    roundtrip_eq(row_entry.clone());
    let partial_entry = PartialEntry {
        qid: QueryId(4),
        partials: vec![
            Some(PartialAgg::Avg {
                sum: 10.5,
                count: 3,
            }),
            None,
        ],
    };
    roundtrip_eq(partial_entry.clone());

    roundtrip_debug(TtmqoPayload::Query {
        query: q(
            3,
            "select max(temp) where region(0, 0, 40, 40) epoch duration 2048",
        ),
        has_data: qids(&[1, 2]),
    });
    roundtrip_debug(TtmqoPayload::Abort(QueryId(3)));
    roundtrip_debug(TtmqoPayload::Wakeup {
        has_data: qids(&[7]),
    });
    roundtrip_debug(TtmqoPayload::SharedRows {
        epoch_ms: 4096,
        entries: vec![row_entry],
        assignments: vec![(NodeId(1), qids(&[1])), (NodeId(2), qids(&[4]))],
    });
    roundtrip_debug(TtmqoPayload::SharedPartials {
        epoch_ms: 6144,
        entries: vec![partial_entry],
        assignments: vec![(NodeId(1), qids(&[4]))],
    });
    roundtrip_debug(TtmqoPayload::NoRoute);
    roundtrip_debug(TtmqoPayload::QueryRequest(QueryId(11)));
    roundtrip_debug(TtmqoPayload::QueryShare(q(
        11,
        "select light where 2 <= nodeid <= 9 epoch duration 2048",
    )));
}

#[test]
fn tinydb_types_every_variant_roundtrips() {
    roundtrip_debug(TinyDbConfig::default());
    roundtrip_debug(TinyDbConfig {
        slot_ms: 128,
        jitter_ms: 0,
        srt: true,
    });

    roundtrip_debug(TinyDbPayload::Query(q(
        5,
        "select light, temp where 100<light<300 epoch duration 2048",
    )));
    roundtrip_debug(TinyDbPayload::Abort(QueryId(5)));
    roundtrip_debug(TinyDbPayload::Rows {
        qid: QueryId(5),
        epoch_ms: 2048,
        rows: vec![Row {
            node: 3,
            time_ms: 2048,
            readings: {
                let mut r = Readings::new();
                r.set(ttmqo_query::Attribute::Light, 200.0);
                r
            },
        }],
    });
    roundtrip_debug(TinyDbPayload::Partials {
        qid: QueryId(6),
        epoch_ms: 4096,
        partials: vec![None, Some(AggOp::Max.seed(99.0))],
    });

    roundtrip_debug(Command::Pose(q(7, "select temp epoch duration 2048")));
    roundtrip_debug(Command::Terminate(QueryId(7)));

    roundtrip_eq(Output::Answer {
        qid: QueryId(7),
        epoch_ms: 8192,
        answer: ttmqo_query::EpochAnswer::Aggregates(vec![ttmqo_query::AggValue {
            op: AggOp::Max,
            attr: ttmqo_query::Attribute::Temp,
            value: 31.0,
        }]),
    });
}

#[test]
fn srt_roundtrip_preserves_routing_semantics() {
    let topo = Topology::grid(4).unwrap();
    let srt = Srt::build(&topo);
    let back = recode(&srt);
    assert_eq!(format!("{:?}", back), format!("{:?}", srt));
    // Semantic spot check on the copy, not just the rendering.
    for node in topo.nodes() {
        assert_eq!(back.subtree_range(node), srt.subtree_range(node));
    }
}
