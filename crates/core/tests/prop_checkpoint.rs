//! Property test for checkpoint/restore: for *random* checkpoint instants,
//! workloads, strategies and fault plans, stopping a run, serializing it
//! and resuming must reproduce the uninterrupted run's full `RunReport`
//! exactly (the debug rendering uses shortest-roundtrip float formatting,
//! so string equality is bit equality).
//!
//! Each case runs two short 4×4 simulations; the case count is kept small
//! accordingly (override with `PROPTEST_CASES`).

use proptest::prelude::*;
// `ttmqo_core::Strategy` (the tier enum) shadows the glob-imported proptest
// `Strategy` trait, so re-import the trait anonymously for `.prop_map`.
use proptest::strategy::Strategy as _;
use ttmqo_core::{run_experiment, ExperimentConfig, RunSession, Strategy, WorkloadEvent};
use ttmqo_sim::{FaultPlan, NodeId, SimTime};
use ttmqo_workloads::{churn_workload, workload_a, workload_b, ChurnWorkloadParams};

const DURATION_MS: u64 = 10 * 2048;

fn workload(ix: usize) -> Vec<WorkloadEvent> {
    match ix {
        0 => workload_a(),
        1 => workload_b(),
        _ => churn_workload(&ChurnWorkloadParams {
            n_queries: 12,
            n_templates: 6,
            target_concurrency: 4.0,
            seed: 0xBEEF,
            ..ChurnWorkloadParams::default()
        }),
    }
}

proptest! {
    #![proptest_config(proptest::test_runner::Config::with_cases(8))]

    /// checkpoint(t) ∘ restore ∘ finish == finish, for arbitrary t.
    #[test]
    fn resume_from_any_instant_reproduces_the_straight_run(
        cut_permille in 0u64..=1000,
        workload_ix in 0usize..3,
        two_tier in (0u8..2).prop_map(|b| b == 1),
        faulty in (0u8..2).prop_map(|b| b == 1),
    ) {
        let config = ExperimentConfig {
            strategy: if two_tier { Strategy::TwoTier } else { Strategy::InNetOnly },
            grid_n: 4,
            duration: SimTime::from_ms(DURATION_MS),
            faults: if faulty {
                FaultPlan::scripted(vec![(NodeId(7), 3 * 2048, Some(7 * 2048))])
            } else {
                FaultPlan::default()
            },
            ..ExperimentConfig::default()
        };
        let events = workload(workload_ix);
        let cut_ms = DURATION_MS * cut_permille / 1000;

        let straight = format!("{:?}", run_experiment(&config, &events));
        let mut session = RunSession::new(&config, &events);
        session.run_to(SimTime::from_ms(cut_ms));
        let bytes = session.checkpoint();
        let resumed = RunSession::restore(&bytes, &config, &events)
            .expect("own checkpoint restores")
            .finish();
        prop_assert_eq!(
            format!("{:?}", resumed),
            straight,
            "resume from t={}ms (workload {}, faulty={}) diverged",
            cut_ms,
            workload_ix,
            faulty
        );
    }
}
