//! SRT dissemination pruning: node-id based queries propagate only into
//! relevant subtrees, reduce propagation traffic, and still produce exactly
//! the answers that flooding produces.

use ttmqo_core::{TtmqoApp, TtmqoConfig};
use ttmqo_query::{parse_query, EpochAnswer, Query, QueryId};
use ttmqo_sim::{
    MsgKind, NodeId, RadioParams, SimConfig, SimTime, Simulator, Topology, UniformField,
};
use ttmqo_tinydb::{Command, Output, TinyDbApp, TinyDbConfig};

fn nodeid_query() -> Query {
    // Only nodes 1..=3 can ever answer.
    parse_query(
        QueryId(1),
        "select light where 1 <= nodeid <= 3 epoch duration 2048",
    )
    .unwrap()
}

fn sim_config() -> SimConfig {
    SimConfig {
        maintenance_interval_ms: None,
        ..SimConfig::default()
    }
}

fn tinydb_sim(srt: bool) -> Simulator<TinyDbApp> {
    Simulator::new(
        Topology::grid(4).unwrap(),
        RadioParams::lossless(),
        sim_config(),
        Box::new(UniformField::new(5)),
        move |_, _| {
            TinyDbApp::new(TinyDbConfig {
                srt,
                ..TinyDbConfig::default()
            })
        },
    )
}

fn ttmqo_sim(srt: bool) -> Simulator<TtmqoApp> {
    Simulator::new(
        Topology::grid(4).unwrap(),
        RadioParams::lossless(),
        sim_config(),
        Box::new(UniformField::new(5)),
        move |_, _| {
            TtmqoApp::new(TtmqoConfig {
                srt,
                ..TtmqoConfig::default()
            })
        },
    )
}

fn answers(outputs: &[ttmqo_sim::OutputRecord<Output>]) -> Vec<(u64, EpochAnswer)> {
    outputs
        .iter()
        .map(|o| match &o.output {
            Output::Answer {
                epoch_ms, answer, ..
            } => (*epoch_ms, answer.clone()),
        })
        .collect()
}

#[test]
fn srt_reduces_propagation_in_the_baseline() {
    let run = |srt: bool| {
        let mut sim = tinydb_sim(srt);
        sim.schedule_command(
            SimTime::ZERO,
            NodeId::BASE_STATION,
            Command::Pose(nodeid_query()),
        );
        sim.run_until(SimTime::from_ms(10 * 2048));
        (
            sim.metrics().tx_count(MsgKind::QueryPropagation),
            answers(sim.outputs()),
            sim.metrics().samples(),
        )
    };
    let (flood_msgs, flood_answers, flood_samples) = run(false);
    let (srt_msgs, srt_answers, srt_samples) = run(true);

    assert!(
        srt_msgs < flood_msgs,
        "SRT must prune propagation: {srt_msgs} !< {flood_msgs}"
    );
    assert_eq!(
        flood_answers, srt_answers,
        "pruning must not change answers"
    );
    assert!(
        srt_samples < flood_samples,
        "pruned nodes must not sample: {srt_samples} !< {flood_samples}"
    );
}

#[test]
fn srt_reduces_propagation_in_ttmqo() {
    let run = |srt: bool| {
        let mut sim = ttmqo_sim(srt);
        sim.schedule_command(
            SimTime::ZERO,
            NodeId::BASE_STATION,
            Command::Pose(nodeid_query()),
        );
        sim.run_until(SimTime::from_ms(10 * 2048));
        (
            sim.metrics().tx_count(MsgKind::QueryPropagation),
            answers(sim.outputs()),
        )
    };
    let (flood_msgs, flood_answers) = run(false);
    let (srt_msgs, srt_answers) = run(true);
    assert!(srt_msgs < flood_msgs, "{srt_msgs} !< {flood_msgs}");
    assert_eq!(flood_answers, srt_answers);
}

#[test]
fn srt_does_not_affect_value_based_queries() {
    let value_query = parse_query(
        QueryId(2),
        "select light where 200<=light<=800 epoch duration 2048",
    )
    .unwrap();
    let run = |srt: bool| {
        let mut sim = tinydb_sim(srt);
        sim.schedule_command(
            SimTime::ZERO,
            NodeId::BASE_STATION,
            Command::Pose(value_query.clone()),
        );
        sim.run_until(SimTime::from_ms(8 * 2048));
        (
            sim.metrics().tx_count(MsgKind::QueryPropagation),
            answers(sim.outputs()),
        )
    };
    let (flood_msgs, flood_answers) = run(false);
    let (srt_msgs, srt_answers) = run(true);
    assert_eq!(
        flood_msgs, srt_msgs,
        "value queries must still flood everywhere"
    );
    assert_eq!(flood_answers, srt_answers);
}

#[test]
fn srt_answers_include_every_matching_node() {
    let mut sim = ttmqo_sim(true);
    sim.schedule_command(
        SimTime::ZERO,
        NodeId::BASE_STATION,
        Command::Pose(nodeid_query()),
    );
    sim.run_until(SimTime::from_ms(10 * 2048));
    let all = answers(sim.outputs());
    let steady: Vec<_> = all.iter().filter(|(e, _)| *e >= 2 * 2048).collect();
    assert!(!steady.is_empty());
    for (epoch, answer) in steady {
        let EpochAnswer::Rows(rows) = answer else {
            panic!("expected rows")
        };
        let ids: Vec<u16> = rows.iter().map(|r| r.node).collect();
        assert_eq!(
            ids,
            vec![1, 2, 3],
            "epoch {epoch}: all three targets answer"
        );
    }
}
