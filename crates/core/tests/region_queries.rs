//! End-to-end region-based queries (§3.2.2's "region-based query" case):
//! spatial restriction, correct answers across strategies, rewriting with
//! region-union carriers, and spatial SRT pruning.

use ttmqo_core::{
    run_experiment, ExperimentConfig, Strategy, TtmqoApp, TtmqoConfig, WorkloadEvent,
};
use ttmqo_query::{parse_query, EpochAnswer, Query, QueryId};
use ttmqo_sim::{
    MsgKind, NodeId, RadioParams, SimConfig, SimTime, Simulator, Topology, UniformField,
};
use ttmqo_tinydb::Command;

fn q(id: u64, text: &str) -> Query {
    parse_query(QueryId(id), text).unwrap()
}

fn config(strategy: Strategy, epochs: u64) -> ExperimentConfig {
    ExperimentConfig {
        strategy,
        grid_n: 4,
        duration: SimTime::from_ms(epochs * 2048),
        radio: RadioParams::lossless(),
        sim: SimConfig {
            maintenance_interval_ms: None,
            ..SimConfig::default()
        },
        ..ExperimentConfig::default()
    }
}

/// On the 4×4 grid (20 ft spacing), region(0,0,30,30) holds exactly nodes
/// 1, 4 and 5 (node 0 is the base station and never senses).
const NW_REGION: &str = "region(0, 0, 30, 30)";

#[test]
fn region_restricts_the_answer_set() {
    let workload = vec![WorkloadEvent::pose(
        0,
        q(
            1,
            &format!("select nodeid, light where {NW_REGION} epoch duration 2048"),
        ),
    )];
    let report = run_experiment(&config(Strategy::Baseline, 12), &workload);
    let answers = &report.answers[&QueryId(1)];
    assert!(answers.len() >= 8);
    for (epoch, answer) in answers.iter().filter(|(e, _)| *e >= 2 * 2048) {
        let EpochAnswer::Rows(rows) = answer else {
            panic!("expected rows")
        };
        let ids: Vec<u16> = rows.iter().map(|r| r.node).collect();
        assert_eq!(ids, vec![1, 4, 5], "epoch {epoch}: exactly the NW corner");
    }
}

#[test]
fn region_answers_agree_across_all_strategies() {
    let workload = vec![
        WorkloadEvent::pose(
            0,
            q(
                1,
                &format!("select light where {NW_REGION} epoch duration 2048"),
            ),
        ),
        WorkloadEvent::pose(
            0,
            q(
                2,
                &format!("select max(light) where {NW_REGION} epoch duration 4096"),
            ),
        ),
    ];
    let window = |answers: &[(u64, EpochAnswer)]| {
        answers
            .iter()
            .filter(|(e, _)| (3 * 2048..14 * 2048).contains(e))
            .cloned()
            .collect::<Vec<_>>()
    };
    let mut reference: Option<(Vec<_>, Vec<_>)> = None;
    for strategy in Strategy::ALL {
        let report = run_experiment(&config(strategy, 16), &workload);
        let a1 = window(&report.answers[&QueryId(1)]);
        let a2 = window(&report.answers[&QueryId(2)]);
        assert!(!a1.is_empty(), "{strategy}");
        match &reference {
            None => reference = Some((a1, a2)),
            Some((r1, r2)) => {
                assert_eq!(&a1, r1, "{strategy}: acquisition answers differ");
                assert_eq!(&a2, r2, "{strategy}: aggregation answers differ");
            }
        }
    }
}

#[test]
fn nested_region_query_is_absorbed_and_refiltered() {
    // q2's region contains q1's and fires more often: q1 is covered and
    // absorbed; the base station re-filters q2's wider stream down to q1's
    // rectangle using the nodes' known positions.
    let workload = vec![
        WorkloadEvent::pose(
            0,
            q(
                1,
                "select light where region(0, 0, 30, 30) epoch duration 4096",
            ),
        ),
        WorkloadEvent::pose(
            0,
            q(
                2,
                "select light where region(0, 0, 50, 50) epoch duration 2048",
            ),
        ),
    ];
    let report = run_experiment(&config(Strategy::TwoTier, 16), &workload);
    assert!(
        (report.avg_synthetic_count - 1.0).abs() < 0.2,
        "expected the nested query to be absorbed, got {}",
        report.avg_synthetic_count
    );
    // q1 gets only the NW-corner nodes despite the wider carrier.
    for (epoch, answer) in report.answers[&QueryId(1)]
        .iter()
        .filter(|(e, _)| *e >= 3 * 2048)
    {
        let EpochAnswer::Rows(rows) = answer else {
            panic!()
        };
        let ids: Vec<u16> = rows.iter().map(|r| r.node).collect();
        assert_eq!(ids, vec![1, 4, 5], "epoch {epoch}");
    }
    // q2's region (0..50)² holds the eight nodes at 0/20/40 ft coordinates
    // other than the base station.
    for (epoch, answer) in report.answers[&QueryId(2)]
        .iter()
        .filter(|(e, _)| *e >= 3 * 2048)
    {
        let EpochAnswer::Rows(rows) = answer else {
            panic!()
        };
        let ids: Vec<u16> = rows.iter().map(|r| r.node).collect();
        assert_eq!(ids, vec![1, 2, 4, 5, 6, 8, 9, 10], "epoch {epoch}");
    }

    // The merge-averse case: overlapping but non-nested regions whose union
    // bbox would more than double the qualifying nodes stay separate — the
    // cost model at work.
    let workload2 = vec![
        WorkloadEvent::pose(
            0,
            q(
                1,
                "select light where region(0, 0, 30, 30) epoch duration 2048",
            ),
        ),
        WorkloadEvent::pose(
            0,
            q(
                2,
                "select light where region(10, 10, 50, 50) epoch duration 4096",
            ),
        ),
    ];
    let report2 = run_experiment(&config(Strategy::TwoTier, 12), &workload2);
    assert!(
        report2.avg_synthetic_count > 1.8,
        "bbox-inflating merge must be rejected: {}",
        report2.avg_synthetic_count
    );
}

#[test]
fn disjoint_region_aggregations_stay_separate() {
    // Aggregations over different regions must not merge (§3.1.2's identical
    // row-set requirement extends to the spatial clause).
    let workload = vec![
        WorkloadEvent::pose(
            0,
            q(
                1,
                "select max(light) where region(0, 0, 30, 30) epoch duration 2048",
            ),
        ),
        WorkloadEvent::pose(
            0,
            q(
                2,
                "select max(light) where region(40, 40, 70, 70) epoch duration 2048",
            ),
        ),
    ];
    let report = run_experiment(&config(Strategy::TwoTier, 12), &workload);
    assert!(
        report.avg_synthetic_count > 1.8,
        "different-region MAX queries must stay apart: {}",
        report.avg_synthetic_count
    );
}

#[test]
fn spatial_srt_prunes_dissemination() {
    let topo = Topology::grid(4).unwrap();
    let run = |srt: bool| {
        let mut sim = Simulator::new(
            topo.clone(),
            RadioParams::lossless(),
            SimConfig {
                maintenance_interval_ms: None,
                ..SimConfig::default()
            },
            Box::new(UniformField::new(3)),
            move |_, _| {
                TtmqoApp::new(TtmqoConfig {
                    srt,
                    ..TtmqoConfig::default()
                })
            },
        );
        sim.schedule_command(
            SimTime::ZERO,
            NodeId::BASE_STATION,
            Command::Pose(q(
                1,
                &format!("select light where {NW_REGION} epoch duration 2048"),
            )),
        );
        sim.run_until(SimTime::from_ms(8 * 2048));
        let answers: Vec<_> = sim
            .outputs()
            .iter()
            .filter_map(|o| match &o.output {
                ttmqo_tinydb::Output::Answer {
                    epoch_ms, answer, ..
                } if *epoch_ms >= 4096 => Some((*epoch_ms, answer.clone())),
                _ => None,
            })
            .collect();
        (sim.metrics().tx_count(MsgKind::QueryPropagation), answers)
    };
    let (flood, flood_answers) = run(false);
    let (pruned, pruned_answers) = run(true);
    assert!(
        pruned < flood,
        "spatial SRT must prune: {pruned} !< {flood}"
    );
    assert_eq!(
        flood_answers, pruned_answers,
        "pruning must not change answers"
    );
}
