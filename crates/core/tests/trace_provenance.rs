//! Provenance acceptance test: the trace is a complete, faithful record of
//! the run. A summary reconstructed from the JSONL text alone — no access to
//! the simulator or the `RunReport` — must reproduce the report's per-query
//! answer counts exactly, carry a latency sample for every answer, and
//! account every delivered row's hop path.

use std::io::Write;
use std::sync::{Arc, Mutex};

use ttmqo_core::{run_experiment, ExperimentConfig, Strategy};
use ttmqo_sim::{summarize_trace, JsonLinesSink, SimTime, TraceHandle, SCHEMA_VERSION};
use ttmqo_workloads::workload_a;

/// A `Write` implementor appending into a shared buffer, so the test can
/// read the JSONL back without touching the filesystem.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn traced_run(strategy: Strategy) -> (ttmqo_core::RunReport, String) {
    let buf = SharedBuf::default();
    let sink = JsonLinesSink::new(buf.clone()).unwrap();
    let config = ExperimentConfig {
        strategy,
        grid_n: 4,
        duration: SimTime::from_ms(24 * 2048),
        trace: TraceHandle::new(sink),
        ..ExperimentConfig::default()
    };
    let report = run_experiment(&config, &workload_a());
    config.trace.flush();
    let bytes = buf.0.lock().unwrap().clone();
    (report, String::from_utf8(bytes).unwrap())
}

#[test]
fn trace_alone_reproduces_the_reports_answer_counts() {
    for strategy in [Strategy::Baseline, Strategy::TwoTier] {
        let (report, jsonl) = traced_run(strategy);
        let summary = summarize_trace(&jsonl, 2048).expect("trace schema matches the library");

        assert_eq!(summary.schema_version, Some(SCHEMA_VERSION));
        assert_eq!(summary.malformed_lines, 0, "[{strategy}] clean trace");
        assert!(!report.answers.is_empty(), "the cell answered queries");

        // The acceptance criterion: per-user-query answer counts match the
        // live report exactly, reconstructed from the trace text alone.
        assert_eq!(
            summary.answers_per_query.len(),
            report.answers.len(),
            "[{strategy}] user-query set"
        );
        for (qid, answers) in &report.answers {
            assert_eq!(
                summary.answers_per_query.get(&qid.0).copied(),
                Some(answers.len() as u64),
                "[{strategy}] answer count for query {qid:?}"
            );
        }

        // Every mapped answer carries a latency sample.
        for (qid, lats) in &summary.latency_ms_per_query {
            assert_eq!(
                lats.len() as u64,
                summary.answers_per_query[qid],
                "[{strategy}] latency samples for query {qid}"
            );
        }

        // Hop accounting: every delivered provenance took at least one hop,
        // and the rollups agree with the by-kind totals.
        assert!(!summary.hop_distribution.is_empty(), "[{strategy}]");
        assert!(summary.hop_distribution.keys().all(|&h| h >= 1));
        let rollup_answers: u64 = summary.rollups.iter().map(|r| r.answers).sum();
        assert_eq!(rollup_answers, summary.total_answers(), "[{strategy}]");
        let rollup_tx: u64 = summary.rollups.iter().map(|r| r.tx).sum();
        assert_eq!(
            rollup_tx,
            summary.by_kind.get("frame-tx").copied().unwrap_or(0),
            "[{strategy}]"
        );
    }
}
