//! End-to-end drain/re-admit cycle: after every query departs, the
//! optimizer holds zero synthetics, every node's in-network tier holds zero
//! installed queries (and its epoch clock — a GCD over the empty set —
//! stays disarmed without panicking), and a fresh admission afterwards
//! brings the whole stack back to life.

use ttmqo_core::{
    run_experiment, ExperimentConfig, FieldKind, Strategy, TtmqoApp, TtmqoConfig, WorkloadEvent,
};
use ttmqo_query::{parse_query, Query, QueryId};
use ttmqo_sim::{NodeId, RadioParams, SimConfig, SimTime, Simulator, Topology, UniformField};
use ttmqo_tinydb::{Command, Output};

fn q(id: u64, text: &str) -> Query {
    parse_query(QueryId(id), text).unwrap()
}

fn new_sim() -> Simulator<TtmqoApp> {
    Simulator::new(
        Topology::grid(4).unwrap(),
        RadioParams::lossless(),
        SimConfig {
            maintenance_interval_ms: None,
            ..SimConfig::default()
        },
        Box::new(UniformField::new(17)),
        |_, _| TtmqoApp::new(TtmqoConfig::default()),
    )
}

fn answer_epochs_in(sim: &Simulator<TtmqoApp>, from_ms: u64, to_ms: u64) -> Vec<u64> {
    sim.outputs()
        .iter()
        .filter_map(|o| match &o.output {
            Output::Answer { epoch_ms, .. } if (*epoch_ms >= from_ms) && (*epoch_ms < to_ms) => {
                Some(*epoch_ms)
            }
            _ => None,
        })
        .collect()
}

/// In-network drain: aborting every query leaves every node with zero
/// installed queries and a silent network; a later pose re-installs and
/// data flows again.
#[test]
fn aborting_every_query_empties_every_node_then_readmission_recovers() {
    let mut sim = new_sim();
    sim.schedule_command(
        SimTime::ZERO,
        NodeId::BASE_STATION,
        Command::Pose(q(1, "select light epoch duration 2048")),
    );
    sim.schedule_command(
        SimTime::ZERO,
        NodeId::BASE_STATION,
        Command::Pose(q(2, "select temp where 0<=temp<=900 epoch duration 4096")),
    );
    sim.schedule_command(
        SimTime::from_ms(8 * 2048),
        NodeId::BASE_STATION,
        Command::Terminate(QueryId(1)),
    );
    sim.schedule_command(
        SimTime::from_ms(8 * 2048),
        NodeId::BASE_STATION,
        Command::Terminate(QueryId(2)),
    );
    sim.run_until(SimTime::from_ms(16 * 2048));

    assert!(
        !answer_epochs_in(&sim, 2 * 2048, 8 * 2048).is_empty(),
        "both queries answered while alive"
    );
    for node in 1..16u16 {
        assert_eq!(
            sim.node(NodeId(node)).installed_queries().count(),
            0,
            "node {node} still holds queries after the drain"
        );
    }
    // The drained network is silent: no answers for post-drain epochs (one
    // epoch of slack for the abort flood and straddling closes).
    assert!(
        answer_epochs_in(&sim, 10 * 2048, 16 * 2048).is_empty(),
        "drained network must not produce answers"
    );

    // Re-admission: a brand-new query brings the stack back.
    sim.schedule_command(
        SimTime::from_ms(16 * 2048),
        NodeId::BASE_STATION,
        Command::Pose(q(3, "select light epoch duration 2048")),
    );
    sim.run_until(SimTime::from_ms(26 * 2048));
    for node in 1..16u16 {
        assert_eq!(
            sim.node(NodeId(node)).installed_queries().count(),
            1,
            "node {node} must re-learn the re-admitted query"
        );
    }
    assert!(
        !answer_epochs_in(&sim, 18 * 2048, 26 * 2048).is_empty(),
        "re-admitted query must produce answers"
    );
}

/// The same cycle through the full two-tier runner: a workload whose every
/// query terminates mid-run, then a second wave arrives after an idle gap.
/// Both waves must be answered and the optimizer must end at the live set.
#[test]
fn two_tier_runner_survives_full_drain_and_second_wave() {
    let drain_ms = 10 * 2048;
    let second_wave_ms = 16 * 2048;
    let workload = vec![
        WorkloadEvent::pose(
            0,
            q(1, "select light where 150<light<550 epoch duration 2048"),
        ),
        WorkloadEvent::pose(
            0,
            q(2, "select light where 100<light<600 epoch duration 2048"),
        ),
        WorkloadEvent::pose(0, q(3, "select max(temp) epoch duration 4096")),
        WorkloadEvent::terminate(drain_ms, QueryId(1)),
        WorkloadEvent::terminate(drain_ms, QueryId(2)),
        WorkloadEvent::terminate(drain_ms, QueryId(3)),
        WorkloadEvent::pose(second_wave_ms, q(4, "select temp epoch duration 2048")),
        WorkloadEvent::pose(
            second_wave_ms,
            q(
                5,
                "select min(light) where 0<=light<=800 epoch duration 4096",
            ),
        ),
    ];
    let config = ExperimentConfig {
        strategy: Strategy::TwoTier,
        grid_n: 3,
        duration: SimTime::from_ms(30 * 2048),
        radio: RadioParams::lossless(),
        sim: SimConfig {
            maintenance_interval_ms: Some(30_000),
            ..SimConfig::default()
        },
        field: FieldKind::Uniform,
        field_seed: 5,
        ..ExperimentConfig::default()
    };
    let report = run_experiment(&config, &workload);

    let stats = report.optimizer_stats.expect("two-tier has an optimizer");
    assert_eq!(stats.inserted, 5);
    assert_eq!(stats.terminated, 3);
    for id in 1..=3u64 {
        let answers = report
            .answers
            .get(&QueryId(id))
            .unwrap_or_else(|| panic!("first-wave query {id} unanswered"));
        assert!(!answers.is_empty());
        assert!(
            answers.iter().all(|(e, _)| *e < drain_ms),
            "query {id} must not be answered past its termination"
        );
    }
    for id in 4..=5u64 {
        let answers = report
            .answers
            .get(&QueryId(id))
            .unwrap_or_else(|| panic!("second-wave query {id} unanswered"));
        assert!(
            answers.iter().any(|(e, _)| *e >= second_wave_ms),
            "second-wave query {id} must be answered after the drain"
        );
    }
}
