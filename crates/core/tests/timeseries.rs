//! Timeseries reconciliation: the windowed per-node series must sum back to
//! the aggregate `Metrics` totals exactly — the recorder mirrors the same
//! deltas the metrics see, bucketed by event time, so nothing may be lost,
//! duplicated, or smeared across windows.

use std::collections::BTreeMap;
use ttmqo_core::{run_experiment, ExperimentConfig, RunReport, Strategy, WorkloadEvent};
use ttmqo_query::{parse_query, QueryId, BASE_EPOCH_MS};
use ttmqo_sim::{EnergyProfile, FaultPlan, MsgKind, NodeId, SimTime, TimeseriesConfig};
use ttmqo_workloads::workload_a;

/// Relative f64 comparison: window sums re-associate the same additions the
/// aggregate performed, so they agree to rounding, not bit-for-bit.
fn assert_close(what: &str, a: f64, b: f64) {
    let tol = 1e-9 * a.abs().max(b.abs()).max(1.0);
    assert!(
        (a - b).abs() <= tol,
        "{what}: window sum {a} != aggregate {b}"
    );
}

fn timeseries_run(strategy: Strategy, faults: FaultPlan) -> RunReport {
    let config = ExperimentConfig {
        strategy,
        grid_n: 4,
        duration: SimTime::from_ms(24 * 2048),
        timeseries: Some(TimeseriesConfig::default()),
        faults,
        ..ExperimentConfig::default()
    };
    run_experiment(&config, &workload_a())
}

fn check_reconciliation(strategy: Strategy, report: &RunReport) {
    let series = report
        .timeseries
        .as_ref()
        .expect("timeseries was enabled for this run");
    let snap = report.metrics.snapshot();
    let nodes = series.nodes.nodes;
    let windows = &series.nodes.windows;
    assert!(!windows.is_empty(), "[{strategy}] windows recorded");
    assert_eq!(series.nodes.window_ms, BASE_EPOCH_MS, "[{strategy}]");
    assert_eq!(series.nodes.horizon_ms, snap.horizon_ms, "[{strategy}]");

    // Window grid: starts stride by window_ms from zero; in-horizon windows
    // have full (or final partial) length, past-horizon windows length 0.
    for (i, w) in windows.iter().enumerate() {
        assert_eq!(
            w.start_ms,
            i as u64 * series.nodes.window_ms,
            "[{strategy}]"
        );
        assert!(w.len_ms <= series.nodes.window_ms, "[{strategy}]");
    }
    assert_eq!(
        windows.iter().map(|w| w.len_ms).sum::<u64>(),
        snap.horizon_ms,
        "[{strategy}] window lengths tile the horizon"
    );

    // Integer counters reconcile exactly.
    let mut tx_count: BTreeMap<MsgKind, u64> = BTreeMap::new();
    for w in windows {
        for (kind, n) in &w.tx_count {
            *tx_count.entry(*kind).or_default() += n;
        }
    }
    assert_eq!(tx_count, snap.tx_count, "[{strategy}] tx counts by kind");
    assert_eq!(
        windows.iter().map(|w| w.collisions).sum::<u64>(),
        snap.collisions,
        "[{strategy}] collisions"
    );
    assert_eq!(
        windows.iter().map(|w| w.retransmissions).sum::<u64>(),
        snap.retransmissions,
        "[{strategy}] retransmissions"
    );
    assert_eq!(
        windows.iter().map(|w| w.losses).sum::<u64>(),
        snap.losses,
        "[{strategy}] losses"
    );
    assert_eq!(
        windows.iter().map(|w| w.gave_up).sum::<u64>(),
        snap.gave_up,
        "[{strategy}] gave_up"
    );
    assert_eq!(
        windows
            .iter()
            .map(|w| w.samples.iter().sum::<u64>())
            .sum::<u64>(),
        snap.samples,
        "[{strategy}] samples"
    );

    // Float sums reconcile to rounding: the recorder mirrored the exact
    // deltas, only the association of the additions differs.
    let sum2 = |f: fn(&ttmqo_sim::WindowStats) -> f64| windows.iter().map(f).sum::<f64>();
    assert_close(
        &format!("[{strategy}] tx busy ms"),
        sum2(|w| w.tx_busy_ms.iter().sum()),
        snap.total_tx_busy_ms,
    );
    assert_close(
        &format!("[{strategy}] rx busy ms"),
        sum2(|w| w.rx_busy_ms.iter().sum()),
        snap.total_rx_busy_ms,
    );
    assert_close(
        &format!("[{strategy}] sleep ms"),
        sum2(|w| w.sleep_ms.iter().sum()),
        snap.total_sleep_ms,
    );

    // Energy: per-window energies use the unclamped idle remainder, so they
    // telescope to the aggregate energy whenever the aggregate itself does
    // not clamp (true for every node here: busy time is far below the
    // horizon).
    let profile = EnergyProfile::default();
    assert_close(
        &format!("[{strategy}] energy mJ"),
        sum2(|w| w.energy_mj.iter().sum()),
        report.metrics.total_energy_mj(&profile),
    );
    assert_close(
        &format!("[{strategy}] report energy mJ"),
        report.energy_mj,
        report.metrics.total_energy_mj(&profile),
    );
    assert!(
        report.max_node_energy_mj > 0.0 && report.max_node_energy_mj < report.energy_mj,
        "[{strategy}] per-node max is positive and below the total"
    );

    // Per-query answer series reconcile with the report's attributed
    // answers, and every latency observation is accounted for.
    assert_eq!(
        series.per_query.keys().collect::<Vec<_>>(),
        report.answers.keys().collect::<Vec<_>>(),
        "[{strategy}] same user-query set"
    );
    for (uid, q) in &series.per_query {
        let expected = report.answers[uid].len() as u64;
        assert_eq!(
            q.answers.iter().sum::<u64>(),
            expected,
            "[{strategy}] {uid:?} answers"
        );
        assert_eq!(
            q.latency.iter().map(|h| h.total()).sum::<u64>(),
            expected,
            "[{strategy}] {uid:?} latency observations"
        );
        assert!(
            q.nonempty.iter().sum::<u64>() <= expected,
            "[{strategy}] {uid:?} nonempty <= answers"
        );
        assert_eq!(
            q.answers.len(),
            windows.len(),
            "[{strategy}] {uid:?} padded to the window grid"
        );
    }
    for node in 0..nodes {
        assert_close(
            &format!("[{strategy}] node {node} tx busy"),
            series.nodes.node_total_tx_busy_ms(node),
            windows.iter().map(|w| w.tx_busy_ms[node]).sum(),
        );
    }
}

#[test]
fn window_sums_reconcile_with_aggregate_metrics_baseline() {
    let report = timeseries_run(Strategy::Baseline, FaultPlan::default());
    check_reconciliation(Strategy::Baseline, &report);
    assert!(report
        .timeseries
        .as_ref()
        .unwrap()
        .crash_times_ms
        .is_empty());
}

#[test]
fn window_sums_reconcile_with_aggregate_metrics_two_tier() {
    let report = timeseries_run(Strategy::TwoTier, FaultPlan::default());
    check_reconciliation(Strategy::TwoTier, &report);
}

#[test]
fn sleeping_cells_reconcile_their_sleep_windows() {
    // Workload A keeps every node busy each base epoch, so its sleep totals
    // are zero. A nodeid-restricted query lets the non-matching nodes sleep
    // between firings (§3.2.2), exercising the sleep credit/retraction
    // mirroring with non-trivial values.
    let workload = vec![WorkloadEvent::pose(
        0,
        parse_query(
            QueryId(1),
            "select light where 1 <= nodeid <= 3 epoch duration 2048",
        )
        .unwrap(),
    )];
    let config = ExperimentConfig {
        strategy: Strategy::TwoTier,
        grid_n: 4,
        duration: SimTime::from_ms(24 * 2048),
        timeseries: Some(TimeseriesConfig::default()),
        ..ExperimentConfig::default()
    };
    let report = run_experiment(&config, &workload);
    check_reconciliation(Strategy::TwoTier, &report);
    assert!(
        report.metrics.snapshot().total_sleep_ms > 0.0,
        "the restricted cell actually slept"
    );
}

#[test]
fn faulted_run_reconciles_and_reports_convergence() {
    // A crash mid-run exercises the sleep-retraction path (pending sleep is
    // credited at plan time and retracted at the crash) — reconciliation
    // must still hold — and gives the convergence analysis a crash to work
    // on.
    let crash_ms = 8 * 2048;
    let report = timeseries_run(
        Strategy::TwoTier,
        FaultPlan::scripted(vec![(NodeId(8), crash_ms, None)]),
    );
    check_reconciliation(Strategy::TwoTier, &report);
    let series = report.timeseries.as_ref().unwrap();
    assert_eq!(series.crash_times_ms, vec![crash_ms]);

    // With the loosest tolerance every criterion holds, so the first
    // full window after the crash's window is the answer — the mechanics of
    // baseline-vs-after comparison, deterministically.
    let converged = series
        .convergence_after_ms(crash_ms, 1.0)
        .expect("tolerance 1.0 accepts the first post-crash window");
    assert!(converged > crash_ms);
    assert_eq!(
        series.convergence_ms(1.0),
        vec![(crash_ms, Some(converged))]
    );
    // An impossible tolerance never converges.
    assert_eq!(series.convergence_after_ms(crash_ms, -1.0), None);

    // A crash before any full baseline window yields no baseline.
    assert_eq!(series.convergence_after_ms(0, 0.5), None);
}

#[test]
fn timeseries_json_is_balanced_and_carries_every_section() {
    let report = timeseries_run(Strategy::TwoTier, FaultPlan::default());
    let json = report.timeseries.as_ref().unwrap().to_json();
    assert!(json.starts_with("{\"schema_version\":"));
    for key in [
        "\"crash_times_ms\":[",
        "\"nodes\":{",
        "\"windows\":[",
        "\"gini_tx_busy\":",
        "\"max_mean_tx_ratio\":",
        "\"energy_mj\":[",
        "\"queries\":{",
        "\"latency_buckets\":[",
    ] {
        assert!(json.contains(key), "missing {key}");
    }
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert_eq!(json.matches('[').count(), json.matches(']').count());
    assert_eq!(json.matches('"').count() % 2, 0);
}
