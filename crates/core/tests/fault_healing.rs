//! Fault-injection acceptance tests: self-healing routing plus base-station
//! repair must bring answer completeness back after node crashes, the whole
//! faulty run must be deterministic under a fixed seed, and the completeness
//! accounting must read 1.0 on a healthy lossless run.

use ttmqo_core::{run_experiment, ExperimentConfig, RunReport, Strategy, WorkloadEvent};
use ttmqo_query::{parse_query, EpochAnswer, Query, QueryId};
use ttmqo_sim::{FaultPlan, NodeId, RadioParams, SimConfig, SimTime};

const EPOCH: u64 = 2048;

fn q(id: u64, text: &str) -> Query {
    parse_query(QueryId(id), text).unwrap()
}

fn quiet_sim() -> SimConfig {
    SimConfig {
        maintenance_interval_ms: None,
        ..SimConfig::default()
    }
}

/// Six scattered sensing nodes of the 8×8 grid (≈10% of its 63 non-base
/// nodes), none of them the base station's whole neighbourhood.
fn ten_percent_dead() -> Vec<NodeId> {
    [10u16, 19, 28, 37, 46, 55].map(NodeId).to_vec()
}

fn faulty_8x8_config(duration_epochs: u64) -> ExperimentConfig {
    ExperimentConfig {
        strategy: Strategy::TwoTier,
        grid_n: 8,
        duration: SimTime::from_ms(duration_epochs * EPOCH),
        radio: RadioParams::lossless(),
        sim: quiet_sim(),
        faults: FaultPlan::scripted(
            ten_percent_dead()
                .into_iter()
                .map(|n| (n, 8 * EPOCH, None))
                .collect(),
        ),
        ..ExperimentConfig::default()
    }
}

fn run_faulty_8x8(duration_epochs: u64) -> RunReport {
    let workload = vec![WorkloadEvent::pose(
        0,
        q(1, "select light epoch duration 2048"),
    )];
    run_experiment(&faulty_8x8_config(duration_epochs), &workload)
}

#[test]
fn ten_percent_crashes_recover_to_ninety_percent_survivor_completeness() {
    let report = run_faulty_8x8(40);
    let answers = &report.answers[&QueryId(1)];
    let survivors = 63 - ten_percent_dead().len(); // 57

    // Tail window: well after the crashes (epoch 8) and the self-healing
    // re-election that follows. Each tail epoch must carry at least 90% of
    // the surviving nodes' rows.
    let tail: Vec<(u64, usize)> = answers
        .iter()
        .filter(|(e, _)| *e >= 28 * EPOCH)
        .map(|(e, a)| {
            let EpochAnswer::Rows(rows) = a else {
                panic!("acquisition query answers in rows")
            };
            (*e, rows.len())
        })
        .collect();
    assert!(tail.len() >= 8, "tail window has epochs: {tail:?}");
    let floor = (0.9 * survivors as f64).ceil() as usize;
    for (e, rows) in &tail {
        assert!(
            *rows >= floor,
            "epoch {e}: {rows} rows < {floor} (90% of {survivors} survivors); tail = {tail:?}"
        );
    }
    // No dead node contributes after its crash.
    let dead = ten_percent_dead();
    for (e, a) in answers.iter().filter(|(e, _)| *e >= 10 * EPOCH) {
        let EpochAnswer::Rows(rows) = a else {
            panic!("acquisition query answers in rows")
        };
        for row in rows {
            assert!(
                !dead.contains(&NodeId(row.node)),
                "epoch {e}: row from dead node {}",
                row.node
            );
        }
    }

    // Completeness accounting reflects the outage-and-recovery shape:
    // expectations track survivors only, and the whole-run row ratio stays
    // high because the outage is short relative to the run.
    let qc = report.completeness.per_query[&QueryId(1)];
    assert!(qc.expected_epochs > 0 && qc.expected_rows > 0);
    assert!(
        qc.row_ratio() > 0.75,
        "whole-run row completeness {} too low: {qc:?}",
        qc.row_ratio()
    );
}

#[test]
fn faulty_run_is_deterministic_under_a_fixed_seed() {
    let a = run_faulty_8x8(24);
    let b = run_faulty_8x8(24);
    assert_eq!(a.metrics.snapshot(), b.metrics.snapshot());
    assert_eq!(a.answers, b.answers);
    assert_eq!(a.completeness, b.completeness);
    assert_eq!(a.optimizer_stats, b.optimizer_stats);
}

#[test]
fn base_station_repairs_a_query_whose_only_source_died() {
    // The sole node satisfying `nodeid = 15` crashes without recovery: its
    // synthetic query goes silent, the missing-result detector's streak
    // crosses the threshold, and the base station re-optimizes (re-floods
    // the query under a fresh synthetic id). The data cannot come back — the
    // node is dead — so this pins the detector/repair path itself.
    let config = ExperimentConfig {
        strategy: Strategy::TwoTier,
        grid_n: 4,
        duration: SimTime::from_ms(30 * EPOCH),
        radio: RadioParams::lossless(),
        sim: quiet_sim(),
        faults: FaultPlan::scripted(vec![(NodeId(15), 6 * EPOCH, None)]),
        ..ExperimentConfig::default()
    };
    let workload = vec![WorkloadEvent::pose(
        0,
        q(1, "select light where nodeid = 15 epoch duration 2048"),
    )];
    let report = run_experiment(&config, &workload);

    assert!(
        report.completeness.repairs_triggered >= 1,
        "persistently missing results must trigger a Tier-1 re-optimization: {:?}",
        report.completeness
    );
    let stats = report.optimizer_stats.expect("rewriting strategy");
    assert!(stats.reoptimizations >= 1);
    // Expected epochs stop accruing once no statically matching node is
    // alive, so the accounting does not blame the network for a dead source.
    let qc = report.completeness.per_query[&QueryId(1)];
    assert!(
        qc.expected_epochs < 20,
        "expectations must stop at the crash: {qc:?}"
    );
}

#[test]
fn healthy_lossless_run_reports_full_completeness() {
    let config = ExperimentConfig {
        strategy: Strategy::TwoTier,
        grid_n: 4,
        duration: SimTime::from_ms(16 * EPOCH),
        radio: RadioParams::lossless(),
        sim: quiet_sim(),
        ..ExperimentConfig::default()
    };
    let workload = vec![WorkloadEvent::pose(
        0,
        q(1, "select light epoch duration 2048"),
    )];
    let report = run_experiment(&config, &workload);
    let qc = report.completeness.per_query[&QueryId(1)];
    assert_eq!(qc.epoch_ratio(), 1.0, "{qc:?}");
    assert_eq!(qc.row_ratio(), 1.0, "{qc:?}");
    assert_eq!(report.completeness.repairs_triggered, 0);
    assert_eq!(report.metrics.orphaned_drops(), 0);
}
