//! Cross-strategy integration tests: every strategy must deliver the same
//! user-visible answers, and the optimized strategies must not cost more
//! than the baseline on share-friendly workloads.

use ttmqo_core::{run_experiment, ExperimentConfig, FieldKind, Strategy, WorkloadEvent};
use ttmqo_query::{parse_query, EpochAnswer, Query, QueryId};
use ttmqo_sim::{RadioParams, SimConfig, SimTime};

fn q(id: u64, text: &str) -> Query {
    parse_query(QueryId(id), text).unwrap()
}

fn config(strategy: Strategy, grid_n: usize, epochs: u64) -> ExperimentConfig {
    ExperimentConfig {
        strategy,
        grid_n,
        duration: SimTime::from_ms(epochs * 2048),
        radio: RadioParams::lossless(),
        sim: SimConfig {
            maintenance_interval_ms: Some(30_000),
            ..SimConfig::default()
        },
        field: FieldKind::Uniform,
        field_seed: 99,
        ..ExperimentConfig::default()
    }
}

/// Steady-state epochs common to all strategies for comparison (skipping the
/// first epochs where flood timing may differ, and the last where collection
/// may be cut off).
fn steady(answers: &[(u64, EpochAnswer)], from_ms: u64, to_ms: u64) -> Vec<(u64, EpochAnswer)> {
    answers
        .iter()
        .filter(|(e, _)| *e >= from_ms && *e < to_ms)
        .cloned()
        .collect()
}

#[test]
fn all_strategies_agree_on_acquisition_answers() {
    let workload = vec![
        WorkloadEvent::pose(
            0,
            q(1, "select light where 300<=light<=900 epoch duration 2048"),
        ),
        WorkloadEvent::pose(
            0,
            q(
                2,
                "select light, temp where 400<=light<=800 epoch duration 4096",
            ),
        ),
    ];
    let from = 3 * 2048;
    let to = 16 * 2048;
    let mut per_strategy = Vec::new();
    for strategy in Strategy::ALL {
        let report = run_experiment(&config(strategy, 3, 20), &workload);
        let a1 = steady(
            report.answers.get(&QueryId(1)).expect("q1 answered"),
            from,
            to,
        );
        let a2 = steady(
            report.answers.get(&QueryId(2)).expect("q2 answered"),
            from,
            to,
        );
        assert!(
            !a1.is_empty(),
            "{strategy}: q1 produced no steady-state answers"
        );
        assert!(
            !a2.is_empty(),
            "{strategy}: q2 produced no steady-state answers"
        );
        per_strategy.push((strategy, a1, a2));
    }
    let (_, ref base1, ref base2) = per_strategy[0];
    for (strategy, a1, a2) in &per_strategy[1..] {
        assert_eq!(a1, base1, "q1 answers differ under {strategy}");
        assert_eq!(a2, base2, "q2 answers differ under {strategy}");
    }
}

#[test]
fn all_strategies_agree_on_aggregation_answers() {
    let workload = vec![
        WorkloadEvent::pose(0, q(1, "select max(light) epoch duration 2048")),
        WorkloadEvent::pose(0, q(2, "select min(light) epoch duration 4096")),
    ];
    let from = 3 * 2048;
    let to = 16 * 2048;
    let mut per_strategy = Vec::new();
    for strategy in Strategy::ALL {
        let report = run_experiment(&config(strategy, 3, 20), &workload);
        let a1 = steady(
            report.answers.get(&QueryId(1)).expect("q1 answered"),
            from,
            to,
        );
        let a2 = steady(
            report.answers.get(&QueryId(2)).expect("q2 answered"),
            from,
            to,
        );
        assert!(!a1.is_empty(), "{strategy}: no steady answers");
        per_strategy.push((strategy, a1, a2));
    }
    let (_, ref base1, ref base2) = per_strategy[0];
    for (strategy, a1, a2) in &per_strategy[1..] {
        assert_eq!(a1, base1, "max answers differ under {strategy}");
        assert_eq!(a2, base2, "min answers differ under {strategy}");
    }
}

#[test]
fn aggregation_folded_into_acquisition_matches_baseline() {
    // q2 (MAX) is answerable from q1's acquisition stream: the two-tier
    // scheme folds it, the baseline runs it separately — answers must agree.
    let workload = vec![
        WorkloadEvent::pose(0, q(1, "select light, temp epoch duration 2048")),
        WorkloadEvent::pose(0, q(2, "select max(light) epoch duration 4096")),
    ];
    let from = 3 * 2048;
    let to = 16 * 2048;
    let baseline = run_experiment(&config(Strategy::Baseline, 3, 20), &workload);
    let twotier = run_experiment(&config(Strategy::TwoTier, 3, 20), &workload);
    let b = steady(&baseline.answers[&QueryId(2)], from, to);
    let t = steady(&twotier.answers[&QueryId(2)], from, to);
    assert!(!b.is_empty());
    assert_eq!(b, t, "folded aggregation must still be exact");
    // And the fold really happened: one synthetic query.
    assert!((twotier.avg_synthetic_count - 1.0).abs() < 0.2);
}

#[test]
fn optimized_strategies_cost_less_on_similar_workload() {
    // Eight near-identical acquisition queries — the share-friendly regime.
    let workload: Vec<WorkloadEvent> = (0..8)
        .map(|i| {
            WorkloadEvent::pose(
                0,
                q(i, "select light where 200<=light<=800 epoch duration 2048"),
            )
        })
        .collect();
    let mut tx = std::collections::BTreeMap::new();
    for strategy in Strategy::ALL {
        let report = run_experiment(&config(strategy, 4, 30), &workload);
        tx.insert(strategy, report.avg_transmission_time_pct());
    }
    let base = tx[&Strategy::Baseline];
    assert!(
        tx[&Strategy::BsOnly] < base * 0.6,
        "bs-only {} not ≪ baseline {base}",
        tx[&Strategy::BsOnly]
    );
    assert!(
        tx[&Strategy::InNetOnly] < base * 0.6,
        "in-net-only {} not ≪ baseline {base}",
        tx[&Strategy::InNetOnly]
    );
    assert!(
        tx[&Strategy::TwoTier] < base * 0.6,
        "two-tier {} not ≪ baseline {base}",
        tx[&Strategy::TwoTier]
    );
}

#[test]
fn two_tier_handles_dynamic_arrivals_and_departures() {
    let workload = vec![
        WorkloadEvent::pose(
            0,
            q(1, "select light where 100<light<600 epoch duration 2048"),
        ),
        WorkloadEvent::pose(
            3 * 2048,
            q(2, "select light where 200<light<500 epoch duration 4096"),
        ),
        WorkloadEvent::terminate(10 * 2048, QueryId(1)),
        WorkloadEvent::pose(
            12 * 2048,
            q(3, "select light where 150<light<550 epoch duration 2048"),
        ),
    ];
    let report = run_experiment(&config(Strategy::TwoTier, 3, 24), &workload);
    // q1 answered only while alive.
    let a1 = &report.answers[&QueryId(1)];
    assert!(a1.iter().all(|(e, _)| *e < 11 * 2048));
    assert!(!a1.is_empty());
    // q2 still answered after q1's termination.
    let a2 = &report.answers[&QueryId(2)];
    assert!(
        a2.iter().any(|(e, _)| *e > 12 * 2048),
        "q2 must survive q1's exit"
    );
    // q3 answered after joining.
    let a3 = &report.answers[&QueryId(3)];
    assert!(!a3.is_empty());
    assert!(a3.iter().all(|(e, _)| *e >= 12 * 2048));
}

#[test]
fn covered_insertion_causes_no_network_traffic_spike() {
    // One broad query, then a covered narrow one: the second must be absorbed.
    let broad = q(1, "select light, temp epoch duration 2048");
    let narrow = q(2, "select light where 300<=light<=500 epoch duration 4096");
    let workload_one = vec![WorkloadEvent::pose(0, broad.clone())];
    let workload_two = vec![
        WorkloadEvent::pose(0, broad),
        WorkloadEvent::pose(5 * 2048, narrow),
    ];
    let one = run_experiment(&config(Strategy::TwoTier, 3, 20), &workload_one);
    let two = run_experiment(&config(Strategy::TwoTier, 3, 20), &workload_two);
    let m1 = one.metrics.tx_count(ttmqo_sim::MsgKind::Result);
    let m2 = two.metrics.tx_count(ttmqo_sim::MsgKind::Result);
    assert_eq!(m1, m2, "covered query must add zero result messages");
    // Yet the covered query is fully answered.
    assert!(!two.answers[&QueryId(2)].is_empty());
    assert_eq!(two.optimizer_stats.unwrap().absorbed_insertions, 1);
}

#[test]
fn non_divisible_epochs_share_in_network() {
    // 4096 vs 6144 ms: tier 1 cannot merge them (GCD 2048 carrier would fire
    // more often than either), but tier 2 shares the common firings.
    let workload = vec![
        WorkloadEvent::pose(0, q(1, "select light epoch duration 4096")),
        WorkloadEvent::pose(0, q(2, "select light epoch duration 6144")),
    ];
    let baseline = run_experiment(&config(Strategy::Baseline, 4, 36), &workload);
    let innet = run_experiment(&config(Strategy::InNetOnly, 4, 36), &workload);
    // Identical answers...
    let from = 2 * 6144;
    let to = 30 * 2048;
    for qid in [QueryId(1), QueryId(2)] {
        assert_eq!(
            steady(&baseline.answers[&qid], from, to),
            steady(&innet.answers[&qid], from, to),
            "{qid} answers differ"
        );
    }
    // ...at lower cost: at t = multiples of 12288 both queries fire and the
    // in-network tier sends one shared message instead of two.
    assert!(
        innet.metrics.tx_count(ttmqo_sim::MsgKind::Result)
            < baseline.metrics.tx_count(ttmqo_sim::MsgKind::Result),
        "in-network sharing must reduce result messages: {} vs {}",
        innet.metrics.tx_count(ttmqo_sim::MsgKind::Result),
        baseline.metrics.tx_count(ttmqo_sim::MsgKind::Result)
    );
}
