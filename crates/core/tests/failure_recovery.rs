//! Node failure and recovery: the paper leaves "node failures … inherent
//! with wireless sensor networks" to future work; this reproduction models
//! them. A crashed node loses all volatile state; on reboot it rejoins as a
//! relay immediately and re-learns query definitions from its neighbours
//! (QueryRequest/QueryShare) after overhearing traffic for unknown queries.

use ttmqo_core::{TtmqoApp, TtmqoConfig};
use ttmqo_query::{parse_query, Query, QueryId};
use ttmqo_sim::{NodeId, RadioParams, SimConfig, SimTime, Simulator, Topology, UniformField};
use ttmqo_tinydb::{Command, Output};

fn new_sim(recovery: bool) -> Simulator<TtmqoApp> {
    Simulator::new(
        Topology::grid(4).unwrap(),
        RadioParams::lossless(),
        SimConfig {
            maintenance_interval_ms: None,
            ..SimConfig::default()
        },
        Box::new(UniformField::new(31)),
        move |_, _| {
            TtmqoApp::new(TtmqoConfig {
                query_recovery: recovery,
                ..TtmqoConfig::default()
            })
        },
    )
}

fn query() -> Query {
    parse_query(QueryId(1), "select light epoch duration 2048").unwrap()
}

fn answers_in(sim: &Simulator<TtmqoApp>, from_ms: u64, to_ms: u64) -> Vec<(u64, usize)> {
    sim.outputs()
        .iter()
        .filter_map(|o| match &o.output {
            Output::Answer {
                epoch_ms, answer, ..
            } if (*epoch_ms >= from_ms) && (*epoch_ms < to_ms) => Some((*epoch_ms, answer.len())),
            _ => None,
        })
        .collect()
}

#[test]
fn failed_node_vanishes_from_answers() {
    let mut sim = new_sim(true);
    sim.schedule_command(SimTime::ZERO, NodeId::BASE_STATION, Command::Pose(query()));
    // Node 15 (a corner leaf) crashes at epoch 5.
    sim.schedule_failure(SimTime::from_ms(5 * 2048), NodeId(15));
    sim.run_until(SimTime::from_ms(20 * 2048));

    assert!(sim.is_failed(NodeId(15)));
    let before = answers_in(&sim, 2 * 2048, 5 * 2048);
    let after = answers_in(&sim, 6 * 2048, 20 * 2048);
    assert!(!before.is_empty() && !after.is_empty());
    // Full-selectivity query: 15 rows while everyone is alive, 14 after.
    assert!(before.iter().all(|&(_, n)| n == 15), "{before:?}");
    assert!(after.iter().all(|&(_, n)| n == 14), "{after:?}");
}

#[test]
fn recovered_node_relearns_the_query_and_contributes_again() {
    let mut sim = new_sim(true);
    sim.schedule_command(SimTime::ZERO, NodeId::BASE_STATION, Command::Pose(query()));
    sim.schedule_failure(SimTime::from_ms(5 * 2048), NodeId(15));
    sim.schedule_recovery(SimTime::from_ms(10 * 2048), NodeId(15));
    sim.run_until(SimTime::from_ms(30 * 2048));

    assert!(!sim.is_failed(NodeId(15)));
    // The rebooted node lost the query; it must have re-learned it.
    assert_eq!(
        sim.node(NodeId(15)).installed_queries().count(),
        1,
        "query definition recovered from neighbours"
    );
    // And its data flows again: the tail of the run is back to 15 rows.
    let tail = answers_in(&sim, 25 * 2048, 30 * 2048);
    assert!(!tail.is_empty());
    assert!(tail.iter().all(|&(_, n)| n == 15), "{tail:?}");
}

#[test]
fn without_query_recovery_the_rebooted_node_stays_silent() {
    let mut sim = new_sim(false);
    sim.schedule_command(SimTime::ZERO, NodeId::BASE_STATION, Command::Pose(query()));
    sim.schedule_failure(SimTime::from_ms(5 * 2048), NodeId(15));
    sim.schedule_recovery(SimTime::from_ms(10 * 2048), NodeId(15));
    sim.run_until(SimTime::from_ms(30 * 2048));

    assert_eq!(
        sim.node(NodeId(15)).installed_queries().count(),
        0,
        "no recovery mechanism, no query"
    );
    let tail = answers_in(&sim, 25 * 2048, 30 * 2048);
    assert!(tail.iter().all(|&(_, n)| n == 14), "{tail:?}");
}

#[test]
fn failed_relay_loses_descendants_until_recovery() {
    // Crash an interior level-1 node; its descendants' unicasts to it are
    // lost (retried, then dropped) until the DAG steers around it or the
    // node recovers. With dynamic parents, coverage returns quickly.
    let mut sim = new_sim(true);
    sim.schedule_command(SimTime::ZERO, NodeId::BASE_STATION, Command::Pose(query()));
    sim.schedule_failure(SimTime::from_ms(5 * 2048), NodeId(1));
    sim.schedule_recovery(SimTime::from_ms(12 * 2048), NodeId(1));
    sim.run_until(SimTime::from_ms(30 * 2048));

    // After recovery, answers must return to full coverage.
    let tail = answers_in(&sim, 24 * 2048, 30 * 2048);
    assert!(!tail.is_empty());
    assert!(
        tail.iter().all(|&(_, n)| n == 15),
        "full coverage must resume after the relay recovers: {tail:?}"
    );
    // During the outage some rows may be missing, but the epoch stream never
    // stops entirely.
    let outage = answers_in(&sim, 6 * 2048, 12 * 2048);
    assert_eq!(
        outage.len(),
        6,
        "one answer per epoch even during the outage"
    );
    assert!(outage.iter().all(|&(_, n)| n >= 12), "{outage:?}");
}

#[test]
fn base_station_failure_suppresses_answers_until_recovery() {
    let mut sim = new_sim(true);
    sim.schedule_command(SimTime::ZERO, NodeId::BASE_STATION, Command::Pose(query()));
    sim.schedule_failure(SimTime::from_ms(5 * 2048), NodeId::BASE_STATION);
    sim.run_until(SimTime::from_ms(12 * 2048));
    let during = answers_in(&sim, 6 * 2048, 12 * 2048);
    assert!(
        during.is_empty(),
        "a dead base station emits nothing: {during:?}"
    );
}
