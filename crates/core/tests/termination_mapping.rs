//! Answer-attribution tests around query termination.
//!
//! TinyDB labels an answer with its epoch's *start* time but only emits it at
//! the epoch's close (last level slot + 32 ms), so an epoch can straddle a
//! `Terminate`: the mapping snapshot at the epoch start still lists the user
//! query, yet the answer materializes after the user is gone. Those answers
//! must not be attributed — and on long workloads the snapshot lookup must
//! stay exact while being a binary search rather than a reverse scan.

use ttmqo_core::{run_experiment, ExperimentConfig, FieldKind, Strategy, WorkloadEvent};
use ttmqo_query::{parse_query, Query, QueryId};
use ttmqo_sim::{RadioParams, SimConfig, SimTime};

fn q(id: u64, text: &str) -> Query {
    parse_query(QueryId(id), text).unwrap()
}

fn config(strategy: Strategy, epochs: u64) -> ExperimentConfig {
    ExperimentConfig {
        strategy,
        grid_n: 3,
        duration: SimTime::from_ms(epochs * 2048),
        radio: RadioParams::lossless(),
        sim: SimConfig {
            maintenance_interval_ms: Some(30_000),
            ..SimConfig::default()
        },
        field: FieldKind::Uniform,
        field_seed: 99,
        ..ExperimentConfig::default()
    }
}

#[test]
fn terminating_mid_epoch_attributes_no_straddling_answer() {
    // Terminate 10 ms into the epoch that starts at 10·2048: the snapshot at
    // the epoch start still contains the query, but its answer only closes
    // ~(levels+1)·64 + 32 ms after the start — after the termination — so it
    // must not be attributed. (Before arrival-time checking it was.)
    //
    // q2 is an *identical* query, so under the rewriting strategies q1's
    // termination is fully absorbed at the base station (Algorithm 2 frees
    // no demand): the shared synthetic query keeps running and its answer
    // for the straddled epoch really arrives — the misattribution is live,
    // not hypothetical. (A termination that aborts the in-network query
    // instead cancels the pending epoch close, so no straddling answer ever
    // materializes in the first place.)
    let straddled_epoch = 10 * 2048;
    let term = straddled_epoch + 10;
    for strategy in Strategy::ALL {
        let workload = vec![
            WorkloadEvent::pose(
                0,
                q(1, "select light where 150<light<550 epoch duration 2048"),
            ),
            WorkloadEvent::pose(
                0,
                q(2, "select light where 150<light<550 epoch duration 2048"),
            ),
            WorkloadEvent::terminate(term, QueryId(1)),
        ];
        let report = run_experiment(&config(strategy, 20), &workload);
        if strategy.uses_basestation_tier() {
            // The scenario exercises the straddle only if the termination
            // was really absorbed (shared query kept running).
            assert_eq!(
                report.optimizer_stats.unwrap().absorbed_terminations,
                1,
                "{strategy}: termination should be absorbed"
            );
        }
        let a1 = report.answers.get(&QueryId(1)).expect("q1 answered at all");
        assert!(!a1.is_empty(), "{strategy}: q1 has answers while alive");
        assert!(
            a1.iter().all(|(e, _)| *e < straddled_epoch),
            "{strategy}: q1 got an answer for an epoch whose result arrived \
             after its termination: epochs {:?}",
            a1.iter().map(|(e, _)| *e).collect::<Vec<_>>()
        );
        // The surviving query keeps receiving answers afterwards.
        let a2 = report.answers.get(&QueryId(2)).expect("q2 answered");
        assert!(
            a2.iter().any(|(e, _)| *e > straddled_epoch),
            "{strategy}: q2 must outlive q1"
        );
    }
}

#[test]
fn many_event_workload_maps_answers_only_inside_lifetimes() {
    // Satellite regression for the snapshot binary search: a workload with
    // many pose/terminate events builds a long snapshot timeline with
    // same-millisecond bursts; every attributed answer must land strictly
    // inside its query's [pose, terminate) window, and queries alive long
    // enough must actually be answered.
    let n = 24u64;
    let mut workload = Vec::new();
    let mut windows = Vec::new();
    for i in 0..n {
        // Staggered overlapping lifetimes; every third pose shares its
        // timestamp with the previous query's termination.
        let pose = i * 1024;
        let life = 8 * 2048 + (i % 5) * 2048;
        let term = pose + life;
        let (lo, hi) = (100 + (i % 7) * 50, 700 + (i % 4) * 50);
        workload.push(WorkloadEvent::pose(
            pose,
            q(
                i,
                &format!("select light where {lo}<light<{hi} epoch duration 2048"),
            ),
        ));
        workload.push(WorkloadEvent::terminate(term, QueryId(i)));
        windows.push((QueryId(i), pose, term));
    }
    let horizon = 40u64;
    for strategy in [Strategy::Baseline, Strategy::TwoTier] {
        let report = run_experiment(&config(strategy, horizon), &workload);
        let mut answered = 0usize;
        for (qid, pose, term) in &windows {
            let Some(answers) = report.answers.get(qid) else {
                continue;
            };
            answered += 1;
            for (epoch, _) in answers {
                assert!(
                    *epoch >= *pose && *epoch < *term,
                    "{strategy}: {qid} answered for epoch {epoch} outside \
                     its lifetime [{pose}, {term})"
                );
            }
        }
        assert!(
            answered >= 16,
            "{strategy}: only {answered}/{n} queries ever answered"
        );
    }
}
