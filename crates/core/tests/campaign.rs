//! Campaign-runner integration tests: the parallel executor must be an
//! observational no-op relative to running each cell alone, and the report
//! must carry exactly one record per cell.

use ttmqo_core::{
    run_campaign_sequential, run_campaign_with, CampaignSpec, ExperimentConfig, FieldKind,
    Strategy, WorkloadEvent,
};
use ttmqo_query::{parse_query, Query, QueryId};
use ttmqo_sim::{RadioParams, SimTime};

fn q(id: u64, text: &str) -> Query {
    parse_query(QueryId(id), text).unwrap()
}

/// A small dynamic workload: overlapping poses, one termination.
fn workload() -> Vec<WorkloadEvent> {
    vec![
        WorkloadEvent::pose(
            0,
            q(1, "select light where 100<light<600 epoch duration 2048"),
        ),
        WorkloadEvent::pose(
            0,
            q(
                2,
                "select light, temp where 200<light<500 epoch duration 4096",
            ),
        ),
        WorkloadEvent::pose(3 * 2048, q(3, "select max(light) epoch duration 4096")),
        WorkloadEvent::terminate(9 * 2048, QueryId(1)),
    ]
}

fn paper_spec() -> CampaignSpec {
    let base = ExperimentConfig {
        duration: SimTime::from_ms(16 * 2048),
        radio: RadioParams::lossless(),
        field: FieldKind::Uniform,
        field_seed: 987,
        ..ExperimentConfig::default()
    };
    // The acceptance sweep: all four strategies × the paper's two grids.
    CampaignSpec::new(base)
        .strategies(Strategy::ALL)
        .grid_sizes([4, 8])
        .workload("dynamic", workload())
}

#[test]
fn parallel_campaign_matches_sequential_cell_for_cell() {
    let spec = paper_spec();
    let sequential = run_campaign_sequential(&spec);
    let parallel = run_campaign_with(&spec, 4);
    assert_eq!(sequential.threads, 1);
    assert!(parallel.threads > 1, "multi-thread run requested");
    assert_eq!(sequential.cells.len(), spec.cell_count());
    assert_eq!(parallel.cells.len(), sequential.cells.len());
    for (seq, par) in sequential.cells.iter().zip(&parallel.cells) {
        // Identity: the parallel report preserves cell order.
        assert_eq!(seq.workload, par.workload);
        assert_eq!(seq.strategy, par.strategy);
        assert_eq!(seq.grid_n, par.grid_n);
        assert_eq!(seq.field_seed, par.field_seed);
        // Determinism: every measured field except wall clock is identical,
        // down to the floating-point bit pattern.
        let at = format!("{}/{}/{}", seq.workload, seq.strategy, seq.grid_n);
        assert_eq!(seq.metrics, par.metrics, "metrics differ at {at}");
        assert_eq!(seq.workload_events, par.workload_events, "{at}");
        assert_eq!(seq.queries_answered, par.queries_answered, "{at}");
        assert_eq!(seq.answer_epochs, par.answer_epochs, "{at}");
        assert_eq!(seq.optimizer, par.optimizer, "{at}");
        assert!(
            seq.avg_synthetic_count == par.avg_synthetic_count
                && seq.avg_benefit_ratio == par.avg_benefit_ratio,
            "tier-1 time-weighted stats differ at {at}"
        );
    }
    // The cells actually simulated something.
    for cell in &sequential.cells {
        assert!(
            cell.avg_transmission_time_pct() > 0.0,
            "{}/{} ran empty",
            cell.strategy,
            cell.grid_n
        );
    }
}

#[test]
fn campaign_rerun_is_bit_stable() {
    // Two parallel runs of the same spec agree with each other too (the
    // cursor hands cells to different threads; results must not care).
    let spec = paper_spec();
    let a = run_campaign_with(&spec, 3);
    let b = run_campaign_with(&spec, 2);
    for (x, y) in a.cells.iter().zip(&b.cells) {
        assert_eq!(x.metrics, y.metrics);
        assert_eq!(x.answer_epochs, y.answer_epochs);
    }
}

#[test]
fn report_emits_one_jsonl_record_per_cell() {
    let spec = paper_spec();
    let report = run_campaign_with(&spec, 4);
    let jsonl = report.to_jsonl();
    assert_eq!(jsonl.lines().count(), spec.cell_count());
    // Every coordinate pair appears exactly once.
    for strategy in Strategy::ALL {
        for grid_n in [4usize, 8] {
            let needle = format!("\"strategy\":\"{strategy}\",\"grid_n\":{grid_n}");
            assert_eq!(
                jsonl.matches(&needle).count(),
                1,
                "missing or duplicated record for {strategy}/{grid_n}"
            );
        }
    }
}
