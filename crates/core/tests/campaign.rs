//! Campaign-runner integration tests: the parallel executor must be an
//! observational no-op relative to running each cell alone, and the report
//! must carry exactly one record per cell. The observatory layers (progress
//! telemetry, the standing auditor, the cross-cell rollup) get the same
//! treatment: attaching them must not move a single bit of any cell record.

use std::sync::{Arc, Mutex};
use ttmqo_core::observe::{CampaignEvent, MemoryProgress, ProgressHandle, ProgressSink};
use ttmqo_core::{
    run_campaign_sequential, run_campaign_with, CampaignSpec, ExperimentConfig, FieldKind,
    Strategy, WorkloadEvent,
};
use ttmqo_query::{parse_query, Query, QueryId};
use ttmqo_sim::{RadioParams, SimTime};

fn q(id: u64, text: &str) -> Query {
    parse_query(QueryId(id), text).unwrap()
}

/// A small dynamic workload: overlapping poses, one termination.
fn workload() -> Vec<WorkloadEvent> {
    vec![
        WorkloadEvent::pose(
            0,
            q(1, "select light where 100<light<600 epoch duration 2048"),
        ),
        WorkloadEvent::pose(
            0,
            q(
                2,
                "select light, temp where 200<light<500 epoch duration 4096",
            ),
        ),
        WorkloadEvent::pose(3 * 2048, q(3, "select max(light) epoch duration 4096")),
        WorkloadEvent::terminate(9 * 2048, QueryId(1)),
    ]
}

fn paper_spec() -> CampaignSpec {
    let base = ExperimentConfig {
        duration: SimTime::from_ms(16 * 2048),
        radio: RadioParams::lossless(),
        field: FieldKind::Uniform,
        field_seed: 987,
        ..ExperimentConfig::default()
    };
    // The acceptance sweep: all four strategies × the paper's two grids.
    CampaignSpec::new(base)
        .strategies(Strategy::ALL)
        .grid_sizes([4, 8])
        .workload("dynamic", workload())
}

#[test]
fn parallel_campaign_matches_sequential_cell_for_cell() {
    let spec = paper_spec();
    let sequential = run_campaign_sequential(&spec);
    let parallel = run_campaign_with(&spec, 4);
    assert_eq!(sequential.threads, 1);
    assert!(parallel.threads > 1, "multi-thread run requested");
    assert_eq!(sequential.cells.len(), spec.cell_count());
    assert_eq!(parallel.cells.len(), sequential.cells.len());
    for (seq, par) in sequential.cells.iter().zip(&parallel.cells) {
        // Identity: the parallel report preserves cell order.
        assert_eq!(seq.workload, par.workload);
        assert_eq!(seq.strategy, par.strategy);
        assert_eq!(seq.grid_n, par.grid_n);
        assert_eq!(seq.field_seed, par.field_seed);
        // Determinism: every measured field except wall clock is identical,
        // down to the floating-point bit pattern.
        let at = format!("{}/{}/{}", seq.workload, seq.strategy, seq.grid_n);
        assert_eq!(seq.metrics, par.metrics, "metrics differ at {at}");
        assert_eq!(seq.workload_events, par.workload_events, "{at}");
        assert_eq!(seq.queries_answered, par.queries_answered, "{at}");
        assert_eq!(seq.answer_epochs, par.answer_epochs, "{at}");
        assert_eq!(seq.optimizer, par.optimizer, "{at}");
        assert!(
            seq.avg_synthetic_count == par.avg_synthetic_count
                && seq.avg_benefit_ratio == par.avg_benefit_ratio,
            "tier-1 time-weighted stats differ at {at}"
        );
    }
    // The cells actually simulated something.
    for cell in &sequential.cells {
        assert!(
            cell.avg_transmission_time_pct() > 0.0,
            "{}/{} ran empty",
            cell.strategy,
            cell.grid_n
        );
    }
}

#[test]
fn campaign_rerun_is_bit_stable() {
    // Two parallel runs of the same spec agree with each other too (the
    // cursor hands cells to different threads; results must not care).
    let spec = paper_spec();
    let a = run_campaign_with(&spec, 3);
    let b = run_campaign_with(&spec, 2);
    for (x, y) in a.cells.iter().zip(&b.cells) {
        assert_eq!(x.metrics, y.metrics);
        assert_eq!(x.answer_epochs, y.answer_epochs);
    }
}

#[test]
fn observed_audited_campaign_is_bit_identical_to_a_bare_run() {
    // The whole observatory — progress telemetry with a fast heartbeat plus
    // the standing auditor — attached to the paper sweep must reproduce the
    // bare run's cell records bit for bit: telemetry never draws from any
    // simulation RNG and never branches on simulated state.
    let bare = run_campaign_with(&paper_spec(), 3);

    let sink: Arc<Mutex<MemoryProgress>> = Arc::new(Mutex::new(MemoryProgress::default()));
    let spec = paper_spec()
        .audit()
        .heartbeat_ms(1)
        .progress_handle(ProgressHandle::shared(
            sink.clone() as Arc<Mutex<dyn ProgressSink>>
        ));
    let observed = run_campaign_with(&spec, 3);

    assert_eq!(bare.cells.len(), observed.cells.len());
    for (b, o) in bare.cells.iter().zip(&observed.cells) {
        let at = format!("{}/{}/{}", b.workload, b.strategy, b.grid_n);
        assert_eq!(b.metrics, o.metrics, "metrics differ at {at}");
        assert_eq!(b.engine, o.engine, "engine stats differ at {at}");
        assert_eq!(b.answer_epochs, o.answer_epochs, "{at}");
        assert_eq!(b.optimizer, o.optimizer, "{at}");
        assert_eq!(b.energy_mj, o.energy_mj, "{at}");
        // The only permitted difference: the audited run carries a (clean)
        // audit report where the bare run carries none.
        assert!(b.audit.is_none(), "bare cell must not carry an audit");
        let audit = o.audit.as_ref().expect("audited cell carries a report");
        assert!(audit.is_clean(), "healthy sweep must audit clean at {at}");
    }

    // The telemetry channel saw the whole lifecycle, in a consistent order.
    let events = sink.lock().unwrap().events().to_vec();
    assert!(matches!(
        events.first(),
        Some(CampaignEvent::CampaignStarted { .. })
    ));
    assert!(matches!(
        events.last(),
        Some(CampaignEvent::CampaignFinished {
            audit_violations: 0,
            ..
        })
    ));
    let finished = events
        .iter()
        .filter(|e| matches!(e, CampaignEvent::CellFinished { .. }))
        .count();
    assert_eq!(finished, observed.cells.len());
    assert!(
        events
            .iter()
            .any(|e| matches!(e, CampaignEvent::Heartbeat { .. })),
        "a 1 ms heartbeat must tick at least once during the sweep"
    );
}

#[test]
fn rollup_marginals_reconcile_with_cell_record_sums() {
    let spec = paper_spec().audit();
    let report = run_campaign_with(&spec, 4);
    let rollup = report.rollup();

    assert_eq!(rollup.cells, report.cells.len());
    assert_eq!(rollup.audited_cells, report.cells.len());
    assert_eq!(rollup.audit_violations, 0);
    assert!(rollup.is_clean());

    // Exact integer reconciliation: every axis partitions the totals.
    let events: u64 = report.cells.iter().map(|c| c.engine.events_processed).sum();
    let answers: u64 = report.cells.iter().map(|c| c.answer_epochs as u64).sum();
    assert_eq!(rollup.events_processed, events);
    assert_eq!(rollup.answer_epochs, answers);
    for (axis, marginals) in [
        ("workload", &rollup.by_workload),
        ("strategy", &rollup.by_strategy),
        ("grid", &rollup.by_grid),
        ("fault", &rollup.by_fault),
    ] {
        assert_eq!(
            marginals.iter().map(|m| m.cells).sum::<usize>(),
            rollup.cells,
            "{axis} cells"
        );
        assert_eq!(
            marginals.iter().map(|m| m.events_processed).sum::<u64>(),
            events,
            "{axis} events"
        );
        assert_eq!(
            marginals.iter().map(|m| m.answer_epochs).sum::<u64>(),
            answers,
            "{axis} answers"
        );
    }

    // The rollup document parses and carries the axes.
    let json = rollup.to_json();
    let parsed = ttmqo_core::compare::parse_json(&json).expect("rollup JSON parses");
    assert!(parsed.get("by_strategy").is_some());
    assert!(parsed.get("hotspots").is_some());
}

#[test]
fn report_emits_one_jsonl_record_per_cell() {
    let spec = paper_spec();
    let report = run_campaign_with(&spec, 4);
    let jsonl = report.to_jsonl();
    assert_eq!(jsonl.lines().count(), spec.cell_count());
    // Every coordinate pair appears exactly once.
    for strategy in Strategy::ALL {
        for grid_n in [4usize, 8] {
            let needle = format!("\"strategy\":\"{strategy}\",\"grid_n\":{grid_n}");
            assert_eq!(
                jsonl.matches(&needle).count(),
                1,
                "missing or duplicated record for {strategy}/{grid_n}"
            );
        }
    }
}
