//! Property tests for the streaming admission/departure paths: demand
//! shrink/grow exactness, indexed-vs-exhaustive decision equivalence, and
//! churn-workload determinism.

use proptest::prelude::*;
use ttmqo_core::{BaseStationOptimizer, CostModel, Demand, OptimizerOptions, SyntheticQuery};
use ttmqo_query::{
    AggOp, Attribute, EpochDuration, Predicate, PredicateSet, Query, QueryId, Region, Selection,
};
use ttmqo_stats::{LevelStats, SelectivityEstimator};
use ttmqo_workloads::{churn_workload, ChurnWorkloadParams};

const ATTRS: [Attribute; 4] = [
    Attribute::NodeId,
    Attribute::Light,
    Attribute::Temp,
    Attribute::Humidity,
];
const EPOCHS: [u64; 5] = [2048, 4096, 6144, 8192, 12288];

/// Drawn ingredients of one random query; realized by [`build_query`].
#[derive(Debug, Clone)]
struct QuerySpec {
    is_agg: bool,
    epoch_ix: usize,
    attr_mask: u8,
    agg_max: bool,
    agg_attr_ix: usize,
    preds: Vec<(usize, f64, f64)>,
    region: Option<(f64, f64, f64, f64)>,
}

prop_compose! {
    fn arb_query()(
        agg_roll in 0u8..10,
        epoch_ix in 0usize..EPOCHS.len(),
        attr_mask in 1u8..16,
        agg_max_roll in 0u8..2,
        agg_attr_ix in 0usize..ATTRS.len(),
        preds in prop::collection::vec(
            (0usize..ATTRS.len(), 0.0f64..0.8, 0.05f64..0.2), 0..3),
        region_roll in 0u8..2,
        region_box in (0.0f64..60.0, 0.0f64..60.0, 5.0f64..20.0, 5.0f64..20.0),
    ) -> QuerySpec {
        QuerySpec {
            is_agg: agg_roll < 3,
            epoch_ix,
            attr_mask,
            agg_max: agg_max_roll == 1,
            agg_attr_ix,
            preds,
            region: (region_roll == 1).then_some(region_box),
        }
    }
}

fn build_query(spec: &QuerySpec, id: u64) -> Query {
    let selection = if spec.is_agg {
        let op = if spec.agg_max { AggOp::Max } else { AggOp::Min };
        Selection::aggregates([(op, ATTRS[spec.agg_attr_ix])])
    } else {
        Selection::attributes(
            ATTRS
                .iter()
                .enumerate()
                .filter(|(i, _)| spec.attr_mask & (1 << i) != 0)
                .map(|(_, a)| *a),
        )
    };
    let mut predicates = PredicateSet::new();
    let mut used = [false; 4];
    for &(attr_ix, start, coverage) in &spec.preds {
        if std::mem::replace(&mut used[attr_ix], true) {
            continue; // same-attribute ranges could intersect to empty
        }
        let attr = ATTRS[attr_ix];
        let (lo, hi) = attr.domain();
        let width = hi - lo;
        predicates.and(
            Predicate::new(
                attr,
                lo + start * width,
                lo + (start + coverage).min(1.0) * width,
            )
            .expect("range inside the domain"),
        );
    }
    let q = Query::from_parts(
        QueryId(id),
        selection,
        predicates,
        EpochDuration::from_ms(EPOCHS[spec.epoch_ix]).expect("menu epoch is valid"),
    )
    .expect("generated query is valid");
    match spec.region {
        Some((x0, y0, w, h)) => {
            q.with_region(Region::new(x0, y0, x0 + w, y0 + h).expect("valid box"))
        }
        None => q,
    }
}

fn optimizer(exhaustive: bool, with_positions: bool) -> BaseStationOptimizer {
    let mut model = CostModel::new(
        4.0,
        0.2,
        LevelStats::from_counts([8, 16, 24]),
        SelectivityEstimator::uniform(),
    );
    if with_positions {
        let positions: Vec<(f64, f64)> = (0..64)
            .map(|i| ((i % 8) as f64 * 10.0, (i / 8) as f64 * 10.0))
            .collect();
        model = model.with_positions(positions);
    }
    BaseStationOptimizer::with_options(
        model,
        OptimizerOptions {
            exhaustive,
            ..OptimizerOptions::default()
        },
    )
}

/// Id-independent canonical forms of the running synthetic set.
fn shapes(o: &BaseStationOptimizer) -> Vec<String> {
    let mut out: Vec<String> = o
        .synthetic_queries()
        .map(|s| format!("{:?}", s.with_id(QueryId(0))))
        .collect();
    out.sort();
    out
}

proptest! {
    /// `add_member` then `remove_member` restores the synthetic's demand
    /// bookkeeping exactly (Debug shows every count, so string equality is
    /// exact-state equality).
    #[test]
    fn add_then_remove_member_restores_demand(base in arb_query(), extra in arb_query()) {
        let q = build_query(&base, 1);
        let e = build_query(&extra, 2);
        let mut sq = SyntheticQuery::new(q.with_id(QueryId(9_000_000)));
        sq.add_member(QueryId(1), &Demand::of(&q));
        let before = format!("{sq:?}");
        sq.add_member(QueryId(2), &Demand::of(&e));
        sq.remove_member(QueryId(2), &Demand::of(&e));
        prop_assert_eq!(format!("{sq:?}"), before);
    }

    /// The candidate index reaches the same admission and departure
    /// decisions as the exhaustive scan over random query menus — identical
    /// network operations and identical synthetic shapes at every step,
    /// with and without node positions (region pruning on/off).
    #[test]
    fn indexed_admission_matches_exhaustive(
        specs in prop::collection::vec(arb_query(), 1..16),
        with_positions in (0u8..2).prop_map(|b| b == 1),
        remove_mask in 0u16..=u16::MAX,
    ) {
        let mut indexed = optimizer(false, with_positions);
        let mut exhaustive = optimizer(true, with_positions);
        for (i, spec) in specs.iter().enumerate() {
            let a = indexed.insert(build_query(spec, i as u64)).expect("fresh id");
            let b = exhaustive.insert(build_query(spec, i as u64)).expect("fresh id");
            prop_assert_eq!(a, b, "insert {} diverged", i);
            prop_assert_eq!(shapes(&indexed), shapes(&exhaustive));
        }
        for i in 0..specs.len() {
            if remove_mask & (1 << i) == 0 {
                continue;
            }
            let a = indexed.remove(QueryId(i as u64));
            let b = exhaustive.remove(QueryId(i as u64));
            prop_assert_eq!(a, b, "remove {} diverged", i);
            prop_assert_eq!(shapes(&indexed), shapes(&exhaustive));
        }
        prop_assert_eq!(indexed.synthetic_count(), indexed.index_len());
    }

    /// Churn workloads are bit-identical across repeats for a fixed seed.
    #[test]
    fn churn_workload_is_bit_identical_per_seed(seed in 0u64..=u64::MAX, n in 1usize..80) {
        let p = ChurnWorkloadParams {
            n_queries: n,
            seed,
            ..ChurnWorkloadParams::default()
        };
        let a = format!("{:?}", churn_workload(&p));
        let b = format!("{:?}", churn_workload(&p));
        prop_assert_eq!(a, b);
    }
}
