//! **TTMQO** — Two-Tier Multiple Query Optimization for sensor networks
//! (Xiang, Lim, Tan, Zhou; ICDCS 2007).
//!
//! The crate implements both tiers of the paper's scheme plus the experiment
//! runner that drives them over the simulated network:
//!
//! * [`basestation`] — tier 1: the cost model (Eqs. 1–3), synthetic queries,
//!   Algorithm 1 (greedy insertion with recursive re-insertion), Algorithm 2
//!   (α-gated adaptive termination), and result mapping back to user queries.
//! * [`innetwork`] — tier 2: GCD epoch scheduling (sharing over time),
//!   query-aware DAG routing with shared result messages and multicast
//!   (sharing over space), and sleep mode.
//! * [`run_experiment`] with [`Strategy`] — the four evaluation strategies
//!   (baseline / BS-only / in-network-only / two-tier) over identical
//!   workloads.
//! * [`campaign`] — declarative sweeps over strategies × grid sizes × field
//!   seeds × workloads, executed across a thread pool ([`run_campaign`])
//!   with one JSON-lines observability record per run.
//!
//! # Quick example
//!
//! ```
//! use ttmqo_core::{run_experiment, ExperimentConfig, Strategy, WorkloadEvent};
//! use ttmqo_query::{parse_query, QueryId};
//! use ttmqo_sim::SimTime;
//!
//! let workload = vec![
//!     WorkloadEvent::pose(0, parse_query(QueryId(1),
//!         "select light where 100<light<300 epoch duration 4096").unwrap()),
//!     WorkloadEvent::pose(0, parse_query(QueryId(2),
//!         "select light where 150<light<500 epoch duration 4096").unwrap()),
//! ];
//! let config = ExperimentConfig {
//!     strategy: Strategy::TwoTier,
//!     grid_n: 3,
//!     duration: SimTime::from_ms(20 * 2048),
//!     ..ExperimentConfig::default()
//! };
//! let report = run_experiment(&config, &workload);
//! assert!(report.avg_transmission_time_pct() > 0.0);
//! assert!(report.answers.contains_key(&QueryId(1)));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod basestation;
pub mod campaign;
pub mod compare;
pub mod innetwork;
pub mod observe;
mod runner;

pub use basestation::{
    map_epoch_answer, map_epoch_answer_at, map_expected_epoch, BaseStationOptimizer, CostModel,
    Demand, EpochOutcome, IndexStats, InsertError, NetworkOp, OptimizerOptions, OptimizerStats,
    SyntheticQuery, SYNTHETIC_ID_BASE,
};
pub use campaign::{
    run_campaign, run_campaign_sequential, run_campaign_with, CampaignReport, CampaignSpec,
    CampaignWorkload, CellRecord, CellSpec,
};
pub use innetwork::{DagState, PartialEntry, RowEntry, TtmqoApp, TtmqoConfig, TtmqoPayload};
pub use observe::{
    progress_header, AxisMarginal, CampaignEvent, CampaignRollup, HotspotCell, JsonLinesProgress,
    MemoryProgress, ProgressHandle, ProgressSink,
};
pub use runner::{
    run_experiment, ExperimentConfig, FieldKind, QueryWindowSeries, RunReport, RunSession,
    RunTimeseries, Strategy, WorkloadAction, WorkloadEvent,
};
