//! Run comparison: field-by-field diffs of reports with threshold verdicts.
//!
//! Three inputs share one machinery: single JSON reports (the benches'
//! `BENCH_*.json`), campaign JSON-lines files (one record per cell), and
//! in-memory [`RunReport`] pairs. Every JSON document is flattened to dotted
//! leaf keys (`metrics.tx_count.result`, `windows[3].gini_tx_busy`) and the
//! two sides are joined key-by-key:
//!
//! * **timing fields** (`wall_s`, `wall_clock_ms`, `events_per_sec`,
//!   `sim_ms_per_wall_s`, the churn bench's `admitted_per_sec`,
//!   `admit_p50_us`/`admit_p99_us`/`admit_max_us` latency quantiles and
//!   `speedup_vs_exhaustive`, and the checkpoint bench's
//!   `snapshot_bytes`/`save_s`/`restore_s` and `warmstart_speedup`, and the
//!   profiler's per-phase `timer_wall_us`/`deliver_wall_us`/
//!   `command_wall_us`/`maintenance_wall_us`/`fault_wall_us`/
//!   `csma_wall_us`/`interference_wall_us`) get a
//!   direction-aware relative threshold — the simulator is deterministic
//!   but the wall clock is not;
//! * **everything else is exact** — counters, metrics, and schema fields of
//!   a deterministic simulation must not drift at all;
//! * a field present in the baseline but absent in the current run is a
//!   failure (reports must not silently lose fields).
//!
//! The `report_diff` example wraps this module as the CI regression gate
//! against the checked-in baselines under `bench/baselines/`.

use crate::runner::RunReport;
use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value (hand-rolled; the vendored serde is an API stub).
///
/// Object fields keep their source order so diff output is stable.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in source field order.
    Obj(Vec<(String, JsonValue)>),
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => f.write_str("null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::Num(n) => write!(f, "{n}"),
            JsonValue::Str(s) => write!(f, "{s:?}"),
            JsonValue::Arr(items) => write!(f, "<array of {}>", items.len()),
            JsonValue::Obj(fields) => write!(f, "<object of {}>", fields.len()),
        }
    }
}

impl JsonValue {
    /// Looks up a top-level object field by name.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Parse failure: byte offset and a short message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: &str) -> Result<T, JsonError> {
        Err(JsonError {
            offset: self.pos,
            message: message.to_string(),
        })
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected '{}'", b as char))
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => self.parse_string().map(JsonValue::Str),
            Some(b't') => self.parse_literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.parse_literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.parse_literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(_) => self.err("unexpected character"),
            None => self.err("unexpected end of input"),
        }
    }

    fn parse_literal(&mut self, lit: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            self.err(&format!("expected '{lit}'"))
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| JsonError {
            offset: start,
            message: "invalid UTF-8 in number".to_string(),
        })?;
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| JsonError {
                offset: start,
                message: format!("invalid number '{text}'"),
            })
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            let Some(code) = hex else {
                                return self.err("invalid \\u escape");
                            };
                            // Surrogates would need pairing; our writers
                            // never emit them, so map to the replacement
                            // character instead of failing the whole parse.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return self.err("invalid escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar, not one byte.
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|_| JsonError {
                            offset: self.pos,
                            message: "invalid UTF-8 in string".to_string(),
                        })?;
                    let ch = rest.chars().next().expect("peek saw a byte");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn parse_object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }
}

/// Parses one JSON document; trailing whitespace is allowed, trailing
/// content is an error.
///
/// # Errors
///
/// [`JsonError`] with the byte offset of the first problem.
pub fn parse_json(text: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing content after JSON value");
    }
    Ok(value)
}

/// Flattens a JSON value into `(dotted key, leaf)` pairs: object fields
/// join with `.`, array elements get `[i]`. Leaves are `Null` / `Bool` /
/// `Num` / `Str`; empty objects and arrays produce no leaves.
pub fn flatten(value: &JsonValue) -> Vec<(String, JsonValue)> {
    fn walk(prefix: &str, value: &JsonValue, out: &mut Vec<(String, JsonValue)>) {
        match value {
            JsonValue::Obj(fields) => {
                for (k, v) in fields {
                    let key = if prefix.is_empty() {
                        k.clone()
                    } else {
                        format!("{prefix}.{k}")
                    };
                    walk(&key, v, out);
                }
            }
            JsonValue::Arr(items) => {
                for (i, v) in items.iter().enumerate() {
                    walk(&format!("{prefix}[{i}]"), v, out);
                }
            }
            leaf => out.push((prefix.to_string(), leaf.clone())),
        }
    }
    let mut out = Vec::new();
    walk("", value, &mut out);
    out
}

/// Knobs of a comparison.
#[derive(Debug, Clone, Copy)]
pub struct CompareOptions {
    /// Relative threshold for timing fields (0.25 = 25% drift allowed in
    /// the bad direction). Non-timing fields are always exact.
    pub timing_threshold: f64,
}

impl Default for CompareOptions {
    fn default() -> Self {
        CompareOptions {
            timing_threshold: 0.25,
        }
    }
}

/// Whether a timing field is better when lower or when higher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    LowerBetter,
    HigherBetter,
}

/// Timing fields are the only fields allowed to drift: wall-clock
/// measurements of a deterministic simulation. Matched on the leaf name so
/// nesting and JSONL record prefixes don't matter.
fn timing_direction(key: &str) -> Option<Direction> {
    let leaf = key.rsplit('.').next().unwrap_or(key);
    match leaf {
        "wall_s"
        | "topo_build_s"
        | "wall_clock_ms"
        | "admit_p50_us"
        | "admit_p99_us"
        | "admit_max_us"
        | "snapshot_bytes"
        | "save_s"
        | "restore_s"
        | "cold_wall_s"
        | "warm_wall_s"
        | "timer_wall_us"
        | "deliver_wall_us"
        | "command_wall_us"
        | "maintenance_wall_us"
        | "fault_wall_us"
        | "csma_wall_us"
        | "interference_wall_us" => Some(Direction::LowerBetter),
        // Campaign rollup wall aggregates (total_wall_ms, mean_wall_ms,
        // max_wall_ms, cell_wall_ms, ...): wall clock, lower is better.
        _ if leaf.ends_with("_wall_ms") => Some(Direction::LowerBetter),
        "events_per_sec"
        | "sim_ms_per_wall_s"
        | "admitted_per_sec"
        | "speedup_vs_exhaustive"
        | "warmstart_speedup" => Some(Direction::HigherBetter),
        _ => None,
    }
}

/// Verdict for one compared field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Equal (exact fields) or within the threshold (timing fields).
    Pass,
    /// A timing field moved beyond the threshold in the good direction.
    Improved,
    /// A timing field moved beyond the threshold in the bad direction.
    Regressed,
    /// An exact field differs.
    Changed,
    /// Present in the baseline, absent in the current run.
    Missing,
    /// Present only in the current run (informational, not a failure).
    Extra,
}

impl Verdict {
    /// Whether this verdict fails the gate.
    pub fn is_failure(self) -> bool {
        matches!(
            self,
            Verdict::Regressed | Verdict::Changed | Verdict::Missing
        )
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Verdict::Pass => "pass",
            Verdict::Improved => "improved",
            Verdict::Regressed => "REGRESSED",
            Verdict::Changed => "CHANGED",
            Verdict::Missing => "MISSING",
            Verdict::Extra => "extra",
        };
        f.write_str(s)
    }
}

/// One compared field.
#[derive(Debug, Clone)]
pub struct FieldDiff {
    /// Dotted leaf key (JSONL: prefixed with the record key).
    pub key: String,
    /// Baseline value, rendered (`None` for [`Verdict::Extra`]).
    pub baseline: Option<String>,
    /// Current value, rendered (`None` for [`Verdict::Missing`]).
    pub current: Option<String>,
    /// The verdict.
    pub verdict: Verdict,
}

/// Result of a comparison: one entry per compared field.
#[derive(Debug, Clone, Default)]
pub struct CompareReport {
    /// All field diffs, in baseline order then current-only extras.
    pub diffs: Vec<FieldDiff>,
}

impl CompareReport {
    /// Diffs that fail the gate (regressions, changes, missing fields).
    pub fn failures(&self) -> impl Iterator<Item = &FieldDiff> {
        self.diffs.iter().filter(|d| d.verdict.is_failure())
    }

    /// Whether the comparison passes (no failing diffs).
    pub fn is_pass(&self) -> bool {
        self.failures().next().is_none()
    }

    /// Machine-readable single-line JSON rendering of the whole comparison:
    /// overall pass/fail, the tallies, and one entry per non-`Pass` diff
    /// (`Pass` rows are elided — they carry no information and would bloat
    /// the document linearly in report size).
    pub fn to_json(&self) -> String {
        use crate::campaign::json_str;
        let CompareReport { diffs } = self;
        let mut out = String::from("{\"schema_version\":3,");
        json_str(&mut out, "format", "ttmqo-compare");
        out.push_str(&format!(",\"fields_compared\":{}", diffs.len()));
        out.push_str(&format!(",\"failures\":{}", self.failures().count()));
        out.push_str(&format!(",\"pass\":{}", self.is_pass()));
        out.push_str(",\"diffs\":[");
        let mut first = true;
        for d in diffs {
            let FieldDiff {
                key,
                baseline,
                current,
                verdict,
            } = d;
            if *verdict == Verdict::Pass {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            out.push('{');
            json_str(&mut out, "key", key);
            let mut opt = |name: &str, v: &Option<String>| match v {
                Some(s) => {
                    out.push(',');
                    json_str(&mut out, name, s);
                }
                None => out.push_str(&format!(",\"{name}\":null")),
            };
            opt("baseline", baseline);
            opt("current", current);
            out.push(',');
            json_str(&mut out, "verdict", &verdict.to_string());
            out.push_str(&format!(",\"failure\":{}}}", verdict.is_failure()));
        }
        out.push_str("]}");
        out
    }

    /// Human-readable multi-line summary: every non-`Pass` diff, then a
    /// one-line tally.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for d in &self.diffs {
            if d.verdict == Verdict::Pass {
                continue;
            }
            out.push_str(&format!(
                "{:>9}  {}  (baseline: {}, current: {})\n",
                d.verdict.to_string(),
                d.key,
                d.baseline.as_deref().unwrap_or("-"),
                d.current.as_deref().unwrap_or("-"),
            ));
        }
        let failures = self.failures().count();
        out.push_str(&format!(
            "{} fields compared, {} failures\n",
            self.diffs.len(),
            failures
        ));
        out
    }
}

fn leaf_verdict(key: &str, base: &JsonValue, cur: &JsonValue, opts: &CompareOptions) -> Verdict {
    // The standing invariant auditor must stay clean: any nonzero
    // `audit_violations` count in the current run fails the gate outright,
    // and a zero count passes no matter what the baseline recorded.
    if key.rsplit('.').next().unwrap_or(key) == "audit_violations" {
        if let JsonValue::Num(c) = cur {
            return if *c == 0.0 {
                Verdict::Pass
            } else {
                Verdict::Regressed
            };
        }
    }
    if let (Some(dir), JsonValue::Num(b), JsonValue::Num(c)) = (timing_direction(key), base, cur) {
        if *b == 0.0 {
            // No relative scale to judge against.
            return Verdict::Pass;
        }
        // The profiler's per-phase wall fields are extrapolated from
        // sampled stamps; for phases with a handful of events the estimate
        // rests on one or two measurements and a single descheduled tick
        // can swing it by orders of magnitude. Below a millisecond the
        // attribution is under the profiler's own resolution — treat it as
        // noise, not signal.
        if key
            .rsplit('.')
            .next()
            .is_some_and(|k| k.ends_with("_wall_us"))
            && b.max(*c) <= 1000.0
        {
            return Verdict::Pass;
        }
        // Campaign rollup wall aggregates share the same problem one unit
        // up: sub-millisecond cells are dominated by scheduler jitter.
        if key
            .rsplit('.')
            .next()
            .is_some_and(|k| k.ends_with("_wall_ms"))
            && b.max(*c) <= 1.0
        {
            return Verdict::Pass;
        }
        let rel = (c - b) / b.abs();
        return match dir {
            Direction::LowerBetter if rel > opts.timing_threshold => Verdict::Regressed,
            Direction::LowerBetter if rel < -opts.timing_threshold => Verdict::Improved,
            Direction::HigherBetter if rel < -opts.timing_threshold => Verdict::Regressed,
            Direction::HigherBetter if rel > opts.timing_threshold => Verdict::Improved,
            _ => Verdict::Pass,
        };
    }
    if base == cur {
        Verdict::Pass
    } else {
        Verdict::Changed
    }
}

/// Compares two already-parsed JSON values leaf-by-leaf.
pub fn compare_values(
    baseline: &JsonValue,
    current: &JsonValue,
    opts: &CompareOptions,
) -> CompareReport {
    let base_leaves = flatten(baseline);
    let cur_map: BTreeMap<String, JsonValue> = flatten(current).into_iter().collect();
    let base_keys: BTreeMap<&str, ()> = base_leaves.iter().map(|(k, _)| (k.as_str(), ())).collect();
    let mut diffs = Vec::new();
    for (key, base) in &base_leaves {
        match cur_map.get(key) {
            Some(cur) => diffs.push(FieldDiff {
                key: key.clone(),
                baseline: Some(base.to_string()),
                current: Some(cur.to_string()),
                verdict: leaf_verdict(key, base, cur, opts),
            }),
            None => diffs.push(FieldDiff {
                key: key.clone(),
                baseline: Some(base.to_string()),
                current: None,
                verdict: Verdict::Missing,
            }),
        }
    }
    for (key, cur) in &cur_map {
        if !base_keys.contains_key(key.as_str()) {
            diffs.push(FieldDiff {
                key: key.clone(),
                baseline: None,
                current: Some(cur.to_string()),
                verdict: Verdict::Extra,
            });
        }
    }
    CompareReport { diffs }
}

/// Compares two single-document JSON reports (e.g. `BENCH_engine.json`).
///
/// # Errors
///
/// [`JsonError`] if either side fails to parse.
pub fn compare_json(
    baseline: &str,
    current: &str,
    opts: &CompareOptions,
) -> Result<CompareReport, JsonError> {
    let b = parse_json(baseline)?;
    let c = parse_json(current)?;
    Ok(compare_values(&b, &c, opts))
}

/// Identity of one JSONL record: its `name` field when present, otherwise
/// the composite campaign-cell key, otherwise its position in the file.
fn record_key(value: &JsonValue, index: usize) -> String {
    if let Some(JsonValue::Str(name)) = value.get("name") {
        return format!("name={name}");
    }
    let composite: Vec<String> = ["workload", "strategy", "grid_n", "field_seed", "fault"]
        .iter()
        .filter_map(|f| value.get(f).map(|v| format!("{f}={v}")))
        .collect();
    if composite.is_empty() {
        format!("record[{index}]")
    } else {
        composite.join(",")
    }
}

fn parse_records(text: &str) -> Result<Vec<(String, JsonValue)>, JsonError> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value = parse_json(line).map_err(|e| JsonError {
            offset: e.offset,
            message: format!("line {}: {}", i + 1, e.message),
        })?;
        out.push((record_key(&value, out.len()), value));
    }
    Ok(out)
}

/// Compares two JSON-lines files (e.g. campaign outputs) record-by-record.
/// Records pair up by their `name` field, or by the composite campaign-cell
/// key (`workload`, `strategy`, `grid_n`, `field_seed`, `fault`), or by
/// position. A baseline record with no partner is a failure.
///
/// # Errors
///
/// [`JsonError`] if any line on either side fails to parse.
pub fn compare_jsonl(
    baseline: &str,
    current: &str,
    opts: &CompareOptions,
) -> Result<CompareReport, JsonError> {
    let base_records = parse_records(baseline)?;
    let cur_records: BTreeMap<String, JsonValue> = parse_records(current)?.into_iter().collect();
    let base_keys: BTreeMap<&str, ()> =
        base_records.iter().map(|(k, _)| (k.as_str(), ())).collect();
    let mut diffs = Vec::new();
    for (key, base) in &base_records {
        match cur_records.get(key) {
            Some(cur) => {
                for mut d in compare_values(base, cur, opts).diffs {
                    d.key = format!("{key}.{}", d.key);
                    diffs.push(d);
                }
            }
            None => diffs.push(FieldDiff {
                key: key.clone(),
                baseline: Some("<record>".to_string()),
                current: None,
                verdict: Verdict::Missing,
            }),
        }
    }
    for key in cur_records.keys() {
        if !base_keys.contains_key(key.as_str()) {
            diffs.push(FieldDiff {
                key: key.clone(),
                baseline: None,
                current: Some("<record>".to_string()),
                verdict: Verdict::Extra,
            });
        }
    }
    Ok(CompareReport { diffs })
}

/// Flattens a [`RunReport`] into comparable leaves: strategy, the full
/// metrics snapshot, completeness totals, energy, and engine counters.
/// Everything here is deterministic, so [`diff_reports`] compares exactly.
/// `RunReport::profile` is deliberately excluded: its wall-clock timings are
/// machine-dependent and would make exact comparison meaningless.
pub fn report_leaves(report: &RunReport) -> Vec<(String, JsonValue)> {
    let snap = report.metrics.snapshot();
    let mut out: Vec<(String, JsonValue)> = vec![
        (
            "strategy".to_string(),
            JsonValue::Str(report.strategy.to_string()),
        ),
        (
            "avg_transmission_time_pct".to_string(),
            JsonValue::Num(snap.avg_transmission_time_pct),
        ),
        (
            "total_tx_busy_ms".to_string(),
            JsonValue::Num(snap.total_tx_busy_ms),
        ),
        (
            "total_rx_busy_ms".to_string(),
            JsonValue::Num(snap.total_rx_busy_ms),
        ),
        (
            "total_sleep_ms".to_string(),
            JsonValue::Num(snap.total_sleep_ms),
        ),
        (
            "retransmissions".to_string(),
            JsonValue::Num(snap.retransmissions as f64),
        ),
        (
            "collisions".to_string(),
            JsonValue::Num(snap.collisions as f64),
        ),
        ("losses".to_string(), JsonValue::Num(snap.losses as f64)),
        ("gave_up".to_string(), JsonValue::Num(snap.gave_up as f64)),
        (
            "orphaned_drops".to_string(),
            JsonValue::Num(snap.orphaned_drops as f64),
        ),
        ("samples".to_string(), JsonValue::Num(snap.samples as f64)),
        (
            "horizon_ms".to_string(),
            JsonValue::Num(snap.horizon_ms as f64),
        ),
        (
            "avg_synthetic_count".to_string(),
            JsonValue::Num(report.avg_synthetic_count),
        ),
        (
            "avg_benefit_ratio".to_string(),
            JsonValue::Num(report.avg_benefit_ratio),
        ),
        ("energy_mj".to_string(), JsonValue::Num(report.energy_mj)),
        (
            "max_node_energy_mj".to_string(),
            JsonValue::Num(report.max_node_energy_mj),
        ),
        (
            "events_processed".to_string(),
            JsonValue::Num(report.engine.events_processed as f64),
        ),
        (
            "frames_total".to_string(),
            JsonValue::Num(report.engine.frames_total as f64),
        ),
    ];
    for (kind, count) in &snap.tx_count {
        out.push((format!("tx_count.{kind}"), JsonValue::Num(*count as f64)));
    }
    for (kind, bytes) in &snap.tx_bytes {
        out.push((format!("tx_bytes.{kind}"), JsonValue::Num(*bytes as f64)));
    }
    let (mut expected, mut answered, mut exp_rows, mut got_rows) = (0u64, 0u64, 0u64, 0u64);
    for qc in report.completeness.per_query.values() {
        expected += qc.expected_epochs;
        answered += qc.answered_epochs;
        exp_rows += qc.expected_rows;
        got_rows += qc.delivered_rows;
    }
    out.push((
        "completeness.expected_epochs".to_string(),
        JsonValue::Num(expected as f64),
    ));
    out.push((
        "completeness.answered_epochs".to_string(),
        JsonValue::Num(answered as f64),
    ));
    out.push((
        "completeness.expected_rows".to_string(),
        JsonValue::Num(exp_rows as f64),
    ));
    out.push((
        "completeness.delivered_rows".to_string(),
        JsonValue::Num(got_rows as f64),
    ));
    out.push((
        "completeness.repairs_triggered".to_string(),
        JsonValue::Num(report.completeness.repairs_triggered as f64),
    ));
    out
}

/// Diffs two in-memory [`RunReport`]s over [`report_leaves`]. All leaves
/// are deterministic, so any difference is a [`Verdict::Changed`] failure.
pub fn diff_reports(baseline: &RunReport, current: &RunReport) -> CompareReport {
    let opts = CompareOptions::default();
    let to_obj = |r: &RunReport| JsonValue::Obj(report_leaves(r));
    compare_values(&to_obj(baseline), &to_obj(current), &opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_shapes_our_writers_emit() {
        let v = parse_json(
            r#"{"schema_version":2,"name":"engine_hot_path","wall_s":1.25,
                "nested":{"a":[1,2,3],"b":null,"ok":true},"s":"x\"y\n"}"#,
        )
        .expect("valid JSON");
        assert_eq!(v.get("schema_version"), Some(&JsonValue::Num(2.0)));
        assert_eq!(v.get("s"), Some(&JsonValue::Str("x\"y\n".to_string())));
        let flat = flatten(&v);
        assert!(flat
            .iter()
            .any(|(k, v)| k == "nested.a[1]" && *v == JsonValue::Num(2.0)));
        assert!(flat
            .iter()
            .any(|(k, v)| k == "nested.b" && *v == JsonValue::Null));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse_json("{").is_err());
        assert!(parse_json(r#"{"a":}"#).is_err());
        assert!(parse_json(r#"{"a":1} trailing"#).is_err());
        assert!(parse_json("").is_err());
    }

    #[test]
    fn exact_fields_must_match_exactly() {
        let opts = CompareOptions::default();
        let r = compare_json(r#"{"tx_frames":100}"#, r#"{"tx_frames":101}"#, &opts).unwrap();
        assert!(!r.is_pass());
        assert_eq!(r.diffs[0].verdict, Verdict::Changed);
        let r = compare_json(r#"{"tx_frames":100}"#, r#"{"tx_frames":100}"#, &opts).unwrap();
        assert!(r.is_pass());
    }

    #[test]
    fn timing_fields_use_a_direction_aware_threshold() {
        let opts = CompareOptions::default();
        // 20% slower wall time: within the 25% budget.
        let r = compare_json(r#"{"wall_s":1.0}"#, r#"{"wall_s":1.2}"#, &opts).unwrap();
        assert!(r.is_pass());
        // 50% slower: regression.
        let r = compare_json(r#"{"wall_s":1.0}"#, r#"{"wall_s":1.5}"#, &opts).unwrap();
        assert_eq!(r.diffs[0].verdict, Verdict::Regressed);
        // 50% faster: improvement, still a pass.
        let r = compare_json(r#"{"wall_s":1.0}"#, r#"{"wall_s":0.5}"#, &opts).unwrap();
        assert_eq!(r.diffs[0].verdict, Verdict::Improved);
        assert!(r.is_pass());
        // Throughput is higher-is-better: halving it is a regression.
        let r = compare_json(
            r#"{"events_per_sec":1000.0}"#,
            r#"{"events_per_sec":500.0}"#,
            &opts,
        )
        .unwrap();
        assert_eq!(r.diffs[0].verdict, Verdict::Regressed);
        let r = compare_json(
            r#"{"events_per_sec":1000.0}"#,
            r#"{"events_per_sec":2000.0}"#,
            &opts,
        )
        .unwrap();
        assert!(r.is_pass());
    }

    #[test]
    fn profiler_wall_fields_have_a_sub_millisecond_noise_floor() {
        let opts = CompareOptions::default();
        // A 4 µs → 120 µs swing is a 30x relative move, but both sides sit
        // under the 1 ms floor: sampled extrapolation noise, not a signal.
        let r = compare_json(
            r#"{"command_wall_us":4}"#,
            r#"{"command_wall_us":120}"#,
            &opts,
        )
        .unwrap();
        assert!(r.is_pass());
        // Above the floor the usual relative threshold applies.
        let r = compare_json(
            r#"{"deliver_wall_us":10000}"#,
            r#"{"deliver_wall_us":20000}"#,
            &opts,
        )
        .unwrap();
        assert_eq!(r.diffs[0].verdict, Verdict::Regressed);
    }

    #[test]
    fn missing_baseline_fields_fail_and_extras_do_not() {
        let opts = CompareOptions::default();
        let r = compare_json(r#"{"a":1,"b":2}"#, r#"{"a":1}"#, &opts).unwrap();
        assert!(!r.is_pass());
        assert!(r
            .diffs
            .iter()
            .any(|d| d.key == "b" && d.verdict == Verdict::Missing));
        let r = compare_json(r#"{"a":1}"#, r#"{"a":1,"b":2}"#, &opts).unwrap();
        assert!(r.is_pass());
        assert!(r
            .diffs
            .iter()
            .any(|d| d.key == "b" && d.verdict == Verdict::Extra));
    }

    #[test]
    fn jsonl_records_pair_by_name_or_composite_key() {
        let opts = CompareOptions::default();
        // Named records pair regardless of order.
        let base = "{\"name\":\"a\",\"v\":1}\n{\"name\":\"b\",\"v\":2}\n";
        let cur = "{\"name\":\"b\",\"v\":2}\n{\"name\":\"a\",\"v\":1}\n";
        assert!(compare_jsonl(base, cur, &opts).unwrap().is_pass());
        // Campaign-style composite keys.
        let base = "{\"workload\":\"A\",\"strategy\":\"two-tier\",\"grid_n\":4,\"v\":7}\n";
        let cur = "{\"workload\":\"A\",\"strategy\":\"two-tier\",\"grid_n\":4,\"v\":8}\n";
        let r = compare_jsonl(base, cur, &opts).unwrap();
        assert!(!r.is_pass());
        assert!(r
            .diffs
            .iter()
            .any(|d| d.key.contains("strategy=") && d.key.ends_with(".v")));
        // A dropped record is a failure.
        let r = compare_jsonl(base, "", &opts).unwrap();
        assert!(!r.is_pass());
        assert!(r.diffs.iter().any(|d| d.verdict == Verdict::Missing));
    }

    #[test]
    fn rollup_wall_fields_drift_lower_better_with_a_millisecond_floor() {
        let opts = CompareOptions::default();
        // Sub-millisecond on both sides: scheduler jitter, not a signal.
        let r = compare_json(r#"{"mean_wall_ms":0.2}"#, r#"{"mean_wall_ms":0.9}"#, &opts).unwrap();
        assert!(r.is_pass());
        // Above the floor the relative threshold applies, lower-better.
        let r = compare_json(
            r#"{"total_wall_ms":100.0}"#,
            r#"{"total_wall_ms":200.0}"#,
            &opts,
        )
        .unwrap();
        assert_eq!(r.diffs[0].verdict, Verdict::Regressed);
        let r = compare_json(
            r#"{"total_wall_ms":200.0}"#,
            r#"{"total_wall_ms":100.0}"#,
            &opts,
        )
        .unwrap();
        assert_eq!(r.diffs[0].verdict, Verdict::Improved);
        assert!(r.is_pass());
    }

    #[test]
    fn audit_violations_must_be_zero_in_the_current_run() {
        let opts = CompareOptions::default();
        // Nonzero current fails even when the baseline "agrees".
        let r = compare_json(
            r#"{"audit_violations":3}"#,
            r#"{"audit_violations":3}"#,
            &opts,
        )
        .unwrap();
        assert_eq!(r.diffs[0].verdict, Verdict::Regressed);
        // Zero current passes even against a nonzero baseline.
        let r = compare_json(
            r#"{"audit_violations":3}"#,
            r#"{"audit_violations":0}"#,
            &opts,
        )
        .unwrap();
        assert!(r.is_pass());
        // Nested leaves get the same treatment.
        let r = compare_json(
            r#"{"rollup":{"audit_violations":0}}"#,
            r#"{"rollup":{"audit_violations":1}}"#,
            &opts,
        )
        .unwrap();
        assert!(!r.is_pass());
    }

    #[test]
    fn json_rendering_carries_the_verdicts_and_tallies() {
        let opts = CompareOptions::default();
        let r = compare_json(r#"{"a":1,"wall_s":1.0}"#, r#"{"a":2,"wall_s":1.0}"#, &opts).unwrap();
        let json = r.to_json();
        assert!(parse_json(&json).is_ok(), "to_json must emit valid JSON");
        assert!(json.contains("\"fields_compared\":2"));
        assert!(json.contains("\"failures\":1"));
        assert!(json.contains("\"pass\":false"));
        assert!(json.contains("\"verdict\":\"CHANGED\""));
        // Pass rows are elided: wall_s matched, so it must not appear.
        assert!(!json.contains("wall_s"));
    }

    #[test]
    fn threshold_is_configurable() {
        let tight = CompareOptions {
            timing_threshold: 0.05,
        };
        let r = compare_json(r#"{"wall_s":1.0}"#, r#"{"wall_s":1.2}"#, &tight).unwrap();
        assert_eq!(r.diffs[0].verdict, Verdict::Regressed);
    }

    #[test]
    fn summary_lists_failures_and_tallies() {
        let opts = CompareOptions::default();
        let r = compare_json(r#"{"a":1,"wall_s":1.0}"#, r#"{"a":2,"wall_s":1.0}"#, &opts).unwrap();
        let s = r.summary();
        assert!(s.contains("CHANGED"));
        assert!(s.contains("2 fields compared, 1 failures"));
    }
}
