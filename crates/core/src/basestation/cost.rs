//! The cost model of §3.1.2 — Eqs. (1)–(3).
//!
//! Cost is the expected radio airtime a query induces per millisecond of
//! simulated time:
//!
//! * Eq. (1): `result(q, N_k) = sel(q, N_k) · |N_k| / epoch` — result messages
//!   generated per unit time by the nodes at level `k`;
//! * Eq. (2): `trans(q) = Σ_k result(q, N_k) · k` — message transmissions,
//!   weighing each source by its hop count. For aggregation queries the paper
//!   uses the conservative lower bound `result(q, N)` (perfect in-network
//!   aggregation), so an aggregation query is only ever integrated into an
//!   acquisition query when that is guaranteed beneficial;
//! * Eq. (3): `cost(q) = trans(q) · (C_start + C_trans · len(q))`.

use ttmqo_query::{covers_query, integrate, Query, QueryId};
use ttmqo_stats::{LevelStats, SelectivityEstimator};

/// Bytes of per-message framing included in `len(q)` on top of the result
/// tuple itself (query id + epoch counter).
const RESULT_FRAMING_BYTES: usize = 4;

/// The base-station cost model: radio constants plus network statistics.
///
/// # Examples
///
/// ```
/// use ttmqo_core::CostModel;
/// use ttmqo_stats::{LevelStats, SelectivityEstimator};
/// use ttmqo_query::{parse_query, QueryId};
///
/// let model = CostModel::new(
///     4.0,
///     0.2,
///     LevelStats::from_counts([7, 8]),
///     SelectivityEstimator::uniform(),
/// );
/// let q = parse_query(QueryId(1), "select light epoch duration 2048")?;
/// assert!(model.cost(&q) > 0.0);
/// # Ok::<(), ttmqo_query::ParseQueryError>(())
/// ```
#[derive(Debug)]
pub struct CostModel {
    /// Transmission startup cost, ms (`C_start`).
    c_start: f64,
    /// Per-byte transmission cost, ms (`C_trans`).
    c_trans: f64,
    /// Routing-tree level populations (`N_k`).
    levels: LevelStats,
    /// Selectivity estimator (`sel(q, ·)` — one distribution for all levels,
    /// as in the paper's experiments).
    estimator: SelectivityEstimator,
    /// Sensing-node positions for region-clause selectivity (empty = regions
    /// are conservatively assumed to cover everything).
    positions: Vec<(f64, f64)>,
}

impl CostModel {
    /// Builds a cost model from radio constants and network statistics.
    pub fn new(
        c_start: f64,
        c_trans: f64,
        levels: LevelStats,
        estimator: SelectivityEstimator,
    ) -> Self {
        CostModel {
            c_start,
            c_trans,
            levels,
            estimator,
            positions: Vec::new(),
        }
    }

    /// Registers the deployment's sensing-node positions so region clauses
    /// get exact selectivity (the fraction of nodes inside the rectangle).
    pub fn with_positions(mut self, positions: Vec<(f64, f64)>) -> Self {
        self.positions = positions;
        self
    }

    /// The registered sensing-node positions (empty when regions are priced
    /// as the whole field).
    pub(crate) fn positions(&self) -> &[(f64, f64)] {
        &self.positions
    }

    /// The level statistics in use.
    pub fn levels(&self) -> &LevelStats {
        &self.levels
    }

    /// Replaces the level statistics (e.g. after re-measuring the tree).
    pub fn set_levels(&mut self, levels: LevelStats) {
        self.levels = levels;
    }

    /// Feeds one observed reading into the estimator's adaptive statistics
    /// (§3.1.2: the base station maintains data distributions from the
    /// result stream it already receives).
    pub fn observe(&mut self, attr: ttmqo_query::Attribute, value: f64) {
        self.estimator.observe(attr, value);
    }

    /// Estimated selectivity of the query's predicates (region clause
    /// included when positions are registered).
    pub fn selectivity(&self, q: &Query) -> f64 {
        let mut sel = self.estimator.selectivity(q.predicates());
        if let Some(region) = q.region() {
            if !self.positions.is_empty() {
                let inside = self
                    .positions
                    .iter()
                    .filter(|&&(x, y)| region.contains(x, y))
                    .count();
                sel *= inside as f64 / self.positions.len() as f64;
            }
        }
        sel
    }

    /// Eq. (1): result messages generated per ms by level `k`.
    pub fn result_rate_at_level(&self, q: &Query, k: u32) -> f64 {
        self.selectivity(q) * self.levels.nodes_at(k) as f64 / q.epoch().as_ms() as f64
    }

    /// Eq. (2): message transmissions per ms; the aggregation lower bound
    /// `result(q, N)` for aggregation queries.
    pub fn trans_rate(&self, q: &Query) -> f64 {
        if q.is_aggregation() {
            self.selectivity(q) * self.levels.sensor_count() as f64 / q.epoch().as_ms() as f64
        } else {
            (1..=self.levels.max_depth())
                .map(|k| self.result_rate_at_level(q, k) * k as f64)
                .sum()
        }
    }

    /// `len(q)`: the result-message length in bytes, framing included.
    pub fn result_len(&self, q: &Query) -> usize {
        RESULT_FRAMING_BYTES + q.result_len()
    }

    /// Eq. (3): expected airtime per ms of simulated time.
    pub fn cost(&self, q: &Query) -> f64 {
        self.trans_rate(q) * (self.c_start + self.c_trans * self.result_len(q) as f64)
    }

    /// Estimated benefit of integrating `a` and `b` into one synthetic query:
    /// `cost(a) + cost(b) − cost(a ⊕ b)`. `None` when no semantically correct
    /// integration exists.
    pub fn benefit(&self, a: &Query, b: &Query) -> Option<f64> {
        let merged = integrate(QueryId(u64::MAX), a, b)?;
        Some(self.cost(a) + self.cost(b) - self.cost(&merged))
    }

    /// The `Beneficial(q_i, q_j)` of Algorithm 1: the benefit *rate*
    /// `benefit(q_i, q_j) / cost(q_i)`, with exactly `1.0` when `q_j` already
    /// covers `q_i` (adding `q_i` costs the network nothing).
    ///
    /// Aggregation pairs with equivalent predicates are always reported
    /// beneficial (the paper's "guaranteed to be beneficial" rule), even if
    /// the raw estimate is marginal.
    pub fn benefit_rate(&self, qi: &Query, qj: &Query) -> f64 {
        if covers_query(qj, qi) {
            return 1.0;
        }
        let Some(benefit) = self.benefit(qi, qj) else {
            return 0.0;
        };
        let cost_qi = self.cost(qi);
        if cost_qi <= 0.0 {
            return 0.0;
        }
        let rate = (benefit / cost_qi).min(1.0 - 1e-9);
        if qi.is_aggregation() && qj.is_aggregation() && qi.predicates().equivalent(qj.predicates())
        {
            // §3.1.2: same-predicate aggregation pairs integrate by merging
            // aggregate lists; treat as beneficial even when the raw estimate
            // is not positive.
            return rate.max(1e-6);
        }
        rate
    }
}

// ---------------------------------------------------------------------------
// Checkpoint/restore
// ---------------------------------------------------------------------------

use ttmqo_query::Attribute;
use ttmqo_sim::Snapshot as SimSnapshot;
use ttmqo_sim::{Restorable, SnapReader, SnapWriter, SnapshotError};
use ttmqo_stats::{EmpiricalDistribution, Histogram};

/// Serializes level statistics as the raw per-level counts (level 1 first).
pub(crate) fn write_levels(levels: &LevelStats, w: &mut SnapWriter) {
    let counts: Vec<u64> = (1..=levels.max_depth())
        .map(|k| levels.nodes_at(k))
        .collect();
    counts.write(w);
}

/// Rebuilds level statistics captured by [`write_levels`].
pub(crate) fn read_levels(r: &mut SnapReader<'_>) -> Result<LevelStats, SnapshotError> {
    Ok(LevelStats::from_counts(Vec::<u64>::read(r)?))
}

/// Serializes the *dynamic* estimator state: the warmup threshold and the
/// online per-attribute empirical models. The static models registered with
/// `set_model` are boxed trait objects and are deliberately NOT serialized —
/// they are a pure function of the experiment configuration and topology, so
/// restore re-registers them through the same construction path.
pub(crate) fn write_estimator_dynamics(est: &SelectivityEstimator, w: &mut SnapWriter) {
    w.put_u64(est.warmup());
    let models: Vec<(Attribute, &EmpiricalDistribution)> = est.adaptive_models().collect();
    w.put_usize(models.len());
    for (attr, m) in models {
        attr.write(w);
        let h = m.histogram();
        w.put_f64(h.lo());
        w.put_f64(h.hi());
        h.buckets().to_vec().write(w);
        w.put_u64(h.total());
    }
}

/// Re-applies dynamics captured by [`write_estimator_dynamics`] onto a
/// freshly constructed estimator whose static models are already registered.
pub(crate) fn apply_estimator_dynamics(
    est: SelectivityEstimator,
    r: &mut SnapReader<'_>,
) -> Result<SelectivityEstimator, SnapshotError> {
    let mut est = est.with_warmup(r.u64()?);
    let n = r.usize()?;
    for _ in 0..n {
        let attr = Attribute::read(r)?;
        let lo = r.f64()?;
        let hi = r.f64()?;
        let buckets = Vec::<u64>::read(r)?;
        let total = r.u64()?;
        let h = Histogram::from_parts(lo, hi, buckets, total)
            .map_err(|e| SnapshotError::Corrupt(format!("bad adaptive histogram: {e}")))?;
        est.set_adaptive(attr, EmpiricalDistribution::from_histogram(h));
    }
    Ok(est)
}

impl CostModel {
    /// Serializes the cost model: radio constants, level statistics,
    /// positions, and the estimator's dynamic state.
    pub fn write_snapshot(&self, w: &mut SnapWriter) {
        let CostModel {
            c_start,
            c_trans,
            levels,
            estimator,
            positions,
        } = self;
        w.put_f64(*c_start);
        w.put_f64(*c_trans);
        write_levels(levels, w);
        positions.write(w);
        write_estimator_dynamics(estimator, w);
    }

    /// Restores a cost model captured by [`write_snapshot`](Self::write_snapshot).
    ///
    /// `fresh` must be a cost model built through the same construction path
    /// as the captured one (same experiment configuration and topology); it
    /// supplies the estimator's static models, which are trait objects and
    /// cannot travel in the snapshot. Everything else comes from the stream.
    pub fn read_snapshot(
        r: &mut SnapReader<'_>,
        fresh: CostModel,
    ) -> Result<CostModel, SnapshotError> {
        let CostModel {
            c_start: _,
            c_trans: _,
            levels: _,
            estimator,
            positions: _,
        } = fresh;
        let c_start = r.f64()?;
        let c_trans = r.f64()?;
        let levels = read_levels(r)?;
        let positions = Vec::read(r)?;
        let estimator = apply_estimator_dynamics(estimator, r)?;
        Ok(CostModel {
            c_start,
            c_trans,
            levels,
            estimator,
            positions,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ttmqo_query::parse_query;

    fn model(levels: LevelStats) -> CostModel {
        CostModel::new(1.0, 0.0, levels, SelectivityEstimator::uniform())
    }

    fn q(id: u64, text: &str) -> Query {
        parse_query(QueryId(id), text).unwrap()
    }

    /// The worked example of §3.1.3:
    ///   q1: select light where 280<light<600 epoch 2048
    ///   q2: select light where 100<light<300 epoch 4096
    ///   q3: select light where 150<light<500 epoch 4096
    /// With uniform light and (C_start + C_trans·len) ≡ const, the paper
    /// derives benefit(q1,q2) = d/L·(320/2 + 200/4 − 500/2) < 0, and after
    /// q2'' = merge(q2,q3), benefit(q1',q2'') > 0.
    ///
    /// Note: the paper prints benefit(q1',q3) = d/L·(320/2 + 350/4 − 350/2)
    /// "< 0", but 160 + 87.5 − 175 = +72.5, and with the correct union width
    /// (150..600 ⇒ 450) the value is 160 + 87.5 − 225 = +22.5 — positive
    /// either way. The printed sign is an arithmetic slip. What actually
    /// matters for Algorithm 1 is the *ranking*: merging q3 with q2' has a
    /// higher benefit rate than merging with q1', so the greedy choice — and
    /// the final cascade result the paper reports — is unchanged. We assert
    /// the ranking.
    #[test]
    fn paper_worked_example_signs() {
        // Any level stats works — benefit signs don't depend on d.
        let m = model(LevelStats::from_counts([4, 4, 4]));
        let q1 = q(1, "select light where 280<light<600 epoch duration 2048");
        let q2 = q(2, "select light where 100<light<300 epoch duration 4096");
        let q3 = q(3, "select light where 150<light<500 epoch duration 4096");

        assert!(m.benefit(&q1, &q2).unwrap() < 0.0, "q1+q2 not beneficial");
        assert!(m.benefit(&q2, &q3).unwrap() > 0.0, "q2'+q3 beneficial");
        // Greedy ranking: q3 prefers q2' over q1'.
        assert!(
            m.benefit_rate(&q3, &q2) > m.benefit_rate(&q3, &q1),
            "q3 must prefer merging with q2'"
        );

        let q2pp = integrate(QueryId(100), &q2, &q3).unwrap();
        let r = q2pp
            .predicates()
            .range(ttmqo_query::Attribute::Light)
            .unwrap();
        assert_eq!((r.min(), r.max()), (101.0, 499.0));
        assert_eq!(q2pp.epoch().as_ms(), 4096);
        assert!(m.benefit(&q1, &q2pp).unwrap() > 0.0, "q1'+q2'' beneficial");
    }

    #[test]
    fn result_rate_matches_eq1() {
        let m = model(LevelStats::from_counts([3, 5]));
        // Full-domain predicates: selectivity 1.
        let qq = q(1, "select light epoch duration 2048");
        assert!((m.result_rate_at_level(&qq, 1) - 3.0 / 2048.0).abs() < 1e-12);
        assert!((m.result_rate_at_level(&qq, 2) - 5.0 / 2048.0).abs() < 1e-12);
        assert_eq!(m.result_rate_at_level(&qq, 3), 0.0);
    }

    #[test]
    fn trans_rate_weighs_by_depth_for_acquisition() {
        let m = model(LevelStats::from_counts([3, 5]));
        let qq = q(1, "select light epoch duration 2048");
        let expect = (3.0 * 1.0 + 5.0 * 2.0) / 2048.0;
        assert!((m.trans_rate(&qq) - expect).abs() < 1e-12);
    }

    #[test]
    fn aggregation_uses_lower_bound() {
        let m = model(LevelStats::from_counts([3, 5]));
        let agg = q(1, "select max(light) epoch duration 2048");
        let expect = 8.0 / 2048.0; // result(q, N): every node sends once
        assert!((m.trans_rate(&agg) - expect).abs() < 1e-12);
    }

    #[test]
    fn selectivity_scales_cost() {
        let m = model(LevelStats::from_counts([4, 4]));
        let full = q(1, "select light epoch duration 2048");
        let half = q(2, "select light where 0<=light<=500 epoch duration 2048");
        assert!((m.cost(&full) / m.cost(&half) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn coverage_yields_rate_exactly_one() {
        let m = model(LevelStats::from_counts([4, 4]));
        let broad = q(1, "select light where 100<=light<=600 epoch duration 2048");
        let narrow = q(2, "select light where 200<=light<=500 epoch duration 4096");
        assert_eq!(m.benefit_rate(&narrow, &broad), 1.0);
        assert!(m.benefit_rate(&broad, &narrow) < 1.0);
    }

    #[test]
    fn non_integrable_pair_rate_is_zero() {
        let m = model(LevelStats::from_counts([4]));
        let a = q(
            1,
            "select max(light) where 0<=light<=100 epoch duration 2048",
        );
        let b = q(
            2,
            "select max(light) where 0<=light<=200 epoch duration 2048",
        );
        assert_eq!(m.benefit_rate(&a, &b), 0.0);
    }

    #[test]
    fn same_predicate_aggregations_always_beneficial() {
        let m = model(LevelStats::from_counts([4]));
        let a = q(1, "select max(light) epoch duration 2048");
        let b = q(2, "select min(temp) epoch duration 6144");
        assert!(m.benefit_rate(&a, &b) > 0.0);
        assert!(m.benefit_rate(&b, &a) > 0.0);
    }

    #[test]
    fn rate_never_reaches_one_without_coverage() {
        let m = model(LevelStats::from_counts([4, 4]));
        let a = q(1, "select light epoch duration 2048");
        let b = q(2, "select light, temp epoch duration 2048");
        // b does not cover a? It does: attrs ⊇, preds equal, epoch divides.
        assert_eq!(m.benefit_rate(&a, &b), 1.0);
        // Reverse: a lacks temp → not covered, rate strictly below 1.
        let r = m.benefit_rate(&b, &a);
        assert!(r < 1.0);
    }

    #[test]
    fn cost_is_positive_and_monotone_in_len() {
        let m = CostModel::new(
            1.0,
            0.5,
            LevelStats::from_counts([4]),
            SelectivityEstimator::uniform(),
        );
        let small = q(1, "select light epoch duration 2048");
        let big = q(2, "select light, temp, humidity epoch duration 2048");
        assert!(m.cost(&small) > 0.0);
        assert!(m.cost(&big) > m.cost(&small));
    }
}
