//! Candidate index over the running synthetic queries.
//!
//! Algorithm 1 as written scores the probe against *every* running synthetic
//! query, which is fine for the paper's 48 concurrent queries and hopeless
//! for streaming admission at thousands. The index keeps the synthetics
//! bucketed by the features that decide whether a pair can possibly score
//! positive under the cost model (Eqs. 1–3), so `insert_probe` only scores
//! the plausible candidates — and provably reaches the *same* decision as
//! the exhaustive scan:
//!
//! * **epoch class** (acquisition ↔ acquisition): a merge changes the epoch
//!   to the GCD. If neither epoch divides the other, the merged query fires
//!   at least twice as often as either input while shipping at-least-as-long
//!   results at at-least-as-high selectivity, so the benefit is never
//!   positive. Only epoch-comparable candidates can win.
//! * **region grid cells** (acquisition ↔ acquisition, only when the cost
//!   model knows node positions): a merge unions the region boxes. For
//!   *disjoint* regions the union covers at least the nodes of both, so the
//!   merged cost is at least the sum of the inputs' costs and the benefit is
//!   never positive. Regioned synthetics register in every grid cell their
//!   box overlaps; the lookup only returns candidates sharing a cell with
//!   the probe's box (overlapping boxes always share the cell containing a
//!   common point). Without positions the cost model prices every region as
//!   the whole field, disjoint regions *do* merge beneficially (they share
//!   `C_start`), and this dimension is disabled.
//! * **normalized predicate set** (aggregation ↔ aggregation): both merging
//!   (`can_integrate`) and coverage of an aggregation by an aggregation
//!   require *equivalent* predicate sets, and normalized equivalence is
//!   structural equality — an exact-key lookup.
//! * **attribute set**: recorded as part of each synthetic's signature (and
//!   used to sort batched arrivals so similar queries are admitted
//!   adjacently), but deliberately **not** used for pruning: acquisitions
//!   with disjoint attribute sets still merge beneficially because the
//!   merged query shares one `C_start` per epoch (see `DESIGN.md` §15).
//!
//! Mixed acquisition ↔ aggregation pairs admit no sound pruning at all (an
//! aggregation's two ops over one attribute can compress into a shorter
//! acquisition row even across disjoint regions), so the lookup always
//! returns every opposite-kind synthetic.
//!
//! The lookup returns candidate ids in ascending id order — the same order
//! the exhaustive `BTreeMap` scan visits them — so first-covering-wins and
//! strict-greater tie-breaking are preserved bit-for-bit. Every candidate
//! the index prunes scores ≤ 0, and a pruned candidate can therefore never
//! beat an included one nor trigger the covered early-exit.

use std::collections::{BTreeMap, BTreeSet};
use ttmqo_query::{Attribute, Query, QueryId, Region};

/// Grid side of the region-overlap index (cells = `REGION_GRID_N²`).
const REGION_GRID_N: usize = 8;

/// Structural key of a normalized predicate set: `(attr, min, max)` per
/// range, in attribute order. [`ttmqo_query::PredicateSet::normalize`] drops
/// full-domain ranges, so two predicate sets are `equivalent` exactly when
/// their keys are equal. `-0.0` is canonicalized to `0.0` so bitwise keys
/// agree with `==` on bounds.
type PredKey = Vec<(Attribute, u64, u64)>;

fn canon_bits(v: f64) -> u64 {
    if v == 0.0 {
        0.0f64.to_bits()
    } else {
        v.to_bits()
    }
}

fn pred_key(q: &Query) -> PredKey {
    q.predicates()
        .iter()
        .map(|p| (p.attr(), canon_bits(p.min()), canon_bits(p.max())))
        .collect()
}

/// Deterministic counters of index effectiveness (reported by the churn
/// bench; pure functions of the admitted workload, never of the wall clock).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexStats {
    /// Candidate-set lookups performed (one per `insert_probe` round).
    pub lookups: u64,
    /// Candidates actually scored by `Beneficial`.
    pub scanned: u64,
    /// Candidates the index pruned without scoring (running synthetics
    /// minus returned candidates, summed over lookups).
    pub pruned: u64,
}

/// The bounding box of the deployment, pre-divided into grid cells.
#[derive(Debug, Clone)]
struct RegionGrid {
    x_min: f64,
    y_min: f64,
    /// Cell extent; at least a tiny epsilon so degenerate fields still map.
    cell_w: f64,
    cell_h: f64,
}

impl RegionGrid {
    fn new(positions: &[(f64, f64)]) -> Option<RegionGrid> {
        let (mut x_min, mut y_min) = (f64::INFINITY, f64::INFINITY);
        let (mut x_max, mut y_max) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
        for &(x, y) in positions {
            x_min = x_min.min(x);
            y_min = y_min.min(y);
            x_max = x_max.max(x);
            y_max = y_max.max(y);
        }
        if !x_min.is_finite() {
            return None;
        }
        let n = REGION_GRID_N as f64;
        Some(RegionGrid {
            x_min,
            y_min,
            cell_w: ((x_max - x_min) / n).max(1e-9),
            cell_h: ((y_max - y_min) / n).max(1e-9),
        })
    }

    /// Cells a region's box overlaps, clamped into the grid so every box —
    /// even one entirely outside the deployment — maps to at least one cell.
    fn cells(&self, r: &Region) -> impl Iterator<Item = usize> {
        let clamp = |v: f64| (v.max(0.0) as usize).min(REGION_GRID_N - 1);
        let cx0 = clamp(((r.x_min() - self.x_min) / self.cell_w).floor());
        let cx1 = clamp(((r.x_max() - self.x_min) / self.cell_w).floor());
        let cy0 = clamp(((r.y_min() - self.y_min) / self.cell_h).floor());
        let cy1 = clamp(((r.y_max() - self.y_min) / self.cell_h).floor());
        (cy0..=cy1).flat_map(move |cy| (cx0..=cx1).map(move |cx| cy * REGION_GRID_N + cx))
    }
}

/// The index proper. Maintained incrementally by the optimizer on every
/// synthetic install/uninstall; `lookup` returns the candidate ids worth
/// scoring for a probe, in ascending id order.
#[derive(Debug)]
pub(crate) struct CandidateIndex {
    /// All acquisition synthetics (returned whole for aggregation probes).
    acqs: BTreeSet<QueryId>,
    /// All aggregation synthetics (returned whole for acquisition probes).
    aggs: BTreeSet<QueryId>,
    /// Acquisitions bucketed by epoch duration, ms.
    acq_by_epoch: BTreeMap<u64, BTreeSet<QueryId>>,
    /// Aggregations bucketed by exact normalized predicate key.
    agg_by_pred: BTreeMap<PredKey, BTreeSet<QueryId>>,
    /// Regioned acquisitions per grid cell (`None` without positions).
    grid: Option<RegionGrid>,
    acq_cells: Vec<BTreeSet<QueryId>>,
    /// Acquisitions with no region clause (match every probe region).
    acq_everywhere: BTreeSet<QueryId>,
}

impl CandidateIndex {
    /// Builds an empty index. `positions` are the deployment's sensing-node
    /// coordinates; when empty, region pruning is disabled (matching the
    /// cost model, which then prices every region as the whole field).
    pub(crate) fn new(positions: &[(f64, f64)]) -> Self {
        let grid = RegionGrid::new(positions);
        let cells = if grid.is_some() {
            REGION_GRID_N * REGION_GRID_N
        } else {
            0
        };
        CandidateIndex {
            acqs: BTreeSet::new(),
            aggs: BTreeSet::new(),
            acq_by_epoch: BTreeMap::new(),
            agg_by_pred: BTreeMap::new(),
            grid,
            acq_cells: vec![BTreeSet::new(); cells],
            acq_everywhere: BTreeSet::new(),
        }
    }

    /// Registers a just-installed synthetic query.
    pub(crate) fn insert(&mut self, id: QueryId, query: &Query) {
        if query.is_aggregation() {
            self.aggs.insert(id);
            self.agg_by_pred
                .entry(pred_key(query))
                .or_default()
                .insert(id);
            return;
        }
        self.acqs.insert(id);
        self.acq_by_epoch
            .entry(query.epoch().as_ms())
            .or_default()
            .insert(id);
        match (query.region(), &self.grid) {
            (Some(r), Some(grid)) => {
                for cell in grid.cells(r) {
                    self.acq_cells[cell].insert(id);
                }
            }
            _ => {
                self.acq_everywhere.insert(id);
            }
        }
    }

    /// Unregisters an uninstalled synthetic query (keys recomputed from the
    /// same immutable `Query`, so removal mirrors insertion exactly).
    pub(crate) fn remove(&mut self, id: QueryId, query: &Query) {
        if query.is_aggregation() {
            self.aggs.remove(&id);
            if let Some(bucket) = self.agg_by_pred.get_mut(&pred_key(query)) {
                bucket.remove(&id);
                if bucket.is_empty() {
                    self.agg_by_pred.remove(&pred_key(query));
                }
            }
            return;
        }
        self.acqs.remove(&id);
        let epoch = query.epoch().as_ms();
        if let Some(bucket) = self.acq_by_epoch.get_mut(&epoch) {
            bucket.remove(&id);
            if bucket.is_empty() {
                self.acq_by_epoch.remove(&epoch);
            }
        }
        match (query.region(), &self.grid) {
            (Some(r), Some(grid)) => {
                for cell in grid.cells(r) {
                    self.acq_cells[cell].remove(&id);
                }
            }
            _ => {
                self.acq_everywhere.remove(&id);
            }
        }
    }

    /// Number of indexed synthetics.
    pub(crate) fn len(&self) -> usize {
        self.acqs.len() + self.aggs.len()
    }

    /// Candidate ids worth scoring for `probe`, ascending. Every omitted
    /// synthetic is guaranteed to score ≤ 0 against the probe.
    pub(crate) fn lookup(&self, probe: &Query) -> BTreeSet<QueryId> {
        let mut out: BTreeSet<QueryId> = BTreeSet::new();
        if probe.is_aggregation() {
            // Mixed pairs admit no pruning; agg-agg needs equivalent
            // predicates for both merge and coverage.
            out.extend(self.acqs.iter().copied());
            if let Some(bucket) = self.agg_by_pred.get(&pred_key(probe)) {
                out.extend(bucket.iter().copied());
            }
            return out;
        }
        out.extend(self.aggs.iter().copied());
        let pe = probe.epoch().as_ms();
        // Region filter: with a grid and a regioned probe, only acquisitions
        // sharing a grid cell (or region-free ones) can score positive.
        let region_ok: Option<BTreeSet<QueryId>> = match (probe.region(), &self.grid) {
            (Some(r), Some(grid)) => {
                let mut ok = self.acq_everywhere.clone();
                for cell in grid.cells(r) {
                    ok.extend(self.acq_cells[cell].iter().copied());
                }
                Some(ok)
            }
            _ => None,
        };
        for (&epoch, bucket) in &self.acq_by_epoch {
            if !epoch.is_multiple_of(pe) && !pe.is_multiple_of(epoch) {
                continue;
            }
            match &region_ok {
                Some(ok) => out.extend(bucket.iter().filter(|id| ok.contains(id))),
                None => out.extend(bucket.iter().copied()),
            }
        }
        out
    }
}

/// Sort key for batched admission: groups arrivals by kind, attribute set,
/// epoch and predicates so that mergeable queries are admitted back to back
/// and fold into the same synthetic while it is still the freshest candidate.
/// The attribute set is safe *here* — it only orders admissions, it never
/// prunes candidates (attribute-disjoint acquisitions still merge
/// beneficially, so attribute-set pruning would be unsound).
pub(crate) fn batch_sort_key(q: &Query) -> (bool, Vec<Attribute>, u64, PredKey, u64) {
    (
        q.is_aggregation(),
        q.sampled_attributes(),
        q.epoch().as_ms(),
        pred_key(q),
        q.id().0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ttmqo_query::{parse_query, EpochDuration};

    fn q(id: u64, text: &str) -> Query {
        parse_query(QueryId(id), text).unwrap()
    }

    #[test]
    fn epoch_incomparable_acquisitions_are_pruned() {
        let mut ix = CandidateIndex::new(&[]);
        let a = q(1, "select light epoch duration 4096"); // 2× base
        let b = q(2, "select light epoch duration 6144"); // 3× base
        let c = q(3, "select light epoch duration 8192"); // 4× base
        ix.insert(a.id(), &a);
        ix.insert(b.id(), &b);
        ix.insert(c.id(), &c);
        let got = ix.lookup(&q(9, "select temp epoch duration 4096"));
        // 4096 | 4096 and 4096 | 8192; 6144 is incomparable with 4096.
        assert!(got.contains(&QueryId(1)));
        assert!(!got.contains(&QueryId(2)));
        assert!(got.contains(&QueryId(3)));
    }

    #[test]
    fn aggregations_match_only_equivalent_predicates_plus_all_acquisitions() {
        let mut ix = CandidateIndex::new(&[]);
        let acq = q(1, "select light epoch duration 4096");
        let same = q(
            2,
            "select max(light) where 100<=light<=300 epoch duration 4096",
        );
        let diff = q(
            3,
            "select max(light) where 100<=light<=400 epoch duration 4096",
        );
        ix.insert(acq.id(), &acq);
        ix.insert(same.id(), &same);
        ix.insert(diff.id(), &diff);
        let got = ix.lookup(&q(
            9,
            "select min(light) where 100<=light<=300 epoch duration 8192",
        ));
        assert!(got.contains(&QueryId(1)), "all acquisitions included");
        assert!(
            got.contains(&QueryId(2)),
            "equivalent-predicate aggregation"
        );
        assert!(!got.contains(&QueryId(3)), "different predicates pruned");
    }

    #[test]
    fn region_pruning_requires_positions() {
        // Two disjoint unit squares, far apart.
        let mk = |id: u64, x0: f64| {
            Query::from_parts(
                QueryId(id),
                ttmqo_query::Selection::attributes([Attribute::Light]),
                ttmqo_query::PredicateSet::new(),
                EpochDuration::from_ms(4096).unwrap(),
            )
            .unwrap()
            .with_region(Region::new(x0, 0.0, x0 + 10.0, 10.0).unwrap())
        };
        let far = mk(1, 1000.0);
        let near = mk(2, 5.0);
        let probe = mk(9, 0.0);

        // Without positions: regions are not priced, nothing is pruned.
        let mut blind = CandidateIndex::new(&[]);
        blind.insert(far.id(), &far);
        blind.insert(near.id(), &near);
        assert_eq!(blind.lookup(&probe).len(), 2);

        // With positions spanning both squares: the far box is pruned.
        let positions: Vec<(f64, f64)> = (0..32).map(|i| (i as f64 * 40.0, 5.0)).collect();
        let mut ix = CandidateIndex::new(&positions);
        ix.insert(far.id(), &far);
        ix.insert(near.id(), &near);
        let got = ix.lookup(&probe);
        assert!(got.contains(&QueryId(2)));
        assert!(!got.contains(&QueryId(1)));
        // Overlapping boxes always share a cell, so `near` stays visible
        // from anywhere it overlaps.
        assert!(ix.lookup(&near).contains(&QueryId(2)));
    }

    #[test]
    fn remove_mirrors_insert() {
        let positions: Vec<(f64, f64)> = (0..16).map(|i| (i as f64, i as f64)).collect();
        let mut ix = CandidateIndex::new(&positions);
        let queries = [
            q(1, "select light epoch duration 4096"),
            q(
                2,
                "select max(light) where 0<=light<=300 epoch duration 8192",
            ),
            q(
                3,
                "select temp, light where 10<=temp<=50 epoch duration 6144",
            ),
        ];
        for query in &queries {
            ix.insert(query.id(), query);
        }
        assert_eq!(ix.len(), 3);
        for query in &queries {
            ix.remove(query.id(), query);
        }
        assert_eq!(ix.len(), 0);
        assert!(ix.lookup(&queries[0]).is_empty());
        assert!(ix.lookup(&queries[1]).is_empty());
    }
}
