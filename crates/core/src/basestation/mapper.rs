//! Result mapping: recovering each user query's exact answer from its
//! synthetic query's result stream ("mapping and calculation", §3.1).
//!
//! A synthetic query's answer is a superset of each member's needs, so the
//! mapper re-filters rows with the member's original predicates, projects the
//! member's attributes, computes the member's aggregates from raw rows when
//! an aggregation query was folded into an acquisition stream, and aligns
//! epochs (a member with a 4096 ms epoch only receives answers for epochs at
//! multiples of 4096 ms even when the synthetic query fires every 2048 ms).

use ttmqo_query::{aggregate_rows, EpochAnswer, Query, Row, Selection};

/// Maps one synthetic-query epoch answer onto one member user query.
///
/// Returns `None` when this epoch is not an epoch of the user query (epoch
/// alignment), or when the synthetic stream cannot answer the user query at
/// all (which indicates an optimizer bug — the synthetic must cover its
/// members).
///
/// # Examples
///
/// ```
/// use ttmqo_core::map_epoch_answer;
/// use ttmqo_query::{parse_query, EpochAnswer, QueryId, Readings, Row, Attribute};
///
/// let synthetic = parse_query(QueryId(100), "select light, temp epoch duration 2048")?;
/// let user = parse_query(QueryId(1), "select light where light >= 500 epoch duration 4096")?;
///
/// let mut readings = Readings::new();
/// readings.set(Attribute::Light, 700.0);
/// readings.set(Attribute::Temp, 20.0);
/// let rows = vec![Row { node: 3, time_ms: 4096, readings }];
///
/// // At t=4096 (a user epoch) the qualifying row is re-filtered & projected.
/// let mapped = map_epoch_answer(&user, &synthetic, 4096, &EpochAnswer::Rows(rows.clone()));
/// match mapped.unwrap() {
///     EpochAnswer::Rows(rs) => {
///         assert_eq!(rs.len(), 1);
///         assert_eq!(rs[0].readings.get(Attribute::Temp), None, "projected away");
///     }
///     _ => unreachable!(),
/// }
/// // At t=2048 the user query is not due.
/// assert!(map_epoch_answer(&user, &synthetic, 2048, &EpochAnswer::Rows(rows)).is_none());
/// # Ok::<(), ttmqo_query::ParseQueryError>(())
/// ```
pub fn map_epoch_answer(
    user: &Query,
    synthetic: &Query,
    epoch_ms: u64,
    answer: &EpochAnswer,
) -> Option<EpochAnswer> {
    map_epoch_answer_at(user, synthetic, epoch_ms, answer, &|_| None)
}

/// [`map_epoch_answer`] with a node-position resolver for region-based
/// queries: rows from outside the user's region clause are filtered out (the
/// base station knows every node's deployment position).
///
/// `position_of` maps a raw node id to its `(x, y)` position; returning
/// `None` for an unknown node keeps the row only if the user query has no
/// region clause.
pub fn map_epoch_answer_at(
    user: &Query,
    synthetic: &Query,
    epoch_ms: u64,
    answer: &EpochAnswer,
    position_of: &dyn Fn(u16) -> Option<(f64, f64)>,
) -> Option<EpochAnswer> {
    if !user.epoch().fires_at(epoch_ms) {
        return None;
    }
    match (answer, user.selection()) {
        (EpochAnswer::Rows(rows), Selection::Attributes(attrs)) => {
            let filtered = refilter(user, rows, position_of);
            let projected: Vec<Row> = filtered
                .into_iter()
                .map(|r| Row {
                    node: r.node,
                    time_ms: epoch_ms,
                    readings: r.readings.project(attrs),
                })
                .collect();
            Some(EpochAnswer::Rows(projected))
        }
        (EpochAnswer::Rows(rows), Selection::Aggregates(aggs)) => {
            let filtered = refilter(user, rows, position_of);
            Some(EpochAnswer::Aggregates(aggregate_rows(&filtered, aggs)))
        }
        (EpochAnswer::Aggregates(values), Selection::Aggregates(aggs)) => {
            // Correct only because aggregation merges require equivalent
            // predicates (§3.1.2).
            debug_assert!(synthetic.predicates().equivalent(user.predicates()));
            let subset: Vec<_> = values
                .iter()
                .filter(|v| aggs.contains(&(v.op, v.attr)))
                .cloned()
                .collect();
            Some(EpochAnswer::Aggregates(subset))
        }
        // An aggregate stream can never answer an acquisition query.
        (EpochAnswer::Aggregates(_), Selection::Attributes(_)) => None,
    }
}

/// Rows of the synthetic stream that satisfy the user's own predicates and
/// region clause.
fn refilter(
    user: &Query,
    rows: &[Row],
    position_of: &dyn Fn(u16) -> Option<(f64, f64)>,
) -> Vec<Row> {
    rows.iter()
        .filter(|r| {
            let in_region = user
                .region()
                .is_none_or(|reg| position_of(r.node).is_some_and(|(x, y)| reg.contains(x, y)));
            in_region
                && user.predicates().matches_with(|attr| {
                    // A missing attribute fails the predicate; the optimizer's
                    // needed-attribute rule ensures re-filter attributes
                    // travel with the row.
                    r.readings.get(attr).unwrap_or(f64::NAN)
                })
        })
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ttmqo_query::{parse_query, AggOp, Attribute, QueryId, Readings};

    fn q(id: u64, text: &str) -> Query {
        parse_query(QueryId(id), text).unwrap()
    }

    fn row(node: u16, light: f64, temp: f64) -> Row {
        let mut readings = Readings::new();
        readings.set(Attribute::Light, light);
        readings.set(Attribute::Temp, temp);
        Row {
            node,
            time_ms: 0,
            readings,
        }
    }

    #[test]
    fn refilters_with_user_predicates() {
        let synthetic = q(100, "select light, temp epoch duration 2048");
        let user = q(1, "select light where 200<=light<=400 epoch duration 2048");
        let rows = vec![row(1, 100.0, 0.0), row(2, 300.0, 0.0), row(3, 500.0, 0.0)];
        let EpochAnswer::Rows(mapped) =
            map_epoch_answer(&user, &synthetic, 2048, &EpochAnswer::Rows(rows)).unwrap()
        else {
            panic!()
        };
        assert_eq!(mapped.len(), 1);
        assert_eq!(mapped[0].node, 2);
    }

    #[test]
    fn projects_to_user_attributes() {
        let synthetic = q(100, "select light, temp epoch duration 2048");
        let user = q(1, "select temp epoch duration 2048");
        let EpochAnswer::Rows(mapped) = map_epoch_answer(
            &user,
            &synthetic,
            2048,
            &EpochAnswer::Rows(vec![row(1, 100.0, 42.0)]),
        )
        .unwrap() else {
            panic!()
        };
        assert_eq!(mapped[0].readings.get(Attribute::Temp), Some(42.0));
        assert_eq!(mapped[0].readings.get(Attribute::Light), None);
    }

    #[test]
    fn computes_user_aggregates_from_rows() {
        let synthetic = q(100, "select light epoch duration 2048");
        let user = q(1, "select max(light), count(light) epoch duration 2048");
        let rows = vec![row(1, 100.0, 0.0), row(2, 300.0, 0.0)];
        let EpochAnswer::Aggregates(vals) =
            map_epoch_answer(&user, &synthetic, 2048, &EpochAnswer::Rows(rows)).unwrap()
        else {
            panic!()
        };
        let max = vals.iter().find(|v| v.op == AggOp::Max).unwrap();
        let count = vals.iter().find(|v| v.op == AggOp::Count).unwrap();
        assert_eq!(max.value, 300.0);
        assert_eq!(count.value, 2.0);
    }

    #[test]
    fn epoch_alignment_suppresses_off_epochs() {
        let synthetic = q(100, "select light epoch duration 2048");
        let user = q(1, "select light epoch duration 6144");
        let rows = EpochAnswer::Rows(vec![row(1, 1.0, 1.0)]);
        assert!(map_epoch_answer(&user, &synthetic, 2048, &rows).is_none());
        assert!(map_epoch_answer(&user, &synthetic, 4096, &rows).is_none());
        assert!(map_epoch_answer(&user, &synthetic, 6144, &rows).is_some());
        assert!(map_epoch_answer(&user, &synthetic, 12288, &rows).is_some());
    }

    #[test]
    fn aggregate_stream_maps_subset() {
        let synthetic = q(100, "select min(light), max(light) epoch duration 2048");
        let user = q(1, "select max(light) epoch duration 2048");
        let answer = EpochAnswer::Aggregates(vec![
            ttmqo_query::AggValue {
                op: AggOp::Min,
                attr: Attribute::Light,
                value: 1.0,
            },
            ttmqo_query::AggValue {
                op: AggOp::Max,
                attr: Attribute::Light,
                value: 9.0,
            },
        ]);
        let EpochAnswer::Aggregates(vals) =
            map_epoch_answer(&user, &synthetic, 2048, &answer).unwrap()
        else {
            panic!()
        };
        assert_eq!(vals.len(), 1);
        assert_eq!(vals[0].op, AggOp::Max);
        assert_eq!(vals[0].value, 9.0);
    }

    #[test]
    fn aggregate_stream_cannot_answer_acquisition() {
        let synthetic = q(100, "select max(light) epoch duration 2048");
        let user = q(1, "select light epoch duration 2048");
        let answer = EpochAnswer::Aggregates(vec![]);
        assert!(map_epoch_answer(&user, &synthetic, 2048, &answer).is_none());
    }

    #[test]
    fn empty_rows_map_to_empty_answers() {
        let synthetic = q(100, "select light epoch duration 2048");
        let user = q(1, "select max(light) epoch duration 2048");
        let EpochAnswer::Aggregates(vals) =
            map_epoch_answer(&user, &synthetic, 2048, &EpochAnswer::Rows(vec![])).unwrap()
        else {
            panic!()
        };
        assert!(vals.is_empty());
    }
}
