//! Result mapping: recovering each user query's exact answer from its
//! synthetic query's result stream ("mapping and calculation", §3.1).
//!
//! A synthetic query's answer is a superset of each member's needs, so the
//! mapper re-filters rows with the member's original predicates, projects the
//! member's attributes, computes the member's aggregates from raw rows when
//! an aggregation query was folded into an acquisition stream, and aligns
//! epochs (a member with a 4096 ms epoch only receives answers for epochs at
//! multiples of 4096 ms even when the synthetic query fires every 2048 ms).

use ttmqo_query::{aggregate_rows, Attribute, EpochAnswer, Query, Row, Selection};

/// Maps one synthetic-query epoch answer onto one member user query.
///
/// Returns `None` when this epoch is not an epoch of the user query (epoch
/// alignment), or when the synthetic stream cannot answer the user query at
/// all (which indicates an optimizer bug — the synthetic must cover its
/// members).
///
/// # Examples
///
/// ```
/// use ttmqo_core::map_epoch_answer;
/// use ttmqo_query::{parse_query, EpochAnswer, QueryId, Readings, Row, Attribute};
///
/// let synthetic = parse_query(QueryId(100), "select light, temp epoch duration 2048")?;
/// let user = parse_query(QueryId(1), "select light where light >= 500 epoch duration 4096")?;
///
/// let mut readings = Readings::new();
/// readings.set(Attribute::Light, 700.0);
/// readings.set(Attribute::Temp, 20.0);
/// let rows = vec![Row { node: 3, time_ms: 4096, readings }];
///
/// // At t=4096 (a user epoch) the qualifying row is re-filtered & projected.
/// let mapped = map_epoch_answer(&user, &synthetic, 4096, &EpochAnswer::Rows(rows.clone()));
/// match mapped.unwrap() {
///     EpochAnswer::Rows(rs) => {
///         assert_eq!(rs.len(), 1);
///         assert_eq!(rs[0].readings.get(Attribute::Temp), None, "projected away");
///     }
///     _ => unreachable!(),
/// }
/// // At t=2048 the user query is not due.
/// assert!(map_epoch_answer(&user, &synthetic, 2048, &EpochAnswer::Rows(rows)).is_none());
/// # Ok::<(), ttmqo_query::ParseQueryError>(())
/// ```
pub fn map_epoch_answer(
    user: &Query,
    synthetic: &Query,
    epoch_ms: u64,
    answer: &EpochAnswer,
) -> Option<EpochAnswer> {
    map_epoch_answer_at(user, synthetic, epoch_ms, answer, &|_| None)
}

/// [`map_epoch_answer`] with a node-position resolver for region-based
/// queries: rows from outside the user's region clause are filtered out (the
/// base station knows every node's deployment position).
///
/// `position_of` maps a raw node id to its `(x, y)` position; returning
/// `None` for an unknown node keeps the row only if the user query has no
/// region clause.
pub fn map_epoch_answer_at(
    user: &Query,
    synthetic: &Query,
    epoch_ms: u64,
    answer: &EpochAnswer,
    position_of: &dyn Fn(u16) -> Option<(f64, f64)>,
) -> Option<EpochAnswer> {
    if !user.epoch().fires_at(epoch_ms) {
        return None;
    }
    match (answer, user.selection()) {
        (EpochAnswer::Rows(rows), Selection::Attributes(attrs)) => {
            let filtered = refilter(user, rows, position_of);
            let projected: Vec<Row> = filtered
                .into_iter()
                .map(|r| Row {
                    node: r.node,
                    time_ms: epoch_ms,
                    readings: r.readings.project(attrs),
                })
                .collect();
            Some(EpochAnswer::Rows(projected))
        }
        (EpochAnswer::Rows(rows), Selection::Aggregates(aggs)) => {
            let filtered = refilter(user, rows, position_of);
            Some(EpochAnswer::Aggregates(aggregate_rows(&filtered, aggs)))
        }
        (EpochAnswer::Aggregates(values), Selection::Aggregates(aggs)) => {
            // Correct only because aggregation merges require equivalent
            // predicates (§3.1.2).
            debug_assert!(synthetic.predicates().equivalent(user.predicates()));
            let subset: Vec<_> = values
                .iter()
                .filter(|v| aggs.contains(&(v.op, v.attr)))
                .cloned()
                .collect();
            Some(EpochAnswer::Aggregates(subset))
        }
        // An aggregate stream can never answer an acquisition query.
        (EpochAnswer::Aggregates(_), Selection::Attributes(_)) => None,
    }
}

/// Outcome of mapping one *expected* epoch of a user query: either the
/// mapped answer, or an explicit marker that the epoch produced nothing.
///
/// [`map_epoch_answer_at`] alone cannot distinguish "this epoch is not due
/// for the user query" (benign) from "the epoch was due but the synthetic
/// stream had no usable result" (data loss) — callers used to silently skip
/// both. Completeness accounting needs the difference made explicit.
#[derive(Debug, Clone, PartialEq)]
pub enum EpochOutcome {
    /// The synthetic stream answered this due epoch; the mapped user answer.
    Answered(EpochAnswer),
    /// The epoch was due for the user query but no answer could be produced:
    /// the synthetic result never arrived (lost upstream, base station down)
    /// or could not be mapped.
    Missing,
}

impl EpochOutcome {
    /// Whether this due epoch went unanswered.
    pub fn is_missing(&self) -> bool {
        matches!(self, EpochOutcome::Missing)
    }

    /// The mapped answer, if any.
    pub fn answer(&self) -> Option<&EpochAnswer> {
        match self {
            EpochOutcome::Answered(a) => Some(a),
            EpochOutcome::Missing => None,
        }
    }
}

/// Maps one epoch of a user query with gaps made explicit.
///
/// Returns `None` when `epoch_ms` is not an epoch of the user query at all
/// (nothing was expected). Otherwise the epoch *was* due, and the result is
/// [`EpochOutcome::Answered`] when the synthetic stream yielded a mappable
/// answer or [`EpochOutcome::Missing`] when `answer` was absent (no
/// synthetic result arrived for this epoch) or unmappable.
pub fn map_expected_epoch(
    user: &Query,
    synthetic: &Query,
    epoch_ms: u64,
    answer: Option<&EpochAnswer>,
    position_of: &dyn Fn(u16) -> Option<(f64, f64)>,
) -> Option<EpochOutcome> {
    if !user.epoch().fires_at(epoch_ms) {
        return None;
    }
    Some(
        match answer.and_then(|a| map_epoch_answer_at(user, synthetic, epoch_ms, a, position_of)) {
            Some(mapped) => EpochOutcome::Answered(mapped),
            None => EpochOutcome::Missing,
        },
    )
}

/// Rows of the synthetic stream that satisfy the user's own predicates and
/// region clause.
fn refilter(
    user: &Query,
    rows: &[Row],
    position_of: &dyn Fn(u16) -> Option<(f64, f64)>,
) -> Vec<Row> {
    rows.iter()
        .filter(|r| {
            let in_region = user
                .region()
                .is_none_or(|reg| position_of(r.node).is_some_and(|(x, y)| reg.contains(x, y)));
            in_region
                && user.predicates().matches_with(|attr| {
                    // `nodeid` is the row's identity, not a sensed reading —
                    // it never travels in the readings map. Any other
                    // missing attribute fails the predicate; the optimizer's
                    // needed-attribute rule ensures re-filter attributes
                    // travel with the row.
                    if attr == Attribute::NodeId {
                        return f64::from(r.node);
                    }
                    r.readings.get(attr).unwrap_or(f64::NAN)
                })
        })
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ttmqo_query::{parse_query, AggOp, Attribute, QueryId, Readings};

    fn q(id: u64, text: &str) -> Query {
        parse_query(QueryId(id), text).unwrap()
    }

    fn row(node: u16, light: f64, temp: f64) -> Row {
        let mut readings = Readings::new();
        readings.set(Attribute::Light, light);
        readings.set(Attribute::Temp, temp);
        Row {
            node,
            time_ms: 0,
            readings,
        }
    }

    #[test]
    fn refilters_with_user_predicates() {
        let synthetic = q(100, "select light, temp epoch duration 2048");
        let user = q(1, "select light where 200<=light<=400 epoch duration 2048");
        let rows = vec![row(1, 100.0, 0.0), row(2, 300.0, 0.0), row(3, 500.0, 0.0)];
        let EpochAnswer::Rows(mapped) =
            map_epoch_answer(&user, &synthetic, 2048, &EpochAnswer::Rows(rows)).unwrap()
        else {
            panic!()
        };
        assert_eq!(mapped.len(), 1);
        assert_eq!(mapped[0].node, 2);
    }

    #[test]
    fn nodeid_predicate_is_answered_from_the_row_identity() {
        // `nodeid` never appears in the readings map — the mapper must read
        // it off the row itself, or every nodeid-filtered query maps to an
        // empty answer forever.
        let synthetic = q(100, "select light epoch duration 2048");
        let user = q(1, "select light where nodeid = 2 epoch duration 2048");
        let rows = vec![row(1, 100.0, 0.0), row(2, 300.0, 0.0), row(3, 500.0, 0.0)];
        let EpochAnswer::Rows(mapped) =
            map_epoch_answer(&user, &synthetic, 2048, &EpochAnswer::Rows(rows)).unwrap()
        else {
            panic!()
        };
        assert_eq!(mapped.len(), 1);
        assert_eq!(mapped[0].node, 2);
    }

    #[test]
    fn projects_to_user_attributes() {
        let synthetic = q(100, "select light, temp epoch duration 2048");
        let user = q(1, "select temp epoch duration 2048");
        let EpochAnswer::Rows(mapped) = map_epoch_answer(
            &user,
            &synthetic,
            2048,
            &EpochAnswer::Rows(vec![row(1, 100.0, 42.0)]),
        )
        .unwrap() else {
            panic!()
        };
        assert_eq!(mapped[0].readings.get(Attribute::Temp), Some(42.0));
        assert_eq!(mapped[0].readings.get(Attribute::Light), None);
    }

    #[test]
    fn computes_user_aggregates_from_rows() {
        let synthetic = q(100, "select light epoch duration 2048");
        let user = q(1, "select max(light), count(light) epoch duration 2048");
        let rows = vec![row(1, 100.0, 0.0), row(2, 300.0, 0.0)];
        let EpochAnswer::Aggregates(vals) =
            map_epoch_answer(&user, &synthetic, 2048, &EpochAnswer::Rows(rows)).unwrap()
        else {
            panic!()
        };
        let max = vals.iter().find(|v| v.op == AggOp::Max).unwrap();
        let count = vals.iter().find(|v| v.op == AggOp::Count).unwrap();
        assert_eq!(max.value, 300.0);
        assert_eq!(count.value, 2.0);
    }

    #[test]
    fn epoch_alignment_suppresses_off_epochs() {
        let synthetic = q(100, "select light epoch duration 2048");
        let user = q(1, "select light epoch duration 6144");
        let rows = EpochAnswer::Rows(vec![row(1, 1.0, 1.0)]);
        assert!(map_epoch_answer(&user, &synthetic, 2048, &rows).is_none());
        assert!(map_epoch_answer(&user, &synthetic, 4096, &rows).is_none());
        assert!(map_epoch_answer(&user, &synthetic, 6144, &rows).is_some());
        assert!(map_epoch_answer(&user, &synthetic, 12288, &rows).is_some());
    }

    #[test]
    fn aggregate_stream_maps_subset() {
        let synthetic = q(100, "select min(light), max(light) epoch duration 2048");
        let user = q(1, "select max(light) epoch duration 2048");
        let answer = EpochAnswer::Aggregates(vec![
            ttmqo_query::AggValue {
                op: AggOp::Min,
                attr: Attribute::Light,
                value: 1.0,
            },
            ttmqo_query::AggValue {
                op: AggOp::Max,
                attr: Attribute::Light,
                value: 9.0,
            },
        ]);
        let EpochAnswer::Aggregates(vals) =
            map_epoch_answer(&user, &synthetic, 2048, &answer).unwrap()
        else {
            panic!()
        };
        assert_eq!(vals.len(), 1);
        assert_eq!(vals[0].op, AggOp::Max);
        assert_eq!(vals[0].value, 9.0);
    }

    #[test]
    fn aggregate_stream_cannot_answer_acquisition() {
        let synthetic = q(100, "select max(light) epoch duration 2048");
        let user = q(1, "select light epoch duration 2048");
        let answer = EpochAnswer::Aggregates(vec![]);
        assert!(map_epoch_answer(&user, &synthetic, 2048, &answer).is_none());
    }

    #[test]
    fn expected_epoch_with_no_result_is_marked_missing_not_skipped() {
        let synthetic = q(100, "select light epoch duration 2048");
        let user = q(1, "select light epoch duration 4096");
        let no_pos = |_: u16| None;
        // Off-epoch: nothing was expected, so no outcome at all.
        assert_eq!(
            map_expected_epoch(&user, &synthetic, 2048, None, &no_pos),
            None
        );
        // Due epoch, no synthetic result: an explicit gap marker.
        let outcome = map_expected_epoch(&user, &synthetic, 4096, None, &no_pos).unwrap();
        assert!(outcome.is_missing());
        assert_eq!(outcome.answer(), None);
        // Due epoch with a result: the mapped answer.
        let rows = EpochAnswer::Rows(vec![row(1, 100.0, 0.0)]);
        let outcome = map_expected_epoch(&user, &synthetic, 4096, Some(&rows), &no_pos).unwrap();
        assert!(!outcome.is_missing());
        match outcome.answer().unwrap() {
            EpochAnswer::Rows(rs) => assert_eq!(rs.len(), 1),
            _ => panic!(),
        }
    }

    #[test]
    fn unmappable_result_is_marked_missing() {
        // An aggregate stream can never answer an acquisition query; with
        // gaps made explicit this surfaces as Missing instead of a skip.
        let synthetic = q(100, "select max(light) epoch duration 2048");
        let user = q(1, "select light epoch duration 2048");
        let answer = EpochAnswer::Aggregates(vec![]);
        let outcome =
            map_expected_epoch(&user, &synthetic, 2048, Some(&answer), &|_| None).unwrap();
        assert!(outcome.is_missing());
    }

    #[test]
    fn empty_rows_map_to_empty_answers() {
        let synthetic = q(100, "select light epoch duration 2048");
        let user = q(1, "select max(light) epoch duration 2048");
        let EpochAnswer::Aggregates(vals) =
            map_epoch_answer(&user, &synthetic, 2048, &EpochAnswer::Rows(vec![])).unwrap()
        else {
            panic!()
        };
        assert!(vals.is_empty());
    }
}
