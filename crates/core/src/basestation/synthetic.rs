//! Synthetic queries — the rewritten queries actually injected into the
//! network (§3.1.1).
//!
//! A synthetic query wraps the network-facing [`Query`] with the enhanced
//! bookkeeping the paper keeps at the base station only: per-entry demand
//! *counts* (how many member user queries require each attribute, aggregate,
//! predicate range and epoch), the *from-list* of member queries, and the
//! current *benefit*. None of this travels in the query-propagation message.

use std::collections::{BTreeMap, BTreeSet};
use ttmqo_query::{AggOp, Attribute, Query, QueryId};

/// Requirements a user query contributes to its synthetic query's counts.
#[derive(Debug, Clone, PartialEq)]
pub struct Demand {
    /// Attributes the member needs carried (selection + re-filter attributes
    /// for acquisition carriers; aggregated attributes otherwise).
    pub attrs: Vec<Attribute>,
    /// Aggregates the member needs computed in-network.
    pub aggs: Vec<(AggOp, Attribute)>,
    /// Predicate ranges `(attr, min, max)` the member's WHERE clause uses.
    pub pred_ranges: Vec<(Attribute, f64, f64)>,
    /// The member's epoch duration, ms.
    pub epoch_ms: u64,
}

impl Demand {
    /// Extracts the demand of a user query.
    pub fn of(query: &Query) -> Self {
        let (attrs, aggs) = match query.selection() {
            ttmqo_query::Selection::Attributes(_) => (query.sampled_attributes(), Vec::new()),
            ttmqo_query::Selection::Aggregates(aggs) => (query.sampled_attributes(), aggs.clone()),
        };
        Demand {
            attrs,
            aggs,
            pred_ranges: query
                .predicates()
                .iter()
                .map(|p| (p.attr(), p.min(), p.max()))
                .collect(),
            epoch_ms: query.epoch().as_ms(),
        }
    }
}

/// A synthetic query: the network-facing query plus base-station-only
/// bookkeeping.
#[derive(Debug, Clone)]
pub struct SyntheticQuery {
    query: Query,
    from_list: BTreeSet<QueryId>,
    attr_counts: BTreeMap<Attribute, usize>,
    agg_counts: BTreeMap<(AggOp, Attribute), usize>,
    // Count per exact predicate range, keyed by (attr, min-bits, max-bits) so
    // ranges can live in an ordered map.
    pred_counts: BTreeMap<(Attribute, u64, u64), usize>,
    epoch_counts: BTreeMap<u64, usize>,
    benefit: f64,
}

impl SyntheticQuery {
    /// Wraps a network-facing query with empty bookkeeping.
    pub fn new(query: Query) -> Self {
        SyntheticQuery {
            query,
            from_list: BTreeSet::new(),
            attr_counts: BTreeMap::new(),
            agg_counts: BTreeMap::new(),
            pred_counts: BTreeMap::new(),
            epoch_counts: BTreeMap::new(),
            benefit: 0.0,
        }
    }

    /// The query as injected into the network.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// The synthetic query's id.
    pub fn id(&self) -> QueryId {
        self.query.id()
    }

    /// Member user queries this synthetic query answers.
    pub fn members(&self) -> impl Iterator<Item = QueryId> + '_ {
        self.from_list.iter().copied()
    }

    /// Number of member user queries.
    pub fn member_count(&self) -> usize {
        self.from_list.len()
    }

    /// Whether the given user query is a member.
    pub fn contains_member(&self, qid: QueryId) -> bool {
        self.from_list.contains(&qid)
    }

    /// Current benefit estimate (Σ member costs − cost of this query).
    pub fn benefit(&self) -> f64 {
        self.benefit
    }

    /// Updates the stored benefit.
    pub fn set_benefit(&mut self, benefit: f64) {
        self.benefit = benefit;
    }

    /// The paper's `UpdateCount(q, sq, 1)`: registers a member and increments
    /// every count its demand touches.
    pub fn add_member(&mut self, qid: QueryId, demand: &Demand) {
        if !self.from_list.insert(qid) {
            return;
        }
        for &a in &demand.attrs {
            *self.attr_counts.entry(a).or_insert(0) += 1;
        }
        for &g in &demand.aggs {
            *self.agg_counts.entry(g).or_insert(0) += 1;
        }
        for &(a, lo, hi) in &demand.pred_ranges {
            *self
                .pred_counts
                .entry((a, lo.to_bits(), hi.to_bits()))
                .or_insert(0) += 1;
        }
        *self.epoch_counts.entry(demand.epoch_ms).or_insert(0) += 1;
    }

    /// The paper's `UpdateCount(q, sq, 0)`: removes a member, decrements its
    /// counts, and reports whether *some count dropped to zero* — the
    /// Algorithm-2 trigger meaning the member was the only query demanding
    /// some piece of data.
    pub fn remove_member(&mut self, qid: QueryId, demand: &Demand) -> bool {
        if !self.from_list.remove(&qid) {
            return false;
        }
        let mut freed = false;
        for &a in &demand.attrs {
            if let Some(c) = self.attr_counts.get_mut(&a) {
                *c -= 1;
                if *c == 0 {
                    self.attr_counts.remove(&a);
                    freed = true;
                }
            }
        }
        for &g in &demand.aggs {
            if let Some(c) = self.agg_counts.get_mut(&g) {
                *c -= 1;
                if *c == 0 {
                    self.agg_counts.remove(&g);
                    freed = true;
                }
            }
        }
        for &(a, lo, hi) in &demand.pred_ranges {
            let k = (a, lo.to_bits(), hi.to_bits());
            if let Some(c) = self.pred_counts.get_mut(&k) {
                *c -= 1;
                if *c == 0 {
                    self.pred_counts.remove(&k);
                    freed = true;
                }
            }
        }
        if let Some(c) = self.epoch_counts.get_mut(&demand.epoch_ms) {
            *c -= 1;
            if *c == 0 {
                self.epoch_counts.remove(&demand.epoch_ms);
                freed = true;
            }
        }
        freed
    }

    /// Demand count for an attribute (testing/diagnostics).
    pub fn attr_count(&self, attr: Attribute) -> usize {
        self.attr_counts.get(&attr).copied().unwrap_or(0)
    }

    /// Demand count for an epoch duration (testing/diagnostics).
    pub fn epoch_count(&self, epoch_ms: u64) -> usize {
        self.epoch_counts.get(&epoch_ms).copied().unwrap_or(0)
    }
}

// ---------------------------------------------------------------------------
// Checkpoint/restore
// ---------------------------------------------------------------------------

use ttmqo_sim::{Restorable, SnapReader, SnapWriter, Snapshot, SnapshotError};

impl Snapshot for SyntheticQuery {
    fn write(&self, w: &mut SnapWriter) {
        let SyntheticQuery {
            query,
            from_list,
            attr_counts,
            agg_counts,
            pred_counts,
            epoch_counts,
            benefit,
        } = self;
        query.write(w);
        from_list.write(w);
        attr_counts.write(w);
        agg_counts.write(w);
        pred_counts.write(w);
        epoch_counts.write(w);
        w.put_f64(*benefit);
    }
}

impl Restorable for SyntheticQuery {
    fn read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(SyntheticQuery {
            query: Query::read(r)?,
            from_list: Restorable::read(r)?,
            attr_counts: Restorable::read(r)?,
            agg_counts: Restorable::read(r)?,
            pred_counts: Restorable::read(r)?,
            epoch_counts: Restorable::read(r)?,
            benefit: r.f64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ttmqo_query::parse_query;

    fn q(id: u64, text: &str) -> Query {
        parse_query(QueryId(id), text).unwrap()
    }

    #[test]
    fn demand_of_acquisition_includes_predicate_attrs() {
        let query = q(1, "select light where 0<=temp<=50 epoch duration 4096");
        let d = Demand::of(&query);
        assert!(d.attrs.contains(&Attribute::Light));
        assert!(d.attrs.contains(&Attribute::Temp));
        assert!(d.aggs.is_empty());
        assert_eq!(d.pred_ranges, vec![(Attribute::Temp, 0.0, 50.0)]);
        assert_eq!(d.epoch_ms, 4096);
    }

    #[test]
    fn demand_of_aggregation_lists_aggs() {
        let query = q(1, "select max(light) epoch duration 2048");
        let d = Demand::of(&query);
        assert_eq!(d.aggs, vec![(AggOp::Max, Attribute::Light)]);
    }

    #[test]
    fn add_remove_members_tracks_counts() {
        let carrier = q(100, "select light, temp epoch duration 2048");
        let mut sq = SyntheticQuery::new(carrier);
        let q1 = q(1, "select light epoch duration 2048");
        let q2 = q(2, "select light, temp epoch duration 4096");
        sq.add_member(QueryId(1), &Demand::of(&q1));
        sq.add_member(QueryId(2), &Demand::of(&q2));
        assert_eq!(sq.member_count(), 2);
        assert_eq!(sq.attr_count(Attribute::Light), 2);
        assert_eq!(sq.attr_count(Attribute::Temp), 1);
        assert_eq!(sq.epoch_count(2048), 1);
        assert_eq!(sq.epoch_count(4096), 1);

        // Removing q1 frees epoch 2048 → a count dropped to zero.
        let freed = sq.remove_member(QueryId(1), &Demand::of(&q1));
        assert!(freed);
        assert_eq!(sq.attr_count(Attribute::Light), 1);
        assert!(!sq.contains_member(QueryId(1)));
    }

    #[test]
    fn removing_redundant_member_frees_nothing() {
        let carrier = q(100, "select light epoch duration 2048");
        let mut sq = SyntheticQuery::new(carrier);
        let q1 = q(1, "select light epoch duration 2048");
        let q2 = q(2, "select light epoch duration 2048");
        sq.add_member(QueryId(1), &Demand::of(&q1));
        sq.add_member(QueryId(2), &Demand::of(&q2));
        // q2 demands exactly what q1 still demands: nothing freed.
        assert!(!sq.remove_member(QueryId(2), &Demand::of(&q2)));
    }

    #[test]
    fn duplicate_add_is_ignored() {
        let carrier = q(100, "select light epoch duration 2048");
        let mut sq = SyntheticQuery::new(carrier);
        let q1 = q(1, "select light epoch duration 2048");
        sq.add_member(QueryId(1), &Demand::of(&q1));
        sq.add_member(QueryId(1), &Demand::of(&q1));
        assert_eq!(sq.member_count(), 1);
        assert_eq!(sq.attr_count(Attribute::Light), 1);
    }

    #[test]
    fn remove_unknown_member_is_noop() {
        let carrier = q(100, "select light epoch duration 2048");
        let mut sq = SyntheticQuery::new(carrier);
        let q1 = q(1, "select light epoch duration 2048");
        assert!(!sq.remove_member(QueryId(1), &Demand::of(&q1)));
    }
}
