//! The base-station optimizer: Algorithm 1 (greedy query insertion with
//! recursive re-insertion) and Algorithm 2 (adaptive, α-gated termination).
//!
//! The optimizer maintains the set of running synthetic queries. User queries
//! arrive via [`BaseStationOptimizer::insert`] and leave via
//! [`BaseStationOptimizer::terminate`]; both return the [`NetworkOp`]s (query
//! injections and abortions) the sensor network must execute to realize the
//! new synthetic set. When there is sufficient similarity between queries,
//! insertion and termination are frequently absorbed entirely at the base
//! station and return no operations at all — the "screen" role of §3.

use crate::basestation::cost::CostModel;
use crate::basestation::index::{batch_sort_key, CandidateIndex};
use crate::basestation::synthetic::{Demand, SyntheticQuery};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use ttmqo_query::{integrate, Query, QueryId};
use ttmqo_sim::{TraceEvent, TraceHandle};

pub use crate::basestation::index::IndexStats;

/// First id handed to synthetic queries; user query ids must stay below it.
pub const SYNTHETIC_ID_BASE: u64 = 1 << 20;

/// An operation the sensor network must execute after a rewrite.
#[derive(Debug, Clone, PartialEq)]
pub enum NetworkOp {
    /// Inject (flood) a new synthetic query.
    Inject(Query),
    /// Abort (flood removal of) a synthetic query.
    Abort(QueryId),
}

/// Error inserting an invalid user query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InsertError {
    /// The id is already in use by a live user query.
    DuplicateId(QueryId),
    /// The id falls in the synthetic id space (≥ [`SYNTHETIC_ID_BASE`]).
    ReservedId(QueryId),
}

impl fmt::Display for InsertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InsertError::DuplicateId(q) => write!(f, "query id {q} is already running"),
            InsertError::ReservedId(q) => {
                write!(f, "query id {q} collides with the synthetic id space")
            }
        }
    }
}

impl std::error::Error for InsertError {}

/// Cumulative optimizer statistics (for the Figure 4 experiments).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OptimizerStats {
    /// Queries inserted so far.
    pub inserted: u64,
    /// Queries terminated so far.
    pub terminated: u64,
    /// Synthetic queries injected into the network so far.
    pub injections: u64,
    /// Synthetic queries aborted so far.
    pub abortions: u64,
    /// Insertions fully absorbed at the base station (no network ops).
    pub absorbed_insertions: u64,
    /// Terminations fully absorbed at the base station.
    pub absorbed_terminations: u64,
    /// Repair-triggered re-optimizations (persistently missing results).
    pub reoptimizations: u64,
}

/// Tunable behaviour of the optimizer (the defaults are the paper's
/// algorithm; the other settings exist for the ablation benchmarks).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimizerOptions {
    /// Algorithm 2's termination parameter α.
    pub alpha: f64,
    /// Whether a merged synthetic query is recursively re-inserted
    /// (Algorithm 1's `Insert(q_id, Q_syn)` tail call). Disabling stops after
    /// the first merge.
    pub reinsert: bool,
    /// Whether candidates are ranked by benefit *rate* (`benefit/cost(q_i)`,
    /// the paper's `Beneficial`) or by raw benefit.
    pub rank_by_rate: bool,
    /// Score every running synthetic on insertion (the paper's linear scan)
    /// instead of only the candidate index's plausible merge targets. The
    /// decisions are identical either way (the index only prunes candidates
    /// that cannot score positive); this exists as the `--exhaustive`
    /// reference mode for the churn bench and the equivalence tests.
    pub exhaustive: bool,
}

impl Default for OptimizerOptions {
    fn default() -> Self {
        OptimizerOptions {
            alpha: 0.6,
            reinsert: true,
            rank_by_rate: true,
            exhaustive: false,
        }
    }
}

/// The first-tier optimizer (§3.1).
///
/// # Examples
///
/// ```
/// use ttmqo_core::{BaseStationOptimizer, CostModel, NetworkOp};
/// use ttmqo_stats::{LevelStats, SelectivityEstimator};
/// use ttmqo_query::{parse_query, QueryId};
///
/// let model = CostModel::new(4.0, 0.2, LevelStats::from_counts([7, 8]),
///                            SelectivityEstimator::uniform());
/// let mut opt = BaseStationOptimizer::new(model, 0.6);
///
/// let q1 = parse_query(QueryId(1), "select light where 100<light<300 epoch duration 4096")?;
/// let q2 = parse_query(QueryId(2), "select light where 150<light<500 epoch duration 4096")?;
/// let ops1 = opt.insert(q1).unwrap();
/// assert!(matches!(ops1[..], [NetworkOp::Inject(_)]));
/// // q2 overlaps heavily: it is rewritten together with q1 into one
/// // synthetic query (one abort + one inject).
/// let ops2 = opt.insert(q2).unwrap();
/// assert_eq!(opt.synthetic_count(), 1);
/// assert_eq!(ops2.len(), 2);
/// # Ok::<(), ttmqo_query::ParseQueryError>(())
/// ```
#[derive(Debug)]
pub struct BaseStationOptimizer {
    cost: CostModel,
    options: OptimizerOptions,
    synthetics: BTreeMap<QueryId, SyntheticQuery>,
    /// Candidate index over `synthetics`, maintained on every install and
    /// uninstall (see `index.rs` for the pruning soundness argument).
    index: CandidateIndex,
    index_stats: IndexStats,
    user_to_syn: BTreeMap<QueryId, QueryId>,
    user_queries: BTreeMap<QueryId, Query>,
    injected: BTreeSet<QueryId>,
    next_syn: u64,
    stats: OptimizerStats,
    /// Trace sink for Tier-1 decisions (disabled by default; zero cost).
    trace: TraceHandle,
    /// Simulation time stamped onto trace events, ms (the optimizer runs
    /// outside the simulator, so the runner feeds it the clock).
    trace_now_ms: u64,
}

impl BaseStationOptimizer {
    /// Creates an optimizer with the given cost model and termination
    /// parameter α (the paper finds α ≈ 0.6 best; see Figure 4(b)).
    pub fn new(cost: CostModel, alpha: f64) -> Self {
        Self::with_options(
            cost,
            OptimizerOptions {
                alpha,
                ..OptimizerOptions::default()
            },
        )
    }

    /// Creates an optimizer with full control over the algorithm knobs
    /// (used by the ablation benchmarks).
    pub fn with_options(cost: CostModel, options: OptimizerOptions) -> Self {
        let index = CandidateIndex::new(cost.positions());
        BaseStationOptimizer {
            cost,
            options,
            index,
            index_stats: IndexStats::default(),
            synthetics: BTreeMap::new(),
            user_to_syn: BTreeMap::new(),
            user_queries: BTreeMap::new(),
            injected: BTreeSet::new(),
            next_syn: SYNTHETIC_ID_BASE,
            stats: OptimizerStats::default(),
            trace: TraceHandle::disabled(),
            trace_now_ms: 0,
        }
    }

    /// Attaches a trace sink: every `Beneficial` evaluation and every
    /// covered/merge/install/reoptimize decision emits a structured event.
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }

    /// Sets the simulation time stamped onto subsequent trace events, ms.
    /// The optimizer has no clock of its own; the experiment runner calls
    /// this before `insert`/`terminate`/`reoptimize`.
    pub fn set_trace_time(&mut self, now_ms: u64) {
        self.trace_now_ms = now_ms;
    }

    /// The termination parameter α.
    pub fn alpha(&self) -> f64 {
        self.options.alpha
    }

    /// The cost model in use.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Feeds an observed reading into the cost model's adaptive statistics.
    /// Future rewriting decisions use the learned distribution instead of
    /// the uniform assumption once enough observations accumulate.
    pub fn observe_reading(&mut self, attr: ttmqo_query::Attribute, value: f64) {
        self.cost.observe(attr, value);
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> OptimizerStats {
        self.stats
    }

    /// Cumulative candidate-index statistics (lookups, candidates scored,
    /// candidates pruned). Pruned stays 0 under `exhaustive`.
    pub fn index_stats(&self) -> IndexStats {
        self.index_stats
    }

    /// Number of synthetics tracked by the candidate index (always equals
    /// [`synthetic_count`]; exposed for drain tests).
    ///
    /// [`synthetic_count`]: BaseStationOptimizer::synthetic_count
    pub fn index_len(&self) -> usize {
        self.index.len()
    }

    /// Algorithm 1: inserts a new user query, rewriting the synthetic set.
    ///
    /// Returns the network operations realizing the change (possibly none,
    /// when the query is covered by a running synthetic query).
    ///
    /// # Errors
    ///
    /// Returns [`InsertError`] on a duplicate or reserved query id.
    pub fn insert(&mut self, query: Query) -> Result<Vec<NetworkOp>, InsertError> {
        let qid = query.id();
        if qid.0 >= SYNTHETIC_ID_BASE {
            return Err(InsertError::ReservedId(qid));
        }
        if self.user_queries.contains_key(&qid) {
            return Err(InsertError::DuplicateId(qid));
        }
        self.user_queries.insert(qid, query.clone());
        self.stats.inserted += 1;

        let mut probe = SyntheticQuery::new(query.with_id(self.fresh_syn_id()));
        probe.add_member(qid, &Demand::of(&query));
        self.insert_probe(probe);

        let ops = self.diff_ops();
        if ops.is_empty() {
            self.stats.absorbed_insertions += 1;
        }
        Ok(ops)
    }

    /// Algorithm 2: terminates a user query. Alias of [`remove`].
    ///
    /// [`remove`]: BaseStationOptimizer::remove
    pub fn terminate(&mut self, qid: QueryId) -> Vec<NetworkOp> {
        self.remove(qid)
    }

    /// The streaming departure path (Algorithm 2): detaches the member from
    /// its synthetic query, shrinks the synthetic's demand counts, and
    /// uninstalls the synthetic when it empties.
    ///
    /// If the departed query was the only one demanding some piece of the
    /// synthetic query's data, the α-test decides between keeping the
    /// synthetic query unchanged (hiding the departure from the network) and
    /// incrementally re-inserting the surviving members — each survivor runs
    /// back through Algorithm 1 and lands wherever is now most beneficial.
    ///
    /// Returns no operations for an unknown id.
    pub fn remove(&mut self, qid: QueryId) -> Vec<NetworkOp> {
        let Some(syn_id) = self.user_to_syn.remove(&qid) else {
            return Vec::new();
        };
        let query = self
            .user_queries
            .remove(&qid)
            .expect("mapped user query exists");
        self.stats.terminated += 1;

        let sq = self
            .synthetics
            .get_mut(&syn_id)
            .expect("mapped synthetic exists");
        let benefit_before = sq.benefit();
        let freed = sq.remove_member(qid, &Demand::of(&query));
        let emptied = sq.member_count() == 0;
        // Line 5 of Algorithm 2: keep the old synthetic query only when the
        // vanished demand is small relative to the accumulated benefit:
        // cost(q) ≤ benefit · α.
        let rebuilt =
            !emptied && freed && self.cost.cost(&query) > benefit_before * self.options.alpha;
        if self.trace.is_enabled() {
            self.trace.emit(
                self.trace_now_ms * 1000,
                TraceEvent::Tier1Remove {
                    user: qid,
                    synthetic: syn_id,
                    emptied,
                    rebuilt,
                },
            );
        }

        if emptied {
            self.uninstall_synthetic(syn_id);
        } else if rebuilt {
            let sq = self
                .uninstall_synthetic(syn_id)
                .expect("synthetic still present");
            let members: Vec<QueryId> = sq.members().collect();
            if self.trace.is_enabled() {
                self.trace.emit(
                    self.trace_now_ms * 1000,
                    TraceEvent::Tier1Reindex {
                        synthetic: syn_id,
                        members: members.clone(),
                    },
                );
            }
            for m in members {
                self.user_to_syn.remove(&m);
                let mq = self.user_queries[&m].clone();
                let mut probe = SyntheticQuery::new(mq.with_id(self.fresh_syn_id()));
                probe.add_member(m, &Demand::of(&mq));
                self.insert_probe(probe);
            }
        } else {
            self.refresh_benefit(syn_id);
        }

        let ops = self.diff_ops();
        if ops.is_empty() {
            self.stats.absorbed_terminations += 1;
        }
        ops
    }

    /// Batched arrival processing: admits a whole batch of user queries and
    /// returns the *net* network operations.
    ///
    /// Arrivals are sorted into the index once — by kind, attribute set,
    /// epoch and predicate signature — so similar queries are admitted
    /// adjacently and fold into each other before touching unrelated
    /// synthetics. Intermediate inject/abort pairs that cancel within the
    /// batch (a synthetic installed by one arrival and merged away by the
    /// next) never reach the network, which is the point of batching.
    ///
    /// The batch is atomic with respect to validation: on any duplicate or
    /// reserved id (including duplicates *within* the batch) no query is
    /// admitted.
    ///
    /// # Errors
    ///
    /// Returns [`InsertError`] on a duplicate or reserved query id.
    pub fn insert_batch(&mut self, queries: Vec<Query>) -> Result<Vec<NetworkOp>, InsertError> {
        let mut seen: BTreeSet<QueryId> = BTreeSet::new();
        for query in &queries {
            let qid = query.id();
            if qid.0 >= SYNTHETIC_ID_BASE {
                return Err(InsertError::ReservedId(qid));
            }
            if self.user_queries.contains_key(&qid) || !seen.insert(qid) {
                return Err(InsertError::DuplicateId(qid));
            }
        }
        let mut sorted = queries;
        sorted.sort_by_cached_key(batch_sort_key);
        let n = sorted.len() as u64;
        for query in sorted {
            let qid = query.id();
            self.user_queries.insert(qid, query.clone());
            self.stats.inserted += 1;
            let mut probe = SyntheticQuery::new(query.with_id(self.fresh_syn_id()));
            probe.add_member(qid, &Demand::of(&query));
            self.insert_probe(probe);
        }
        let ops = self.diff_ops();
        if ops.is_empty() && n > 0 {
            self.stats.absorbed_insertions += n;
        }
        Ok(ops)
    }

    /// Repair path: rebuilds the synthetic query `syn_id` from its members
    /// under *fresh* synthetic ids and returns the abort/inject operations.
    ///
    /// Triggered when the base station detects persistently missing results
    /// for a member of `syn_id`: the rebuilt queries carry new ids, so
    /// re-flooding them is not suppressed by the network's flood
    /// deduplication even where the old query is still nominally installed.
    /// The rewrite itself is Algorithm 1 over the same member set with the
    /// same α, so a healthy set converges back to an equivalent synthetic
    /// set (see the idempotence tests).
    ///
    /// Returns no operations when `syn_id` is not running.
    pub fn reoptimize(&mut self, syn_id: QueryId) -> Vec<NetworkOp> {
        let Some(sq) = self.uninstall_synthetic(syn_id) else {
            return Vec::new();
        };
        self.stats.reoptimizations += 1;
        let members: Vec<QueryId> = sq.members().collect();
        if self.trace.is_enabled() {
            self.trace.emit(
                self.trace_now_ms * 1000,
                TraceEvent::Tier1Reoptimize {
                    synthetic: syn_id,
                    members: members.clone(),
                },
            );
        }
        for m in members {
            self.user_to_syn.remove(&m);
            let mq = self.user_queries[&m].clone();
            let mut probe = SyntheticQuery::new(mq.with_id(self.fresh_syn_id()));
            probe.add_member(m, &Demand::of(&mq));
            self.insert_probe(probe);
        }
        self.diff_ops()
    }

    /// The currently running synthetic queries (as injected).
    pub fn synthetic_queries(&self) -> impl Iterator<Item = &Query> {
        self.synthetics.values().map(|s| s.query())
    }

    /// Detailed view of a synthetic query.
    pub fn synthetic(&self, id: QueryId) -> Option<&SyntheticQuery> {
        self.synthetics.get(&id)
    }

    /// Number of running synthetic queries (Figure 4(c)'s y-axis).
    pub fn synthetic_count(&self) -> usize {
        self.synthetics.len()
    }

    /// Number of running user queries.
    pub fn user_count(&self) -> usize {
        self.user_queries.len()
    }

    /// The synthetic query a user query is currently written into (`qid'`).
    pub fn mapping(&self, user: QueryId) -> Option<QueryId> {
        self.user_to_syn.get(&user).copied()
    }

    /// A live user query by id.
    pub fn user_query(&self, user: QueryId) -> Option<&Query> {
        self.user_queries.get(&user)
    }

    /// Σ cost of all running user queries (the denominator of the paper's
    /// *benefit ratio*).
    pub fn total_user_cost(&self) -> f64 {
        self.user_queries.values().map(|q| self.cost.cost(q)).sum()
    }

    /// Σ cost of all running synthetic queries.
    pub fn total_synthetic_cost(&self) -> f64 {
        self.synthetics
            .values()
            .map(|s| self.cost.cost(s.query()))
            .sum()
    }

    /// The paper's benefit ratio at this instant:
    /// `(Σ user cost − Σ synthetic cost) / Σ user cost`.
    pub fn benefit_ratio(&self) -> f64 {
        let user = self.total_user_cost();
        if user <= 0.0 {
            return 0.0;
        }
        (user - self.total_synthetic_cost()) / user
    }

    fn fresh_syn_id(&mut self) -> QueryId {
        let id = QueryId(self.next_syn);
        self.next_syn += 1;
        id
    }

    /// The iterative core of Algorithm 1. `probe` is a detached synthetic
    /// query (a new user query, or a just-merged synthetic): find the most
    /// beneficial running synthetic to rewrite with; attach if covered; merge
    /// and retry if beneficial; otherwise install as a new synthetic query.
    fn insert_probe(&mut self, probe: SyntheticQuery) {
        self.insert_probe_from(probe, 0);
    }

    /// [`insert_probe`](Self::insert_probe) with an explicit starting merge
    /// count, so tests can enter the loop in the post-merge state.
    fn insert_probe_from(&mut self, mut probe: SyntheticQuery, mut merges: u32) {
        loop {
            let pq = probe.query().clone();
            // The exhaustive scan visits every synthetic in ascending id
            // order; the index returns a subset in the same order, omitting
            // only candidates that cannot score positive — so the best
            // positive candidate, ties (broken by first-seen id) and the
            // covered early-exit all come out identical.
            let candidates: Vec<QueryId> = if self.options.exhaustive {
                self.synthetics.keys().copied().collect()
            } else {
                self.index.lookup(&pq).into_iter().collect()
            };
            self.index_stats.lookups += 1;
            self.index_stats.pruned += (self.synthetics.len() - candidates.len()) as u64;
            let mut best: Option<(QueryId, f64)> = None;
            for id in candidates {
                let rate = self.score(&pq, self.synthetics[&id].query());
                self.index_stats.scanned += 1;
                if self.trace.is_enabled() {
                    self.trace.emit(
                        self.trace_now_ms * 1000,
                        TraceEvent::Tier1Eval {
                            probe: pq.id(),
                            candidate: id,
                            rate,
                        },
                    );
                }
                if best.is_none_or(|(_, b)| rate > b) {
                    best = Some((id, rate));
                }
                if rate >= 1.0 {
                    break; // Algorithm 1 line 9: cannot do better than covered
                }
            }
            match best {
                Some((id, rate)) if rate >= 1.0 => {
                    // Covered: the probe's members ride along for free.
                    if self.trace.is_enabled() {
                        self.trace.emit(
                            self.trace_now_ms * 1000,
                            TraceEvent::Tier1Covered {
                                probe: pq.id(),
                                covered_by: id,
                            },
                        );
                    }
                    let members: Vec<QueryId> = probe.members().collect();
                    let sq = self.synthetics.get_mut(&id).expect("best exists");
                    for m in &members {
                        let demand = Demand::of(&self.user_queries[m]);
                        sq.add_member(*m, &demand);
                        self.user_to_syn.insert(*m, id);
                    }
                    self.refresh_benefit(id);
                    return;
                }
                Some((id, rate)) if rate > 0.0 && (merges == 0 || self.options.reinsert) => {
                    // Integrate, then re-insert the merged synthetic
                    // (the paper's recursive `Insert(q_id, Q_syn)`). The
                    // no-reinsert ablation suppresses only this arm after the
                    // first merge: a covering synthetic (rate ≥ 1.0, above)
                    // still absorbs the merged probe rather than letting it
                    // install as a duplicate.
                    merges += 1;
                    let old = self.uninstall_synthetic(id).expect("best exists");
                    let merged_query = integrate(self.fresh_syn_id(), old.query(), &pq)
                        .expect("positive benefit rate implies integrable");
                    if self.trace.is_enabled() {
                        self.trace.emit(
                            self.trace_now_ms * 1000,
                            TraceEvent::Tier1Merge {
                                probe: pq.id(),
                                candidate: id,
                                merged: merged_query.id(),
                            },
                        );
                    }
                    let mut merged = SyntheticQuery::new(merged_query);
                    for m in old.members().chain(probe.members()) {
                        merged.add_member(m, &Demand::of(&self.user_queries[&m]));
                    }
                    probe = merged;
                }
                _ => {
                    // No beneficial rewrite: run the probe as-is.
                    let id = probe.id();
                    let members: Vec<QueryId> = probe.members().collect();
                    if self.trace.is_enabled() {
                        self.trace.emit(
                            self.trace_now_ms * 1000,
                            TraceEvent::Tier1Install {
                                synthetic: id,
                                members: members.clone(),
                            },
                        );
                    }
                    for m in members {
                        self.user_to_syn.insert(m, id);
                    }
                    self.install_synthetic(probe);
                    self.refresh_benefit(id);
                    return;
                }
            }
        }
    }

    /// Candidate score: ≥ 1.0 means covered, > 0 means a beneficial merge.
    /// Rate mode is the paper's `Beneficial`; raw mode squashes the raw
    /// benefit into `(0, 1)` so it never masquerades as coverage.
    fn score(&self, probe: &Query, candidate: &Query) -> f64 {
        if self.options.rank_by_rate {
            return self.cost.benefit_rate(probe, candidate);
        }
        if ttmqo_query::covers_query(candidate, probe) {
            return f64::INFINITY;
        }
        let Some(mut b) = self.cost.benefit(probe, candidate) else {
            return 0.0;
        };
        if probe.is_aggregation()
            && candidate.is_aggregation()
            && probe.predicates().equivalent(candidate.predicates())
        {
            b = b.max(1e-9);
        }
        if b <= 0.0 {
            b
        } else {
            b / (1.0 + b)
        }
    }

    /// Installs a synthetic query, keeping map and candidate index in sync.
    fn install_synthetic(&mut self, sq: SyntheticQuery) {
        self.index.insert(sq.id(), sq.query());
        self.synthetics.insert(sq.id(), sq);
    }

    /// Uninstalls a synthetic query, keeping map and candidate index in
    /// sync. Returns `None` when the id is not running.
    fn uninstall_synthetic(&mut self, id: QueryId) -> Option<SyntheticQuery> {
        let sq = self.synthetics.remove(&id)?;
        self.index.remove(id, sq.query());
        Some(sq)
    }

    fn refresh_benefit(&mut self, id: QueryId) {
        let Some(sq) = self.synthetics.get(&id) else {
            // Every caller passes the id of a synthetic it just installed or
            // attached to; a miss here means the synthetic map and the
            // candidate index diverged.
            debug_assert!(false, "refresh_benefit: synthetic {id} is not running");
            return;
        };
        let member_cost: f64 = sq
            .members()
            .map(|m| self.cost.cost(&self.user_queries[&m]))
            .sum();
        let own = self.cost.cost(sq.query());
        if let Some(sq) = self.synthetics.get_mut(&id) {
            sq.set_benefit(member_cost - own);
        }
    }

    /// Computes the injections/abortions turning the previously injected set
    /// into the current synthetic set.
    fn diff_ops(&mut self) -> Vec<NetworkOp> {
        let current: BTreeSet<QueryId> = self.synthetics.keys().copied().collect();
        let mut ops = Vec::new();
        for &gone in self.injected.difference(&current) {
            ops.push(NetworkOp::Abort(gone));
            self.stats.abortions += 1;
        }
        for &new in current.difference(&self.injected) {
            ops.push(NetworkOp::Inject(self.synthetics[&new].query().clone()));
            self.stats.injections += 1;
        }
        self.injected = current;
        ops
    }
}

// ---------------------------------------------------------------------------
// Checkpoint/restore
// ---------------------------------------------------------------------------

use ttmqo_sim::{Restorable, SnapReader, SnapWriter, Snapshot, SnapshotError};

impl Snapshot for OptimizerOptions {
    fn write(&self, w: &mut SnapWriter) {
        let OptimizerOptions {
            alpha,
            reinsert,
            rank_by_rate,
            exhaustive,
        } = self;
        w.put_f64(*alpha);
        w.put_bool(*reinsert);
        w.put_bool(*rank_by_rate);
        w.put_bool(*exhaustive);
    }
}

impl Restorable for OptimizerOptions {
    fn read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(OptimizerOptions {
            alpha: r.f64()?,
            reinsert: r.bool()?,
            rank_by_rate: r.bool()?,
            exhaustive: r.bool()?,
        })
    }
}

impl Snapshot for OptimizerStats {
    fn write(&self, w: &mut SnapWriter) {
        let OptimizerStats {
            inserted,
            terminated,
            injections,
            abortions,
            absorbed_insertions,
            absorbed_terminations,
            reoptimizations,
        } = self;
        w.put_u64(*inserted);
        w.put_u64(*terminated);
        w.put_u64(*injections);
        w.put_u64(*abortions);
        w.put_u64(*absorbed_insertions);
        w.put_u64(*absorbed_terminations);
        w.put_u64(*reoptimizations);
    }
}

impl Restorable for OptimizerStats {
    fn read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(OptimizerStats {
            inserted: r.u64()?,
            terminated: r.u64()?,
            injections: r.u64()?,
            abortions: r.u64()?,
            absorbed_insertions: r.u64()?,
            absorbed_terminations: r.u64()?,
            reoptimizations: r.u64()?,
        })
    }
}

impl Snapshot for IndexStats {
    fn write(&self, w: &mut SnapWriter) {
        let IndexStats {
            lookups,
            scanned,
            pruned,
        } = self;
        w.put_u64(*lookups);
        w.put_u64(*scanned);
        w.put_u64(*pruned);
    }
}

impl Restorable for IndexStats {
    fn read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(IndexStats {
            lookups: r.u64()?,
            scanned: r.u64()?,
            pruned: r.u64()?,
        })
    }
}

impl BaseStationOptimizer {
    /// Serializes the optimizer's complete dynamic state.
    ///
    /// Deliberately NOT serialized: the candidate index (rebuilt from the
    /// synthetic set at restore — it is a pure function of it) and the trace
    /// handle (sinks cannot travel; the restored optimizer starts with
    /// tracing disabled and the caller re-attaches a handle if wanted).
    pub fn write_snapshot(&self, w: &mut SnapWriter) {
        let BaseStationOptimizer {
            cost,
            options,
            synthetics,
            index: _,
            index_stats,
            user_to_syn,
            user_queries,
            injected,
            next_syn,
            stats,
            trace: _,
            trace_now_ms,
        } = self;
        cost.write_snapshot(w);
        options.write(w);
        synthetics.write(w);
        index_stats.write(w);
        user_to_syn.write(w);
        user_queries.write(w);
        injected.write(w);
        w.put_u64(*next_syn);
        stats.write(w);
        w.put_u64(*trace_now_ms);
    }

    /// Restores an optimizer captured by
    /// [`write_snapshot`](Self::write_snapshot).
    ///
    /// `fresh` must be an optimizer built through the same construction path
    /// as the captured one (same experiment configuration and topology); it
    /// supplies the cost model's static estimator models. The candidate index
    /// is rebuilt deterministically by re-inserting the synthetic set in
    /// ascending id order. Tracing starts disabled.
    pub fn read_snapshot(
        r: &mut SnapReader<'_>,
        fresh: BaseStationOptimizer,
    ) -> Result<Self, SnapshotError> {
        let cost = CostModel::read_snapshot(r, fresh.cost)?;
        let options = OptimizerOptions::read(r)?;
        let synthetics: BTreeMap<QueryId, SyntheticQuery> = Restorable::read(r)?;
        let index_stats = IndexStats::read(r)?;
        let user_to_syn = Restorable::read(r)?;
        let user_queries = Restorable::read(r)?;
        let injected = Restorable::read(r)?;
        let next_syn = r.u64()?;
        let stats = OptimizerStats::read(r)?;
        let trace_now_ms = r.u64()?;
        let mut index = CandidateIndex::new(cost.positions());
        for (id, sq) in &synthetics {
            index.insert(*id, sq.query());
        }
        Ok(BaseStationOptimizer {
            cost,
            options,
            synthetics,
            index,
            index_stats,
            user_to_syn,
            user_queries,
            injected,
            next_syn,
            stats,
            trace: TraceHandle::disabled(),
            trace_now_ms,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ttmqo_query::{covers_query, parse_query};
    use ttmqo_stats::{LevelStats, SelectivityEstimator};

    fn opt(alpha: f64) -> BaseStationOptimizer {
        let model = CostModel::new(
            1.0,
            0.0,
            LevelStats::from_counts([4, 4, 4]),
            SelectivityEstimator::uniform(),
        );
        BaseStationOptimizer::new(model, alpha)
    }

    fn q(id: u64, text: &str) -> Query {
        parse_query(QueryId(id), text).unwrap()
    }

    /// Every live user query must be covered by its synthetic query.
    fn assert_invariants(o: &BaseStationOptimizer) {
        for (uid, syn_id) in &o.user_to_syn {
            let sq = o
                .synthetic(*syn_id)
                .unwrap_or_else(|| panic!("user {uid} maps to missing synthetic {syn_id}"));
            assert!(sq.contains_member(*uid));
            let uq = o.user_query(*uid).unwrap();
            assert!(
                covers_query(sq.query(), uq),
                "synthetic {} does not cover user {}",
                sq.query(),
                uq
            );
        }
        assert_eq!(o.user_to_syn.len(), o.user_count());
        let member_total: usize = o.synthetics.values().map(|s| s.member_count()).sum();
        assert_eq!(member_total, o.user_count());
    }

    #[test]
    fn first_query_becomes_its_own_synthetic() {
        let mut o = opt(0.6);
        let ops = o.insert(q(1, "select light epoch duration 2048")).unwrap();
        assert_eq!(ops.len(), 1);
        assert!(matches!(ops[0], NetworkOp::Inject(_)));
        assert_eq!(o.synthetic_count(), 1);
        assert_invariants(&o);
    }

    #[test]
    fn covered_query_is_absorbed_silently() {
        let mut o = opt(0.6);
        o.insert(q(1, "select light, temp epoch duration 2048"))
            .unwrap();
        let ops = o.insert(q(2, "select light epoch duration 4096")).unwrap();
        assert!(
            ops.is_empty(),
            "covered insertion must not touch the network"
        );
        assert_eq!(o.synthetic_count(), 1);
        assert_eq!(o.stats().absorbed_insertions, 1);
        assert_invariants(&o);
    }

    #[test]
    fn paper_worked_example_rewrites_cascade() {
        // §3.1.3: q1 and q2 don't merge; q3 merges with q2; the merged q2''
        // then beneficially merges with q1'.
        let mut o = opt(0.6);
        o.insert(q(1, "select light where 280<light<600 epoch duration 2048"))
            .unwrap();
        o.insert(q(2, "select light where 100<light<300 epoch duration 4096"))
            .unwrap();
        assert_eq!(o.synthetic_count(), 2, "q1 and q2 must stay separate");

        o.insert(q(3, "select light where 150<light<500 epoch duration 4096"))
            .unwrap();
        // The recursive re-insertion merges everything into one synthetic.
        assert_eq!(o.synthetic_count(), 1, "cascade must fold all three");
        let syn = o.synthetic_queries().next().unwrap();
        assert_eq!(syn.epoch().as_ms(), 2048);
        let r = syn
            .predicates()
            .range(ttmqo_query::Attribute::Light)
            .unwrap();
        assert_eq!((r.min(), r.max()), (101.0, 599.0));
        assert_invariants(&o);
    }

    #[test]
    fn duplicate_and_reserved_ids_are_rejected() {
        let mut o = opt(0.6);
        o.insert(q(1, "select light epoch duration 2048")).unwrap();
        assert_eq!(
            o.insert(q(1, "select temp epoch duration 2048"))
                .unwrap_err(),
            InsertError::DuplicateId(QueryId(1))
        );
        assert_eq!(
            o.insert(q(SYNTHETIC_ID_BASE, "select temp epoch duration 2048"))
                .unwrap_err(),
            InsertError::ReservedId(QueryId(SYNTHETIC_ID_BASE))
        );
    }

    #[test]
    fn same_predicate_aggregations_merge() {
        let mut o = opt(0.6);
        o.insert(q(1, "select max(light) epoch duration 4096"))
            .unwrap();
        let ops = o
            .insert(q(2, "select min(light) epoch duration 4096"))
            .unwrap();
        assert_eq!(o.synthetic_count(), 1);
        // One abort (old synthetic) + one inject (merged).
        assert_eq!(ops.len(), 2);
        let syn = o.synthetic_queries().next().unwrap();
        assert!(syn.is_aggregation());
        assert_invariants(&o);
    }

    #[test]
    fn different_predicate_aggregations_stay_apart() {
        let mut o = opt(0.6);
        o.insert(q(
            1,
            "select max(light) where 0<=light<=300 epoch duration 2048",
        ))
        .unwrap();
        o.insert(q(
            2,
            "select max(light) where 0<=light<=600 epoch duration 2048",
        ))
        .unwrap();
        assert_eq!(o.synthetic_count(), 2);
        assert_invariants(&o);
    }

    #[test]
    fn aggregation_folds_into_covering_acquisition() {
        let mut o = opt(0.6);
        o.insert(q(1, "select light, temp epoch duration 2048"))
            .unwrap();
        let ops = o
            .insert(q(2, "select max(light) epoch duration 4096"))
            .unwrap();
        // The acquisition stream already carries everything MAX(light) needs.
        assert!(ops.is_empty());
        assert_eq!(o.synthetic_count(), 1);
        assert_invariants(&o);
    }

    #[test]
    fn termination_of_sole_query_aborts_synthetic() {
        let mut o = opt(0.6);
        o.insert(q(1, "select light epoch duration 2048")).unwrap();
        let ops = o.terminate(QueryId(1));
        assert_eq!(ops.len(), 1);
        assert!(matches!(ops[0], NetworkOp::Abort(_)));
        assert_eq!(o.synthetic_count(), 0);
        assert_eq!(o.user_count(), 0);
    }

    #[test]
    fn termination_of_redundant_member_is_silent() {
        let mut o = opt(0.6);
        o.insert(q(1, "select light epoch duration 2048")).unwrap();
        o.insert(q(2, "select light epoch duration 2048")).unwrap();
        assert_eq!(o.synthetic_count(), 1);
        let ops = o.terminate(QueryId(2));
        assert!(ops.is_empty(), "identical twin termination must be hidden");
        assert_eq!(o.stats().absorbed_terminations, 1);
        assert_invariants(&o);
    }

    #[test]
    fn alpha_gates_rebuild_on_termination() {
        // q_broad's demand dominates the synthetic; terminating it with a
        // small α forces a rebuild, while a huge α keeps the synthetic.
        let build = |alpha: f64| {
            let mut o = opt(alpha);
            o.insert(q(
                1,
                "select light where 0<=light<=1000 epoch duration 2048",
            ))
            .unwrap();
            o.insert(q(2, "select light where 0<=light<=200 epoch duration 4096"))
                .unwrap();
            assert_eq!(o.synthetic_count(), 1);
            let ops = o.terminate(QueryId(1));
            (o, ops)
        };
        let (o_small, ops_small) = build(0.1);
        assert!(!ops_small.is_empty(), "small α must rebuild");
        let syn = o_small.synthetic_queries().next().unwrap();
        let r = syn
            .predicates()
            .range(ttmqo_query::Attribute::Light)
            .unwrap();
        assert_eq!((r.min(), r.max()), (0.0, 200.0), "rebuilt tight query");
        assert_invariants(&o_small);

        let (o_big, ops_big) = build(1e6);
        assert!(ops_big.is_empty(), "huge α must keep the old synthetic");
        let syn = o_big.synthetic_queries().next().unwrap();
        assert!(
            syn.predicates()
                .range(ttmqo_query::Attribute::Light)
                .is_none()
                || syn
                    .predicates()
                    .range(ttmqo_query::Attribute::Light)
                    .unwrap()
                    .max()
                    >= 1000.0
        );
        assert_invariants(&o_big);
    }

    #[test]
    fn terminate_unknown_query_is_noop() {
        let mut o = opt(0.6);
        assert!(o.terminate(QueryId(99)).is_empty());
    }

    /// Id-independent canonical forms of the running synthetic set, for
    /// comparing sets across rewrites that renumber synthetic ids.
    fn synthetic_shapes(o: &BaseStationOptimizer) -> Vec<String> {
        let mut shapes: Vec<String> = o
            .synthetic_queries()
            .map(|s| format!("{:?}", s.with_id(QueryId(0))))
            .collect();
        shapes.sort();
        shapes
    }

    const REPAIR_SET: [&str; 5] = [
        "select light where 100<light<300 epoch duration 4096",
        "select light where 150<light<500 epoch duration 4096",
        "select light, temp epoch duration 2048",
        "select max(light) epoch duration 8192",
        "select min(temp) where 0<=temp<=500 epoch duration 4096",
    ];

    #[test]
    fn reoptimize_rebuilds_equivalent_synthetics_under_fresh_ids() {
        let mut o = opt(0.6);
        for (i, t) in REPAIR_SET.iter().enumerate() {
            o.insert(q(1 + i as u64, t)).unwrap();
        }
        let before = synthetic_shapes(&o);
        let ids_before: Vec<QueryId> = o.synthetic_queries().map(|s| s.id()).collect();

        // Repair every running synthetic, re-resolving ids as rewrites
        // rename them.
        let mut repaired = 0;
        while let Some(&id) = o
            .synthetic_queries()
            .map(|s| s.id())
            .collect::<Vec<_>>()
            .iter()
            .find(|id| ids_before.contains(id))
        {
            let ops = o.reoptimize(id);
            assert!(
                ops.iter()
                    .any(|op| matches!(op, NetworkOp::Abort(a) if *a == id)),
                "repair must abort the stale synthetic"
            );
            assert!(
                ops.iter().any(|op| matches!(op, NetworkOp::Inject(_))),
                "repair must re-flood something"
            );
            repaired += 1;
        }
        assert!(repaired > 0);
        // Same α, same member set: the synthetic set converges to the same
        // shapes — only the ids moved.
        assert_eq!(synthetic_shapes(&o), before);
        for id in o.synthetic_queries().map(|s| s.id()) {
            assert!(!ids_before.contains(&id), "repair must issue fresh ids");
        }
        assert_eq!(o.stats().reoptimizations, repaired);
        assert_invariants(&o);
    }

    #[test]
    fn terminate_and_reinsert_same_set_converges_to_same_shapes() {
        let mut o = opt(0.6);
        let queries: Vec<Query> = REPAIR_SET
            .iter()
            .enumerate()
            .map(|(i, t)| q(1 + i as u64, t))
            .collect();
        for query in &queries {
            o.insert(query.clone()).unwrap();
        }
        let before = synthetic_shapes(&o);

        for query in &queries {
            o.terminate(query.id());
        }
        assert_eq!(o.synthetic_count(), 0);
        assert_eq!(o.user_count(), 0);

        for query in &queries {
            o.insert(query.clone()).unwrap();
        }
        assert_eq!(synthetic_shapes(&o), before);
        assert_invariants(&o);
    }

    #[test]
    fn reoptimize_unknown_synthetic_is_noop() {
        let mut o = opt(0.6);
        o.insert(q(1, "select light epoch duration 2048")).unwrap();
        assert!(o.reoptimize(QueryId(999)).is_empty());
        assert_eq!(o.stats().reoptimizations, 0);
    }

    #[test]
    fn benefit_ratio_grows_with_similarity() {
        let mut o = opt(0.6);
        o.insert(q(1, "select light epoch duration 2048")).unwrap();
        assert!(o.benefit_ratio().abs() < 1e-9, "single query: no benefit");
        for i in 2..=8 {
            o.insert(q(i, "select light epoch duration 2048")).unwrap();
        }
        // 8 identical queries served by 1 synthetic: ratio = 7/8.
        assert!((o.benefit_ratio() - 7.0 / 8.0).abs() < 1e-9);
        assert_eq!(o.synthetic_count(), 1);
    }

    #[test]
    fn many_random_inserts_and_terminates_keep_invariants() {
        let mut o = opt(0.6);
        let texts = [
            "select light where 100<light<300 epoch duration 4096",
            "select light where 150<light<500 epoch duration 4096",
            "select light, temp epoch duration 2048",
            "select max(light) epoch duration 8192",
            "select min(temp) where 0<=temp<=500 epoch duration 4096",
            "select nodeid, light epoch duration 6144",
            "select max(light) epoch duration 4096",
            "select humidity where 20<=humidity<=80 epoch duration 2048",
        ];
        for (i, t) in texts.iter().enumerate() {
            o.insert(q(i as u64, t)).unwrap();
            assert_invariants(&o);
        }
        for i in [2u64, 0, 5, 7] {
            o.terminate(QueryId(i));
            assert_invariants(&o);
        }
        assert_eq!(o.user_count(), 4);
        // Everything still answered.
        for i in [1u64, 3, 4, 6] {
            assert!(o.mapping(QueryId(i)).is_some());
        }
    }

    fn opt_with(options: OptimizerOptions) -> BaseStationOptimizer {
        let model = CostModel::new(
            1.0,
            0.0,
            LevelStats::from_counts([4, 4, 4]),
            SelectivityEstimator::uniform(),
        );
        BaseStationOptimizer::with_options(model, options)
    }

    /// Pins the no-reinsert ablation bug: after a merge, a synthetic query
    /// *covering* the merged probe must still absorb it — the ablation only
    /// suppresses further merges. The buggy version cleared `best` outright
    /// and installed a duplicate synthetic next to the covering one.
    ///
    /// Coverage after a merge is unreachable through the public `insert`
    /// (a synthetic covering the merged probe would have covered the
    /// original probe at the first iteration), so the test enters the loop
    /// in the post-merge state via `insert_probe_from`.
    #[test]
    fn no_reinsert_ablation_still_attaches_covered_probe() {
        let mut o = opt_with(OptimizerOptions {
            reinsert: false,
            ..OptimizerOptions::default()
        });
        o.insert(q(1, "select light, temp epoch duration 2048"))
            .unwrap();
        let covering = o.mapping(QueryId(1)).unwrap();

        let query = q(2, "select light epoch duration 4096");
        o.user_queries.insert(query.id(), query.clone());
        o.stats.inserted += 1;
        let mut probe = SyntheticQuery::new(query.with_id(o.fresh_syn_id()));
        probe.add_member(query.id(), &Demand::of(&query));
        o.insert_probe_from(probe, 1); // pretend one merge already happened

        assert_eq!(
            o.synthetic_count(),
            1,
            "covered probe must attach, not install a duplicate synthetic"
        );
        assert_eq!(o.mapping(QueryId(2)), Some(covering));
        assert_invariants(&o);
    }

    /// The candidate index must reach the same decisions as the exhaustive
    /// scan — same synthetic shapes, same user→synthetic structure, same
    /// network operations — while actually pruning candidates.
    #[test]
    fn indexed_admission_matches_exhaustive_scan() {
        let texts = [
            // 4096 vs 6144 are epoch-incomparable, so two synthetics coexist
            // and later 4096-class arrivals exercise the epoch pruning.
            "select light epoch duration 4096",
            "select temp epoch duration 6144",
            "select light where 100<light<300 epoch duration 4096",
            "select max(light) epoch duration 8192",
            "select min(temp) where 0<=temp<=200 epoch duration 6144",
            "select humidity where 20<=humidity<=80 epoch duration 2048",
            "select max(humidity) where 0<=humidity<=100 epoch duration 4096",
            "select nodeid epoch duration 12288",
            "select temp epoch duration 12288",
            "select light epoch duration 6144",
        ];
        let mut indexed = opt(0.6);
        let mut exhaustive = opt_with(OptimizerOptions {
            exhaustive: true,
            ..OptimizerOptions::default()
        });
        for (i, t) in texts.iter().enumerate() {
            let a = indexed.insert(q(i as u64, t)).unwrap();
            let b = exhaustive.insert(q(i as u64, t)).unwrap();
            assert_eq!(a, b, "insert {i} diverged");
            assert_eq!(synthetic_shapes(&indexed), synthetic_shapes(&exhaustive));
        }
        for i in [2u64, 0, 8, 5] {
            let a = indexed.remove(QueryId(i));
            let b = exhaustive.remove(QueryId(i));
            assert_eq!(a, b, "remove {i} diverged");
            assert_eq!(synthetic_shapes(&indexed), synthetic_shapes(&exhaustive));
            assert_invariants(&indexed);
        }
        let stats = indexed.index_stats();
        assert!(stats.pruned > 0, "index should have pruned something");
        assert_eq!(exhaustive.index_stats().pruned, 0);
        assert!(stats.scanned < exhaustive.index_stats().scanned);
    }

    /// Same equivalence with node positions registered, so the region-grid
    /// dimension of the index is live.
    #[test]
    fn indexed_admission_matches_exhaustive_scan_with_regions() {
        let positions: Vec<(f64, f64)> = (0..64)
            .map(|i| ((i % 8) as f64 * 10.0, (i / 8) as f64 * 10.0))
            .collect();
        let build = |exhaustive: bool| {
            let model = CostModel::new(
                1.0,
                0.0,
                LevelStats::from_counts([4, 4, 4]),
                SelectivityEstimator::uniform(),
            )
            .with_positions(positions.clone());
            BaseStationOptimizer::with_options(
                model,
                OptimizerOptions {
                    exhaustive,
                    ..OptimizerOptions::default()
                },
            )
        };
        let mut indexed = build(false);
        let mut exhaustive = build(true);
        let boxed = |id: u64, x0: f64, y0: f64, side: f64| {
            q(id, "select light epoch duration 4096")
                .with_region(ttmqo_query::Region::new(x0, y0, x0 + side, y0 + side).unwrap())
        };
        let queries = [
            boxed(0, 0.0, 0.0, 20.0),
            boxed(1, 5.0, 5.0, 20.0),                 // overlaps 0
            boxed(2, 60.0, 60.0, 10.0),               // far corner
            boxed(3, 58.0, 58.0, 12.0),               // overlaps 2
            q(4, "select light epoch duration 4096"), // region-free
            boxed(5, 30.0, 30.0, 15.0),
        ];
        for query in &queries {
            let a = indexed.insert(query.clone()).unwrap();
            let b = exhaustive.insert(query.clone()).unwrap();
            assert_eq!(a, b);
            assert_eq!(synthetic_shapes(&indexed), synthetic_shapes(&exhaustive));
        }
        for i in [1u64, 2, 4] {
            assert_eq!(indexed.remove(QueryId(i)), exhaustive.remove(QueryId(i)));
            assert_eq!(synthetic_shapes(&indexed), synthetic_shapes(&exhaustive));
        }
        assert!(indexed.index_stats().pruned > 0);
    }

    #[test]
    fn insert_batch_converges_to_sequential_shapes() {
        let queries: Vec<Query> = REPAIR_SET
            .iter()
            .enumerate()
            .map(|(i, t)| q(1 + i as u64, t))
            .collect();
        let mut sequential = opt(0.6);
        for query in &queries {
            sequential.insert(query.clone()).unwrap();
        }
        let mut batched = opt(0.6);
        let ops = batched.insert_batch(queries.clone()).unwrap();
        assert_eq!(synthetic_shapes(&batched), synthetic_shapes(&sequential));
        assert_eq!(batched.user_count(), queries.len());
        assert_invariants(&batched);
        // Net ops: only injects for the final synthetic set — the
        // intermediate install/merge churn never reaches the network.
        assert_eq!(ops.len(), batched.synthetic_count());
        assert!(ops.iter().all(|op| matches!(op, NetworkOp::Inject(_))));
    }

    #[test]
    fn insert_batch_rejects_duplicates_atomically() {
        let mut o = opt(0.6);
        o.insert(q(7, "select light epoch duration 2048")).unwrap();
        let err = o
            .insert_batch(vec![
                q(1, "select temp epoch duration 2048"),
                q(7, "select temp epoch duration 4096"), // live already
            ])
            .unwrap_err();
        assert_eq!(err, InsertError::DuplicateId(QueryId(7)));
        let err = o
            .insert_batch(vec![
                q(2, "select temp epoch duration 2048"),
                q(2, "select light epoch duration 4096"), // dup within batch
            ])
            .unwrap_err();
        assert_eq!(err, InsertError::DuplicateId(QueryId(2)));
        assert_eq!(o.user_count(), 1, "failed batches must admit nothing");
        assert_eq!(o.synthetic_count(), 1);
        assert_invariants(&o);
    }

    #[test]
    fn insert_batch_of_covered_arrivals_is_absorbed() {
        let mut o = opt(0.6);
        o.insert(q(1, "select light, temp epoch duration 2048"))
            .unwrap();
        let ops = o
            .insert_batch(vec![
                q(2, "select light epoch duration 4096"),
                q(3, "select temp epoch duration 2048"),
            ])
            .unwrap();
        assert!(ops.is_empty());
        assert_eq!(o.stats().absorbed_insertions, 2);
        assert_eq!(o.synthetic_count(), 1);
        assert_invariants(&o);
    }

    #[test]
    fn empty_insert_batch_is_a_noop() {
        let mut o = opt(0.6);
        assert!(o.insert_batch(Vec::new()).unwrap().is_empty());
        assert_eq!(o.stats().absorbed_insertions, 0);
    }

    /// Full drain: every departure processed, the optimizer holds nothing —
    /// no synthetics, no user maps, an empty candidate index — and a fresh
    /// admission cycle starts clean.
    #[test]
    fn drain_to_empty_clears_all_state_and_readmits() {
        let mut o = opt(0.6);
        let queries: Vec<Query> = REPAIR_SET
            .iter()
            .enumerate()
            .map(|(i, t)| q(1 + i as u64, t))
            .collect();
        o.insert_batch(queries.clone()).unwrap();
        let shapes = synthetic_shapes(&o);

        let mut aborts = 0;
        for query in &queries {
            aborts += o
                .remove(query.id())
                .iter()
                .filter(|op| matches!(op, NetworkOp::Abort(_)))
                .count();
        }
        assert_eq!(o.synthetic_count(), 0);
        assert_eq!(o.user_count(), 0);
        assert_eq!(o.index_len(), 0, "drained index must be empty");
        assert!(aborts > 0, "draining must abort the running synthetics");
        // Epoch-GCD over the drained (empty) set must be `None`, not panic.
        assert!(
            ttmqo_query::EpochDuration::gcd_all(o.synthetic_queries().map(|s| s.epoch())).is_none()
        );

        o.insert_batch(queries).unwrap();
        assert_eq!(synthetic_shapes(&o), shapes, "re-admission must converge");
        assert_invariants(&o);
    }

    /// Optimizer memory must track the *live* query count, not total
    /// arrivals: churn far more queries than are ever concurrently live and
    /// check the maps never grow past the live set.
    #[test]
    fn churned_optimizer_memory_tracks_live_queries() {
        let mut o = opt(0.6);
        let texts = [
            "select light where 100<light<300 epoch duration 4096",
            "select light, temp epoch duration 2048",
            "select max(light) epoch duration 8192",
            "select temp epoch duration 12288",
        ];
        for round in 0u64..50 {
            let id = round;
            o.insert(q(id, texts[(round % 4) as usize])).unwrap();
            if round >= 4 {
                o.remove(QueryId(id - 4));
            }
            assert!(o.user_count() <= 5);
            assert!(o.synthetic_count() <= o.user_count());
            assert_eq!(o.index_len(), o.synthetic_count());
            assert_invariants(&o);
        }
        assert_eq!(o.stats().inserted, 50);
        assert_eq!(o.stats().terminated, 46);
        assert_eq!(o.user_count(), 4);
    }
}
