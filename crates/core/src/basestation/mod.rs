//! Tier 1 — base-station optimization (§3.1): cost model, synthetic queries,
//! the greedy insertion / adaptive termination optimizer, and result mapping.

mod cost;
mod index;
mod mapper;
mod optimizer;
mod synthetic;

pub use cost::CostModel;
pub use mapper::{map_epoch_answer, map_epoch_answer_at, map_expected_epoch, EpochOutcome};
pub use optimizer::{
    BaseStationOptimizer, IndexStats, InsertError, NetworkOp, OptimizerOptions, OptimizerStats,
    SYNTHETIC_ID_BASE,
};
pub use synthetic::{Demand, SyntheticQuery};
