//! The TTMQO in-network node application — tier 2 (§3.2).
//!
//! Implements all three in-network mechanisms:
//!
//! * **Sharing over time** (§3.2.1): one node clock firing at the GCD of all
//!   running epoch durations, epoch starts aligned to duration multiples, so
//!   every query due at a firing shares a single sample acquisition.
//! * **Sharing over space** (§3.2.2): query floods piggyback has-data bits to
//!   build a DAG; each result message dynamically picks parents that carry
//!   data for the same queries (multicast with split responsibility when one
//!   parent cannot cover all); one shared frame answers every due query.
//! * **Sleep mode**: a node whose data satisfies no query and that relayed
//!   nothing in the current collection window sleeps until the next firing,
//!   announcing itself with a one-hop wake-up broadcast when its data
//!   qualifies again.

use crate::innetwork::dag::DagState;
use crate::innetwork::payload::{PartialEntry, RowEntry, TtmqoPayload};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use ttmqo_query::{
    AggValue, EpochAnswer, EpochDuration, PartialAgg, Query, QueryId, Readings, Row, Selection,
};
use ttmqo_sim::{Ctx, Destination, MsgKind, NodeApp, NodeId, ProvenanceId, TraceEvent};
use ttmqo_tinydb::{Command, Output, Srt};

const K_CLOCK: u64 = 0;
const K_SLOT: u64 = 1;
const K_CLOSE: u64 = 2;
const K_FLOOD_QUERY: u64 = 3;
const K_FLOOD_ABORT: u64 = 4;
const K_SLEEP_CHECK: u64 = 5;

fn key(kind: u64, qid: QueryId, extra: u64) -> u64 {
    (extra << 32) | ((qid.0 & 0x0FFF_FFFF) << 4) | kind
}

fn key_parts(key: u64) -> (u64, QueryId, u64) {
    (key & 0xF, QueryId((key >> 4) & 0x0FFF_FFFF), key >> 32)
}

/// Configuration of the in-network tier.
#[derive(Debug, Clone)]
pub struct TtmqoConfig {
    /// Length of one aggregation transmission slot, ms.
    pub slot_ms: u64,
    /// Maximum random jitter on floods and slots, ms.
    pub jitter_ms: u64,
    /// Whether idle nodes sleep between firings (§3.2.2's sleep mode).
    pub sleep: bool,
    /// Whether parents are chosen dynamically per message (§3.2.2). When
    /// false, every message follows the fixed link-quality tree (ablation:
    /// shared messages without query-aware routing).
    pub dynamic_parents: bool,
    /// Whether rebooted nodes may recover query definitions from neighbours
    /// (a node that hears traffic for an unknown query broadcasts a request;
    /// any neighbour that knows the query shares it). Extension beyond the
    /// paper, which leaves node failures to future work.
    pub query_recovery: bool,
    /// Whether the Semantic Routing Tree prunes dissemination of queries
    /// with `nodeid` predicates (§3.2.2 mentions SRT as the alternative to
    /// flooding for node-id based queries; off by default).
    pub srt: bool,
    /// Self-healing: number of consecutive *failed* unicast sends (whole
    /// retry budget exhausted with no link-layer acknowledgement) after
    /// which a parent is presumed dead and excluded from parent election.
    /// Hearing any frame from it (including overheard ones) resets the
    /// counter and revives it. `0` disables the detector (the default) —
    /// routing is then byte-identical to the pre-fault-subsystem behaviour.
    /// Extension beyond the paper, which leaves node failures to future
    /// work.
    pub dead_parent_after: u32,
}

impl Default for TtmqoConfig {
    fn default() -> Self {
        TtmqoConfig {
            slot_ms: 64,
            jitter_ms: 24,
            sleep: true,
            dynamic_parents: true,
            query_recovery: true,
            srt: false,
            dead_parent_after: 0,
        }
    }
}

/// The TTMQO in-network node application.
///
/// Accepts the same [`Command`]s and emits the same [`Output`]s as the
/// baseline [`TinyDbApp`](ttmqo_tinydb::TinyDbApp), so runners can swap the
/// two; the queries it executes are whatever the first tier injects (raw user
/// queries for the in-network-only strategy, synthetic queries for the full
/// two-tier scheme).
#[derive(Debug)]
pub struct TtmqoApp {
    config: TtmqoConfig,
    queries: BTreeMap<QueryId, Query>,
    seen_query_floods: BTreeSet<QueryId>,
    seen_abort_floods: BTreeSet<QueryId>,
    dag: DagState,
    /// Bumped on every query-set change to invalidate stale clock timers.
    clock_gen: u64,
    /// Queries this node's latest readings satisfy.
    has_data: BTreeSet<QueryId>,
    /// Whether any message was relayed since the last firing (sleep gate).
    relayed_recently: bool,
    /// Whether this node actually slept during the last inter-firing gap.
    slept: bool,
    /// Unknown query ids we already asked the neighbourhood about.
    requested_queries: BTreeSet<QueryId>,
    /// Queries this node only forwards (SRT-pruned: our id can never match),
    /// kept for the flood-relay timer.
    forward_only: BTreeMap<QueryId, Query>,
    /// Semantic routing tree (built lazily when `config.srt` is on).
    srt: Option<Srt>,
    /// Epoch start of the last no-route resignation broadcast, so an
    /// orphaned node announces at most once per epoch.
    last_no_route_ms: Option<u64>,
    /// Aggregation partials per (query, epoch-start ms).
    agg_buffers: HashMap<(QueryId, u64), Vec<Option<PartialAgg>>>,
    /// Base station only: acquisition rows per (query, epoch-start ms).
    row_buffers: HashMap<(QueryId, u64), Vec<Row>>,
}

impl TtmqoApp {
    /// Creates an in-network node with the given configuration.
    pub fn new(config: TtmqoConfig) -> Self {
        TtmqoApp {
            config,
            queries: BTreeMap::new(),
            seen_query_floods: BTreeSet::new(),
            seen_abort_floods: BTreeSet::new(),
            dag: DagState::default(),
            clock_gen: 0,
            has_data: BTreeSet::new(),
            relayed_recently: false,
            slept: false,
            requested_queries: BTreeSet::new(),
            forward_only: BTreeMap::new(),
            srt: None,
            last_no_route_ms: None,
            agg_buffers: HashMap::new(),
            row_buffers: HashMap::new(),
        }
    }

    /// Currently installed queries (for tests and inspection).
    pub fn installed_queries(&self) -> impl Iterator<Item = &Query> {
        self.queries.values()
    }

    /// Queries this node's latest readings satisfy (for tests).
    pub fn has_data_for(&self) -> impl Iterator<Item = QueryId> + '_ {
        self.has_data.iter().copied()
    }

    /// Read-only view of the routing DAG state (for tests and diagnostics).
    pub fn dag(&self) -> &DagState {
        &self.dag
    }

    fn gcd_epoch(&self) -> Option<EpochDuration> {
        EpochDuration::gcd_all(self.queries.values().map(|q| q.epoch()))
    }

    /// (Re)arms the shared clock after any query-set change (§3.2.1: "we
    /// (re)set the node's clock to fire at the GCD of the epoch durations of
    /// all the queries").
    fn rearm_clock(&mut self, ctx: &mut Ctx<'_, TtmqoPayload, Output>) {
        self.clock_gen += 1;
        let Some(gcd) = self.gcd_epoch() else { return };
        let now = ctx.now().as_ms();
        let next = gcd.next_fire_at(now + 1);
        ctx.set_timer(next - now, key(K_CLOCK, QueryId(0), self.clock_gen));
        ctx.wake();
    }

    fn install(&mut self, ctx: &mut Ctx<'_, TtmqoPayload, Output>, query: Query) {
        if self.queries.contains_key(&query.id()) {
            return;
        }
        self.queries.insert(query.id(), query);
        self.rearm_clock(ctx);
    }

    fn uninstall(&mut self, ctx: &mut Ctx<'_, TtmqoPayload, Output>, qid: QueryId) {
        if self.queries.remove(&qid).is_none() {
            return;
        }
        self.has_data.remove(&qid);
        self.forward_only.remove(&qid);
        self.dag.forget_query(qid);
        self.agg_buffers.retain(|(id, _), _| *id != qid);
        self.row_buffers.retain(|(id, _), _| *id != qid);
        self.rearm_clock(ctx);
    }

    fn relay_query_flood(&mut self, ctx: &mut Ctx<'_, TtmqoPayload, Output>, query: &Query) {
        if !self.seen_query_floods.insert(query.id()) {
            return;
        }
        let (forwards, matches) = if self.config.srt && !ctx.is_base_station() {
            let node = ctx.node();
            let srt = self.srt.get_or_insert_with(|| Srt::build(ctx.topology()));
            (srt.forwards(node, query), srt.node_matches(node, query))
        } else {
            (true, true)
        };
        if forwards {
            let jitter = 1 + ctx.rand_u64() % self.config.jitter_ms.max(1);
            ctx.set_timer(jitter, key(K_FLOOD_QUERY, query.id(), 0));
        }
        if matches || ctx.is_base_station() {
            self.install(ctx, query.clone());
        } else if forwards {
            // SRT-pruned: we only relay the flood; our id can never satisfy
            // the query, so it must not drive our sampling clock.
            self.forward_only.insert(query.id(), query.clone());
        }
    }

    fn relay_abort_flood(&mut self, ctx: &mut Ctx<'_, TtmqoPayload, Output>, qid: QueryId) {
        if !self.seen_abort_floods.insert(qid) {
            return;
        }
        let jitter = 1 + ctx.rand_u64() % self.config.jitter_ms.max(1);
        ctx.set_timer(jitter, key(K_FLOOD_ABORT, qid, 0));
        self.uninstall(ctx, qid);
    }

    /// Collection window: how long after a firing the base station waits
    /// before emitting, and how long an idle node stays awake to relay.
    fn window_ms(&self, ctx: &Ctx<'_, TtmqoPayload, Output>) -> u64 {
        (ctx.topology().max_level() as u64 + 1) * self.config.slot_ms + self.config.jitter_ms + 32
    }

    /// Whether this node's physical position satisfies the query's region
    /// clause.
    fn in_region(ctx: &Ctx<'_, TtmqoPayload, Output>, query: &Query) -> bool {
        query.region().is_none_or(|r| {
            let pos = ctx.topology().position(ctx.node());
            r.contains(pos.x, pos.y)
        })
    }

    fn slot_delay_ms(&self, ctx: &mut Ctx<'_, TtmqoPayload, Output>) -> u64 {
        let depth_from_bottom = (ctx.topology().max_level() - ctx.level()) as u64;
        depth_from_bottom * self.config.slot_ms + ctx.rand_u64() % self.config.jitter_ms.max(1)
    }

    /// Handles one firing of the shared clock at (aligned) time `t_ms`.
    fn handle_clock(&mut self, ctx: &mut Ctx<'_, TtmqoPayload, Output>, t_ms: u64) {
        self.relayed_recently = false;
        let due: Vec<Query> = self
            .queries
            .values()
            .filter(|q| q.epoch().fires_at(t_ms))
            .cloned()
            .collect();
        if due.is_empty() {
            self.maybe_sleep(ctx, t_ms);
            return;
        }
        if ctx.trace_enabled() {
            ctx.trace(TraceEvent::EpochFire {
                node: ctx.node(),
                epoch_ms: t_ms,
                due: due.iter().map(|q| q.id()).collect(),
            });
        }
        let epoch_idx = t_ms / ttmqo_query::BASE_EPOCH_MS;

        if ctx.is_base_station() {
            // The base station senses nothing; it closes each due query's
            // epoch after the collection window.
            let window = self.window_ms(ctx);
            for q in &due {
                ctx.set_timer(window, key(K_CLOSE, q.id(), epoch_idx));
            }
            return;
        }

        // §3.2.1 — shared data acquisition: sample the union of the due
        // queries' attributes exactly once (region-excluded queries can
        // never match here, so their attributes are not worth sampling).
        let mut union_attrs: Vec<ttmqo_query::Attribute> = Vec::new();
        for q in &due {
            if Self::in_region(ctx, q) {
                union_attrs.extend(q.sampled_attributes());
            }
        }
        union_attrs.sort_unstable();
        union_attrs.dedup();
        let mut readings = Readings::new();
        for attr in union_attrs {
            let v = ctx.read_sensor(attr);
            readings.set(attr, v);
        }

        let had_data = !self.has_data.is_empty();
        let mut acq_matches: BTreeSet<QueryId> = BTreeSet::new();
        let mut agg_matches: Vec<Query> = Vec::new();
        for q in &due {
            let matches = Self::in_region(ctx, q)
                && q.predicates()
                    .matches_with(|attr| readings.get(attr).unwrap_or(f64::NAN));
            if matches {
                self.has_data.insert(q.id());
                match q.selection() {
                    Selection::Attributes(_) => {
                        acq_matches.insert(q.id());
                    }
                    Selection::Aggregates(_) => agg_matches.push(q.clone()),
                }
            } else {
                self.has_data.remove(&q.id());
            }
        }

        // Shared-acquisition hit: one sample batch served several queries.
        if ctx.trace_enabled() && (!acq_matches.is_empty() || !agg_matches.is_empty()) {
            ctx.trace(TraceEvent::SharedAcquisition {
                node: ctx.node(),
                epoch_ms: t_ms,
                acq: acq_matches.iter().copied().collect(),
                agg: agg_matches.iter().map(|q| q.id()).collect(),
            });
        }

        // Wake-up announcement (§3.2.2): only after an *actual* sleep, and
        // only when no result transmission at this firing will announce us
        // anyway — neighbours learn has-data sets by overhearing result
        // frames, so an explicit broadcast is needed only for data that
        // serves queries not due right now.
        let transmits_now = !acq_matches.is_empty() || !agg_matches.is_empty();
        if self.config.sleep
            && self.slept
            && !had_data
            && !self.has_data.is_empty()
            && !transmits_now
        {
            let payload = TtmqoPayload::Wakeup {
                has_data: self.has_data.iter().copied().collect(),
            };
            let bytes = payload.wire_size();
            ctx.send(Destination::Broadcast, MsgKind::Wakeup, bytes, payload);
        }
        self.slept = false;

        // Shared acquisition result: one frame answers every matched
        // acquisition query.
        if !acq_matches.is_empty() {
            let mut attrs: Vec<ttmqo_query::Attribute> = Vec::new();
            for qid in &acq_matches {
                if let Selection::Attributes(a) = self.queries[qid].selection() {
                    attrs.extend(a.iter().copied());
                }
            }
            attrs.sort_unstable();
            attrs.dedup();
            let entry = RowEntry {
                node: ctx.node().0,
                qids: acq_matches.clone(),
                readings: readings.project(&attrs),
            };
            self.send_shared_rows(ctx, t_ms, vec![entry], &acq_matches);
        }

        // Shared aggregation: seed own partials, then transmit at this
        // node's TAG slot (deeper levels earlier).
        for q in &agg_matches {
            if let Selection::Aggregates(aggs) = q.selection() {
                let seeded: Vec<Option<PartialAgg>> = aggs
                    .iter()
                    .map(|&(op, attr)| readings.get(attr).map(|v| op.seed(v)))
                    .collect();
                merge_into(
                    self.agg_buffers
                        .entry((q.id(), t_ms))
                        .or_insert_with(|| vec![None; aggs.len()]),
                    &seeded,
                );
            }
        }
        if due.iter().any(|q| q.is_aggregation()) {
            let delay = self.slot_delay_ms(ctx).max(1);
            ctx.set_timer(delay, key(K_SLOT, QueryId(0), epoch_idx));
        }

        self.maybe_sleep(ctx, t_ms);
    }

    /// Schedules the post-window sleep check.
    fn maybe_sleep(&mut self, ctx: &mut Ctx<'_, TtmqoPayload, Output>, t_ms: u64) {
        if !self.config.sleep || ctx.is_base_station() || self.queries.is_empty() {
            return;
        }
        let window = self.window_ms(ctx);
        let epoch_idx = t_ms / ttmqo_query::BASE_EPOCH_MS;
        ctx.set_timer(window, key(K_SLEEP_CHECK, QueryId(0), epoch_idx));
    }

    fn handle_sleep_check(&mut self, ctx: &mut Ctx<'_, TtmqoPayload, Output>) {
        if !self.has_data.is_empty() || self.relayed_recently || self.queries.is_empty() {
            return;
        }
        let Some(gcd) = self.gcd_epoch() else { return };
        let now = ctx.now().as_ms();
        let next = gcd.next_fire_at(now + 1);
        // Wake a little early so the radio is up when the epoch fires.
        let nap = next.saturating_sub(now).saturating_sub(8);
        if nap > 0 {
            self.slept = true;
            ctx.sleep_for(nap);
        }
    }

    /// Routes a message's query set to parents: dynamically via the DAG, or
    /// to the fixed link-quality parent when `dynamic_parents` is off.
    fn route(
        &self,
        ctx: &Ctx<'_, TtmqoPayload, Output>,
        qids: &BTreeSet<QueryId>,
    ) -> Vec<(NodeId, BTreeSet<QueryId>)> {
        if self.config.dynamic_parents {
            self.dag.choose_parents(qids)
        } else {
            match ctx.topology().default_parent(ctx.node()) {
                Some(p) => vec![(p, qids.clone())],
                None => Vec::new(),
            }
        }
    }

    /// Sends (or forwards) a shared acquisition frame toward the base
    /// station via dynamically chosen parents.
    fn send_shared_rows(
        &mut self,
        ctx: &mut Ctx<'_, TtmqoPayload, Output>,
        epoch_ms: u64,
        entries: Vec<RowEntry>,
        qids: &BTreeSet<QueryId>,
    ) {
        let parents = self.route(ctx, qids);
        if parents.is_empty() {
            // Data to send but no live route toward the base station.
            if self.dag.is_orphaned() {
                ctx.record_orphaned();
                self.announce_no_route(ctx, epoch_ms);
            }
            return;
        }
        let assignments: Vec<(NodeId, Vec<QueryId>)> = parents
            .iter()
            .map(|(n, qs)| (*n, qs.iter().copied().collect()))
            .collect();
        let dest = if parents.len() == 1 {
            Destination::Unicast(parents[0].0)
        } else {
            Destination::Multicast(parents.iter().map(|(n, _)| *n).collect())
        };
        if ctx.trace_enabled() {
            ctx.trace(TraceEvent::ResultHop {
                from: ctx.node(),
                to: parents.iter().map(|(n, _)| *n).collect(),
                epoch_ms,
                prov: entries
                    .iter()
                    .map(|e| ProvenanceId::new(NodeId(e.node), epoch_ms))
                    .collect(),
                qids: qids.iter().copied().collect(),
                origin: entries.iter().all(|e| e.node == ctx.node().0),
            });
        }
        let payload = TtmqoPayload::SharedRows {
            epoch_ms,
            entries,
            assignments,
        };
        let bytes = payload.wire_size();
        ctx.send(dest, MsgKind::Result, bytes, payload);
    }

    /// Broadcasts (at most once per epoch) that this node is orphaned — no
    /// live route toward the base station — so lower neighbours re-elect
    /// around it instead of feeding a black hole that acknowledges their
    /// frames and then drops the data.
    fn announce_no_route(&mut self, ctx: &mut Ctx<'_, TtmqoPayload, Output>, epoch_ms: u64) {
        if self.last_no_route_ms == Some(epoch_ms) {
            return;
        }
        self.last_no_route_ms = Some(epoch_ms);
        if ctx.trace_enabled() {
            ctx.trace(TraceEvent::NoRouteResignation {
                node: ctx.node(),
                epoch_ms,
            });
        }
        let payload = TtmqoPayload::NoRoute;
        let bytes = payload.wire_size();
        ctx.send(Destination::Broadcast, MsgKind::Maintenance, bytes, payload);
    }

    /// Sends the shared aggregation frame for one epoch from the buffers.
    fn flush_partials(&mut self, ctx: &mut Ctx<'_, TtmqoPayload, Output>, epoch_ms: u64) {
        let keys: Vec<(QueryId, u64)> = self
            .agg_buffers
            .keys()
            .filter(|(_, e)| *e == epoch_ms)
            .copied()
            .collect();
        if keys.is_empty() {
            return;
        }
        let mut entries = Vec::new();
        let mut qids = BTreeSet::new();
        for k in keys {
            let partials = self.agg_buffers.remove(&k).expect("key just listed");
            if partials.iter().all(Option::is_none) {
                continue;
            }
            qids.insert(k.0);
            entries.push(PartialEntry { qid: k.0, partials });
        }
        if entries.is_empty() {
            return;
        }
        let parents = self.route(ctx, &qids);
        if parents.is_empty() {
            if self.dag.is_orphaned() {
                ctx.record_orphaned();
                self.announce_no_route(ctx, epoch_ms);
            }
            return;
        }
        let assignments: Vec<(NodeId, Vec<QueryId>)> = parents
            .iter()
            .map(|(n, qs)| (*n, qs.iter().copied().collect()))
            .collect();
        let dest = if parents.len() == 1 {
            Destination::Unicast(parents[0].0)
        } else {
            Destination::Multicast(parents.iter().map(|(n, _)| *n).collect())
        };
        if ctx.trace_enabled() {
            // Aggregation partials carry no per-origin identity (TAG merges
            // it away), so the provenance list is empty.
            ctx.trace(TraceEvent::ResultHop {
                from: ctx.node(),
                to: parents.iter().map(|(n, _)| *n).collect(),
                epoch_ms,
                prov: Vec::new(),
                qids: qids.iter().copied().collect(),
                origin: false,
            });
        }
        let payload = TtmqoPayload::SharedPartials {
            epoch_ms,
            entries,
            assignments,
        };
        let bytes = payload.wire_size();
        ctx.send(dest, MsgKind::Result, bytes, payload);
    }

    fn handle_close(
        &mut self,
        ctx: &mut Ctx<'_, TtmqoPayload, Output>,
        qid: QueryId,
        epoch_ms: u64,
    ) {
        let Some(query) = self.queries.get(&qid) else {
            self.agg_buffers.remove(&(qid, epoch_ms));
            self.row_buffers.remove(&(qid, epoch_ms));
            return;
        };
        let answer = match query.selection() {
            Selection::Attributes(_) => {
                let mut rows = self
                    .row_buffers
                    .remove(&(qid, epoch_ms))
                    .unwrap_or_default();
                rows.sort_by_key(|r| r.node);
                rows.dedup_by_key(|r| r.node);
                EpochAnswer::Rows(rows)
            }
            Selection::Aggregates(aggs) => {
                let partials = self
                    .agg_buffers
                    .remove(&(qid, epoch_ms))
                    .unwrap_or_default();
                let values: Vec<AggValue> = aggs
                    .iter()
                    .zip(partials.iter().chain(std::iter::repeat(&None)))
                    .filter_map(|(&(op, attr), p)| {
                        p.as_ref().map(|p| AggValue {
                            op,
                            attr,
                            value: p.finalize(),
                        })
                    })
                    .collect();
                EpochAnswer::Aggregates(values)
            }
        };
        ctx.emit(Output::Answer {
            qid,
            epoch_ms,
            answer,
        });
    }

    /// Failure recovery: ask the neighbourhood about query ids we hear
    /// traffic for but do not know (at most once per id per reboot).
    fn request_unknown_queries<'q, I: IntoIterator<Item = &'q QueryId>>(
        &mut self,
        ctx: &mut Ctx<'_, TtmqoPayload, Output>,
        qids: I,
    ) {
        if !self.config.query_recovery {
            return;
        }
        for &qid in qids {
            // Never request a query whose flood we already saw: either we
            // installed it, or SRT deliberately pruned it for this node.
            if self.queries.contains_key(&qid)
                || self.forward_only.contains_key(&qid)
                || self.seen_query_floods.contains(&qid)
                || self.seen_abort_floods.contains(&qid)
                || !self.requested_queries.insert(qid)
            {
                continue;
            }
            let payload = TtmqoPayload::QueryRequest(qid);
            let bytes = payload.wire_size();
            ctx.send(Destination::Broadcast, MsgKind::Maintenance, bytes, payload);
        }
    }

    /// My share of a split-responsibility assignment.
    fn my_assignment(
        ctx: &Ctx<'_, TtmqoPayload, Output>,
        assignments: &[(NodeId, Vec<QueryId>)],
    ) -> BTreeSet<QueryId> {
        assignments
            .iter()
            .filter(|(n, _)| *n == ctx.node())
            .flat_map(|(_, qs)| qs.iter().copied())
            .collect()
    }

    fn handle_shared_rows(
        &mut self,
        ctx: &mut Ctx<'_, TtmqoPayload, Output>,
        epoch_ms: u64,
        entries: &[RowEntry],
        assignments: &[(NodeId, Vec<QueryId>)],
    ) {
        let mine = Self::my_assignment(ctx, assignments);
        self.request_unknown_queries(ctx, mine.iter());
        if mine.is_empty() {
            return;
        }
        let kept: Vec<RowEntry> = entries
            .iter()
            .filter_map(|e| {
                let qids: BTreeSet<QueryId> = e.qids.intersection(&mine).copied().collect();
                if qids.is_empty() {
                    None
                } else {
                    Some(RowEntry {
                        node: e.node,
                        qids,
                        readings: e.readings.clone(),
                    })
                }
            })
            .collect();
        if kept.is_empty() {
            return;
        }
        if ctx.is_base_station() {
            for entry in kept {
                if ctx.trace_enabled() {
                    ctx.trace(TraceEvent::ResultDelivered {
                        prov: ProvenanceId::new(NodeId(entry.node), epoch_ms),
                        qids: entry.qids.iter().copied().collect(),
                        epoch_ms,
                    });
                }
                for qid in &entry.qids {
                    let Some(q) = self.queries.get(qid) else {
                        continue;
                    };
                    let Selection::Attributes(attrs) = q.selection() else {
                        continue;
                    };
                    self.row_buffers
                        .entry((*qid, epoch_ms))
                        .or_default()
                        .push(Row {
                            node: entry.node,
                            time_ms: epoch_ms,
                            readings: entry.readings.project(attrs),
                        });
                }
            }
            return;
        }
        self.relayed_recently = true;
        let qids: BTreeSet<QueryId> = kept.iter().flat_map(|e| e.qids.iter().copied()).collect();
        self.send_shared_rows(ctx, epoch_ms, kept, &qids);
    }

    fn handle_shared_partials(
        &mut self,
        ctx: &mut Ctx<'_, TtmqoPayload, Output>,
        epoch_ms: u64,
        entries: &[PartialEntry],
        assignments: &[(NodeId, Vec<QueryId>)],
    ) {
        let mine = Self::my_assignment(ctx, assignments);
        self.request_unknown_queries(ctx, mine.iter());
        if mine.is_empty() {
            return;
        }
        let kept: Vec<&PartialEntry> = entries.iter().filter(|e| mine.contains(&e.qid)).collect();
        if kept.is_empty() {
            return;
        }
        for e in &kept {
            merge_into(
                self.agg_buffers.entry((e.qid, epoch_ms)).or_default(),
                &e.partials,
            );
        }
        if ctx.is_base_station() {
            return;
        }
        self.relayed_recently = true;
        // If our TAG slot for this epoch already passed (late child), flush
        // immediately; otherwise make sure a slot timer exists (a pure relay
        // with no installed aggregation query never armed one at the clock
        // firing). Duplicate fires are harmless: the buffer empties once.
        let my_slot =
            epoch_ms + (ctx.topology().max_level() - ctx.level()) as u64 * self.config.slot_ms;
        let now = ctx.now().as_ms();
        if now > my_slot + self.config.jitter_ms {
            self.flush_partials(ctx, epoch_ms);
        } else {
            let epoch_idx = epoch_ms / ttmqo_query::BASE_EPOCH_MS;
            ctx.set_timer(
                my_slot.saturating_sub(now).max(1),
                key(K_SLOT, QueryId(0), epoch_idx),
            );
        }
    }
}

/// Merges `incoming` into `buffer` element-wise, growing the buffer.
fn merge_into(buffer: &mut Vec<Option<PartialAgg>>, incoming: &[Option<PartialAgg>]) {
    if buffer.len() < incoming.len() {
        buffer.resize(incoming.len(), None);
    }
    for (slot, inc) in buffer.iter_mut().zip(incoming) {
        match (slot.as_mut(), inc) {
            (Some(a), Some(b)) => a.merge(b).expect("aligned partials share operators"),
            (None, Some(b)) => *slot = Some(*b),
            _ => {}
        }
    }
}

impl NodeApp for TtmqoApp {
    type Payload = TtmqoPayload;
    type Command = Command;
    type Output = Output;

    fn on_start(&mut self, ctx: &mut Ctx<'_, TtmqoPayload, Output>) {
        let node = ctx.node();
        let topo = ctx.topology();
        let upper: Vec<(NodeId, f64)> = topo
            .upper_neighbors(node)
            .into_iter()
            .map(|n| (n, topo.link_quality(node, n)))
            .collect();
        self.dag = DagState::new(upper);
        self.dag.set_failure_detector(self.config.dead_parent_after);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, TtmqoPayload, Output>, timer_key: u64) {
        let (kind, qid, extra) = key_parts(timer_key);
        match kind {
            K_CLOCK => {
                if extra != self.clock_gen {
                    return; // stale clock from before a query-set change
                }
                let Some(gcd) = self.gcd_epoch() else { return };
                let now = ctx.now().as_ms();
                let t = now - now % gcd.as_ms();
                ctx.set_timer(gcd.as_ms(), key(K_CLOCK, QueryId(0), self.clock_gen));
                self.handle_clock(ctx, t);
            }
            K_SLOT => {
                self.flush_partials(ctx, extra * ttmqo_query::BASE_EPOCH_MS);
            }
            K_CLOSE => {
                self.handle_close(ctx, qid, extra * ttmqo_query::BASE_EPOCH_MS);
            }
            K_FLOOD_QUERY => {
                let Some(query) = self
                    .queries
                    .get(&qid)
                    .or_else(|| self.forward_only.get(&qid))
                    .cloned()
                else {
                    return;
                };
                // Evaluate whether we have data for the new query so the
                // flood piggybacks fresh information downstream.
                if !ctx.is_base_station() {
                    let mut readings = Readings::new();
                    for attr in query.sampled_attributes() {
                        let v = ctx.read_sensor(attr);
                        readings.set(attr, v);
                    }
                    let matches = Self::in_region(ctx, &query)
                        && query
                            .predicates()
                            .matches_with(|attr| readings.get(attr).expect("attributes sampled"));
                    if matches {
                        self.has_data.insert(qid);
                    } else {
                        self.has_data.remove(&qid);
                    }
                }
                let payload = TtmqoPayload::Query {
                    query,
                    has_data: self.has_data.iter().copied().collect(),
                };
                let bytes = payload.wire_size();
                ctx.send(
                    Destination::Broadcast,
                    MsgKind::QueryPropagation,
                    bytes,
                    payload,
                );
            }
            K_FLOOD_ABORT => {
                let payload = TtmqoPayload::Abort(qid);
                let bytes = payload.wire_size();
                ctx.send(Destination::Broadcast, MsgKind::QueryAbort, bytes, payload);
            }
            K_SLEEP_CHECK => {
                self.handle_sleep_check(ctx);
            }
            _ => unreachable!("unknown timer kind {kind}"),
        }
    }

    fn on_message(
        &mut self,
        ctx: &mut Ctx<'_, TtmqoPayload, Output>,
        from: NodeId,
        _kind: MsgKind,
        payload: &TtmqoPayload,
    ) {
        // Any frame from an upper neighbour is proof of life for the parent
        // failure detector.
        self.dag.record_heard(from);
        match payload {
            TtmqoPayload::Query { query, has_data } => {
                self.dag.record_has_data(from, has_data.iter().copied());
                self.relay_query_flood(ctx, query);
            }
            TtmqoPayload::Abort(qid) => {
                self.relay_abort_flood(ctx, *qid);
            }
            TtmqoPayload::Wakeup { has_data } => {
                self.dag.record_has_data(from, has_data.iter().copied());
            }
            TtmqoPayload::NoRoute => {
                self.dag.record_no_route(from);
            }
            TtmqoPayload::SharedRows {
                epoch_ms,
                entries,
                assignments,
            } => {
                self.handle_shared_rows(ctx, *epoch_ms, entries, assignments);
            }
            TtmqoPayload::SharedPartials {
                epoch_ms,
                entries,
                assignments,
            } => {
                self.handle_shared_partials(ctx, *epoch_ms, entries, assignments);
            }
            TtmqoPayload::QueryRequest(qid) => {
                if let Some(query) = self.queries.get(qid).cloned() {
                    let payload = TtmqoPayload::QueryShare(query);
                    let bytes = payload.wire_size();
                    // Small jitter so several helpful neighbours desynchronize.
                    let _ = ctx.rand_u64();
                    ctx.send(Destination::Broadcast, MsgKind::Maintenance, bytes, payload);
                }
            }
            TtmqoPayload::QueryShare(query) => {
                if !self.seen_abort_floods.contains(&query.id()) {
                    self.requested_queries.remove(&query.id());
                    // Install without re-flooding: this is local recovery.
                    self.install(ctx, query.clone());
                }
            }
        }
    }

    fn on_command(&mut self, ctx: &mut Ctx<'_, TtmqoPayload, Output>, cmd: Command) {
        debug_assert!(ctx.is_base_station(), "commands arrive at the base station");
        match cmd {
            Command::Pose(query) => self.relay_query_flood(ctx, &query),
            Command::Terminate(qid) => self.relay_abort_flood(ctx, qid),
        }
    }

    fn on_overhear(
        &mut self,
        _ctx: &mut Ctx<'_, TtmqoPayload, Output>,
        from: NodeId,
        _kind: MsgKind,
        payload: &TtmqoPayload,
    ) {
        // Exploit the broadcast nature of the channel: a neighbour's result
        // frame reveals exactly which queries it has data for, keeping the
        // DAG's has-data knowledge fresh at zero radio cost. Overhearing is
        // also proof of life for the parent failure detector.
        self.dag.record_heard(from);
        match payload {
            TtmqoPayload::SharedRows { entries, .. } => {
                let qids: Vec<QueryId> = entries
                    .iter()
                    .flat_map(|e| e.qids.iter().copied())
                    .collect();
                self.dag.record_has_data(from, qids.clone());
                self.request_unknown_queries(_ctx, qids.iter());
            }
            TtmqoPayload::SharedPartials { entries, .. } => {
                let qids: Vec<QueryId> = entries.iter().map(|e| e.qid).collect();
                self.dag.record_has_data(from, qids.clone());
                self.request_unknown_queries(_ctx, qids.iter());
            }
            TtmqoPayload::NoRoute => {
                self.dag.record_no_route(from);
            }
            _ => {}
        }
    }

    fn on_send_failed(
        &mut self,
        ctx: &mut Ctx<'_, TtmqoPayload, Output>,
        dest: NodeId,
        _kind: MsgKind,
    ) {
        // A whole unicast retry budget went unacknowledged: the strongest
        // dead-parent evidence the radio can give. Enough consecutive
        // failures (with nothing overheard in between) and the parent is
        // excluded from routing; the next epoch's rows re-elect among the
        // surviving upper neighbours.
        if self.dag.record_send_failure(dest) && ctx.trace_enabled() {
            ctx.trace(TraceEvent::ParentDead {
                node: ctx.node(),
                parent: dest,
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Checkpoint/restore
// ---------------------------------------------------------------------------

use ttmqo_sim::{Restorable, SnapReader, SnapWriter, Snapshot, SnapshotError};

impl Snapshot for TtmqoConfig {
    fn write(&self, w: &mut SnapWriter) {
        let TtmqoConfig {
            slot_ms,
            jitter_ms,
            sleep,
            dynamic_parents,
            query_recovery,
            srt,
            dead_parent_after,
        } = self;
        w.put_u64(*slot_ms);
        w.put_u64(*jitter_ms);
        w.put_bool(*sleep);
        w.put_bool(*dynamic_parents);
        w.put_bool(*query_recovery);
        w.put_bool(*srt);
        w.put_u32(*dead_parent_after);
    }
}

impl Restorable for TtmqoConfig {
    fn read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(TtmqoConfig {
            slot_ms: r.u64()?,
            jitter_ms: r.u64()?,
            sleep: r.bool()?,
            dynamic_parents: r.bool()?,
            query_recovery: r.bool()?,
            srt: r.bool()?,
            dead_parent_after: r.u32()?,
        })
    }
}

impl Snapshot for TtmqoApp {
    fn write(&self, w: &mut SnapWriter) {
        let TtmqoApp {
            config,
            queries,
            seen_query_floods,
            seen_abort_floods,
            dag,
            clock_gen,
            has_data,
            relayed_recently,
            slept,
            requested_queries,
            forward_only,
            srt,
            last_no_route_ms,
            agg_buffers,
            row_buffers,
        } = self;
        config.write(w);
        queries.write(w);
        seen_query_floods.write(w);
        seen_abort_floods.write(w);
        dag.write(w);
        w.put_u64(*clock_gen);
        has_data.write(w);
        w.put_bool(*relayed_recently);
        w.put_bool(*slept);
        requested_queries.write(w);
        forward_only.write(w);
        srt.write(w);
        last_no_route_ms.write(w);
        agg_buffers.write(w);
        row_buffers.write(w);
    }
}

impl Restorable for TtmqoApp {
    fn read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(TtmqoApp {
            config: TtmqoConfig::read(r)?,
            queries: Restorable::read(r)?,
            seen_query_floods: Restorable::read(r)?,
            seen_abort_floods: Restorable::read(r)?,
            dag: DagState::read(r)?,
            clock_gen: r.u64()?,
            has_data: Restorable::read(r)?,
            relayed_recently: r.bool()?,
            slept: r.bool()?,
            requested_queries: Restorable::read(r)?,
            forward_only: Restorable::read(r)?,
            srt: Restorable::read(r)?,
            last_no_route_ms: Restorable::read(r)?,
            agg_buffers: Restorable::read(r)?,
            row_buffers: Restorable::read(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_roundtrip() {
        let k = key(K_SLEEP_CHECK, QueryId(77), 1234);
        assert_eq!(key_parts(k), (K_SLEEP_CHECK, QueryId(77), 1234));
    }

    #[test]
    fn merge_into_grows_and_merges() {
        use ttmqo_query::AggOp;
        let mut buf = Vec::new();
        merge_into(&mut buf, &[Some(AggOp::Max.seed(1.0)), None]);
        merge_into(
            &mut buf,
            &[Some(AggOp::Max.seed(7.0)), Some(AggOp::Count.seed(0.0))],
        );
        assert_eq!(buf[0].unwrap().finalize(), 7.0);
        assert_eq!(buf[1].unwrap().finalize(), 1.0);
    }
}
