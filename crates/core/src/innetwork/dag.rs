//! Query-aware DAG routing: dynamic parent selection (§3.2.2).
//!
//! During query propagation every node keeps an edge to each of its
//! upper-level neighbours, together with piggybacked knowledge of *which
//! queries each of those neighbours has data for*. When a node has a result
//! message serving a set of queries, it picks parents dynamically:
//! "Neighbors with data for more queries have higher priority to be chosen.
//! Ties are broken by favoring those nodes with more stable link. … if
//! multiple neighbors are chosen (each is responsible for forwarding message
//! for a subset of queries), one multicast message is required."

use std::collections::{BTreeMap, BTreeSet, HashMap};
use ttmqo_query::QueryId;
use ttmqo_sim::NodeId;

/// What a node knows about its upper-level neighbours.
#[derive(Debug, Clone, Default)]
pub struct DagState {
    /// Upper-level neighbours (the DAG edges toward the base station).
    upper: Vec<NodeId>,
    /// Link quality per upper neighbour.
    link: HashMap<NodeId, f64>,
    /// Queries each upper neighbour is believed to have data for
    /// (from flood piggybacks and wake-up broadcasts).
    has_data: HashMap<NodeId, BTreeSet<QueryId>>,
    /// Failure detector: consecutive failed unicast sends (retry budget
    /// exhausted without a link-layer acknowledgement) toward each upper
    /// neighbour since we last heard *any* frame from it.
    failures_since_heard: HashMap<NodeId, u32>,
    /// Upper neighbours currently presumed dead (excluded from parent
    /// election until heard from again).
    dead: BTreeSet<NodeId>,
    /// Consecutive-failure threshold before a parent is presumed dead
    /// (0 = detector disabled, the default).
    dead_after: u32,
}

impl DagState {
    /// Initializes the DAG edges from the topology-derived upper neighbour
    /// list and link qualities.
    pub fn new(upper: Vec<(NodeId, f64)>) -> Self {
        let link = upper.iter().copied().collect();
        DagState {
            upper: upper.into_iter().map(|(n, _)| n).collect(),
            link,
            has_data: HashMap::new(),
            failures_since_heard: HashMap::new(),
            dead: BTreeSet::new(),
            dead_after: 0,
        }
    }

    /// The upper-level neighbours.
    pub fn upper_neighbors(&self) -> &[NodeId] {
        &self.upper
    }

    /// Arms the parent failure detector: a parent whose unicast sends fail
    /// `threshold` consecutive times (each failure is a whole retry budget
    /// exhausted without a link-layer acknowledgement) with nothing heard
    /// from it in between is presumed dead and excluded from parent election
    /// until heard again. Hearing is proof of life: the radio is a broadcast
    /// medium, so a live parent is overheard even when it talks to someone
    /// else. `threshold == 0` disables the detector (the default), leaving
    /// parent choice byte-identical to the pre-fault-subsystem behaviour.
    pub fn set_failure_detector(&mut self, threshold: u32) {
        self.dead_after = threshold;
        if threshold == 0 {
            self.dead.clear();
            self.failures_since_heard.clear();
        }
    }

    /// Records one failed unicast send toward `parent` (the engine's
    /// `on_send_failed` feedback: every retry went unacknowledged). With the
    /// failure detector armed, enough consecutive failures mark the parent
    /// dead. Returns `true` if this failure crossed the threshold (the
    /// caller may want to log or re-route the next message).
    pub fn record_send_failure(&mut self, parent: NodeId) -> bool {
        if self.dead_after == 0 || !self.upper.contains(&parent) {
            return false;
        }
        let failures = self.failures_since_heard.entry(parent).or_insert(0);
        *failures += 1;
        if *failures >= self.dead_after && !self.dead.contains(&parent) {
            self.dead.insert(parent);
            return true;
        }
        false
    }

    /// Records a neighbour's explicit no-route resignation: an alive parent
    /// with no path toward the base station is as useless as a dead one, but
    /// unlike a crashed node it keeps acknowledging frames, so only this
    /// announcement reveals it. It is revived like a dead parent: by hearing
    /// result traffic from it again. Ignored while the detector is disabled.
    pub fn record_no_route(&mut self, neighbor: NodeId) {
        if self.dead_after == 0 || !self.upper.contains(&neighbor) {
            return;
        }
        self.failures_since_heard.remove(&neighbor);
        self.dead.insert(neighbor);
    }

    /// Records that *any* frame was heard from `neighbor` (message or
    /// overhear): resets its consecutive-failure counter and revives it if
    /// it was presumed dead — hearing a node is proof of life.
    pub fn record_heard(&mut self, neighbor: NodeId) {
        if self.dead_after == 0 {
            return;
        }
        self.failures_since_heard.remove(&neighbor);
        self.dead.remove(&neighbor);
    }

    /// Whether `neighbor` is currently presumed dead.
    pub fn presumed_dead(&self, neighbor: NodeId) -> bool {
        self.dead.contains(&neighbor)
    }

    /// How many upper neighbours are currently presumed dead.
    pub fn presumed_dead_count(&self) -> usize {
        self.dead.len()
    }

    /// Whether every upper neighbour is presumed dead — the node is orphaned
    /// and has no live route toward the base station.
    pub fn is_orphaned(&self) -> bool {
        !self.upper.is_empty() && self.dead.len() == self.upper.len()
    }

    /// Records (replaces) the set of queries `neighbor` has data for.
    pub fn record_has_data<I: IntoIterator<Item = QueryId>>(&mut self, neighbor: NodeId, qids: I) {
        if self.upper.contains(&neighbor) {
            self.has_data.insert(neighbor, qids.into_iter().collect());
        }
    }

    /// Forgets a query everywhere (on abort).
    pub fn forget_query(&mut self, qid: QueryId) {
        for set in self.has_data.values_mut() {
            set.remove(&qid);
        }
    }

    /// Queries `neighbor` is believed to have data for.
    pub fn known_data(&self, neighbor: NodeId) -> Option<&BTreeSet<QueryId>> {
        self.has_data.get(&neighbor)
    }

    /// Chooses parents for a message serving `queries`.
    ///
    /// Greedy set cover: repeatedly pick the upper neighbour with data for
    /// the most still-uncovered queries (ties broken by link quality, then by
    /// node id for determinism). Queries no neighbour has data for are
    /// assigned to the best-link neighbour. Neighbours presumed dead by the
    /// failure detector are excluded. Returns `(parent, responsible
    /// query subset)` pairs — one pair means unicast, several mean one
    /// multicast with split responsibility; empty only when the node has no
    /// (live) upper neighbours at all.
    pub fn choose_parents(&self, queries: &BTreeSet<QueryId>) -> Vec<(NodeId, BTreeSet<QueryId>)> {
        let live: Vec<NodeId> = self
            .upper
            .iter()
            .copied()
            .filter(|n| !self.dead.contains(n))
            .collect();
        if live.is_empty() || queries.is_empty() {
            return Vec::new();
        }
        let mut assignment: BTreeMap<NodeId, BTreeSet<QueryId>> = BTreeMap::new();
        let mut remaining: BTreeSet<QueryId> = queries.clone();

        while !remaining.is_empty() {
            let (best, overlap) = live
                .iter()
                .map(|&n| {
                    let overlap: BTreeSet<QueryId> = self
                        .has_data
                        .get(&n)
                        .map(|d| d.intersection(&remaining).copied().collect())
                        .unwrap_or_default();
                    (n, overlap)
                })
                .max_by(|(a, oa), (b, ob)| {
                    oa.len()
                        .cmp(&ob.len())
                        .then_with(|| {
                            self.link_of(*a)
                                .partial_cmp(&self.link_of(*b))
                                .expect("link qualities are finite")
                        })
                        .then_with(|| b.0.cmp(&a.0)) // lower id wins ties
                })
                .expect("live list is non-empty");

            if overlap.is_empty() {
                // Nobody has data for what's left: hand it to the best link.
                let fallback = self.best_link_among(&live);
                assignment
                    .entry(fallback)
                    .or_default()
                    .extend(remaining.iter().copied());
                remaining.clear();
            } else {
                for q in &overlap {
                    remaining.remove(q);
                }
                assignment.entry(best).or_default().extend(overlap);
            }
        }
        assignment.into_iter().collect()
    }

    fn link_of(&self, n: NodeId) -> f64 {
        self.link.get(&n).copied().unwrap_or(0.0)
    }

    fn best_link_among(&self, candidates: &[NodeId]) -> NodeId {
        candidates
            .iter()
            .copied()
            .max_by(|&a, &b| {
                self.link_of(a)
                    .partial_cmp(&self.link_of(b))
                    .expect("link qualities are finite")
                    .then_with(|| b.0.cmp(&a.0))
            })
            .expect("candidate list is non-empty")
    }
}

// ---------------------------------------------------------------------------
// Checkpoint/restore
// ---------------------------------------------------------------------------

use ttmqo_sim::{Restorable, SnapReader, SnapWriter, Snapshot, SnapshotError};

impl Snapshot for DagState {
    fn write(&self, w: &mut SnapWriter) {
        let DagState {
            upper,
            link,
            has_data,
            failures_since_heard,
            dead,
            dead_after,
        } = self;
        upper.write(w);
        link.write(w);
        has_data.write(w);
        failures_since_heard.write(w);
        dead.write(w);
        w.put_u32(*dead_after);
    }
}

impl Restorable for DagState {
    fn read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(DagState {
            upper: Restorable::read(r)?,
            link: Restorable::read(r)?,
            has_data: Restorable::read(r)?,
            failures_since_heard: Restorable::read(r)?,
            dead: Restorable::read(r)?,
            dead_after: r.u32()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qs(ids: &[u64]) -> BTreeSet<QueryId> {
        ids.iter().map(|&i| QueryId(i)).collect()
    }

    fn dag() -> DagState {
        // Three upper neighbours with decreasing link quality.
        DagState::new(vec![(NodeId(1), 0.9), (NodeId(2), 0.5), (NodeId(3), 0.3)])
    }

    #[test]
    fn no_knowledge_falls_back_to_best_link_unicast() {
        let d = dag();
        let parents = d.choose_parents(&qs(&[10, 11]));
        assert_eq!(parents, vec![(NodeId(1), qs(&[10, 11]))]);
    }

    #[test]
    fn single_covering_neighbor_wins_over_better_link() {
        let mut d = dag();
        d.record_has_data(NodeId(3), qs(&[10, 11]));
        let parents = d.choose_parents(&qs(&[10, 11]));
        assert_eq!(parents, vec![(NodeId(3), qs(&[10, 11]))]);
    }

    #[test]
    fn ties_break_by_link_quality() {
        let mut d = dag();
        d.record_has_data(NodeId(2), qs(&[10]));
        d.record_has_data(NodeId(3), qs(&[10]));
        let parents = d.choose_parents(&qs(&[10]));
        assert_eq!(
            parents,
            vec![(NodeId(2), qs(&[10]))],
            "better link wins the tie"
        );
    }

    #[test]
    fn split_assignment_multicasts() {
        let mut d = dag();
        d.record_has_data(NodeId(2), qs(&[10]));
        d.record_has_data(NodeId(3), qs(&[11]));
        let parents = d.choose_parents(&qs(&[10, 11]));
        assert_eq!(parents.len(), 2);
        let map: BTreeMap<_, _> = parents.into_iter().collect();
        assert_eq!(map[&NodeId(2)], qs(&[10]));
        assert_eq!(map[&NodeId(3)], qs(&[11]));
    }

    #[test]
    fn uncovered_queries_ride_with_best_link() {
        let mut d = dag();
        d.record_has_data(NodeId(3), qs(&[10]));
        let parents = d.choose_parents(&qs(&[10, 12]));
        let map: BTreeMap<_, _> = parents.into_iter().collect();
        assert_eq!(map[&NodeId(3)], qs(&[10]));
        assert_eq!(map[&NodeId(1)], qs(&[12]), "orphan query goes to best link");
    }

    #[test]
    fn greedy_prefers_wider_coverage() {
        let mut d = dag();
        d.record_has_data(NodeId(2), qs(&[10, 11, 12]));
        d.record_has_data(NodeId(1), qs(&[10]));
        let parents = d.choose_parents(&qs(&[10, 11, 12]));
        assert_eq!(parents, vec![(NodeId(2), qs(&[10, 11, 12]))]);
    }

    #[test]
    fn forget_query_removes_knowledge() {
        let mut d = dag();
        d.record_has_data(NodeId(3), qs(&[10]));
        d.forget_query(QueryId(10));
        let parents = d.choose_parents(&qs(&[10]));
        assert_eq!(parents, vec![(NodeId(1), qs(&[10]))], "back to best link");
    }

    #[test]
    fn record_ignores_non_upper_neighbors() {
        let mut d = dag();
        d.record_has_data(NodeId(99), qs(&[10]));
        assert!(d.known_data(NodeId(99)).is_none());
    }

    #[test]
    fn empty_inputs_yield_empty_assignment() {
        let d = dag();
        assert!(d.choose_parents(&BTreeSet::new()).is_empty());
        let empty = DagState::new(vec![]);
        assert!(empty.choose_parents(&qs(&[1])).is_empty());
    }

    #[test]
    fn later_record_replaces_earlier() {
        let mut d = dag();
        d.record_has_data(NodeId(2), qs(&[10, 11]));
        d.record_has_data(NodeId(2), qs(&[11]));
        assert_eq!(d.known_data(NodeId(2)).unwrap(), &qs(&[11]));
    }

    #[test]
    fn detector_disabled_never_marks_dead() {
        let mut d = dag();
        for _ in 0..100 {
            assert!(!d.record_send_failure(NodeId(1)));
        }
        assert!(!d.presumed_dead(NodeId(1)));
        assert_eq!(d.choose_parents(&qs(&[10])), vec![(NodeId(1), qs(&[10]))]);
    }

    #[test]
    fn silent_parent_is_presumed_dead_and_reelection_preserves_query_awareness() {
        let mut d = dag();
        d.set_failure_detector(3);
        // Node 3 is the only one known to serve query 10, but it goes silent.
        d.record_has_data(NodeId(3), qs(&[10]));
        assert_eq!(d.choose_parents(&qs(&[10])), vec![(NodeId(3), qs(&[10]))]);
        assert!(!d.record_send_failure(NodeId(3)));
        assert!(!d.record_send_failure(NodeId(3)));
        assert!(
            d.record_send_failure(NodeId(3)),
            "third consecutive failure crosses threshold"
        );
        assert!(d.presumed_dead(NodeId(3)));
        assert_eq!(d.presumed_dead_count(), 1);
        // Re-election skips the dead parent; among the survivors the
        // query-aware rule still applies (2 has data for 11, so it beats the
        // better-link node 1 for that query).
        d.record_has_data(NodeId(2), qs(&[11]));
        assert_eq!(d.choose_parents(&qs(&[10])), vec![(NodeId(1), qs(&[10]))]);
        assert_eq!(d.choose_parents(&qs(&[11])), vec![(NodeId(2), qs(&[11]))]);
    }

    #[test]
    fn hearing_a_dead_parent_revives_it() {
        let mut d = dag();
        d.set_failure_detector(2);
        d.record_send_failure(NodeId(1));
        d.record_send_failure(NodeId(1));
        assert!(d.presumed_dead(NodeId(1)));
        d.record_heard(NodeId(1));
        assert!(!d.presumed_dead(NodeId(1)));
        assert_eq!(d.choose_parents(&qs(&[10])), vec![(NodeId(1), qs(&[10]))]);
    }

    #[test]
    fn hearing_resets_the_failure_counter() {
        let mut d = dag();
        d.set_failure_detector(3);
        d.record_send_failure(NodeId(1));
        d.record_send_failure(NodeId(1));
        d.record_heard(NodeId(1)); // proof of life just in time
        d.record_send_failure(NodeId(1));
        d.record_send_failure(NodeId(1));
        assert!(
            !d.presumed_dead(NodeId(1)),
            "counter restarted after hearing"
        );
    }

    #[test]
    fn all_parents_dead_means_orphaned() {
        let mut d = dag();
        d.set_failure_detector(1);
        for n in [1u16, 2, 3] {
            d.record_send_failure(NodeId(n));
        }
        assert!(d.is_orphaned());
        assert!(
            d.choose_parents(&qs(&[10])).is_empty(),
            "no live route toward the base station"
        );
        d.record_heard(NodeId(2));
        assert!(!d.is_orphaned());
        assert_eq!(d.choose_parents(&qs(&[10])), vec![(NodeId(2), qs(&[10]))]);
    }

    #[test]
    fn no_route_resignation_excludes_an_alive_parent() {
        let mut d = dag();
        d.set_failure_detector(3);
        d.record_no_route(NodeId(1));
        assert!(d.presumed_dead(NodeId(1)));
        // Election falls back to the best live link (2 at 0.5 beats 3 at 0.3).
        assert_eq!(d.choose_parents(&qs(&[10])), vec![(NodeId(2), qs(&[10]))]);
        // Hearing result traffic from the resigned parent revives it.
        d.record_heard(NodeId(1));
        assert!(!d.presumed_dead(NodeId(1)));
    }

    #[test]
    fn no_route_is_ignored_while_the_detector_is_disabled() {
        let mut d = dag();
        d.record_no_route(NodeId(1));
        assert!(!d.presumed_dead(NodeId(1)));
        assert_eq!(d.choose_parents(&qs(&[10])), vec![(NodeId(1), qs(&[10]))]);
    }

    #[test]
    fn disabling_the_detector_clears_dead_state() {
        let mut d = dag();
        d.set_failure_detector(1);
        d.record_send_failure(NodeId(1));
        assert!(d.presumed_dead(NodeId(1)));
        d.set_failure_detector(0);
        assert!(!d.presumed_dead(NodeId(1)));
        assert!(!d.record_send_failure(NodeId(1)));
    }

    #[test]
    fn snapshot_roundtrips_mid_detection_state() {
        use ttmqo_sim::{Restorable, SnapReader, SnapWriter, Snapshot};
        // A DAG caught mid-failure-detection: piggybacked knowledge, one
        // partial failure streak, one presumed-dead parent.
        let mut d = dag();
        d.set_failure_detector(2);
        d.record_has_data(NodeId(2), qs(&[10, 11]));
        d.record_has_data(NodeId(3), qs(&[12]));
        d.record_send_failure(NodeId(1));
        d.record_send_failure(NodeId(2));
        assert!(d.record_send_failure(NodeId(2)));

        let mut w = SnapWriter::new();
        d.write(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let back = DagState::read(&mut r).expect("roundtrip decodes");
        r.finish().expect("no trailing bytes");
        // Behavioural equality: same parent election, same detector state.
        assert_eq!(
            back.choose_parents(&qs(&[10, 11])),
            d.choose_parents(&qs(&[10, 11]))
        );
        assert_eq!(
            back.choose_parents(&qs(&[12])),
            d.choose_parents(&qs(&[12]))
        );
        assert!(back.presumed_dead(NodeId(2)));
        assert!(!back.presumed_dead(NodeId(1)));
        // Bit equality via re-serialization (the debug rendering is not
        // order-stable here: the DAG holds hash maps, and serialization
        // sorts them).
        let mut w2 = SnapWriter::new();
        back.write(&mut w2);
        assert_eq!(w2.into_bytes(), bytes);
    }
}
