//! Query-aware DAG routing: dynamic parent selection (§3.2.2).
//!
//! During query propagation every node keeps an edge to each of its
//! upper-level neighbours, together with piggybacked knowledge of *which
//! queries each of those neighbours has data for*. When a node has a result
//! message serving a set of queries, it picks parents dynamically:
//! "Neighbors with data for more queries have higher priority to be chosen.
//! Ties are broken by favoring those nodes with more stable link. … if
//! multiple neighbors are chosen (each is responsible for forwarding message
//! for a subset of queries), one multicast message is required."

use std::collections::{BTreeMap, BTreeSet, HashMap};
use ttmqo_query::QueryId;
use ttmqo_sim::NodeId;

/// What a node knows about its upper-level neighbours.
#[derive(Debug, Clone, Default)]
pub struct DagState {
    /// Upper-level neighbours (the DAG edges toward the base station).
    upper: Vec<NodeId>,
    /// Link quality per upper neighbour.
    link: HashMap<NodeId, f64>,
    /// Queries each upper neighbour is believed to have data for
    /// (from flood piggybacks and wake-up broadcasts).
    has_data: HashMap<NodeId, BTreeSet<QueryId>>,
}

impl DagState {
    /// Initializes the DAG edges from the topology-derived upper neighbour
    /// list and link qualities.
    pub fn new(upper: Vec<(NodeId, f64)>) -> Self {
        let link = upper.iter().copied().collect();
        DagState {
            upper: upper.into_iter().map(|(n, _)| n).collect(),
            link,
            has_data: HashMap::new(),
        }
    }

    /// The upper-level neighbours.
    pub fn upper_neighbors(&self) -> &[NodeId] {
        &self.upper
    }

    /// Records (replaces) the set of queries `neighbor` has data for.
    pub fn record_has_data<I: IntoIterator<Item = QueryId>>(&mut self, neighbor: NodeId, qids: I) {
        if self.upper.contains(&neighbor) {
            self.has_data.insert(neighbor, qids.into_iter().collect());
        }
    }

    /// Forgets a query everywhere (on abort).
    pub fn forget_query(&mut self, qid: QueryId) {
        for set in self.has_data.values_mut() {
            set.remove(&qid);
        }
    }

    /// Queries `neighbor` is believed to have data for.
    pub fn known_data(&self, neighbor: NodeId) -> Option<&BTreeSet<QueryId>> {
        self.has_data.get(&neighbor)
    }

    /// Chooses parents for a message serving `queries`.
    ///
    /// Greedy set cover: repeatedly pick the upper neighbour with data for
    /// the most still-uncovered queries (ties broken by link quality, then by
    /// node id for determinism). Queries no neighbour has data for are
    /// assigned to the best-link neighbour. Returns `(parent, responsible
    /// query subset)` pairs — one pair means unicast, several mean one
    /// multicast with split responsibility; empty only when the node has no
    /// upper neighbours at all.
    pub fn choose_parents(&self, queries: &BTreeSet<QueryId>) -> Vec<(NodeId, BTreeSet<QueryId>)> {
        if self.upper.is_empty() || queries.is_empty() {
            return Vec::new();
        }
        let mut assignment: BTreeMap<NodeId, BTreeSet<QueryId>> = BTreeMap::new();
        let mut remaining: BTreeSet<QueryId> = queries.clone();

        while !remaining.is_empty() {
            let (best, overlap) = self
                .upper
                .iter()
                .map(|&n| {
                    let overlap: BTreeSet<QueryId> = self
                        .has_data
                        .get(&n)
                        .map(|d| d.intersection(&remaining).copied().collect())
                        .unwrap_or_default();
                    (n, overlap)
                })
                .max_by(|(a, oa), (b, ob)| {
                    oa.len()
                        .cmp(&ob.len())
                        .then_with(|| {
                            self.link_of(*a)
                                .partial_cmp(&self.link_of(*b))
                                .expect("link qualities are finite")
                        })
                        .then_with(|| b.0.cmp(&a.0)) // lower id wins ties
                })
                .expect("upper list is non-empty");

            if overlap.is_empty() {
                // Nobody has data for what's left: hand it to the best link.
                let fallback = self.best_link();
                assignment
                    .entry(fallback)
                    .or_default()
                    .extend(remaining.iter().copied());
                remaining.clear();
            } else {
                for q in &overlap {
                    remaining.remove(q);
                }
                assignment.entry(best).or_default().extend(overlap);
            }
        }
        assignment.into_iter().collect()
    }

    fn link_of(&self, n: NodeId) -> f64 {
        self.link.get(&n).copied().unwrap_or(0.0)
    }

    fn best_link(&self) -> NodeId {
        self.upper
            .iter()
            .copied()
            .max_by(|&a, &b| {
                self.link_of(a)
                    .partial_cmp(&self.link_of(b))
                    .expect("link qualities are finite")
                    .then_with(|| b.0.cmp(&a.0))
            })
            .expect("upper list is non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qs(ids: &[u64]) -> BTreeSet<QueryId> {
        ids.iter().map(|&i| QueryId(i)).collect()
    }

    fn dag() -> DagState {
        // Three upper neighbours with decreasing link quality.
        DagState::new(vec![(NodeId(1), 0.9), (NodeId(2), 0.5), (NodeId(3), 0.3)])
    }

    #[test]
    fn no_knowledge_falls_back_to_best_link_unicast() {
        let d = dag();
        let parents = d.choose_parents(&qs(&[10, 11]));
        assert_eq!(parents, vec![(NodeId(1), qs(&[10, 11]))]);
    }

    #[test]
    fn single_covering_neighbor_wins_over_better_link() {
        let mut d = dag();
        d.record_has_data(NodeId(3), qs(&[10, 11]));
        let parents = d.choose_parents(&qs(&[10, 11]));
        assert_eq!(parents, vec![(NodeId(3), qs(&[10, 11]))]);
    }

    #[test]
    fn ties_break_by_link_quality() {
        let mut d = dag();
        d.record_has_data(NodeId(2), qs(&[10]));
        d.record_has_data(NodeId(3), qs(&[10]));
        let parents = d.choose_parents(&qs(&[10]));
        assert_eq!(
            parents,
            vec![(NodeId(2), qs(&[10]))],
            "better link wins the tie"
        );
    }

    #[test]
    fn split_assignment_multicasts() {
        let mut d = dag();
        d.record_has_data(NodeId(2), qs(&[10]));
        d.record_has_data(NodeId(3), qs(&[11]));
        let parents = d.choose_parents(&qs(&[10, 11]));
        assert_eq!(parents.len(), 2);
        let map: BTreeMap<_, _> = parents.into_iter().collect();
        assert_eq!(map[&NodeId(2)], qs(&[10]));
        assert_eq!(map[&NodeId(3)], qs(&[11]));
    }

    #[test]
    fn uncovered_queries_ride_with_best_link() {
        let mut d = dag();
        d.record_has_data(NodeId(3), qs(&[10]));
        let parents = d.choose_parents(&qs(&[10, 12]));
        let map: BTreeMap<_, _> = parents.into_iter().collect();
        assert_eq!(map[&NodeId(3)], qs(&[10]));
        assert_eq!(map[&NodeId(1)], qs(&[12]), "orphan query goes to best link");
    }

    #[test]
    fn greedy_prefers_wider_coverage() {
        let mut d = dag();
        d.record_has_data(NodeId(2), qs(&[10, 11, 12]));
        d.record_has_data(NodeId(1), qs(&[10]));
        let parents = d.choose_parents(&qs(&[10, 11, 12]));
        assert_eq!(parents, vec![(NodeId(2), qs(&[10, 11, 12]))]);
    }

    #[test]
    fn forget_query_removes_knowledge() {
        let mut d = dag();
        d.record_has_data(NodeId(3), qs(&[10]));
        d.forget_query(QueryId(10));
        let parents = d.choose_parents(&qs(&[10]));
        assert_eq!(parents, vec![(NodeId(1), qs(&[10]))], "back to best link");
    }

    #[test]
    fn record_ignores_non_upper_neighbors() {
        let mut d = dag();
        d.record_has_data(NodeId(99), qs(&[10]));
        assert!(d.known_data(NodeId(99)).is_none());
    }

    #[test]
    fn empty_inputs_yield_empty_assignment() {
        let d = dag();
        assert!(d.choose_parents(&BTreeSet::new()).is_empty());
        let empty = DagState::new(vec![]);
        assert!(empty.choose_parents(&qs(&[1])).is_empty());
    }

    #[test]
    fn later_record_replaces_earlier() {
        let mut d = dag();
        d.record_has_data(NodeId(2), qs(&[10, 11]));
        d.record_has_data(NodeId(2), qs(&[11]));
        assert_eq!(d.known_data(NodeId(2)).unwrap(), &qs(&[11]));
    }
}
