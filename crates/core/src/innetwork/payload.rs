//! Wire messages of the in-network tier.
//!
//! Unlike the baseline's strictly per-query traffic, TTMQO messages are
//! *shared*: one result frame can answer several queries at once, and query
//! floods piggyback has-data information that builds the routing DAG.

use std::collections::BTreeSet;
use ttmqo_query::{PartialAgg, Query, QueryId, Readings};
use ttmqo_sim::NodeId;

/// One source node's contribution to a shared acquisition message.
#[derive(Debug, Clone, PartialEq)]
pub struct RowEntry {
    /// The producing node.
    pub node: u16,
    /// Queries this entry answers.
    pub qids: BTreeSet<QueryId>,
    /// The union of attributes those queries request from this node.
    pub readings: Readings,
}

/// Partial aggregate state for one query inside a shared aggregation message.
#[derive(Debug, Clone, PartialEq)]
pub struct PartialEntry {
    /// The aggregation query.
    pub qid: QueryId,
    /// One partial per `(op, attr)` of the query's aggregate list.
    pub partials: Vec<Option<PartialAgg>>,
}

/// Radio payloads of the TTMQO in-network protocol.
#[derive(Debug, Clone)]
pub enum TtmqoPayload {
    /// Query dissemination flood, piggybacking the sender's has-data set
    /// ("node x checks whether it has the data the query retrieves, and
    /// piggybacks this information down", §3.2.2).
    Query {
        /// The query being flooded.
        query: Query,
        /// All queries the *sender* currently has data for.
        has_data: Vec<QueryId>,
    },
    /// Query abortion flood.
    Abort(QueryId),
    /// One-hop wake-up announcement from a node whose data now satisfies
    /// queries again.
    Wakeup {
        /// Queries the sender has data for.
        has_data: Vec<QueryId>,
    },
    /// Shared acquisition result: entries from one or more sources, each
    /// answering one or more queries, routed with split responsibility.
    SharedRows {
        /// Epoch start the rows belong to, ms.
        epoch_ms: u64,
        /// Source entries.
        entries: Vec<RowEntry>,
        /// Which recipient is responsible for which queries (multicast
        /// splitting; a single pair means plain unicast).
        assignments: Vec<(NodeId, Vec<QueryId>)>,
    },
    /// Shared aggregation result: per-query partials for every due
    /// aggregation query, in one frame.
    SharedPartials {
        /// Epoch start the partials belong to, ms.
        epoch_ms: u64,
        /// Per-query partial state.
        entries: Vec<PartialEntry>,
        /// Which recipient is responsible for which queries.
        assignments: Vec<(NodeId, Vec<QueryId>)>,
    },
    /// An orphaned node's resignation: it is alive but has no route toward
    /// the base station (every upper neighbour presumed dead), so lower
    /// neighbours must stop electing it as a parent until they hear result
    /// traffic from it again. Without this announcement an orphaned node is
    /// a silent black hole — it still acknowledges its children's unicast
    /// frames while dropping their data (failure recovery extension).
    NoRoute,
    /// A rebooted node heard traffic for a query it does not know and asks
    /// its neighbours for the definition (failure recovery).
    QueryRequest(QueryId),
    /// A neighbour's answer to a [`TtmqoPayload::QueryRequest`].
    QueryShare(Query),
}

impl TtmqoPayload {
    /// Application payload length in bytes.
    ///
    /// Shared messages are longer than single-query ones — the paper's "the
    /// length of a shared message may be larger, but it is cheaper to
    /// transmit one shared message than multiple query result messages".
    /// Queries sharing identical partial aggregate values share the bytes of
    /// that value ("one data message can be packed to share among all of the
    /// queries whose partial aggregation value are the same").
    pub fn wire_size(&self) -> usize {
        match self {
            TtmqoPayload::Query { query, has_data } => {
                8 + 4 * query.predicates().len()
                    + if query.region().is_some() { 8 } else { 0 }
                    + 2 * has_data.len()
            }
            TtmqoPayload::Abort(_) => 2,
            TtmqoPayload::NoRoute => 1,
            TtmqoPayload::QueryRequest(_) => 2,
            TtmqoPayload::QueryShare(query) => {
                8 + 4 * query.predicates().len() + if query.region().is_some() { 8 } else { 0 }
            }
            TtmqoPayload::Wakeup { has_data } => 1 + 2 * has_data.len(),
            TtmqoPayload::SharedRows {
                entries,
                assignments,
                ..
            } => {
                2 + assignments
                    .iter()
                    .map(|(_, qs)| 2 + qs.len())
                    .sum::<usize>()
                    + entries
                        .iter()
                        .map(|e| 2 + e.qids.len() + 2 * e.readings.len())
                        .sum::<usize>()
            }
            TtmqoPayload::SharedPartials {
                entries,
                assignments,
                ..
            } => {
                // Deduplicate identical partial vectors: queries with equal
                // partial values share one copy of the value bytes.
                let mut distinct: Vec<&Vec<Option<PartialAgg>>> = Vec::new();
                let mut value_bytes = 0;
                for e in entries {
                    if !distinct.iter().any(|d| **d == e.partials) {
                        value_bytes += e
                            .partials
                            .iter()
                            .flatten()
                            .map(|p| p.op().wire_size())
                            .sum::<usize>();
                        distinct.push(&e.partials);
                    }
                }
                2 + assignments
                    .iter()
                    .map(|(_, qs)| 2 + qs.len())
                    .sum::<usize>()
                    + 2 * entries.len()
                    + value_bytes
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Checkpoint/restore
// ---------------------------------------------------------------------------

use ttmqo_sim::{Restorable, SnapReader, SnapWriter, Snapshot, SnapshotError};

impl Snapshot for RowEntry {
    fn write(&self, w: &mut SnapWriter) {
        let RowEntry {
            node,
            qids,
            readings,
        } = self;
        w.put_u16(*node);
        qids.write(w);
        readings.write(w);
    }
}

impl Restorable for RowEntry {
    fn read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(RowEntry {
            node: r.u16()?,
            qids: Restorable::read(r)?,
            readings: Restorable::read(r)?,
        })
    }
}

impl Snapshot for PartialEntry {
    fn write(&self, w: &mut SnapWriter) {
        let PartialEntry { qid, partials } = self;
        qid.write(w);
        partials.write(w);
    }
}

impl Restorable for PartialEntry {
    fn read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(PartialEntry {
            qid: Restorable::read(r)?,
            partials: Restorable::read(r)?,
        })
    }
}

impl Snapshot for TtmqoPayload {
    fn write(&self, w: &mut SnapWriter) {
        match self {
            TtmqoPayload::Query { query, has_data } => {
                w.put_u8(0);
                query.write(w);
                has_data.write(w);
            }
            TtmqoPayload::Abort(qid) => {
                w.put_u8(1);
                qid.write(w);
            }
            TtmqoPayload::Wakeup { has_data } => {
                w.put_u8(2);
                has_data.write(w);
            }
            TtmqoPayload::SharedRows {
                epoch_ms,
                entries,
                assignments,
            } => {
                w.put_u8(3);
                w.put_u64(*epoch_ms);
                entries.write(w);
                assignments.write(w);
            }
            TtmqoPayload::SharedPartials {
                epoch_ms,
                entries,
                assignments,
            } => {
                w.put_u8(4);
                w.put_u64(*epoch_ms);
                entries.write(w);
                assignments.write(w);
            }
            TtmqoPayload::NoRoute => w.put_u8(5),
            TtmqoPayload::QueryRequest(qid) => {
                w.put_u8(6);
                qid.write(w);
            }
            TtmqoPayload::QueryShare(query) => {
                w.put_u8(7);
                query.write(w);
            }
        }
    }
}

impl Restorable for TtmqoPayload {
    fn read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(match r.u8()? {
            0 => TtmqoPayload::Query {
                query: Query::read(r)?,
                has_data: Restorable::read(r)?,
            },
            1 => TtmqoPayload::Abort(Restorable::read(r)?),
            2 => TtmqoPayload::Wakeup {
                has_data: Restorable::read(r)?,
            },
            3 => TtmqoPayload::SharedRows {
                epoch_ms: r.u64()?,
                entries: Restorable::read(r)?,
                assignments: Restorable::read(r)?,
            },
            4 => TtmqoPayload::SharedPartials {
                epoch_ms: r.u64()?,
                entries: Restorable::read(r)?,
                assignments: Restorable::read(r)?,
            },
            5 => TtmqoPayload::NoRoute,
            6 => TtmqoPayload::QueryRequest(Restorable::read(r)?),
            7 => TtmqoPayload::QueryShare(Query::read(r)?),
            b => {
                return Err(SnapshotError::Corrupt(format!(
                    "invalid TtmqoPayload tag {b}"
                )))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ttmqo_query::{parse_query, AggOp, Attribute};

    #[test]
    fn shared_rows_size_scales_with_entries() {
        let mut readings = Readings::new();
        readings.set(Attribute::Light, 1.0);
        let entry = RowEntry {
            node: 1,
            qids: [QueryId(1), QueryId(2)].into_iter().collect(),
            readings,
        };
        let one = TtmqoPayload::SharedRows {
            epoch_ms: 0,
            entries: vec![entry.clone()],
            assignments: vec![(NodeId(0), vec![QueryId(1), QueryId(2)])],
        };
        let two = TtmqoPayload::SharedRows {
            epoch_ms: 0,
            entries: vec![entry.clone(), entry],
            assignments: vec![(NodeId(0), vec![QueryId(1), QueryId(2)])],
        };
        assert!(two.wire_size() > one.wire_size());
        // One shared frame is smaller than two single-query frames would be:
        // entry bytes counted once, not once per query.
        assert!(one.wire_size() < 2 * (2 + 4 + 2 + 1 + 2));
    }

    #[test]
    fn identical_partials_share_value_bytes() {
        let p = vec![Some(AggOp::Max.seed(10.0))];
        let same = TtmqoPayload::SharedPartials {
            epoch_ms: 0,
            entries: vec![
                PartialEntry {
                    qid: QueryId(1),
                    partials: p.clone(),
                },
                PartialEntry {
                    qid: QueryId(2),
                    partials: p.clone(),
                },
            ],
            assignments: vec![(NodeId(0), vec![QueryId(1), QueryId(2)])],
        };
        let different = TtmqoPayload::SharedPartials {
            epoch_ms: 0,
            entries: vec![
                PartialEntry {
                    qid: QueryId(1),
                    partials: p,
                },
                PartialEntry {
                    qid: QueryId(2),
                    partials: vec![Some(AggOp::Max.seed(99.0))],
                },
            ],
            assignments: vec![(NodeId(0), vec![QueryId(1), QueryId(2)])],
        };
        assert!(same.wire_size() < different.wire_size());
    }

    #[test]
    fn flood_size_includes_piggyback() {
        let q = parse_query(QueryId(1), "select light epoch duration 2048").unwrap();
        let bare = TtmqoPayload::Query {
            query: q.clone(),
            has_data: vec![],
        };
        let loaded = TtmqoPayload::Query {
            query: q,
            has_data: vec![QueryId(1), QueryId(2)],
        };
        assert_eq!(loaded.wire_size() - bare.wire_size(), 4);
    }
}
