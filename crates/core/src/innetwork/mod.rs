//! Tier 2 — in-network optimization (§3.2): sharing over time (GCD epoch
//! scheduling), sharing over space (query-aware DAG routing, shared result
//! messages, multicast) and sleep mode.

mod app;
mod dag;
mod payload;

pub use app::{TtmqoApp, TtmqoConfig};
pub use dag::DagState;
pub use payload::{PartialEntry, RowEntry, TtmqoPayload};
