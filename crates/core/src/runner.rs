//! The experiment runner: executes one workload under one strategy and
//! reports the paper's metrics plus every user query's answers.
//!
//! The four strategies of the evaluation (§4):
//!
//! * [`Strategy::Baseline`] — every user query injected as-is, TinyDB
//!   processing (no multi-query optimization);
//! * [`Strategy::BsOnly`] — tier 1 only: user queries rewritten into
//!   synthetic queries at the base station, TinyDB processing in-network;
//! * [`Strategy::InNetOnly`] — tier 2 only: user queries injected as-is, but
//!   the network runs the TTMQO in-network protocol;
//! * [`Strategy::TwoTier`] — the full TTMQO scheme: rewrite first, then the
//!   in-network protocol executes the synthetic queries.

use crate::basestation::{
    map_epoch_answer_at, BaseStationOptimizer, CostModel, NetworkOp, OptimizerOptions,
    OptimizerStats,
};
use crate::innetwork::{TtmqoApp, TtmqoConfig};
use std::collections::{BTreeMap, BTreeSet};
use ttmqo_query::{EpochAnswer, Query, QueryId, Selection, BASE_EPOCH_MS};
use ttmqo_sim::{
    AuditReport, CompletenessReport, CorrelatedField, EngineStats, FaultPlan, FaultSchedule,
    Metrics, NodeId, NodeTimeseries, ProfileHandle, ProfilePhase, ProfileReport, QueryCompleteness,
    RadioParams, Restorable, SensorField, SimConfig, SimTime, Simulator, SnapReader, SnapWriter,
    Snapshot, SnapshotBuilder, SnapshotDocument, SnapshotError, TimeseriesConfig, Topology,
    TraceEvent, TraceHandle, UniformField, WindowRecorder, SECTION_RUNNER, SECTION_SIMULATOR,
};
use ttmqo_stats::{EmpiricalDistribution, Histogram, LevelStats, SelectivityEstimator};
use ttmqo_tinydb::{Command, Output, Srt, TinyDbApp, TinyDbConfig};

/// Which optimization tiers run (§4's four configurations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Strategy {
    /// No multi-query optimization (the paper's baseline).
    Baseline,
    /// Base-station optimization only.
    BsOnly,
    /// In-network optimization only.
    InNetOnly,
    /// The full two-tier TTMQO scheme.
    TwoTier,
}

impl Strategy {
    /// All strategies, in the order the paper's figures list them.
    pub const ALL: [Strategy; 4] = [
        Strategy::Baseline,
        Strategy::BsOnly,
        Strategy::InNetOnly,
        Strategy::TwoTier,
    ];

    /// Whether the base-station rewriting tier is active.
    pub fn uses_basestation_tier(self) -> bool {
        matches!(self, Strategy::BsOnly | Strategy::TwoTier)
    }

    /// Whether the in-network tier is active.
    pub fn uses_innetwork_tier(self) -> bool {
        matches!(self, Strategy::InNetOnly | Strategy::TwoTier)
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Strategy::Baseline => "baseline",
            Strategy::BsOnly => "bs-only",
            Strategy::InNetOnly => "in-net-only",
            Strategy::TwoTier => "two-tier",
        };
        f.write_str(s)
    }
}

/// One user-level workload action.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadAction {
    /// A user poses a query.
    Pose(Query),
    /// A user terminates a query.
    Terminate(QueryId),
}

/// A timestamped workload action.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadEvent {
    /// When the action happens.
    pub at: SimTime,
    /// The action.
    pub action: WorkloadAction,
}

impl WorkloadEvent {
    /// A query posed at `at_ms`.
    pub fn pose(at_ms: u64, query: Query) -> Self {
        WorkloadEvent {
            at: SimTime::from_ms(at_ms),
            action: WorkloadAction::Pose(query),
        }
    }

    /// A query terminated at `at_ms`.
    pub fn terminate(at_ms: u64, qid: QueryId) -> Self {
        WorkloadEvent {
            at: SimTime::from_ms(at_ms),
            action: WorkloadAction::Terminate(qid),
        }
    }
}

/// Sensor field used by an experiment.
#[derive(Debug, Clone, Copy)]
pub enum FieldKind {
    /// Deterministic hash-uniform readings (the estimator's assumption).
    Uniform,
    /// Spatially/temporally correlated readings.
    Correlated,
}

/// Full configuration of one experiment run.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// The strategy under test.
    pub strategy: Strategy,
    /// Grid side length (the paper uses 4 and 8 ⇒ 16 and 64 nodes).
    pub grid_n: usize,
    /// Simulated duration.
    pub duration: SimTime,
    /// Radio model.
    pub radio: RadioParams,
    /// Engine configuration (seed, maintenance traffic).
    pub sim: SimConfig,
    /// Termination parameter α of Algorithm 2.
    pub alpha: f64,
    /// Sensor field kind.
    pub field: FieldKind,
    /// Seed for the sensor field.
    pub field_seed: u64,
    /// Explicit topology overriding `grid_n` (random deployments, custom
    /// layouts). `None` uses the paper's n×n grid.
    pub topology_override: Option<Topology>,
    /// Tier-1 algorithm knobs beyond α (ablations).
    pub optimizer: OptimizerOptions,
    /// Tier-2 configuration (slotting, sleep, dynamic parents).
    pub innetwork: TtmqoConfig,
    /// Whether the base station feeds observed readings back into the cost
    /// model's selectivity estimator (§3.1.2's maintained statistics).
    pub adaptive_statistics: bool,
    /// Fault-injection plan (crashes, recoveries, loss windows). Empty by
    /// default: no fault events are scheduled, no extra randomness is drawn,
    /// and the run is bit-identical to a build without the fault subsystem.
    /// A non-empty plan also auto-arms the in-network parent failure
    /// detector (unless `innetwork.dead_parent_after` was set explicitly)
    /// and, for rewriting strategies, the base station's missing-result
    /// repair monitor.
    pub faults: FaultPlan,
    /// Trace sink for structured per-event observability. The default
    /// disabled handle costs one branch per event site and keeps the run
    /// bit-identical to a build without the trace subsystem.
    pub trace: TraceHandle,
    /// Windowed time-series collection. `None` (the default) records
    /// nothing and keeps the run bit-identical (the `trace` contract);
    /// `Some` fills [`RunReport::timeseries`] and selects the energy profile
    /// used for the report's energy fields.
    pub timeseries: Option<TimeseriesConfig>,
    /// Per-phase profiling handle, shared with the engine. The default
    /// disabled handle costs one branch per site; enabled, it attributes
    /// wall-clock time to engine and runner phases and fills
    /// [`RunReport::profile`] — without drawing RNG or branching on
    /// simulated state, so the run stays bit-identical either way (the
    /// `trace` contract).
    pub profile: ProfileHandle,
    /// Run the standing invariant auditor over the finished run and fill
    /// [`RunReport::audit`]. Strictly post-hoc arithmetic over artifacts
    /// the run already produced — no RNG draws, no mid-run branches — so
    /// an audited run is bit-identical to an unaudited one (the `trace`
    /// contract). Violations are *reported*, never panicked on: callers
    /// (campaigns, CI gates) decide how loudly to fail.
    pub audit: bool,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            strategy: Strategy::TwoTier,
            grid_n: 4,
            duration: SimTime::from_ms(120 * 2048),
            radio: RadioParams::default(),
            sim: SimConfig::default(),
            alpha: 0.6,
            field: FieldKind::Uniform,
            field_seed: 0xF1E1D,
            topology_override: None,
            adaptive_statistics: false,
            optimizer: OptimizerOptions::default(),
            innetwork: TtmqoConfig::default(),
            faults: FaultPlan::default(),
            trace: TraceHandle::disabled(),
            timeseries: None,
            profile: ProfileHandle::disabled(),
            audit: false,
        }
    }
}

/// What one run produced.
#[derive(Debug)]
pub struct RunReport {
    /// The strategy that ran.
    pub strategy: Strategy,
    /// Radio/sensing metrics of the whole run.
    pub metrics: Metrics,
    /// Per *user* query: `(epoch start ms, answer)` in epoch order.
    pub answers: BTreeMap<QueryId, Vec<(u64, EpochAnswer)>>,
    /// Time-weighted mean number of running synthetic queries
    /// (= user queries for strategies without the first tier).
    pub avg_synthetic_count: f64,
    /// Time-weighted mean of the optimizer's benefit ratio (0 for
    /// strategies without the first tier).
    pub avg_benefit_ratio: f64,
    /// Optimizer counters (None without the first tier).
    pub optimizer_stats: Option<OptimizerStats>,
    /// Answer-completeness and repair accounting (per user query).
    pub completeness: CompletenessReport,
    /// Engine hot-path counters, including the per-phase event breakdown
    /// (timer / deliver / command / maintenance / fault).
    pub engine: EngineStats,
    /// Whole-run radio+sensing energy (mJ), under the energy profile in
    /// force: the timeseries config's profile when one is set, the default
    /// profile otherwise.
    pub energy_mj: f64,
    /// The hottest single node's energy (mJ) under the same profile.
    pub max_node_energy_mj: f64,
    /// Windowed time-series; `Some` iff [`ExperimentConfig::timeseries`]
    /// was set.
    pub timeseries: Option<RunTimeseries>,
    /// Per-phase wall-time attribution; `Some` iff
    /// [`ExperimentConfig::profile`] was enabled. Wall-clock derived and
    /// therefore machine-dependent — excluded from determinism comparisons.
    pub profile: Option<ProfileReport>,
    /// Standing invariant audit; `Some` iff [`ExperimentConfig::audit`]
    /// was set. Check the report's `is_clean()` — the runner itself never
    /// fails a run over a violation.
    pub audit: Option<AuditReport>,
}

impl RunReport {
    /// The paper's headline metric for this run.
    pub fn avg_transmission_time_pct(&self) -> f64 {
        self.metrics.avg_transmission_time_pct()
    }
}

/// Range upper bound (ms) of the per-window answer-latency histograms.
/// Latencies beyond it clamp into the top bucket.
const LATENCY_HIST_MAX_MS: f64 = 4096.0;

/// Bucket count of the per-window answer-latency histograms.
const LATENCY_HIST_BUCKETS: usize = 16;

fn empty_latency_hist() -> Histogram {
    Histogram::new(0.0, LATENCY_HIST_MAX_MS, LATENCY_HIST_BUCKETS)
        .expect("static latency histogram config is valid")
}

/// One user query's windowed answer series, on the run's timeseries window
/// grid.
#[derive(Debug, Clone)]
pub struct QueryWindowSeries {
    /// Per-window answer-latency histogram (epoch start → arrival at the
    /// base station, ms). Answers are bucketed by arrival time.
    pub latency: Vec<Histogram>,
    /// Answers mapped to this user per window.
    pub answers: Vec<u64>,
    /// Of those, answers carrying at least one row or aggregate.
    pub nonempty: Vec<u64>,
}

/// Base-station-side windowed answer accounting, aligned with the engine's
/// [`WindowRecorder`] grid. Built only when timeseries collection is on.
#[derive(Debug)]
struct TimeseriesCollector {
    window_ms: u64,
    per_query: BTreeMap<QueryId, QueryWindowSeries>,
}

impl TimeseriesCollector {
    fn new(window_ms: u64) -> Self {
        TimeseriesCollector {
            window_ms: window_ms.max(1),
            per_query: BTreeMap::new(),
        }
    }

    fn note_answer(&mut self, uid: QueryId, arrival_ms: u64, latency_ms: u64, nonempty: bool) {
        let w = (arrival_ms / self.window_ms) as usize;
        let series = self
            .per_query
            .entry(uid)
            .or_insert_with(|| QueryWindowSeries {
                latency: Vec::new(),
                answers: Vec::new(),
                nonempty: Vec::new(),
            });
        while series.latency.len() <= w {
            series.latency.push(empty_latency_hist());
            series.answers.push(0);
            series.nonempty.push(0);
        }
        series.latency[w].add(latency_ms as f64);
        series.answers[w] += 1;
        if nonempty {
            series.nonempty[w] += 1;
        }
    }
}

/// Windowed time-series of one run: per-node radio/energy counters from the
/// engine plus per-user-query answer/latency series on the same window grid,
/// and the crash times needed for fault-recovery convergence analysis.
#[derive(Debug, Clone)]
pub struct RunTimeseries {
    /// Per-node windowed counters (tx/rx busy, sleep, samples, energy) with
    /// per-window load-imbalance statistics.
    pub nodes: NodeTimeseries,
    /// Per user query: windowed answer counts and latency histograms.
    pub per_query: BTreeMap<QueryId, QueryWindowSeries>,
    /// Crash times (ms) of the run's materialized fault schedule, in time
    /// order; empty for fault-free runs.
    pub crash_times_ms: Vec<u64>,
}

impl RunTimeseries {
    /// Window length, ms.
    pub fn window_ms(&self) -> u64 {
        self.nodes.window_ms
    }

    /// Total non-empty answers per window, summed across user queries. At
    /// least as long as the node series' window list (one longer when an
    /// answer arrives exactly at the horizon of an evenly divided run).
    pub fn window_nonempty(&self) -> Vec<u64> {
        let mut out = vec![0u64; self.nodes.windows.len()];
        for series in self.per_query.values() {
            for (w, &ne) in series.nonempty.iter().enumerate() {
                if w >= out.len() {
                    out.resize(w + 1, 0);
                }
                out[w] += ne;
            }
        }
        out
    }

    /// First window after `crash_ms` where the network has converged back to
    /// its pre-fault baseline: per-window tx-busy Gini within `tolerance`
    /// (absolute) of the pre-crash mean AND non-empty answers per window at
    /// least `(1 - tolerance)` of the pre-crash mean. The baseline averages
    /// every full-length window strictly before the crash's window.
    ///
    /// Returns the start (ms) of the first converged window, `None` when
    /// there is no pre-crash baseline or the run never converges.
    pub fn convergence_after_ms(&self, crash_ms: u64, tolerance: f64) -> Option<u64> {
        let wm = self.nodes.window_ms.max(1);
        let crash_w = (crash_ms / wm) as usize;
        let nonempty = self.window_nonempty();
        let windows = &self.nodes.windows;
        let mut gini_sum = 0.0;
        let mut ne_sum = 0.0;
        let mut n = 0u32;
        for (w, stats) in windows.iter().enumerate().take(crash_w) {
            if stats.len_ms == wm {
                gini_sum += stats.gini_tx_busy();
                ne_sum += nonempty.get(w).copied().unwrap_or(0) as f64;
                n += 1;
            }
        }
        if n == 0 {
            return None;
        }
        let gini_base = gini_sum / n as f64;
        let ne_base = ne_sum / n as f64;
        for (w, stats) in windows.iter().enumerate().skip(crash_w + 1) {
            if stats.len_ms == 0 {
                continue;
            }
            let gini_ok = (stats.gini_tx_busy() - gini_base).abs() <= tolerance;
            let ne_ok = nonempty.get(w).copied().unwrap_or(0) as f64 >= (1.0 - tolerance) * ne_base;
            if gini_ok && ne_ok {
                return Some(stats.start_ms);
            }
        }
        None
    }

    /// [`Self::convergence_after_ms`] for every crash in
    /// [`Self::crash_times_ms`]: `(crash ms, converged window start ms)`.
    pub fn convergence_ms(&self, tolerance: f64) -> Vec<(u64, Option<u64>)> {
        self.crash_times_ms
            .iter()
            .map(|&c| (c, self.convergence_after_ms(c, tolerance)))
            .collect()
    }

    /// Serializes the full series as one JSON object with a deterministic
    /// field order (hand-rolled; the vendored serde is an API stub).
    pub fn to_json(&self) -> String {
        fn push_u64_array(out: &mut String, key: &str, vals: &[u64]) {
            out.push('"');
            out.push_str(key);
            out.push_str("\":[");
            for (i, v) in vals.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&v.to_string());
            }
            out.push(']');
        }
        let mut out = String::with_capacity(4096);
        out.push_str(&format!(
            "{{\"schema_version\":{},",
            ttmqo_sim::SCHEMA_VERSION
        ));
        push_u64_array(&mut out, "crash_times_ms", &self.crash_times_ms);
        out.push_str(",\"nodes\":");
        out.push_str(&self.nodes.to_json());
        out.push_str(",\"queries\":{");
        for (i, (qid, series)) in self.per_query.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{{", qid.0));
            push_u64_array(&mut out, "answers", &series.answers);
            out.push(',');
            push_u64_array(&mut out, "nonempty", &series.nonempty);
            out.push_str(&format!(
                ",\"latency_lo_ms\":{},\"latency_hi_ms\":{},\"latency_buckets\":[",
                0.0, LATENCY_HIST_MAX_MS
            ));
            for (j, hist) in series.latency.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push('[');
                for (k, b) in hist.buckets().iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    out.push_str(&b.to_string());
                }
                out.push(']');
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }
}

fn build_field(config: &ExperimentConfig, topo: &Topology) -> Box<dyn SensorField + Send + Sync> {
    match config.field {
        FieldKind::Uniform => Box::new(UniformField::new(config.field_seed)),
        FieldKind::Correlated => {
            Box::new(CorrelatedField::for_topology(config.field_seed, topo).bind(topo))
        }
    }
}

fn build_optimizer(config: &ExperimentConfig, topo: &Topology) -> BaseStationOptimizer {
    let levels = LevelStats::from_levels(topo.levels().iter().copied());
    // Value attributes use the uniform model (the paper's configuration);
    // `nodeid` gets an empirical model over the *actually deployed* ids —
    // a uniform model over the full id domain would wildly overestimate the
    // selectivity of nodeid predicates on a small deployment.
    let mut estimator = SelectivityEstimator::uniform();
    estimator.set_model(
        ttmqo_query::Attribute::NodeId,
        Box::new(EmpiricalDistribution::from_samples(
            ttmqo_query::Attribute::NodeId,
            topo.node_count(),
            (1..topo.node_count()).map(|i| i as f64),
        )),
    );
    let positions: Vec<(f64, f64)> = topo
        .nodes()
        .filter(|n| *n != NodeId::BASE_STATION)
        .map(|n| {
            let p = topo.position(n);
            (p.x, p.y)
        })
        .collect();
    let model = CostModel::new(
        config.radio.startup_ms,
        config.radio.per_byte_ms,
        levels,
        estimator,
    )
    .with_positions(positions);
    BaseStationOptimizer::with_options(
        model,
        OptimizerOptions {
            alpha: config.alpha,
            ..config.optimizer
        },
    )
}

/// Runs one experiment: the workload under the configured strategy.
///
/// Equivalent to `RunSession::new(config, workload).finish()`; the session
/// API additionally allows checkpointing and restoring mid-run.
///
/// # Panics
///
/// Panics if the grid cannot be constructed (e.g. `grid_n == 0`).
pub fn run_experiment(config: &ExperimentConfig, workload: &[WorkloadEvent]) -> RunReport {
    RunSession::new(config, workload).finish()
}

/// The in-network parent failure detector auto-arms for faulty runs unless
/// the caller chose a threshold; fault-free runs keep it off, so their
/// routing (and the golden snapshot) is untouched.
fn effective_innetwork(config: &ExperimentConfig) -> TtmqoConfig {
    let mut innetwork = config.innetwork.clone();
    if !config.faults.is_empty() && innetwork.dead_parent_after == 0 {
        innetwork.dead_parent_after = 3;
    }
    innetwork
}

/// Snapshot of user → (synthetic id, synthetic query, user query) taken after
/// each workload event, used to map synthetic answers back to users.
type MappingSnapshot = BTreeMap<QueryId, (QueryId, Query, Query)>;

/// The last entry of the time-sorted `timeline` whose timestamp is
/// `<= at` — the snapshot in force at time `at`.
///
/// `timeline` must be sorted by timestamp (duplicates allowed; the latest
/// duplicate wins, matching "state after all events at that instant").
/// Binary search: the predicate `t <= at` is monotone over a sorted
/// timeline, so `partition_point` finds the first entry *after* `at` and
/// the one just before it is the answer. Replaces an O(n) reverse scan that
/// made answer mapping O(outputs × snapshots) on long workloads.
fn snapshot_at<T>(timeline: &[(u64, T)], at: u64) -> Option<&T> {
    let first_after = timeline.partition_point(|(t, _)| *t <= at);
    first_after.checked_sub(1).map(|idx| &timeline[idx].1)
}

/// How many consecutive missing expected epochs trigger a Tier-1 repair.
const REPAIR_AFTER_MISSING: u32 = 2;

/// A repair whose answers never come back (e.g. the replacement flood was
/// lost too) stops blocking further repair attempts after this long.
const REPAIR_GRACE_MS: u64 = 8 * BASE_EPOCH_MS;

/// The base station's missing-result detector: audits every user query's
/// expected epochs as their collection windows close, and asks for a Tier-1
/// re-optimization of the owning synthetic query when a query goes silent
/// for [`REPAIR_AFTER_MISSING`] consecutive epochs. Armed only for faulty
/// runs under a rewriting strategy.
#[derive(Debug)]
struct RepairMonitor {
    /// Collection-window length: the epoch firing at `e` is audited once the
    /// clock passes `e + window_ms` (its answer should have closed by then).
    window_ms: u64,
    /// Next epoch start (ms) to audit, per live user query.
    audit_next: BTreeMap<QueryId, u64>,
    /// Consecutive missing expected epochs, per live user query.
    streaks: BTreeMap<QueryId, u32>,
    /// Epochs answered with a non-empty result, per user query.
    answered: BTreeMap<QueryId, BTreeSet<u64>>,
    /// Repairs whose first post-repair answer has not arrived yet:
    /// `(trigger ms, member user queries)`.
    pending: Vec<(u64, Vec<QueryId>)>,
    repairs: u64,
    latencies_ms: Vec<u64>,
}

impl RepairMonitor {
    fn new(window_ms: u64) -> Self {
        RepairMonitor {
            window_ms,
            audit_next: BTreeMap::new(),
            streaks: BTreeMap::new(),
            answered: BTreeMap::new(),
            pending: Vec::new(),
            repairs: 0,
            latencies_ms: Vec::new(),
        }
    }

    fn note_posed(&mut self, q: &Query, t_ms: u64) {
        self.audit_next
            .insert(q.id(), q.epoch().next_fire_at(t_ms + 1));
        self.streaks.insert(q.id(), 0);
    }

    fn note_terminated(&mut self, qid: QueryId) {
        self.audit_next.remove(&qid);
        self.streaks.remove(&qid);
        self.pending.retain_mut(|(_, members)| {
            members.retain(|m| *m != qid);
            !members.is_empty()
        });
    }

    fn note_answer(&mut self, uid: QueryId, epoch_ms: u64, nonempty: bool, arrival_ms: u64) {
        if !nonempty {
            return;
        }
        self.answered.entry(uid).or_default().insert(epoch_ms);
        if let Some(pos) = self.pending.iter().position(|(_, m)| m.contains(&uid)) {
            let (t0, _) = self.pending.remove(pos);
            self.latencies_ms.push(arrival_ms.saturating_sub(t0));
        }
    }

    /// Audits every epoch whose collection window closed by time `b`;
    /// returns the user queries whose missing streak crossed the threshold.
    fn due_repairs(&mut self, b: u64, live: &BTreeMap<QueryId, Query>) -> Vec<QueryId> {
        self.pending
            .retain(|(t0, _)| b.saturating_sub(*t0) <= REPAIR_GRACE_MS);
        let mut due = Vec::new();
        for (uid, q) in live {
            let Some(next) = self.audit_next.get_mut(uid) else {
                continue;
            };
            let step = q.epoch().as_ms();
            let answered = self.answered.entry(*uid).or_default();
            let streak = self.streaks.entry(*uid).or_insert(0);
            while *next + self.window_ms <= b {
                if answered.contains(next) {
                    *streak = 0;
                } else {
                    *streak += 1;
                }
                *next += step;
            }
            if *streak >= REPAIR_AFTER_MISSING && !self.pending.iter().any(|(_, m)| m.contains(uid))
            {
                due.push(*uid);
            }
        }
        due
    }

    fn note_repaired(&mut self, b: u64, members: &[QueryId], live: &BTreeMap<QueryId, Query>) {
        self.repairs += 1;
        self.pending.push((b, members.to_vec()));
        for m in members {
            self.streaks.insert(*m, 0);
            if let Some(q) = live.get(m) {
                // Give the replacement flood until its next epoch before the
                // audit resumes counting.
                self.audit_next.insert(*m, q.epoch().next_fire_at(b + 1));
            }
        }
    }
}

/// Drains one batch of network outputs: feeds adaptive statistics, maps each
/// answer back to the user queries it serves, and notifies the repair
/// monitor. Attribution is incremental but identical to the bulk end-of-run
/// mapping it replaced: an answer for epoch `e` is always emitted (and thus
/// drained) after every workload event at or before `e` has executed, so the
/// snapshot in force at `e` already exists, and a termination that should
/// drop the answer (`arrival > termination`) has always been recorded by
/// drain time.
#[allow(clippy::too_many_arguments)]
fn ingest_outputs(
    fresh: Vec<ttmqo_sim::OutputRecord<Output>>,
    adaptive: bool,
    optimizer: &mut Option<BaseStationOptimizer>,
    snapshots: &[(u64, MappingSnapshot)],
    terminated_at: &BTreeMap<QueryId, u64>,
    topo: &Topology,
    answers: &mut BTreeMap<QueryId, Vec<(u64, EpochAnswer)>>,
    mut monitor: Option<&mut RepairMonitor>,
    mut timeseries: Option<&mut TimeseriesCollector>,
    trace: &TraceHandle,
) {
    for record in fresh {
        let Output::Answer {
            qid,
            epoch_ms,
            answer,
        } = &record.output;
        // §3.1.2 statistics maintenance: learn the data distribution from
        // the result rows the base station receives, so later decisions use
        // it.
        if adaptive {
            if let Some(opt) = optimizer.as_mut() {
                if let EpochAnswer::Rows(rows) = answer {
                    for row in rows {
                        for (attr, value) in row.readings.iter() {
                            opt.observe_reading(attr, value);
                        }
                    }
                }
            }
        }
        // Mapping in force at the answered epoch's start.
        let Some(snap) = snapshot_at(snapshots, *epoch_ms) else {
            continue;
        };
        for (uid, (syn_id, syn_q, user_q)) in snap {
            if *syn_id != *qid {
                continue;
            }
            // The epoch started while `uid` was live, but the answer is only
            // emitted at the epoch's close — drop it if the user terminated
            // in between. Answers arriving at the termination instant itself
            // still belong to the user (it was live when they materialized).
            if terminated_at
                .get(uid)
                .is_some_and(|&term_ms| record.time.as_ms() > term_ms)
            {
                continue;
            }
            let position_of = |node: u16| {
                let id = NodeId(node);
                (id.index() < topo.node_count()).then(|| {
                    let p = topo.position(id);
                    (p.x, p.y)
                })
            };
            if let Some(mapped) =
                map_epoch_answer_at(user_q, syn_q, *epoch_ms, answer, &position_of)
            {
                let nonempty = match &mapped {
                    EpochAnswer::Rows(rows) => !rows.is_empty(),
                    EpochAnswer::Aggregates(vals) => !vals.is_empty(),
                };
                if let Some(mon) = monitor.as_deref_mut() {
                    mon.note_answer(*uid, *epoch_ms, nonempty, record.time.as_ms());
                }
                if let Some(col) = timeseries.as_deref_mut() {
                    col.note_answer(
                        *uid,
                        record.time.as_ms(),
                        record.time.as_ms().saturating_sub(*epoch_ms),
                        nonempty,
                    );
                }
                if trace.is_enabled() {
                    let rows = match &mapped {
                        EpochAnswer::Rows(rows) => rows.len() as u64,
                        EpochAnswer::Aggregates(_) => 0,
                    };
                    trace.emit(
                        record.time.as_ms() * 1000,
                        TraceEvent::AnswerMapped {
                            user: *uid,
                            synthetic: *syn_id,
                            epoch_ms: *epoch_ms,
                            rows,
                            nonempty,
                            latency_ms: record.time.as_ms().saturating_sub(*epoch_ms),
                        },
                    );
                }
                answers.entry(*uid).or_default().push((*epoch_ms, mapped));
            }
        }
    }
}

/// Appends the user → synthetic mapping in force after the events at `t`.
fn take_mapping_snapshot(
    t: u64,
    optimizer: &Option<BaseStationOptimizer>,
    live: &BTreeMap<QueryId, Query>,
    snapshots: &mut Vec<(u64, MappingSnapshot)>,
) {
    let mut snap = MappingSnapshot::new();
    if let Some(opt) = optimizer {
        for (uid, uq) in live {
            if let Some(syn_id) = opt.mapping(*uid) {
                if let Some(sq) = opt.synthetic(syn_id) {
                    snap.insert(*uid, (syn_id, sq.query().clone(), uq.clone()));
                }
            }
        }
    } else {
        for (uid, uq) in live {
            snap.insert(*uid, (*uid, uq.clone(), uq.clone()));
        }
    }
    snapshots.push((t, snap));
}

/// The two concrete simulators a run can drive: the in-network tier runs the
/// TTMQO protocol, everything else the TinyDB baseline.
enum SimKind {
    /// In-network TTMQO protocol (`InNetOnly`, `TwoTier`).
    Ttmqo(Box<Simulator<TtmqoApp>>),
    /// TinyDB baseline processing (`Baseline`, `BsOnly`).
    TinyDb(Box<Simulator<TinyDbApp>>),
}

macro_rules! with_sim {
    ($kind:expr, $sim:ident => $body:expr) => {
        match $kind {
            SimKind::Ttmqo($sim) => $body,
            SimKind::TinyDb($sim) => $body,
        }
    };
}

impl SimKind {
    fn run_until(&mut self, t: SimTime) {
        with_sim!(self, s => s.run_until(t))
    }

    fn take_outputs(&mut self) -> Vec<ttmqo_sim::OutputRecord<Output>> {
        with_sim!(self, s => s.take_outputs())
    }

    fn schedule_command(&mut self, at: SimTime, node: NodeId, cmd: Command) {
        with_sim!(self, s => s.schedule_command(at, node, cmd))
    }

    fn metrics(&self) -> &Metrics {
        with_sim!(self, s => s.metrics())
    }

    fn engine_stats(&self) -> EngineStats {
        with_sim!(self, s => s.engine_stats())
    }

    fn take_timeseries(&mut self) -> Option<Box<WindowRecorder>> {
        with_sim!(self, s => s.take_timeseries())
    }

    fn replace_fault_plan(&mut self, plan: &FaultPlan) {
        with_sim!(self, s => s.replace_fault_plan(plan))
    }

    fn set_trace(&mut self, trace: TraceHandle) {
        with_sim!(self, s => s.set_trace(trace))
    }

    fn set_profile(&mut self, profile: ProfileHandle) {
        with_sim!(self, s => s.set_profile(profile))
    }

    fn now(&self) -> SimTime {
        with_sim!(self, s => s.now())
    }

    fn write_snapshot(&self, w: &mut SnapWriter) {
        with_sim!(self, s => s.write_snapshot(w))
    }
}

/// Stable on-disk tag of each strategy inside runner snapshot sections.
fn strategy_tag(s: Strategy) -> u8 {
    match s {
        Strategy::Baseline => 0,
        Strategy::BsOnly => 1,
        Strategy::InNetOnly => 2,
        Strategy::TwoTier => 3,
    }
}

fn strategy_name_of_tag(tag: u8) -> String {
    match tag {
        0 => "baseline".into(),
        1 => "bs-only".into(),
        2 => "in-net-only".into(),
        3 => "two-tier".into(),
        other => format!("unknown strategy tag {other}"),
    }
}

/// One experiment in progress: the simulator plus every piece of
/// base-station-side driver state (answer attribution, repair monitoring,
/// time-weighted statistics, completeness bookkeeping).
///
/// [`run_experiment`] is `RunSession::new(..).finish()`. The session API
/// adds mid-run control: [`run_to`](Self::run_to) advances to an arbitrary
/// time, [`checkpoint`](Self::checkpoint) serializes the complete run state
/// into a versioned snapshot document, and [`restore`](Self::restore)
/// resumes it such that finishing is bit-identical — same [`RunReport`],
/// same trace events — to a run that never stopped.
pub struct RunSession {
    config: ExperimentConfig,
    topo: Topology,
    events: Vec<WorkloadEvent>,
    /// Next workload event to apply.
    event_idx: usize,
    sim: SimKind,
    optimizer: Option<BaseStationOptimizer>,
    /// Materialized fault schedule (completeness expectations); recomputed
    /// from the config at restore, never serialized.
    schedule: Option<FaultSchedule>,
    window_ms: u64,
    monitor: Option<RepairMonitor>,
    ts_collector: Option<TimeseriesCollector>,
    live_users: BTreeMap<QueryId, Query>,
    /// When each user query was terminated, ms. TinyDB labels an answer with
    /// its epoch's *start* time but emits it at the epoch's close, so an
    /// epoch can straddle a Terminate; attribution also checks the answer's
    /// arrival time against this.
    terminated_at: BTreeMap<QueryId, u64>,
    posed_at: BTreeMap<QueryId, u64>,
    posed_query: BTreeMap<QueryId, Query>,
    snapshots: Vec<(u64, MappingSnapshot)>,
    weighted_syn: f64,
    weighted_ratio: f64,
    last_t: u64,
    current_syn_count: usize,
    current_ratio: f64,
    answers: BTreeMap<QueryId, Vec<(u64, EpochAnswer)>>,
    /// Highest base-epoch boundary the repair monitor has audited (and the
    /// floor above which the next audit boundary is computed). Advanced to
    /// the event time at each workload event, matching the audit loop the
    /// monolithic driver ran per inter-event interval.
    audited_to: u64,
}

impl std::fmt::Debug for RunSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunSession")
            .field("strategy", &self.config.strategy)
            .field("now_ms", &self.sim.now().as_ms())
            .field("event_idx", &self.event_idx)
            .field("live_users", &self.live_users.len())
            .finish_non_exhaustive()
    }
}

impl RunSession {
    /// Builds a session at time zero, ready to run the workload.
    ///
    /// # Panics
    ///
    /// Panics if the grid cannot be constructed (e.g. `grid_n == 0`).
    pub fn new(config: &ExperimentConfig, workload: &[WorkloadEvent]) -> RunSession {
        let topo_t0 = config.profile.start();
        let topo = config
            .topology_override
            .clone()
            .unwrap_or_else(|| Topology::grid(config.grid_n).expect("valid experiment grid"));
        config.profile.finish(ProfilePhase::TopologyBuild, topo_t0);
        let events = Self::prepare_events(config, workload);
        let sim = if config.strategy.uses_innetwork_tier() {
            let field = build_field(config, &topo);
            let innetwork = effective_innetwork(config);
            let mut sim = Simulator::new(
                topo.clone(),
                config.radio.clone(),
                config.sim.clone(),
                field,
                move |_, _| TtmqoApp::new(innetwork.clone()),
            );
            sim.set_trace(config.trace.clone());
            sim.set_profile(config.profile.clone());
            sim.set_timeseries(
                config
                    .timeseries
                    .as_ref()
                    .map(|c| Box::new(WindowRecorder::new(topo.node_count(), c))),
            );
            sim.install_fault_plan(&config.faults);
            SimKind::Ttmqo(Box::new(sim))
        } else {
            let field = build_field(config, &topo);
            let mut sim = Simulator::new(
                topo.clone(),
                config.radio.clone(),
                config.sim.clone(),
                field,
                |_, _| TinyDbApp::new(TinyDbConfig::default()),
            );
            sim.set_trace(config.trace.clone());
            sim.set_profile(config.profile.clone());
            sim.set_timeseries(
                config
                    .timeseries
                    .as_ref()
                    .map(|c| Box::new(WindowRecorder::new(topo.node_count(), c))),
            );
            sim.install_fault_plan(&config.faults);
            SimKind::TinyDb(Box::new(sim))
        };

        let rewriting = config.strategy.uses_basestation_tier();
        let optimizer = rewriting.then(|| {
            let mut opt = build_optimizer(config, &topo);
            opt.set_trace(config.trace.clone());
            opt
        });
        // Fault bookkeeping: the same deterministic schedule the engine
        // executes, used for completeness expectations, plus the repair
        // monitor (armed only for faulty runs with the rewriting tier —
        // fault-free runs take exactly the pre-fault code path).
        let schedule = (!config.faults.is_empty()).then(|| config.faults.materialize(&topo));
        let window_ms = (topo.max_level() as u64 + 1) * config.innetwork.slot_ms
            + config.innetwork.jitter_ms
            + 32;
        let monitor = (rewriting && schedule.is_some()).then(|| RepairMonitor::new(window_ms));
        let ts_collector = config
            .timeseries
            .as_ref()
            .map(|c| TimeseriesCollector::new(c.window_ms));

        RunSession {
            config: config.clone(),
            topo,
            events,
            event_idx: 0,
            sim,
            optimizer,
            schedule,
            window_ms,
            monitor,
            ts_collector,
            live_users: BTreeMap::new(),
            terminated_at: BTreeMap::new(),
            posed_at: BTreeMap::new(),
            posed_query: BTreeMap::new(),
            snapshots: Vec::new(),
            weighted_syn: 0.0,
            weighted_ratio: 0.0,
            last_t: 0,
            current_syn_count: 0,
            current_ratio: 0.0,
            answers: BTreeMap::new(),
            audited_to: 0,
        }
    }

    /// Sorts the workload and drops events the run can never observe. An
    /// event scheduled at or past `duration` would push the time-weighted
    /// accounting past the measured window (and underflow the
    /// `duration − last_event` interval).
    pub(crate) fn prepare_events(
        config: &ExperimentConfig,
        workload: &[WorkloadEvent],
    ) -> Vec<WorkloadEvent> {
        let mut events: Vec<WorkloadEvent> = workload.to_vec();
        events.sort_by_key(|e| e.at);
        events.retain(|e| e.at < config.duration);
        events
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// The configuration the session runs under.
    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    /// Drains pending network outputs into the answer/statistics state.
    fn ingest(&mut self) {
        let t0 = self.config.profile.start();
        let fresh = self.sim.take_outputs();
        ingest_outputs(
            fresh,
            self.config.adaptive_statistics,
            &mut self.optimizer,
            &self.snapshots,
            &self.terminated_at,
            &self.topo,
            &mut self.answers,
            self.monitor.as_mut(),
            self.ts_collector.as_mut(),
            &self.config.trace,
        );
        self.config.profile.finish(ProfilePhase::AnswerMapping, t0);
    }

    /// Folds the time-weighted statistics over `[last_t, t_ms)`. Called only
    /// at workload events, repairs, and the end of the run — never at a
    /// checkpoint, so resuming folds the same intervals a straight run does.
    fn fold_dt(&mut self, t_ms: u64) {
        let dt = t_ms.saturating_sub(self.last_t) as f64;
        self.weighted_syn += self.current_syn_count as f64 * dt;
        self.weighted_ratio += self.current_ratio * dt;
        self.last_t = t_ms;
    }

    /// With the repair monitor armed, advances in base-epoch steps so the
    /// base station audits for missing answers while time passes; without
    /// it, this is a no-op (the pre-fault behaviour). Audits boundaries
    /// strictly below `t_ms`, plus `t_ms` itself when `inclusive` (a
    /// mid-interval stop at an audit boundary must run that audit, exactly
    /// as a straight run does when its clock passes the boundary).
    fn audit_to(&mut self, t_ms: u64, inclusive: bool) {
        if self.monitor.is_none() {
            return;
        }
        let mut b = (self.audited_to / BASE_EPOCH_MS + 1) * BASE_EPOCH_MS;
        while b < t_ms || (inclusive && b == t_ms) {
            self.sim.run_until(SimTime::from_ms(b));
            self.ingest();
            let due = match self.monitor.as_mut() {
                Some(mon) => mon.due_repairs(b, &self.live_users),
                None => Vec::new(),
            };
            let mut repaired = false;
            for uid in due {
                let Some(opt) = self.optimizer.as_mut() else {
                    break;
                };
                let Some(syn) = opt.mapping(uid) else {
                    continue;
                };
                let members: Vec<QueryId> = opt
                    .synthetic(syn)
                    .map(|sq| sq.members().collect())
                    .unwrap_or_default();
                // Account the time-weighted stats up to the repair.
                let dt = (b - self.last_t) as f64;
                self.weighted_syn += self.current_syn_count as f64 * dt;
                self.weighted_ratio += self.current_ratio * dt;
                self.last_t = b;
                opt.set_trace_time(b);
                let t0 = self.config.profile.start();
                let ops = opt.reoptimize(syn);
                self.config.profile.finish(ProfilePhase::Reoptimize, t0);
                for op in ops {
                    let cmd = match op {
                        NetworkOp::Inject(q) => Command::Pose(q),
                        NetworkOp::Abort(id) => Command::Terminate(id),
                    };
                    self.sim
                        .schedule_command(SimTime::from_ms(b), NodeId::BASE_STATION, cmd);
                }
                self.current_syn_count = self
                    .optimizer
                    .as_ref()
                    .map_or(self.live_users.len(), |o| o.synthetic_count());
                self.current_ratio = self.optimizer.as_ref().map_or(0.0, |o| o.benefit_ratio());
                if let Some(mon) = self.monitor.as_mut() {
                    mon.note_repaired(b, &members, &self.live_users);
                }
                repaired = true;
            }
            if repaired {
                take_mapping_snapshot(b, &self.optimizer, &self.live_users, &mut self.snapshots);
            }
            self.audited_to = b;
            b += BASE_EPOCH_MS;
        }
    }

    /// Applies the next workload event (the simulator has already been
    /// advanced to its time and outputs drained).
    fn apply_event(&mut self) {
        let event = self.events[self.event_idx].clone();
        self.event_idx += 1;
        let t = event.at;
        let ops: Vec<NetworkOp> = match (&mut self.optimizer, event.action) {
            (Some(opt), WorkloadAction::Pose(q)) => {
                self.live_users.insert(q.id(), q.clone());
                self.posed_at.insert(q.id(), t.as_ms());
                self.posed_query.insert(q.id(), q.clone());
                if let Some(mon) = self.monitor.as_mut() {
                    mon.note_posed(&q, t.as_ms());
                }
                opt.set_trace_time(t.as_ms());
                let t0 = self.config.profile.start();
                let ops = opt
                    .insert(q)
                    .expect("workload ids are unique and unreserved");
                self.config
                    .profile
                    .finish(ProfilePhase::AdmissionScoring, t0);
                ops
            }
            (Some(opt), WorkloadAction::Terminate(qid)) => {
                self.live_users.remove(&qid);
                self.terminated_at.insert(qid, t.as_ms());
                if let Some(mon) = self.monitor.as_mut() {
                    mon.note_terminated(qid);
                }
                opt.set_trace_time(t.as_ms());
                opt.terminate(qid)
            }
            (None, WorkloadAction::Pose(q)) => {
                self.live_users.insert(q.id(), q.clone());
                self.posed_at.insert(q.id(), t.as_ms());
                self.posed_query.insert(q.id(), q.clone());
                vec![NetworkOp::Inject(q)]
            }
            (None, WorkloadAction::Terminate(qid)) => {
                self.live_users.remove(&qid);
                self.terminated_at.insert(qid, t.as_ms());
                vec![NetworkOp::Abort(qid)]
            }
        };
        for op in ops {
            let cmd = match op {
                NetworkOp::Inject(q) => Command::Pose(q),
                NetworkOp::Abort(id) => Command::Terminate(id),
            };
            self.sim.schedule_command(t, NodeId::BASE_STATION, cmd);
        }
        self.current_syn_count = match &self.optimizer {
            Some(opt) => opt.synthetic_count(),
            None => self.live_users.len(),
        };
        self.current_ratio = self.optimizer.as_ref().map_or(0.0, |o| o.benefit_ratio());
        take_mapping_snapshot(
            t.as_ms(),
            &self.optimizer,
            &self.live_users,
            &mut self.snapshots,
        );
        self.audited_to = self.audited_to.max(t.as_ms());
    }

    /// Advances the run to time `t` (clamped to the configured duration),
    /// applying every workload event at or before it, exactly as an
    /// uninterrupted run would pass through `t`. Stopping here and
    /// checkpointing, then restoring and finishing, is bit-identical to
    /// never stopping.
    pub fn run_to(&mut self, t: SimTime) {
        let target = t.min(self.config.duration);
        if target < self.sim.now() {
            return;
        }
        loop {
            match self.events.get(self.event_idx).map(|e| e.at) {
                Some(et) if et <= target => {
                    self.audit_to(et.as_ms(), false);
                    self.sim.run_until(et);
                    self.ingest();
                    self.fold_dt(et.as_ms());
                    self.apply_event();
                }
                _ => {
                    // A partial interval: audit boundaries up to and
                    // including `target` — except at the run's end, where
                    // the straight driver audits strictly below `duration`.
                    let inclusive = target < self.config.duration;
                    self.audit_to(target.as_ms(), inclusive);
                    self.sim.run_until(target);
                    self.ingest();
                    break;
                }
            }
        }
    }

    /// Swaps the engine's fault plan: pending injected fault events are
    /// retracted, the new plan is installed from the current instant, and
    /// the session's completeness expectations follow it. This is the fork
    /// primitive — restore one checkpoint N times and hand each session a
    /// divergent plan. The repair monitor and the per-node failure-detector
    /// configuration keep their checkpointed state (a cold run with the new
    /// plan may arm them differently).
    pub fn replace_fault_plan(&mut self, plan: &FaultPlan) {
        self.sim.replace_fault_plan(plan);
        self.config.faults = plan.clone();
        self.schedule = (!plan.is_empty()).then(|| plan.materialize(&self.topo));
    }

    /// Runs to the end of the workload and assembles the report.
    pub fn finish(mut self) -> RunReport {
        let duration = self.config.duration;
        self.run_to(duration);
        self.fold_dt(duration.as_ms());

        for per_query in self.answers.values_mut() {
            per_query.sort_by_key(|(e, _)| *e);
        }

        // Whole-run answer-completeness accounting: for every expected epoch
        // (query live, collection window fits the run, at least one
        // statically matching node alive) check whether a non-empty answer
        // was delivered. "Statically matching" = id/position can satisfy the
        // query; value predicates depend on readings, so row expectations
        // are an upper bound and exact for predicate-free acquisition
        // queries.
        let srt = Srt::build(&self.topo);
        let mut per_query: BTreeMap<QueryId, QueryCompleteness> = BTreeMap::new();
        for (uid, q) in &self.posed_query {
            let pose = self.posed_at[uid];
            let end = self
                .terminated_at
                .get(uid)
                .copied()
                .unwrap_or(u64::MAX)
                .min(duration.as_ms());
            let static_matching: Vec<NodeId> = self
                .topo
                .nodes()
                .filter(|&n| n != NodeId::BASE_STATION && srt.node_matches(n, q))
                .collect();
            let by_epoch: BTreeMap<u64, (bool, u64)> = self
                .answers
                .get(uid)
                .map(|v| {
                    v.iter()
                        .map(|(e, a)| {
                            let info = match a {
                                EpochAnswer::Rows(rows) => (!rows.is_empty(), rows.len() as u64),
                                EpochAnswer::Aggregates(vals) => (!vals.is_empty(), 0),
                            };
                            (*e, info)
                        })
                        .collect()
                })
                .unwrap_or_default();
            let is_acquisition = matches!(q.selection(), Selection::Attributes(_));
            let mut qc = QueryCompleteness::default();
            let step = q.epoch().as_ms();
            let mut e = q.epoch().next_fire_at(pose + 1);
            while e + self.window_ms < end {
                let alive = static_matching
                    .iter()
                    .filter(|&&n| self.schedule.as_ref().is_none_or(|s| s.alive_at(n, e)))
                    .count() as u64;
                if alive > 0 {
                    qc.expected_epochs += 1;
                    if is_acquisition {
                        qc.expected_rows += alive;
                    }
                    if let Some((nonempty, rows)) = by_epoch.get(&e) {
                        if *nonempty {
                            qc.answered_epochs += 1;
                        }
                        qc.delivered_rows += rows;
                    }
                }
                e += step;
            }
            per_query.insert(*uid, qc);
        }
        let completeness = match &self.monitor {
            Some(mon) => CompletenessReport {
                per_query,
                repairs_triggered: mon.repairs,
                repair_latency_ms: mon.latencies_ms.clone(),
            },
            None => CompletenessReport {
                per_query,
                ..CompletenessReport::default()
            },
        };

        let total = duration.as_ms().max(1) as f64;
        let metrics = self.sim.metrics().clone();
        let energy_profile = self
            .config
            .timeseries
            .as_ref()
            .map(|c| c.energy)
            .unwrap_or_default();
        let energy_mj = metrics.total_energy_mj(&energy_profile);
        let max_node_energy_mj = metrics.max_node_energy_mj(&energy_profile);
        let mut ts_collector = self.ts_collector;
        let schedule = self.schedule;
        let timeseries = self.sim.take_timeseries().map(|recorder| {
            let nodes = recorder.finalize(duration);
            let mut per_query = ts_collector.take().map(|c| c.per_query).unwrap_or_default();
            // Pad every query series to the node grid so consumers can
            // iterate window-for-window without length checks.
            for series in per_query.values_mut() {
                while series.latency.len() < nodes.windows.len() {
                    series.latency.push(empty_latency_hist());
                    series.answers.push(0);
                    series.nonempty.push(0);
                }
            }
            let mut crash_times_ms: Vec<u64> = schedule
                .as_ref()
                .map(|s| s.crashes().iter().map(|c| c.at_ms).collect())
                .unwrap_or_default();
            crash_times_ms.sort_unstable();
            RunTimeseries {
                nodes,
                per_query,
                crash_times_ms,
            }
        });
        let engine = self.sim.engine_stats();
        let profile = self.config.profile.report();
        // The standing invariant auditor: pure post-hoc arithmetic over the
        // artifacts assembled above, so enabling it cannot perturb the run
        // it is auditing. The trace↔answer reconciliation needs the trace
        // *text*, which the runner never holds — campaign cells append it
        // after reading the written file back.
        let audit = self.config.audit.then(|| {
            let mut audit = AuditReport::new();
            audit.check_engine(&engine);
            audit.check_profile(profile.as_ref(), &engine);
            audit.check_energy(&metrics, &energy_profile, energy_mj, max_node_energy_mj);
            audit.check_completeness(
                &completeness,
                metrics.orphaned_node_count(),
                engine.fault_events,
                !self.config.faults.is_empty(),
            );
            audit
        });
        RunReport {
            strategy: self.config.strategy,
            metrics,
            answers: self.answers,
            avg_synthetic_count: self.weighted_syn / total,
            avg_benefit_ratio: self.weighted_ratio / total,
            optimizer_stats: self.optimizer.map(|o| o.stats()),
            completeness,
            engine,
            energy_mj,
            max_node_energy_mj,
            timeseries,
            profile,
            audit,
        }
    }

    /// Serializes the complete run state — engine section plus runner
    /// section — into one versioned snapshot document.
    pub fn checkpoint(&self) -> Vec<u8> {
        let t0 = self.config.profile.start();
        let mut sw = SnapWriter::new();
        self.sim.write_snapshot(&mut sw);
        let mut rw = SnapWriter::new();
        self.write_runner_snapshot(&mut rw);
        let mut b = SnapshotBuilder::new();
        b.section(SECTION_SIMULATOR, sw.as_bytes());
        b.section(SECTION_RUNNER, rw.as_bytes());
        let bytes = b.finish();
        self.config.profile.finish(ProfilePhase::SnapshotSave, t0);
        bytes
    }

    /// Serializes the runner-side state. Deliberately NOT serialized:
    /// `config`, `topo` and `events` (re-supplied at restore, like the
    /// engine's field and factory), `sim` (its own section), and `schedule`
    /// (a pure function of config and topology).
    fn write_runner_snapshot(&self, w: &mut SnapWriter) {
        let RunSession {
            config,
            topo: _,
            events: _,
            event_idx,
            sim: _,
            optimizer,
            schedule: _,
            window_ms: _,
            monitor,
            ts_collector,
            live_users,
            terminated_at,
            posed_at,
            posed_query,
            snapshots,
            weighted_syn,
            weighted_ratio,
            last_t,
            current_syn_count,
            current_ratio,
            answers,
            audited_to,
        } = self;
        w.put_u8(strategy_tag(config.strategy));
        w.put_usize(*event_idx);
        w.put_u64(*audited_to);
        match optimizer {
            Some(opt) => {
                w.put_bool(true);
                opt.write_snapshot(w);
            }
            None => w.put_bool(false),
        }
        monitor.write(w);
        ts_collector.write(w);
        live_users.write(w);
        terminated_at.write(w);
        posed_at.write(w);
        posed_query.write(w);
        snapshots.write(w);
        w.put_f64(*weighted_syn);
        w.put_f64(*weighted_ratio);
        w.put_u64(*last_t);
        w.put_usize(*current_syn_count);
        w.put_f64(*current_ratio);
        answers.write(w);
    }

    /// Rebuilds a session from a [`checkpoint`](Self::checkpoint) document.
    ///
    /// `config` and `workload` re-supply everything the snapshot
    /// deliberately omits and must match the originals (the strategy is
    /// validated; the rest is trusted the same way the engine trusts its
    /// re-supplied field and factory). The trace handle in `config` is
    /// attached to the restored engine and optimizer, so a traced resume
    /// continues emitting from the restore point.
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`]: corrupted or truncated documents, foreign
    /// magic, a schema-version mismatch, or a strategy mismatch between the
    /// snapshot and the supplied configuration.
    pub fn restore(
        bytes: &[u8],
        config: &ExperimentConfig,
        workload: &[WorkloadEvent],
    ) -> Result<RunSession, SnapshotError> {
        let restore_t0 = config.profile.start();
        let doc = SnapshotDocument::parse(bytes)?;
        let topo = config
            .topology_override
            .clone()
            .unwrap_or_else(|| Topology::grid(config.grid_n).expect("valid experiment grid"));
        let events = Self::prepare_events(config, workload);

        // Validate the strategy tag before touching the simulator section:
        // the engine payload's wire type depends on the strategy's tier, so
        // a mismatch would otherwise surface as an opaque payload decode
        // error instead of this targeted one.
        let mut r = doc.section(SECTION_RUNNER)?;
        let tag = r.u8()?;
        if tag != strategy_tag(config.strategy) {
            return Err(SnapshotError::Corrupt(format!(
                "checkpoint was taken under strategy {} but the supplied configuration runs {}",
                strategy_name_of_tag(tag),
                config.strategy
            )));
        }

        let mut s = doc.section(SECTION_SIMULATOR)?;
        let mut sim = if config.strategy.uses_innetwork_tier() {
            let field = build_field(config, &topo);
            let innetwork = effective_innetwork(config);
            SimKind::Ttmqo(Box::new(Simulator::read_snapshot(
                &mut s,
                field,
                move |_, _| TtmqoApp::new(innetwork.clone()),
            )?))
        } else {
            let field = build_field(config, &topo);
            SimKind::TinyDb(Box::new(Simulator::read_snapshot(
                &mut s,
                field,
                |_, _| TinyDbApp::new(TinyDbConfig::default()),
            )?))
        };
        s.finish()?;
        sim.set_trace(config.trace.clone());
        sim.set_profile(config.profile.clone());

        let event_idx = r.usize()?;
        let audited_to = r.u64()?;
        let optimizer = if r.bool()? {
            let mut opt =
                BaseStationOptimizer::read_snapshot(&mut r, build_optimizer(config, &topo))?;
            opt.set_trace(config.trace.clone());
            Some(opt)
        } else {
            None
        };
        if optimizer.is_some() != config.strategy.uses_basestation_tier() {
            return Err(SnapshotError::Corrupt(
                "optimizer presence disagrees with the strategy".into(),
            ));
        }
        let monitor: Option<RepairMonitor> = Restorable::read(&mut r)?;
        let ts_collector: Option<TimeseriesCollector> = Restorable::read(&mut r)?;
        let live_users: BTreeMap<QueryId, Query> = Restorable::read(&mut r)?;
        let terminated_at: BTreeMap<QueryId, u64> = Restorable::read(&mut r)?;
        let posed_at: BTreeMap<QueryId, u64> = Restorable::read(&mut r)?;
        let posed_query: BTreeMap<QueryId, Query> = Restorable::read(&mut r)?;
        let snapshots: Vec<(u64, MappingSnapshot)> = Restorable::read(&mut r)?;
        let weighted_syn = r.f64()?;
        let weighted_ratio = r.f64()?;
        let last_t = r.u64()?;
        let current_syn_count = r.usize()?;
        let current_ratio = r.f64()?;
        let answers: BTreeMap<QueryId, Vec<(u64, EpochAnswer)>> = Restorable::read(&mut r)?;
        r.finish()?;

        if event_idx > events.len() {
            return Err(SnapshotError::Corrupt(
                "checkpoint event index lies past the supplied workload".into(),
            ));
        }

        let schedule = (!config.faults.is_empty()).then(|| config.faults.materialize(&topo));
        let window_ms = (topo.max_level() as u64 + 1) * config.innetwork.slot_ms
            + config.innetwork.jitter_ms
            + 32;
        config
            .profile
            .finish(ProfilePhase::SnapshotRestore, restore_t0);
        Ok(RunSession {
            config: config.clone(),
            topo,
            events,
            event_idx,
            sim,
            optimizer,
            schedule,
            window_ms,
            monitor,
            ts_collector,
            live_users,
            terminated_at,
            posed_at,
            posed_query,
            snapshots,
            weighted_syn,
            weighted_ratio,
            last_t,
            current_syn_count,
            current_ratio,
            answers,
            audited_to,
        })
    }
}

// ---------------------------------------------------------------------------
// Snapshot impls for the runner's own state-bearing types
// ---------------------------------------------------------------------------

fn write_histogram(h: &Histogram, w: &mut SnapWriter) {
    w.put_f64(h.lo());
    w.put_f64(h.hi());
    h.buckets().to_vec().write(w);
    w.put_u64(h.total());
}

fn read_histogram(r: &mut SnapReader<'_>) -> Result<Histogram, SnapshotError> {
    let lo = r.f64()?;
    let hi = r.f64()?;
    let buckets = Vec::<u64>::read(r)?;
    let total = r.u64()?;
    Histogram::from_parts(lo, hi, buckets, total)
        .map_err(|e| SnapshotError::Corrupt(format!("bad latency histogram: {e}")))
}

impl Snapshot for QueryWindowSeries {
    fn write(&self, w: &mut SnapWriter) {
        let QueryWindowSeries {
            latency,
            answers,
            nonempty,
        } = self;
        w.put_usize(latency.len());
        for h in latency {
            write_histogram(h, w);
        }
        answers.write(w);
        nonempty.write(w);
    }
}

impl Restorable for QueryWindowSeries {
    fn read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        let n = r.usize()?;
        let mut latency = Vec::new();
        for _ in 0..n {
            latency.push(read_histogram(r)?);
        }
        Ok(QueryWindowSeries {
            latency,
            answers: Restorable::read(r)?,
            nonempty: Restorable::read(r)?,
        })
    }
}

impl Snapshot for TimeseriesCollector {
    fn write(&self, w: &mut SnapWriter) {
        let TimeseriesCollector {
            window_ms,
            per_query,
        } = self;
        w.put_u64(*window_ms);
        per_query.write(w);
    }
}

impl Restorable for TimeseriesCollector {
    fn read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(TimeseriesCollector {
            window_ms: r.u64()?,
            per_query: Restorable::read(r)?,
        })
    }
}

impl Snapshot for RepairMonitor {
    fn write(&self, w: &mut SnapWriter) {
        let RepairMonitor {
            window_ms,
            audit_next,
            streaks,
            answered,
            pending,
            repairs,
            latencies_ms,
        } = self;
        w.put_u64(*window_ms);
        audit_next.write(w);
        streaks.write(w);
        answered.write(w);
        pending.write(w);
        w.put_u64(*repairs);
        latencies_ms.write(w);
    }
}

impl Restorable for RepairMonitor {
    fn read(r: &mut SnapReader<'_>) -> Result<Self, SnapshotError> {
        Ok(RepairMonitor {
            window_ms: r.u64()?,
            audit_next: Restorable::read(r)?,
            streaks: Restorable::read(r)?,
            answered: Restorable::read(r)?,
            pending: Restorable::read(r)?,
            repairs: r.u64()?,
            latencies_ms: Restorable::read(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::{snapshot_at, QueryWindowSeries, RepairMonitor, TimeseriesCollector};
    use std::collections::{BTreeMap, BTreeSet};
    use ttmqo_query::QueryId;
    use ttmqo_sim::{Restorable, SnapReader, SnapWriter, Snapshot};
    use ttmqo_stats::Histogram;

    /// Encode → decode → require full consumption; compare via the debug
    /// rendering (shortest-roundtrip floats, ordered maps → string equality
    /// is bit equality). These are the runner's private state-bearing types,
    /// unreachable from the integration-level roundtrip tests.
    fn roundtrip_debug<T: Snapshot + Restorable + std::fmt::Debug>(value: &T) {
        let mut w = SnapWriter::new();
        value.write(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        let back = T::read(&mut r).expect("roundtrip decodes");
        r.finish().expect("no trailing bytes");
        assert_eq!(format!("{back:?}"), format!("{value:?}"));
    }

    #[test]
    fn query_window_series_roundtrips_with_populated_histograms() {
        let mut h = Histogram::new(0.0, 10_000.0, 16).unwrap();
        h.add(120.0);
        h.add(9_500.0);
        h.add(-3.0); // below-lo clamps into the first bucket; total still counts it
        let series = QueryWindowSeries {
            latency: vec![h, Histogram::new(0.0, 10_000.0, 16).unwrap()],
            answers: vec![3, 0, 7],
            nonempty: vec![2, 0, 7],
        };
        roundtrip_debug(&series);
    }

    #[test]
    fn timeseries_collector_roundtrips() {
        let mut per_query = BTreeMap::new();
        per_query.insert(
            QueryId(4),
            QueryWindowSeries {
                latency: vec![Histogram::new(0.0, 1_000.0, 4).unwrap()],
                answers: vec![1],
                nonempty: vec![0],
            },
        );
        roundtrip_debug(&TimeseriesCollector {
            window_ms: 2048,
            per_query,
        });
        roundtrip_debug(&TimeseriesCollector::new(0)); // window clamps to 1
    }

    #[test]
    fn repair_monitor_roundtrips_mid_audit_state() {
        let monitor = RepairMonitor {
            window_ms: 352,
            audit_next: BTreeMap::from([(QueryId(1), 4096), (QueryId(2), 6144)]),
            streaks: BTreeMap::from([(QueryId(1), 0), (QueryId(2), 2)]),
            answered: BTreeMap::from([
                (QueryId(1), BTreeSet::from([2048, 4096])),
                (QueryId(2), BTreeSet::new()),
            ]),
            pending: vec![(6144, vec![QueryId(2)])],
            repairs: 1,
            latencies_ms: vec![2048],
        };
        roundtrip_debug(&monitor);
        roundtrip_debug(&RepairMonitor::new(352));
    }

    /// The reverse linear scan `snapshot_at` replaced; kept as the oracle.
    fn naive<T>(timeline: &[(u64, T)], at: u64) -> Option<&T> {
        timeline
            .iter()
            .rev()
            .find(|(t, _)| *t <= at)
            .map(|(_, v)| v)
    }

    #[test]
    fn snapshot_at_empty_and_before_first() {
        let timeline: Vec<(u64, char)> = vec![];
        assert_eq!(snapshot_at(&timeline, 0), None);
        let timeline = vec![(10, 'a')];
        assert_eq!(snapshot_at(&timeline, 9), None);
        assert_eq!(snapshot_at(&timeline, 10), Some(&'a'));
        assert_eq!(snapshot_at(&timeline, u64::MAX), Some(&'a'));
    }

    #[test]
    fn snapshot_at_duplicate_timestamps_take_the_latest() {
        // Several workload events at the same instant push several snapshots
        // with the same timestamp; the state after the last of them governs.
        let timeline = vec![(5, 'a'), (5, 'b'), (5, 'c'), (9, 'd')];
        assert_eq!(snapshot_at(&timeline, 5), Some(&'c'));
        assert_eq!(snapshot_at(&timeline, 8), Some(&'c'));
        assert_eq!(snapshot_at(&timeline, 9), Some(&'d'));
    }

    #[test]
    fn snapshot_at_matches_reverse_scan_on_dense_timelines() {
        // Regression for the O(outputs × snapshots) reverse scan: the binary
        // search must pick exactly the snapshot the old code picked for every
        // query time, on timelines shaped like real workloads — many events,
        // bursts of identical timestamps (a pose and a terminate in the same
        // ms), and gaps.
        let mut state = 0x0123_4567_89AB_CDEFu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..50 {
            let mut t = 0u64;
            let mut timeline = Vec::new();
            for i in 0..500u64 {
                // ~1/4 of events share the previous timestamp.
                if i > 0 && next() % 4 != 0 {
                    t += next() % 97;
                }
                timeline.push((t, i));
            }
            let horizon = t + 50;
            for _ in 0..2000 {
                let at = next() % horizon;
                assert_eq!(snapshot_at(&timeline, at), naive(&timeline, at));
            }
            assert_eq!(snapshot_at(&timeline, 0), naive(&timeline, 0));
            assert_eq!(snapshot_at(&timeline, u64::MAX), naive(&timeline, u64::MAX));
        }
    }
}
