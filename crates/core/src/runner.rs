//! The experiment runner: executes one workload under one strategy and
//! reports the paper's metrics plus every user query's answers.
//!
//! The four strategies of the evaluation (§4):
//!
//! * [`Strategy::Baseline`] — every user query injected as-is, TinyDB
//!   processing (no multi-query optimization);
//! * [`Strategy::BsOnly`] — tier 1 only: user queries rewritten into
//!   synthetic queries at the base station, TinyDB processing in-network;
//! * [`Strategy::InNetOnly`] — tier 2 only: user queries injected as-is, but
//!   the network runs the TTMQO in-network protocol;
//! * [`Strategy::TwoTier`] — the full TTMQO scheme: rewrite first, then the
//!   in-network protocol executes the synthetic queries.

use crate::basestation::{
    map_epoch_answer_at, BaseStationOptimizer, CostModel, NetworkOp, OptimizerOptions,
    OptimizerStats,
};
use crate::innetwork::{TtmqoApp, TtmqoConfig};
use std::collections::{BTreeMap, BTreeSet};
use ttmqo_query::{EpochAnswer, Query, QueryId, Selection, BASE_EPOCH_MS};
use ttmqo_sim::{
    CompletenessReport, CorrelatedField, EngineStats, FaultPlan, Metrics, NodeId, NodeTimeseries,
    QueryCompleteness, RadioParams, SensorField, SimConfig, SimTime, Simulator, TimeseriesConfig,
    Topology, TraceEvent, TraceHandle, UniformField, WindowRecorder,
};
use ttmqo_stats::{EmpiricalDistribution, Histogram, LevelStats, SelectivityEstimator};
use ttmqo_tinydb::{Command, Output, Srt, TinyDbApp, TinyDbConfig};

/// Which optimization tiers run (§4's four configurations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Strategy {
    /// No multi-query optimization (the paper's baseline).
    Baseline,
    /// Base-station optimization only.
    BsOnly,
    /// In-network optimization only.
    InNetOnly,
    /// The full two-tier TTMQO scheme.
    TwoTier,
}

impl Strategy {
    /// All strategies, in the order the paper's figures list them.
    pub const ALL: [Strategy; 4] = [
        Strategy::Baseline,
        Strategy::BsOnly,
        Strategy::InNetOnly,
        Strategy::TwoTier,
    ];

    /// Whether the base-station rewriting tier is active.
    pub fn uses_basestation_tier(self) -> bool {
        matches!(self, Strategy::BsOnly | Strategy::TwoTier)
    }

    /// Whether the in-network tier is active.
    pub fn uses_innetwork_tier(self) -> bool {
        matches!(self, Strategy::InNetOnly | Strategy::TwoTier)
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Strategy::Baseline => "baseline",
            Strategy::BsOnly => "bs-only",
            Strategy::InNetOnly => "in-net-only",
            Strategy::TwoTier => "two-tier",
        };
        f.write_str(s)
    }
}

/// One user-level workload action.
#[derive(Debug, Clone)]
pub enum WorkloadAction {
    /// A user poses a query.
    Pose(Query),
    /// A user terminates a query.
    Terminate(QueryId),
}

/// A timestamped workload action.
#[derive(Debug, Clone)]
pub struct WorkloadEvent {
    /// When the action happens.
    pub at: SimTime,
    /// The action.
    pub action: WorkloadAction,
}

impl WorkloadEvent {
    /// A query posed at `at_ms`.
    pub fn pose(at_ms: u64, query: Query) -> Self {
        WorkloadEvent {
            at: SimTime::from_ms(at_ms),
            action: WorkloadAction::Pose(query),
        }
    }

    /// A query terminated at `at_ms`.
    pub fn terminate(at_ms: u64, qid: QueryId) -> Self {
        WorkloadEvent {
            at: SimTime::from_ms(at_ms),
            action: WorkloadAction::Terminate(qid),
        }
    }
}

/// Sensor field used by an experiment.
#[derive(Debug, Clone, Copy)]
pub enum FieldKind {
    /// Deterministic hash-uniform readings (the estimator's assumption).
    Uniform,
    /// Spatially/temporally correlated readings.
    Correlated,
}

/// Full configuration of one experiment run.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// The strategy under test.
    pub strategy: Strategy,
    /// Grid side length (the paper uses 4 and 8 ⇒ 16 and 64 nodes).
    pub grid_n: usize,
    /// Simulated duration.
    pub duration: SimTime,
    /// Radio model.
    pub radio: RadioParams,
    /// Engine configuration (seed, maintenance traffic).
    pub sim: SimConfig,
    /// Termination parameter α of Algorithm 2.
    pub alpha: f64,
    /// Sensor field kind.
    pub field: FieldKind,
    /// Seed for the sensor field.
    pub field_seed: u64,
    /// Explicit topology overriding `grid_n` (random deployments, custom
    /// layouts). `None` uses the paper's n×n grid.
    pub topology_override: Option<Topology>,
    /// Tier-1 algorithm knobs beyond α (ablations).
    pub optimizer: OptimizerOptions,
    /// Tier-2 configuration (slotting, sleep, dynamic parents).
    pub innetwork: TtmqoConfig,
    /// Whether the base station feeds observed readings back into the cost
    /// model's selectivity estimator (§3.1.2's maintained statistics).
    pub adaptive_statistics: bool,
    /// Fault-injection plan (crashes, recoveries, loss windows). Empty by
    /// default: no fault events are scheduled, no extra randomness is drawn,
    /// and the run is bit-identical to a build without the fault subsystem.
    /// A non-empty plan also auto-arms the in-network parent failure
    /// detector (unless `innetwork.dead_parent_after` was set explicitly)
    /// and, for rewriting strategies, the base station's missing-result
    /// repair monitor.
    pub faults: FaultPlan,
    /// Trace sink for structured per-event observability. The default
    /// disabled handle costs one branch per event site and keeps the run
    /// bit-identical to a build without the trace subsystem.
    pub trace: TraceHandle,
    /// Windowed time-series collection. `None` (the default) records
    /// nothing and keeps the run bit-identical (the `trace` contract);
    /// `Some` fills [`RunReport::timeseries`] and selects the energy profile
    /// used for the report's energy fields.
    pub timeseries: Option<TimeseriesConfig>,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            strategy: Strategy::TwoTier,
            grid_n: 4,
            duration: SimTime::from_ms(120 * 2048),
            radio: RadioParams::default(),
            sim: SimConfig::default(),
            alpha: 0.6,
            field: FieldKind::Uniform,
            field_seed: 0xF1E1D,
            topology_override: None,
            adaptive_statistics: false,
            optimizer: OptimizerOptions::default(),
            innetwork: TtmqoConfig::default(),
            faults: FaultPlan::default(),
            trace: TraceHandle::disabled(),
            timeseries: None,
        }
    }
}

/// What one run produced.
#[derive(Debug)]
pub struct RunReport {
    /// The strategy that ran.
    pub strategy: Strategy,
    /// Radio/sensing metrics of the whole run.
    pub metrics: Metrics,
    /// Per *user* query: `(epoch start ms, answer)` in epoch order.
    pub answers: BTreeMap<QueryId, Vec<(u64, EpochAnswer)>>,
    /// Time-weighted mean number of running synthetic queries
    /// (= user queries for strategies without the first tier).
    pub avg_synthetic_count: f64,
    /// Time-weighted mean of the optimizer's benefit ratio (0 for
    /// strategies without the first tier).
    pub avg_benefit_ratio: f64,
    /// Optimizer counters (None without the first tier).
    pub optimizer_stats: Option<OptimizerStats>,
    /// Answer-completeness and repair accounting (per user query).
    pub completeness: CompletenessReport,
    /// Engine hot-path counters, including the per-phase event breakdown
    /// (timer / deliver / command / maintenance / fault).
    pub engine: EngineStats,
    /// Whole-run radio+sensing energy (mJ), under the energy profile in
    /// force: the timeseries config's profile when one is set, the default
    /// profile otherwise.
    pub energy_mj: f64,
    /// The hottest single node's energy (mJ) under the same profile.
    pub max_node_energy_mj: f64,
    /// Windowed time-series; `Some` iff [`ExperimentConfig::timeseries`]
    /// was set.
    pub timeseries: Option<RunTimeseries>,
}

impl RunReport {
    /// The paper's headline metric for this run.
    pub fn avg_transmission_time_pct(&self) -> f64 {
        self.metrics.avg_transmission_time_pct()
    }
}

/// Range upper bound (ms) of the per-window answer-latency histograms.
/// Latencies beyond it clamp into the top bucket.
const LATENCY_HIST_MAX_MS: f64 = 4096.0;

/// Bucket count of the per-window answer-latency histograms.
const LATENCY_HIST_BUCKETS: usize = 16;

fn empty_latency_hist() -> Histogram {
    Histogram::new(0.0, LATENCY_HIST_MAX_MS, LATENCY_HIST_BUCKETS)
        .expect("static latency histogram config is valid")
}

/// One user query's windowed answer series, on the run's timeseries window
/// grid.
#[derive(Debug, Clone)]
pub struct QueryWindowSeries {
    /// Per-window answer-latency histogram (epoch start → arrival at the
    /// base station, ms). Answers are bucketed by arrival time.
    pub latency: Vec<Histogram>,
    /// Answers mapped to this user per window.
    pub answers: Vec<u64>,
    /// Of those, answers carrying at least one row or aggregate.
    pub nonempty: Vec<u64>,
}

/// Base-station-side windowed answer accounting, aligned with the engine's
/// [`WindowRecorder`] grid. Built only when timeseries collection is on.
struct TimeseriesCollector {
    window_ms: u64,
    per_query: BTreeMap<QueryId, QueryWindowSeries>,
}

impl TimeseriesCollector {
    fn new(window_ms: u64) -> Self {
        TimeseriesCollector {
            window_ms: window_ms.max(1),
            per_query: BTreeMap::new(),
        }
    }

    fn note_answer(&mut self, uid: QueryId, arrival_ms: u64, latency_ms: u64, nonempty: bool) {
        let w = (arrival_ms / self.window_ms) as usize;
        let series = self
            .per_query
            .entry(uid)
            .or_insert_with(|| QueryWindowSeries {
                latency: Vec::new(),
                answers: Vec::new(),
                nonempty: Vec::new(),
            });
        while series.latency.len() <= w {
            series.latency.push(empty_latency_hist());
            series.answers.push(0);
            series.nonempty.push(0);
        }
        series.latency[w].add(latency_ms as f64);
        series.answers[w] += 1;
        if nonempty {
            series.nonempty[w] += 1;
        }
    }
}

/// Windowed time-series of one run: per-node radio/energy counters from the
/// engine plus per-user-query answer/latency series on the same window grid,
/// and the crash times needed for fault-recovery convergence analysis.
#[derive(Debug, Clone)]
pub struct RunTimeseries {
    /// Per-node windowed counters (tx/rx busy, sleep, samples, energy) with
    /// per-window load-imbalance statistics.
    pub nodes: NodeTimeseries,
    /// Per user query: windowed answer counts and latency histograms.
    pub per_query: BTreeMap<QueryId, QueryWindowSeries>,
    /// Crash times (ms) of the run's materialized fault schedule, in time
    /// order; empty for fault-free runs.
    pub crash_times_ms: Vec<u64>,
}

impl RunTimeseries {
    /// Window length, ms.
    pub fn window_ms(&self) -> u64 {
        self.nodes.window_ms
    }

    /// Total non-empty answers per window, summed across user queries. At
    /// least as long as the node series' window list (one longer when an
    /// answer arrives exactly at the horizon of an evenly divided run).
    pub fn window_nonempty(&self) -> Vec<u64> {
        let mut out = vec![0u64; self.nodes.windows.len()];
        for series in self.per_query.values() {
            for (w, &ne) in series.nonempty.iter().enumerate() {
                if w >= out.len() {
                    out.resize(w + 1, 0);
                }
                out[w] += ne;
            }
        }
        out
    }

    /// First window after `crash_ms` where the network has converged back to
    /// its pre-fault baseline: per-window tx-busy Gini within `tolerance`
    /// (absolute) of the pre-crash mean AND non-empty answers per window at
    /// least `(1 - tolerance)` of the pre-crash mean. The baseline averages
    /// every full-length window strictly before the crash's window.
    ///
    /// Returns the start (ms) of the first converged window, `None` when
    /// there is no pre-crash baseline or the run never converges.
    pub fn convergence_after_ms(&self, crash_ms: u64, tolerance: f64) -> Option<u64> {
        let wm = self.nodes.window_ms.max(1);
        let crash_w = (crash_ms / wm) as usize;
        let nonempty = self.window_nonempty();
        let windows = &self.nodes.windows;
        let mut gini_sum = 0.0;
        let mut ne_sum = 0.0;
        let mut n = 0u32;
        for (w, stats) in windows.iter().enumerate().take(crash_w) {
            if stats.len_ms == wm {
                gini_sum += stats.gini_tx_busy();
                ne_sum += nonempty.get(w).copied().unwrap_or(0) as f64;
                n += 1;
            }
        }
        if n == 0 {
            return None;
        }
        let gini_base = gini_sum / n as f64;
        let ne_base = ne_sum / n as f64;
        for (w, stats) in windows.iter().enumerate().skip(crash_w + 1) {
            if stats.len_ms == 0 {
                continue;
            }
            let gini_ok = (stats.gini_tx_busy() - gini_base).abs() <= tolerance;
            let ne_ok = nonempty.get(w).copied().unwrap_or(0) as f64 >= (1.0 - tolerance) * ne_base;
            if gini_ok && ne_ok {
                return Some(stats.start_ms);
            }
        }
        None
    }

    /// [`Self::convergence_after_ms`] for every crash in
    /// [`Self::crash_times_ms`]: `(crash ms, converged window start ms)`.
    pub fn convergence_ms(&self, tolerance: f64) -> Vec<(u64, Option<u64>)> {
        self.crash_times_ms
            .iter()
            .map(|&c| (c, self.convergence_after_ms(c, tolerance)))
            .collect()
    }

    /// Serializes the full series as one JSON object with a deterministic
    /// field order (hand-rolled; the vendored serde is an API stub).
    pub fn to_json(&self) -> String {
        fn push_u64_array(out: &mut String, key: &str, vals: &[u64]) {
            out.push('"');
            out.push_str(key);
            out.push_str("\":[");
            for (i, v) in vals.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&v.to_string());
            }
            out.push(']');
        }
        let mut out = String::with_capacity(4096);
        out.push_str(&format!(
            "{{\"schema_version\":{},",
            ttmqo_sim::SCHEMA_VERSION
        ));
        push_u64_array(&mut out, "crash_times_ms", &self.crash_times_ms);
        out.push_str(",\"nodes\":");
        out.push_str(&self.nodes.to_json());
        out.push_str(",\"queries\":{");
        for (i, (qid, series)) in self.per_query.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{{", qid.0));
            push_u64_array(&mut out, "answers", &series.answers);
            out.push(',');
            push_u64_array(&mut out, "nonempty", &series.nonempty);
            out.push_str(&format!(
                ",\"latency_lo_ms\":{},\"latency_hi_ms\":{},\"latency_buckets\":[",
                0.0, LATENCY_HIST_MAX_MS
            ));
            for (j, hist) in series.latency.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push('[');
                for (k, b) in hist.buckets().iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    out.push_str(&b.to_string());
                }
                out.push(']');
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }
}

fn build_field(config: &ExperimentConfig, topo: &Topology) -> Box<dyn SensorField + Send + Sync> {
    match config.field {
        FieldKind::Uniform => Box::new(UniformField::new(config.field_seed)),
        FieldKind::Correlated => {
            Box::new(CorrelatedField::for_topology(config.field_seed, topo).bind(topo))
        }
    }
}

fn build_optimizer(config: &ExperimentConfig, topo: &Topology) -> BaseStationOptimizer {
    let levels = LevelStats::from_levels(topo.levels().iter().copied());
    // Value attributes use the uniform model (the paper's configuration);
    // `nodeid` gets an empirical model over the *actually deployed* ids —
    // a uniform model over the full id domain would wildly overestimate the
    // selectivity of nodeid predicates on a small deployment.
    let mut estimator = SelectivityEstimator::uniform();
    estimator.set_model(
        ttmqo_query::Attribute::NodeId,
        Box::new(EmpiricalDistribution::from_samples(
            ttmqo_query::Attribute::NodeId,
            topo.node_count(),
            (1..topo.node_count()).map(|i| i as f64),
        )),
    );
    let positions: Vec<(f64, f64)> = topo
        .nodes()
        .filter(|n| *n != NodeId::BASE_STATION)
        .map(|n| {
            let p = topo.position(n);
            (p.x, p.y)
        })
        .collect();
    let model = CostModel::new(
        config.radio.startup_ms,
        config.radio.per_byte_ms,
        levels,
        estimator,
    )
    .with_positions(positions);
    BaseStationOptimizer::with_options(
        model,
        OptimizerOptions {
            alpha: config.alpha,
            ..config.optimizer
        },
    )
}

/// Runs one experiment: the workload under the configured strategy.
///
/// # Panics
///
/// Panics if the grid cannot be constructed (e.g. `grid_n == 0`).
pub fn run_experiment(config: &ExperimentConfig, workload: &[WorkloadEvent]) -> RunReport {
    let topo = config
        .topology_override
        .clone()
        .unwrap_or_else(|| Topology::grid(config.grid_n).expect("valid experiment grid"));
    let mut events: Vec<WorkloadEvent> = workload.to_vec();
    events.sort_by_key(|e| e.at);
    // The experiment ends at `duration`: an event scheduled at or past it
    // can never affect anything observable, and replaying it would push the
    // time-weighted accounting past the measured window (and underflow the
    // `duration - last_event` interval).
    events.retain(|e| e.at < config.duration);

    if config.strategy.uses_innetwork_tier() {
        let field = build_field(config, &topo);
        let mut innetwork = config.innetwork.clone();
        // Faulty runs arm the in-network parent failure detector unless the
        // caller chose a threshold; fault-free runs keep it off, so their
        // routing (and the golden snapshot) is untouched.
        if !config.faults.is_empty() && innetwork.dead_parent_after == 0 {
            innetwork.dead_parent_after = 3;
        }
        let mut sim = Simulator::new(
            topo.clone(),
            config.radio.clone(),
            config.sim.clone(),
            field,
            move |_, _| TtmqoApp::new(innetwork.clone()),
        );
        sim.set_trace(config.trace.clone());
        sim.set_timeseries(
            config
                .timeseries
                .as_ref()
                .map(|c| Box::new(WindowRecorder::new(topo.node_count(), c))),
        );
        sim.install_fault_plan(&config.faults);
        drive(config, &topo, events, sim)
    } else {
        let field = build_field(config, &topo);
        let mut sim = Simulator::new(
            topo.clone(),
            config.radio.clone(),
            config.sim.clone(),
            field,
            |_, _| TinyDbApp::new(TinyDbConfig::default()),
        );
        sim.set_trace(config.trace.clone());
        sim.set_timeseries(
            config
                .timeseries
                .as_ref()
                .map(|c| Box::new(WindowRecorder::new(topo.node_count(), c))),
        );
        sim.install_fault_plan(&config.faults);
        drive(config, &topo, events, sim)
    }
}

/// Snapshot of user → (synthetic id, synthetic query, user query) taken after
/// each workload event, used to map synthetic answers back to users.
type MappingSnapshot = BTreeMap<QueryId, (QueryId, Query, Query)>;

/// The last entry of the time-sorted `timeline` whose timestamp is
/// `<= at` — the snapshot in force at time `at`.
///
/// `timeline` must be sorted by timestamp (duplicates allowed; the latest
/// duplicate wins, matching "state after all events at that instant").
/// Binary search: the predicate `t <= at` is monotone over a sorted
/// timeline, so `partition_point` finds the first entry *after* `at` and
/// the one just before it is the answer. Replaces an O(n) reverse scan that
/// made answer mapping O(outputs × snapshots) on long workloads.
fn snapshot_at<T>(timeline: &[(u64, T)], at: u64) -> Option<&T> {
    let first_after = timeline.partition_point(|(t, _)| *t <= at);
    first_after.checked_sub(1).map(|idx| &timeline[idx].1)
}

/// How many consecutive missing expected epochs trigger a Tier-1 repair.
const REPAIR_AFTER_MISSING: u32 = 2;

/// A repair whose answers never come back (e.g. the replacement flood was
/// lost too) stops blocking further repair attempts after this long.
const REPAIR_GRACE_MS: u64 = 8 * BASE_EPOCH_MS;

/// The base station's missing-result detector: audits every user query's
/// expected epochs as their collection windows close, and asks for a Tier-1
/// re-optimization of the owning synthetic query when a query goes silent
/// for [`REPAIR_AFTER_MISSING`] consecutive epochs. Armed only for faulty
/// runs under a rewriting strategy.
struct RepairMonitor {
    /// Collection-window length: the epoch firing at `e` is audited once the
    /// clock passes `e + window_ms` (its answer should have closed by then).
    window_ms: u64,
    /// Next epoch start (ms) to audit, per live user query.
    audit_next: BTreeMap<QueryId, u64>,
    /// Consecutive missing expected epochs, per live user query.
    streaks: BTreeMap<QueryId, u32>,
    /// Epochs answered with a non-empty result, per user query.
    answered: BTreeMap<QueryId, BTreeSet<u64>>,
    /// Repairs whose first post-repair answer has not arrived yet:
    /// `(trigger ms, member user queries)`.
    pending: Vec<(u64, Vec<QueryId>)>,
    repairs: u64,
    latencies_ms: Vec<u64>,
}

impl RepairMonitor {
    fn new(window_ms: u64) -> Self {
        RepairMonitor {
            window_ms,
            audit_next: BTreeMap::new(),
            streaks: BTreeMap::new(),
            answered: BTreeMap::new(),
            pending: Vec::new(),
            repairs: 0,
            latencies_ms: Vec::new(),
        }
    }

    fn note_posed(&mut self, q: &Query, t_ms: u64) {
        self.audit_next
            .insert(q.id(), q.epoch().next_fire_at(t_ms + 1));
        self.streaks.insert(q.id(), 0);
    }

    fn note_terminated(&mut self, qid: QueryId) {
        self.audit_next.remove(&qid);
        self.streaks.remove(&qid);
        self.pending.retain_mut(|(_, members)| {
            members.retain(|m| *m != qid);
            !members.is_empty()
        });
    }

    fn note_answer(&mut self, uid: QueryId, epoch_ms: u64, nonempty: bool, arrival_ms: u64) {
        if !nonempty {
            return;
        }
        self.answered.entry(uid).or_default().insert(epoch_ms);
        if let Some(pos) = self.pending.iter().position(|(_, m)| m.contains(&uid)) {
            let (t0, _) = self.pending.remove(pos);
            self.latencies_ms.push(arrival_ms.saturating_sub(t0));
        }
    }

    /// Audits every epoch whose collection window closed by time `b`;
    /// returns the user queries whose missing streak crossed the threshold.
    fn due_repairs(&mut self, b: u64, live: &BTreeMap<QueryId, Query>) -> Vec<QueryId> {
        self.pending
            .retain(|(t0, _)| b.saturating_sub(*t0) <= REPAIR_GRACE_MS);
        let mut due = Vec::new();
        for (uid, q) in live {
            let Some(next) = self.audit_next.get_mut(uid) else {
                continue;
            };
            let step = q.epoch().as_ms();
            let answered = self.answered.entry(*uid).or_default();
            let streak = self.streaks.entry(*uid).or_insert(0);
            while *next + self.window_ms <= b {
                if answered.contains(next) {
                    *streak = 0;
                } else {
                    *streak += 1;
                }
                *next += step;
            }
            if *streak >= REPAIR_AFTER_MISSING && !self.pending.iter().any(|(_, m)| m.contains(uid))
            {
                due.push(*uid);
            }
        }
        due
    }

    fn note_repaired(&mut self, b: u64, members: &[QueryId], live: &BTreeMap<QueryId, Query>) {
        self.repairs += 1;
        self.pending.push((b, members.to_vec()));
        for m in members {
            self.streaks.insert(*m, 0);
            if let Some(q) = live.get(m) {
                // Give the replacement flood until its next epoch before the
                // audit resumes counting.
                self.audit_next.insert(*m, q.epoch().next_fire_at(b + 1));
            }
        }
    }
}

/// Drains one batch of network outputs: feeds adaptive statistics, maps each
/// answer back to the user queries it serves, and notifies the repair
/// monitor. Attribution is incremental but identical to the bulk end-of-run
/// mapping it replaced: an answer for epoch `e` is always emitted (and thus
/// drained) after every workload event at or before `e` has executed, so the
/// snapshot in force at `e` already exists, and a termination that should
/// drop the answer (`arrival > termination`) has always been recorded by
/// drain time.
#[allow(clippy::too_many_arguments)]
fn ingest_outputs(
    fresh: Vec<ttmqo_sim::OutputRecord<Output>>,
    adaptive: bool,
    optimizer: &mut Option<BaseStationOptimizer>,
    snapshots: &[(u64, MappingSnapshot)],
    terminated_at: &BTreeMap<QueryId, u64>,
    topo: &Topology,
    answers: &mut BTreeMap<QueryId, Vec<(u64, EpochAnswer)>>,
    mut monitor: Option<&mut RepairMonitor>,
    mut timeseries: Option<&mut TimeseriesCollector>,
    trace: &TraceHandle,
) {
    for record in fresh {
        let Output::Answer {
            qid,
            epoch_ms,
            answer,
        } = &record.output;
        // §3.1.2 statistics maintenance: learn the data distribution from
        // the result rows the base station receives, so later decisions use
        // it.
        if adaptive {
            if let Some(opt) = optimizer.as_mut() {
                if let EpochAnswer::Rows(rows) = answer {
                    for row in rows {
                        for (attr, value) in row.readings.iter() {
                            opt.observe_reading(attr, value);
                        }
                    }
                }
            }
        }
        // Mapping in force at the answered epoch's start.
        let Some(snap) = snapshot_at(snapshots, *epoch_ms) else {
            continue;
        };
        for (uid, (syn_id, syn_q, user_q)) in snap {
            if *syn_id != *qid {
                continue;
            }
            // The epoch started while `uid` was live, but the answer is only
            // emitted at the epoch's close — drop it if the user terminated
            // in between. Answers arriving at the termination instant itself
            // still belong to the user (it was live when they materialized).
            if terminated_at
                .get(uid)
                .is_some_and(|&term_ms| record.time.as_ms() > term_ms)
            {
                continue;
            }
            let position_of = |node: u16| {
                let id = NodeId(node);
                (id.index() < topo.node_count()).then(|| {
                    let p = topo.position(id);
                    (p.x, p.y)
                })
            };
            if let Some(mapped) =
                map_epoch_answer_at(user_q, syn_q, *epoch_ms, answer, &position_of)
            {
                let nonempty = match &mapped {
                    EpochAnswer::Rows(rows) => !rows.is_empty(),
                    EpochAnswer::Aggregates(vals) => !vals.is_empty(),
                };
                if let Some(mon) = monitor.as_deref_mut() {
                    mon.note_answer(*uid, *epoch_ms, nonempty, record.time.as_ms());
                }
                if let Some(col) = timeseries.as_deref_mut() {
                    col.note_answer(
                        *uid,
                        record.time.as_ms(),
                        record.time.as_ms().saturating_sub(*epoch_ms),
                        nonempty,
                    );
                }
                if trace.is_enabled() {
                    let rows = match &mapped {
                        EpochAnswer::Rows(rows) => rows.len() as u64,
                        EpochAnswer::Aggregates(_) => 0,
                    };
                    trace.emit(
                        record.time.as_ms() * 1000,
                        TraceEvent::AnswerMapped {
                            user: *uid,
                            synthetic: *syn_id,
                            epoch_ms: *epoch_ms,
                            rows,
                            nonempty,
                            latency_ms: record.time.as_ms().saturating_sub(*epoch_ms),
                        },
                    );
                }
                answers.entry(*uid).or_default().push((*epoch_ms, mapped));
            }
        }
    }
}

fn drive<A>(
    config: &ExperimentConfig,
    topo: &Topology,
    events: Vec<WorkloadEvent>,
    mut sim: Simulator<A>,
) -> RunReport
where
    A: ttmqo_sim::NodeApp<Command = Command, Output = Output>,
{
    let rewriting = config.strategy.uses_basestation_tier();
    let mut optimizer = rewriting.then(|| {
        let mut opt = build_optimizer(config, topo);
        opt.set_trace(config.trace.clone());
        opt
    });

    // Fault bookkeeping: the same deterministic schedule the engine executes,
    // used for completeness expectations, plus the repair monitor (armed only
    // for faulty runs with the rewriting tier — fault-free runs take exactly
    // the pre-fault code path).
    let schedule = (!config.faults.is_empty()).then(|| config.faults.materialize(topo));
    let window_ms =
        (topo.max_level() as u64 + 1) * config.innetwork.slot_ms + config.innetwork.jitter_ms + 32;
    let mut monitor = (rewriting && schedule.is_some()).then(|| RepairMonitor::new(window_ms));

    // Base-station-side windowed answer accounting, on the same window grid
    // as the engine-side recorder installed by `run_experiment`.
    let mut ts_collector = config
        .timeseries
        .as_ref()
        .map(|c| TimeseriesCollector::new(c.window_ms));

    // Identity bookkeeping for non-rewriting strategies.
    let mut live_users: BTreeMap<QueryId, Query> = BTreeMap::new();
    // When each user query was terminated, ms. TinyDB labels an answer with
    // its epoch's *start* time but emits it at the epoch's close, so an epoch
    // can straddle a Terminate: the mapping snapshot at the epoch start still
    // contains the user, yet by the time the answer exists the user is gone.
    // Attribution must also check the answer's *arrival* time against this.
    let mut terminated_at: BTreeMap<QueryId, u64> = BTreeMap::new();
    // Every query ever posed, with its pose time (completeness accounting).
    let mut posed_at: BTreeMap<QueryId, u64> = BTreeMap::new();
    let mut posed_query: BTreeMap<QueryId, Query> = BTreeMap::new();

    let mut snapshots: Vec<(u64, MappingSnapshot)> = Vec::new();
    let mut weighted_syn = 0.0;
    let mut weighted_ratio = 0.0;
    let mut last_t = 0u64;
    let mut current_syn_count = 0usize;
    let mut current_ratio = 0.0;

    let take_snapshot = |t: u64,
                         optimizer: &Option<BaseStationOptimizer>,
                         live: &BTreeMap<QueryId, Query>,
                         snapshots: &mut Vec<(u64, MappingSnapshot)>| {
        let mut snap = MappingSnapshot::new();
        if let Some(opt) = optimizer {
            for (uid, uq) in live {
                if let Some(syn_id) = opt.mapping(*uid) {
                    if let Some(sq) = opt.synthetic(syn_id) {
                        snap.insert(*uid, (syn_id, sq.query().clone(), uq.clone()));
                    }
                }
            }
        } else {
            for (uid, uq) in live {
                snap.insert(*uid, (*uid, uq.clone(), uq.clone()));
            }
        }
        snapshots.push((t, snap));
    };

    let mut answers: BTreeMap<QueryId, Vec<(u64, EpochAnswer)>> = BTreeMap::new();
    // Workload events, then one final advance to the end of the run.
    for step in events.into_iter().map(Some).chain(std::iter::once(None)) {
        let t = step.as_ref().map_or(config.duration, |e| e.at);

        // With the repair monitor armed, advance in base-epoch steps so the
        // base station audits for missing answers while time passes; without
        // it, jump straight to the event (the pre-fault behaviour).
        if let Some(mon) = monitor.as_mut() {
            let mut b = (last_t / BASE_EPOCH_MS + 1) * BASE_EPOCH_MS;
            while b < t.as_ms() {
                sim.run_until(SimTime::from_ms(b));
                let fresh = sim.take_outputs();
                ingest_outputs(
                    fresh,
                    config.adaptive_statistics,
                    &mut optimizer,
                    &snapshots,
                    &terminated_at,
                    topo,
                    &mut answers,
                    Some(mon),
                    ts_collector.as_mut(),
                    &config.trace,
                );
                let due = mon.due_repairs(b, &live_users);
                let mut repaired = false;
                for uid in due {
                    let Some(opt) = optimizer.as_mut() else { break };
                    let Some(syn) = opt.mapping(uid) else {
                        continue;
                    };
                    let members: Vec<QueryId> = opt
                        .synthetic(syn)
                        .map(|sq| sq.members().collect())
                        .unwrap_or_default();
                    // Account the time-weighted stats up to the repair.
                    let dt = (b - last_t) as f64;
                    weighted_syn += current_syn_count as f64 * dt;
                    weighted_ratio += current_ratio * dt;
                    last_t = b;
                    opt.set_trace_time(b);
                    for op in opt.reoptimize(syn) {
                        let cmd = match op {
                            NetworkOp::Inject(q) => Command::Pose(q),
                            NetworkOp::Abort(id) => Command::Terminate(id),
                        };
                        sim.schedule_command(SimTime::from_ms(b), NodeId::BASE_STATION, cmd);
                    }
                    current_syn_count = opt.synthetic_count();
                    current_ratio = opt.benefit_ratio();
                    mon.note_repaired(b, &members, &live_users);
                    repaired = true;
                }
                if repaired {
                    take_snapshot(b, &optimizer, &live_users, &mut snapshots);
                }
                b += BASE_EPOCH_MS;
            }
        }

        // Advance the network to the event time (or the end of the run) and
        // attribute whatever answers it produced.
        sim.run_until(t);
        let fresh = sim.take_outputs();
        ingest_outputs(
            fresh,
            config.adaptive_statistics,
            &mut optimizer,
            &snapshots,
            &terminated_at,
            topo,
            &mut answers,
            monitor.as_mut(),
            ts_collector.as_mut(),
            &config.trace,
        );
        // Accumulate time-weighted stats over [last_t, t).
        let dt = (t.as_ms() - last_t) as f64;
        weighted_syn += current_syn_count as f64 * dt;
        weighted_ratio += current_ratio * dt;
        last_t = t.as_ms();

        let Some(event) = step else { break };

        let ops: Vec<NetworkOp> = match (&mut optimizer, event.action) {
            (Some(opt), WorkloadAction::Pose(q)) => {
                live_users.insert(q.id(), q.clone());
                posed_at.insert(q.id(), t.as_ms());
                posed_query.insert(q.id(), q.clone());
                if let Some(mon) = monitor.as_mut() {
                    mon.note_posed(&q, t.as_ms());
                }
                opt.set_trace_time(t.as_ms());
                opt.insert(q)
                    .expect("workload ids are unique and unreserved")
            }
            (Some(opt), WorkloadAction::Terminate(qid)) => {
                live_users.remove(&qid);
                terminated_at.insert(qid, t.as_ms());
                if let Some(mon) = monitor.as_mut() {
                    mon.note_terminated(qid);
                }
                opt.set_trace_time(t.as_ms());
                opt.terminate(qid)
            }
            (None, WorkloadAction::Pose(q)) => {
                live_users.insert(q.id(), q.clone());
                posed_at.insert(q.id(), t.as_ms());
                posed_query.insert(q.id(), q.clone());
                vec![NetworkOp::Inject(q)]
            }
            (None, WorkloadAction::Terminate(qid)) => {
                live_users.remove(&qid);
                terminated_at.insert(qid, t.as_ms());
                vec![NetworkOp::Abort(qid)]
            }
        };
        for op in ops {
            let cmd = match op {
                NetworkOp::Inject(q) => Command::Pose(q),
                NetworkOp::Abort(id) => Command::Terminate(id),
            };
            sim.schedule_command(t, NodeId::BASE_STATION, cmd);
        }
        current_syn_count = match &optimizer {
            Some(opt) => opt.synthetic_count(),
            None => live_users.len(),
        };
        current_ratio = optimizer.as_ref().map_or(0.0, |o| o.benefit_ratio());
        take_snapshot(t.as_ms(), &optimizer, &live_users, &mut snapshots);
    }

    for per_query in answers.values_mut() {
        per_query.sort_by_key(|(e, _)| *e);
    }

    // Whole-run answer-completeness accounting: for every expected epoch
    // (query live, collection window fits the run, at least one statically
    // matching node alive) check whether a non-empty answer was delivered.
    // "Statically matching" = id/position can satisfy the query; value
    // predicates depend on readings, so row expectations are an upper bound
    // and exact for predicate-free acquisition queries.
    let srt = Srt::build(topo);
    let mut per_query: BTreeMap<QueryId, QueryCompleteness> = BTreeMap::new();
    for (uid, q) in &posed_query {
        let pose = posed_at[uid];
        let end = terminated_at
            .get(uid)
            .copied()
            .unwrap_or(u64::MAX)
            .min(config.duration.as_ms());
        let static_matching: Vec<NodeId> = topo
            .nodes()
            .filter(|&n| n != NodeId::BASE_STATION && srt.node_matches(n, q))
            .collect();
        let by_epoch: BTreeMap<u64, (bool, u64)> = answers
            .get(uid)
            .map(|v| {
                v.iter()
                    .map(|(e, a)| {
                        let info = match a {
                            EpochAnswer::Rows(rows) => (!rows.is_empty(), rows.len() as u64),
                            EpochAnswer::Aggregates(vals) => (!vals.is_empty(), 0),
                        };
                        (*e, info)
                    })
                    .collect()
            })
            .unwrap_or_default();
        let is_acquisition = matches!(q.selection(), Selection::Attributes(_));
        let mut qc = QueryCompleteness::default();
        let step = q.epoch().as_ms();
        let mut e = q.epoch().next_fire_at(pose + 1);
        while e + window_ms < end {
            let alive = static_matching
                .iter()
                .filter(|&&n| schedule.as_ref().is_none_or(|s| s.alive_at(n, e)))
                .count() as u64;
            if alive > 0 {
                qc.expected_epochs += 1;
                if is_acquisition {
                    qc.expected_rows += alive;
                }
                if let Some((nonempty, rows)) = by_epoch.get(&e) {
                    if *nonempty {
                        qc.answered_epochs += 1;
                    }
                    qc.delivered_rows += rows;
                }
            }
            e += step;
        }
        per_query.insert(*uid, qc);
    }
    let completeness = match &monitor {
        Some(mon) => CompletenessReport {
            per_query,
            repairs_triggered: mon.repairs,
            repair_latency_ms: mon.latencies_ms.clone(),
        },
        None => CompletenessReport {
            per_query,
            ..CompletenessReport::default()
        },
    };

    let total = config.duration.as_ms().max(1) as f64;
    let metrics = sim.metrics().clone();
    let energy_profile = config
        .timeseries
        .as_ref()
        .map(|c| c.energy)
        .unwrap_or_default();
    let energy_mj = metrics.total_energy_mj(&energy_profile);
    let max_node_energy_mj = metrics.max_node_energy_mj(&energy_profile);
    let timeseries = sim.take_timeseries().map(|recorder| {
        let nodes = recorder.finalize(config.duration);
        let mut per_query = ts_collector.take().map(|c| c.per_query).unwrap_or_default();
        // Pad every query series to the node grid so consumers can iterate
        // window-for-window without length checks.
        for series in per_query.values_mut() {
            while series.latency.len() < nodes.windows.len() {
                series.latency.push(empty_latency_hist());
                series.answers.push(0);
                series.nonempty.push(0);
            }
        }
        let mut crash_times_ms: Vec<u64> = schedule
            .as_ref()
            .map(|s| s.crashes().iter().map(|c| c.at_ms).collect())
            .unwrap_or_default();
        crash_times_ms.sort_unstable();
        RunTimeseries {
            nodes,
            per_query,
            crash_times_ms,
        }
    });
    RunReport {
        strategy: config.strategy,
        metrics,
        answers,
        avg_synthetic_count: weighted_syn / total,
        avg_benefit_ratio: weighted_ratio / total,
        optimizer_stats: optimizer.map(|o| o.stats()),
        completeness,
        engine: sim.engine_stats(),
        energy_mj,
        max_node_energy_mj,
        timeseries,
    }
}

#[cfg(test)]
mod tests {
    use super::snapshot_at;

    /// The reverse linear scan `snapshot_at` replaced; kept as the oracle.
    fn naive<T>(timeline: &[(u64, T)], at: u64) -> Option<&T> {
        timeline
            .iter()
            .rev()
            .find(|(t, _)| *t <= at)
            .map(|(_, v)| v)
    }

    #[test]
    fn snapshot_at_empty_and_before_first() {
        let timeline: Vec<(u64, char)> = vec![];
        assert_eq!(snapshot_at(&timeline, 0), None);
        let timeline = vec![(10, 'a')];
        assert_eq!(snapshot_at(&timeline, 9), None);
        assert_eq!(snapshot_at(&timeline, 10), Some(&'a'));
        assert_eq!(snapshot_at(&timeline, u64::MAX), Some(&'a'));
    }

    #[test]
    fn snapshot_at_duplicate_timestamps_take_the_latest() {
        // Several workload events at the same instant push several snapshots
        // with the same timestamp; the state after the last of them governs.
        let timeline = vec![(5, 'a'), (5, 'b'), (5, 'c'), (9, 'd')];
        assert_eq!(snapshot_at(&timeline, 5), Some(&'c'));
        assert_eq!(snapshot_at(&timeline, 8), Some(&'c'));
        assert_eq!(snapshot_at(&timeline, 9), Some(&'d'));
    }

    #[test]
    fn snapshot_at_matches_reverse_scan_on_dense_timelines() {
        // Regression for the O(outputs × snapshots) reverse scan: the binary
        // search must pick exactly the snapshot the old code picked for every
        // query time, on timelines shaped like real workloads — many events,
        // bursts of identical timestamps (a pose and a terminate in the same
        // ms), and gaps.
        let mut state = 0x0123_4567_89AB_CDEFu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..50 {
            let mut t = 0u64;
            let mut timeline = Vec::new();
            for i in 0..500u64 {
                // ~1/4 of events share the previous timestamp.
                if i > 0 && next() % 4 != 0 {
                    t += next() % 97;
                }
                timeline.push((t, i));
            }
            let horizon = t + 50;
            for _ in 0..2000 {
                let at = next() % horizon;
                assert_eq!(snapshot_at(&timeline, at), naive(&timeline, at));
            }
            assert_eq!(snapshot_at(&timeline, 0), naive(&timeline, 0));
            assert_eq!(snapshot_at(&timeline, u64::MAX), naive(&timeline, u64::MAX));
        }
    }
}
