//! Experiment campaigns: declarative sweeps over the paper's evaluation
//! space, executed across a thread pool with per-run observability.
//!
//! The paper's figures are all grids of independent runs — Figure 3 is
//! workloads × network sizes × the four strategies, Figures 4–5 sweep the
//! adaptive workload's concurrency — and the seed repo ran them one cell at
//! a time in nested loops. A [`CampaignSpec`] names the sweep once
//! (strategies × grid sizes × field seeds × workloads over a shared base
//! [`ExperimentConfig`]), and [`run_campaign`] executes the cells N-way
//! parallel over crossbeam scoped threads. Cells are completely independent
//! simulations, each bit-for-bit deterministic given its configuration, so
//! per-cell results are identical whatever the thread count — only the wall
//! clock changes. [`run_campaign_sequential`] is the single-thread oracle the
//! determinism tests compare against.
//!
//! Every cell yields a [`CellRecord`]: the cell's identity, its wall-clock
//! time, event and answer counts, a [`MetricsSnapshot`] of the simulator's
//! counters, and the tier-1 optimizer's statistics when that tier ran.
//! [`CampaignReport::to_jsonl`] serializes the records as JSON lines (one
//! object per cell) for dashboards and regression tracking. The JSON is
//! emitted by a small writer in this module rather than through a serde
//! serializer: the workspace's vendored `serde` is an API stub (the build
//! environment has no registry access), so deriving `Serialize` would not
//! produce output. The record shape is documented on [`CellRecord::to_json`].
//!
//! # Example
//!
//! ```
//! use ttmqo_core::{
//!     run_campaign_with, CampaignSpec, ExperimentConfig, Strategy, WorkloadEvent,
//! };
//! use ttmqo_query::{parse_query, QueryId};
//! use ttmqo_sim::SimTime;
//!
//! let workload = vec![
//!     WorkloadEvent::pose(0, parse_query(QueryId(1),
//!         "select light where 100<light<600 epoch duration 2048").unwrap()),
//!     WorkloadEvent::pose(0, parse_query(QueryId(2),
//!         "select light where 200<light<500 epoch duration 4096").unwrap()),
//! ];
//! let base = ExperimentConfig {
//!     duration: SimTime::from_ms(16 * 2048),
//!     ..ExperimentConfig::default()
//! };
//! let spec = CampaignSpec::new(base)
//!     .strategies([Strategy::Baseline, Strategy::TwoTier])
//!     .grid_sizes([3])
//!     .workload("pair", workload);
//! let report = run_campaign_with(&spec, 2);
//! assert_eq!(report.cells.len(), 2);
//! assert!(report.to_jsonl().lines().count() == 2);
//! ```

use crate::basestation::OptimizerStats;
use crate::observe::{events_per_sec, CampaignEvent, ProgressHandle, ProgressSink};
use crate::runner::{run_experiment, ExperimentConfig, RunSession, Strategy, WorkloadEvent};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use ttmqo_sim::{
    summarize_trace, AuditReport, CompletenessReport, EngineStats, FaultPlan, JsonLinesSink,
    MetricsSnapshot, ProfileHandle, SimTime, TraceHandle, SCHEMA_VERSION,
};

/// Epoch length (ms) used when summarizing a cell's trace for the
/// trace↔answer audit reconciliation — the paper's base epoch. Only the
/// summary's per-epoch rollups depend on it; the per-query answer counts
/// the audit compares are epoch-length independent.
const AUDIT_SUMMARY_EPOCH_MS: u64 = 2048;

/// A named workload inside a campaign.
#[derive(Debug, Clone)]
pub struct CampaignWorkload {
    /// Name carried into every record of this workload's cells.
    pub name: String,
    /// The user-level events every cell of this workload replays.
    pub events: Vec<WorkloadEvent>,
}

/// A named fault plan inside a campaign.
#[derive(Debug, Clone)]
pub struct CampaignFault {
    /// Name carried into every record of this plan's cells (`"none"` for the
    /// default fault-free entry).
    pub name: String,
    /// The fault plan injected into every cell of this axis entry.
    pub plan: FaultPlan,
}

/// A declarative sweep: the cross product of strategies, grid sizes, field
/// seeds, fault plans and workloads, every cell sharing `base` for
/// everything else.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Configuration shared by every cell; each cell overrides `strategy`,
    /// `grid_n` and `field_seed` with its own coordinates.
    pub base: ExperimentConfig,
    /// Strategies axis (defaults to all four of §4).
    pub strategies: Vec<Strategy>,
    /// Grid-side axis (defaults to the paper's 4 and 8 ⇒ 16 and 64 nodes).
    pub grid_sizes: Vec<usize>,
    /// Sensor-field seed axis (defaults to the base config's single seed).
    pub field_seeds: Vec<u64>,
    /// Fault-plan axis (defaults to a single fault-free `"none"` entry, so
    /// existing sweeps keep their cell count until a plan is added).
    pub faults: Vec<CampaignFault>,
    /// Workload axis; at least one is required to have any cells.
    pub workloads: Vec<CampaignWorkload>,
    /// Opt-in per-cell structured tracing: when set, every cell attaches a
    /// [`JsonLinesSink`] writing to
    /// `<dir>/trace-<index>-<workload>-<strategy>-<grid_n>-<fault>.jsonl` and
    /// its record names the file in `trace_file`. `None` (the default) keeps
    /// every cell untraced and bit-for-bit identical to earlier campaigns.
    pub trace_dir: Option<PathBuf>,
    /// Opt-in per-cell windowed timeseries output: when set, every cell runs
    /// with timeseries collection enabled (the base config's
    /// `ExperimentConfig::timeseries` when it is `Some`, the default
    /// [`ttmqo_sim::TimeseriesConfig`] otherwise) and writes
    /// `<dir>/timeseries-<index>-<workload>-<strategy>-<grid_n>-<fault>.json`,
    /// named in the record's `timeseries_file`. `None` (the default) leaves
    /// the base config's setting untouched.
    pub timeseries_dir: Option<PathBuf>,
    /// Opt-in per-cell phase profiling: when set, every cell runs with a
    /// [`ProfileHandle`] attached and writes its [`ttmqo_sim::ProfileReport`]
    /// to `<dir>/profile-<index>-<workload>-<strategy>-<grid_n>-<fault>.json`,
    /// named in the record's `profile_file`. Profiling never changes
    /// simulation behaviour (cells stay bit-identical), only the wall-clock
    /// attribution recorded alongside. `None` (the default) profiles nothing.
    pub profile_dir: Option<PathBuf>,
    /// Opt-in warm-started execution: cells that share every coordinate
    /// except the workload (same strategy, grid size, field seed and fault
    /// plan) also share their common prefix — topology build, SRT
    /// dissemination, startup radio traffic, *and* every workload event the
    /// spec's workloads agree on before they first diverge (workloads built
    /// as "common base queries plus per-cell extras" share the whole base).
    /// With warm start on, that prefix is simulated once per group,
    /// checkpointed just before the earliest diverging workload event
    /// ([`CampaignSpec::warm_prefix_time`]), and every cell of the group
    /// resumes from the checkpoint instead of re-simulating it. Restored
    /// runs are bit-identical to cold runs, so every record field except
    /// `wall_clock_ms` is unchanged. Ignored (cells run cold) when
    /// [`CampaignSpec::trace_dir`] or [`CampaignSpec::profile_dir`] is set,
    /// because a resumed cell's trace file (or profile attribution) would be
    /// missing the shared prefix's events.
    pub warm_start: bool,
    /// Live progress telemetry channel. The default disabled handle emits
    /// nothing; an attached sink receives [`CampaignEvent`]s as cells
    /// start, finish and fail, plus heartbeats and an overall
    /// started/finished pair. Emission is observational only — no RNG
    /// draws, no behavioral branches — so cell records are bit-identical
    /// with or without a sink (the `trace` contract at campaign scope).
    pub progress: ProgressHandle,
    /// Heartbeat period for the observational liveness thread, ms. The
    /// thread runs only while a progress sink is attached and the period
    /// is nonzero; 0 disables heartbeats while keeping per-cell events.
    pub heartbeat_ms: u64,
}

impl CampaignSpec {
    /// A spec over `base` with the paper's default axes (all four
    /// strategies, 4×4 and 8×8 grids, the base config's field seed) and no
    /// workloads yet.
    pub fn new(base: ExperimentConfig) -> Self {
        CampaignSpec {
            strategies: Strategy::ALL.to_vec(),
            grid_sizes: vec![4, 8],
            field_seeds: vec![base.field_seed],
            faults: vec![CampaignFault {
                name: "none".to_string(),
                plan: FaultPlan::default(),
            }],
            workloads: Vec::new(),
            trace_dir: None,
            timeseries_dir: None,
            profile_dir: None,
            warm_start: false,
            progress: ProgressHandle::disabled(),
            heartbeat_ms: 1000,
            base,
        }
    }

    /// Attaches a progress sink (see [`CampaignSpec::progress`]).
    pub fn progress(mut self, sink: impl ProgressSink + 'static) -> Self {
        self.progress = ProgressHandle::new(sink);
        self
    }

    /// Attaches an existing progress handle — lets a caller keep a typed
    /// shared sink (e.g. [`crate::observe::MemoryProgress`]) to read the
    /// events back.
    pub fn progress_handle(mut self, handle: ProgressHandle) -> Self {
        self.progress = handle;
        self
    }

    /// Sets the heartbeat period (see [`CampaignSpec::heartbeat_ms`]).
    pub fn heartbeat_ms(mut self, ms: u64) -> Self {
        self.heartbeat_ms = ms;
        self
    }

    /// Enables the standing invariant auditor for every cell
    /// ([`ExperimentConfig::audit`] on the shared base): each record
    /// carries an [`AuditReport`], and — when the campaign also traces —
    /// the written trace file is read back and reconciled against the
    /// cell's answer counts. Auditing is post-hoc arithmetic; cells stay
    /// bit-identical.
    pub fn audit(mut self) -> Self {
        self.base.audit = true;
        self
    }

    /// Replaces the strategy axis.
    pub fn strategies(mut self, strategies: impl IntoIterator<Item = Strategy>) -> Self {
        self.strategies = strategies.into_iter().collect();
        self
    }

    /// Replaces the grid-size axis.
    pub fn grid_sizes(mut self, grid_sizes: impl IntoIterator<Item = usize>) -> Self {
        self.grid_sizes = grid_sizes.into_iter().collect();
        self
    }

    /// Replaces the field-seed axis.
    pub fn field_seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.field_seeds = seeds.into_iter().collect();
        self
    }

    /// Appends a named fault plan to the axis, alongside the default
    /// fault-free `"none"` entry — a fault sweep usually wants the healthy
    /// cell as its baseline. Replace [`CampaignSpec::faults`] wholesale to
    /// drop it.
    pub fn fault_plan(mut self, name: impl Into<String>, plan: FaultPlan) -> Self {
        self.faults.push(CampaignFault {
            name: name.into(),
            plan,
        });
        self
    }

    /// Enables per-cell trace output under `dir` (created on demand). See
    /// [`CampaignSpec::trace_dir`] for the file naming scheme.
    pub fn trace_output(mut self, dir: impl Into<PathBuf>) -> Self {
        self.trace_dir = Some(dir.into());
        self
    }

    /// Enables per-cell windowed timeseries output under `dir` (created on
    /// demand). See [`CampaignSpec::timeseries_dir`] for the naming scheme.
    pub fn timeseries_output(mut self, dir: impl Into<PathBuf>) -> Self {
        self.timeseries_dir = Some(dir.into());
        self
    }

    /// Enables per-cell phase profiling output under `dir` (created on
    /// demand). See [`CampaignSpec::profile_dir`] for the naming scheme.
    pub fn profile_output(mut self, dir: impl Into<PathBuf>) -> Self {
        self.profile_dir = Some(dir.into());
        self
    }

    /// Enables warm-started execution (see [`CampaignSpec::warm_start`]).
    pub fn warm_start(mut self) -> Self {
        self.warm_start = true;
        self
    }

    /// The instant warm-started groups checkpoint their shared prefix at:
    /// one millisecond before the earliest workload event past the longest
    /// common leading event sequence of the spec's workloads (clamped to
    /// the run duration), i.e. the latest time the network state is still
    /// independent of which workload a cell will replay. Identical
    /// workloads (or a single workload) share everything: the prefix runs
    /// to the full duration.
    pub fn warm_prefix_time(&self) -> SimTime {
        self.warm_prefix().1
    }

    /// The shared prefix of a warm-started group: the longest common
    /// leading event sequence across the spec's workloads (each normalized
    /// the way the runner replays them — sorted by time, truncated to the
    /// duration) and the checkpoint instant. Every group shares one cell
    /// per workload, so the prefix is a property of the spec, not of the
    /// group.
    fn warm_prefix(&self) -> (Vec<WorkloadEvent>, SimTime) {
        let duration = self.base.duration;
        let normalized: Vec<Vec<WorkloadEvent>> = self
            .workloads
            .iter()
            .map(|w| RunSession::prepare_events(&self.base, &w.events))
            .collect();
        let Some(first) = normalized.first() else {
            return (Vec::new(), duration);
        };
        // Longest leading sequence every workload agrees on.
        let mut k = first.len();
        for events in &normalized[1..] {
            k = k.min(events.len());
            while k > 0 && events[..k] != first[..k] {
                k -= 1;
            }
        }
        // Checkpoint strictly before the earliest diverging event: up to
        // that instant every cell of a group replays exactly the common
        // prefix, so the checkpoint is indistinguishable from one taken
        // mid-way through the cell's own straight run.
        let t0 = normalized
            .iter()
            .filter_map(|events| events.get(k).map(|e| e.at))
            .min()
            .map(|t| SimTime::from_ms(t.as_ms().saturating_sub(1)))
            .unwrap_or(duration)
            .min(duration);
        (first[..k].to_vec(), t0)
    }

    /// Appends a named workload.
    pub fn workload(mut self, name: impl Into<String>, events: Vec<WorkloadEvent>) -> Self {
        self.workloads.push(CampaignWorkload {
            name: name.into(),
            events,
        });
        self
    }

    /// Number of cells the sweep expands to.
    pub fn cell_count(&self) -> usize {
        self.workloads.len()
            * self.grid_sizes.len()
            * self.field_seeds.len()
            * self.faults.len()
            * self.strategies.len()
    }

    /// Expands the sweep into per-cell coordinates, in the deterministic
    /// report order: workloads (outer) × grid sizes × field seeds × fault
    /// plans × strategies (inner) — the order the paper's figure tables
    /// read in.
    pub fn cells(&self) -> Vec<CellSpec> {
        let mut cells = Vec::with_capacity(self.cell_count());
        for (workload, _) in self.workloads.iter().enumerate() {
            for &grid_n in &self.grid_sizes {
                for &field_seed in &self.field_seeds {
                    for (fault, _) in self.faults.iter().enumerate() {
                        for &strategy in &self.strategies {
                            cells.push(CellSpec {
                                index: cells.len(),
                                workload,
                                strategy,
                                grid_n,
                                field_seed,
                                fault,
                            });
                        }
                    }
                }
            }
        }
        cells
    }
}

/// Coordinates of one cell in a campaign's sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellSpec {
    /// Position in the campaign's deterministic cell order.
    pub index: usize,
    /// Index into [`CampaignSpec::workloads`].
    pub workload: usize,
    /// Strategy coordinate.
    pub strategy: Strategy,
    /// Grid-side coordinate.
    pub grid_n: usize,
    /// Field-seed coordinate.
    pub field_seed: u64,
    /// Index into [`CampaignSpec::faults`].
    pub fault: usize,
}

impl CellSpec {
    /// The full experiment configuration of this cell (without the fault
    /// plan, which [`run_campaign_with`] injects from the spec's fault axis).
    pub fn config(&self, base: &ExperimentConfig) -> ExperimentConfig {
        ExperimentConfig {
            strategy: self.strategy,
            grid_n: self.grid_n,
            field_seed: self.field_seed,
            ..base.clone()
        }
    }
}

/// Observability record of one executed cell.
///
/// Everything except `wall_clock_ms` is a pure function of the cell's
/// configuration: two runs of the same cell — sequential or parallel, on any
/// machine — produce records that agree on every other field.
#[derive(Debug, Clone)]
pub struct CellRecord {
    /// Workload name.
    pub workload: String,
    /// Strategy that ran.
    pub strategy: Strategy,
    /// Grid side (nodes = `grid_n²`).
    pub grid_n: usize,
    /// Sensor-field seed.
    pub field_seed: u64,
    /// Fault-plan name (`"none"` for the fault-free entry).
    pub fault: String,
    /// Host wall-clock time of this cell's simulation, ms. The only
    /// non-deterministic field.
    pub wall_clock_ms: f64,
    /// Number of workload events replayed.
    pub workload_events: usize,
    /// Distinct user queries that received at least one answer.
    pub queries_answered: usize,
    /// Total `(query, epoch)` answers attributed to user queries.
    pub answer_epochs: usize,
    /// Time-weighted mean running synthetic-query count.
    pub avg_synthetic_count: f64,
    /// Time-weighted mean tier-1 benefit ratio.
    pub avg_benefit_ratio: f64,
    /// Tier-1 optimizer counters; `None` for strategies without that tier.
    pub optimizer: Option<OptimizerStats>,
    /// Per-query answer completeness and repair accounting.
    pub completeness: CompletenessReport,
    /// Simulator counters at the end of the run.
    pub metrics: MetricsSnapshot,
    /// Engine hot-path counters with the per-phase event breakdown.
    pub engine: EngineStats,
    /// File name (relative to [`CampaignSpec::trace_dir`]) of this cell's
    /// trace JSONL, when the campaign ran with tracing enabled.
    pub trace_file: Option<String>,
    /// Whole-run radio+sensing energy, mJ (under the timeseries config's
    /// energy profile when one is set, the default profile otherwise).
    pub energy_mj: f64,
    /// The hottest single node's energy, mJ, under the same profile.
    pub max_node_energy_mj: f64,
    /// File name (relative to [`CampaignSpec::timeseries_dir`]) of this
    /// cell's timeseries JSON, when the campaign ran with timeseries output.
    pub timeseries_file: Option<String>,
    /// File name (relative to [`CampaignSpec::profile_dir`]) of this cell's
    /// phase-profile JSON, when the campaign ran with profiling enabled.
    pub profile_file: Option<String>,
    /// Standing invariant audit of the cell's run; `Some` iff the campaign
    /// ran with [`CampaignSpec::audit`] (or the base config set
    /// [`ExperimentConfig::audit`]). When the campaign also traced, the
    /// report includes the trace↔answer reconciliation over the written
    /// trace file. Deterministic: auditing is arithmetic over the run's
    /// own deterministic artifacts.
    pub audit: Option<AuditReport>,
}

impl CellRecord {
    /// The paper's headline metric for this cell.
    pub fn avg_transmission_time_pct(&self) -> f64 {
        self.metrics.avg_transmission_time_pct
    }

    /// Serializes the record as one JSON object (one line of the campaign's
    /// JSON-lines report):
    ///
    /// ```json
    /// {"schema_version":2,"workload":"A","strategy":"two-tier","grid_n":4,"field_seed":987,
    ///  "fault":"none","wall_clock_ms":12.5,"workload_events":8,"queries_answered":4,
    ///  "answer_epochs":160,"avg_synthetic_count":1.9,"avg_benefit_ratio":0.31,
    ///  "energy_mj":14000.2,"max_node_energy_mj":950.8,
    ///  "optimizer":{"inserted":4,"terminated":4,"injections":2,"abortions":1,
    ///               "absorbed_insertions":2,"absorbed_terminations":3},
    ///  "completeness":{"min_epoch_ratio":1,"min_row_ratio":0.95,
    ///                  "repairs_triggered":0,"mean_repair_latency_ms":null},
    ///  "metrics":{"avg_transmission_time_pct":0.41,"total_tx_busy_ms":1031.2,
    ///             "total_rx_busy_ms":2222.1,"total_sleep_ms":0,
    ///             "tx_count":{"result":320},"tx_bytes":{"result":9600},
    ///             "retransmissions":0,"collisions":0,"losses":0,"gave_up":0,
    ///             "orphaned_drops":0,"orphaned_nodes":0,
    ///             "samples":512,"horizon_ms":196608},
    ///  "engine":{"events_processed":5000,"frames_total":320,
    ///            "frame_slab_high_water":4,"csma_capped_deferrals":0,
    ///            "csma_sorts_saved":320,
    ///            "timer_events":4000,"deliver_events":900,"command_events":8,
    ///            "maintenance_events":92,"fault_events":0}}
    /// ```
    ///
    /// `schema_version` is [`ttmqo_sim::SCHEMA_VERSION`] (shared with the
    /// trace JSONL format and the `BENCH_*.json` reports). `optimizer` is
    /// `null` for strategies without the base-station tier. A trailing
    /// `"trace_file":"trace-0-....jsonl"` field is present only when the
    /// campaign ran with [`CampaignSpec::trace_output`], a trailing
    /// `"timeseries_file":"timeseries-0-....json"` only with
    /// [`CampaignSpec::timeseries_output`], a trailing
    /// `"profile_file":"profile-0-....json"` only with
    /// [`CampaignSpec::profile_output`], and a trailing
    /// `"audit":{...}` ([`AuditReport::to_json`]) only with
    /// [`CampaignSpec::audit`].
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push('{');
        json_num(&mut out, "schema_version", &SCHEMA_VERSION.to_string());
        out.push(',');
        json_str(&mut out, "workload", &self.workload);
        out.push(',');
        json_str(&mut out, "strategy", &self.strategy.to_string());
        out.push(',');
        json_num(&mut out, "grid_n", &self.grid_n.to_string());
        out.push(',');
        json_num(&mut out, "field_seed", &self.field_seed.to_string());
        out.push(',');
        json_str(&mut out, "fault", &self.fault);
        out.push(',');
        json_num(&mut out, "wall_clock_ms", &json_f64(self.wall_clock_ms));
        out.push(',');
        json_num(
            &mut out,
            "workload_events",
            &self.workload_events.to_string(),
        );
        out.push(',');
        json_num(
            &mut out,
            "queries_answered",
            &self.queries_answered.to_string(),
        );
        out.push(',');
        json_num(&mut out, "answer_epochs", &self.answer_epochs.to_string());
        out.push(',');
        json_num(
            &mut out,
            "avg_synthetic_count",
            &json_f64(self.avg_synthetic_count),
        );
        out.push(',');
        json_num(
            &mut out,
            "avg_benefit_ratio",
            &json_f64(self.avg_benefit_ratio),
        );
        out.push(',');
        json_num(&mut out, "energy_mj", &json_f64(self.energy_mj));
        out.push(',');
        json_num(
            &mut out,
            "max_node_energy_mj",
            &json_f64(self.max_node_energy_mj),
        );
        out.push_str(",\"optimizer\":");
        match &self.optimizer {
            None => out.push_str("null"),
            Some(s) => {
                out.push('{');
                json_num(&mut out, "inserted", &s.inserted.to_string());
                out.push(',');
                json_num(&mut out, "terminated", &s.terminated.to_string());
                out.push(',');
                json_num(&mut out, "injections", &s.injections.to_string());
                out.push(',');
                json_num(&mut out, "abortions", &s.abortions.to_string());
                out.push(',');
                json_num(
                    &mut out,
                    "absorbed_insertions",
                    &s.absorbed_insertions.to_string(),
                );
                out.push(',');
                json_num(
                    &mut out,
                    "absorbed_terminations",
                    &s.absorbed_terminations.to_string(),
                );
                out.push('}');
            }
        }
        out.push_str(",\"completeness\":{");
        let c = &self.completeness;
        json_num(&mut out, "min_epoch_ratio", &json_f64(c.min_epoch_ratio()));
        out.push(',');
        json_num(&mut out, "min_row_ratio", &json_f64(c.min_row_ratio()));
        out.push(',');
        json_num(
            &mut out,
            "repairs_triggered",
            &c.repairs_triggered.to_string(),
        );
        out.push(',');
        json_num(
            &mut out,
            "mean_repair_latency_ms",
            &c.mean_repair_latency_ms()
                .map_or_else(|| "null".to_string(), json_f64),
        );
        out.push('}');
        out.push_str(",\"metrics\":{");
        let m = &self.metrics;
        json_num(
            &mut out,
            "avg_transmission_time_pct",
            &json_f64(m.avg_transmission_time_pct),
        );
        out.push(',');
        json_num(&mut out, "total_tx_busy_ms", &json_f64(m.total_tx_busy_ms));
        out.push(',');
        json_num(&mut out, "total_rx_busy_ms", &json_f64(m.total_rx_busy_ms));
        out.push(',');
        json_num(&mut out, "total_sleep_ms", &json_f64(m.total_sleep_ms));
        out.push_str(",\"tx_count\":{");
        for (i, (kind, n)) in m.tx_count.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json_num(&mut out, &kind.to_string(), &n.to_string());
        }
        out.push_str("},\"tx_bytes\":{");
        for (i, (kind, n)) in m.tx_bytes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json_num(&mut out, &kind.to_string(), &n.to_string());
        }
        out.push_str("},");
        json_num(&mut out, "retransmissions", &m.retransmissions.to_string());
        out.push(',');
        json_num(&mut out, "collisions", &m.collisions.to_string());
        out.push(',');
        json_num(&mut out, "losses", &m.losses.to_string());
        out.push(',');
        json_num(&mut out, "gave_up", &m.gave_up.to_string());
        out.push(',');
        json_num(&mut out, "orphaned_drops", &m.orphaned_drops.to_string());
        out.push(',');
        json_num(&mut out, "orphaned_nodes", &m.orphaned_nodes.to_string());
        out.push(',');
        json_num(&mut out, "samples", &m.samples.to_string());
        out.push(',');
        json_num(&mut out, "horizon_ms", &m.horizon_ms.to_string());
        out.push_str("},\"engine\":{");
        let e = &self.engine;
        json_num(
            &mut out,
            "events_processed",
            &e.events_processed.to_string(),
        );
        out.push(',');
        json_num(&mut out, "frames_total", &e.frames_total.to_string());
        out.push(',');
        json_num(
            &mut out,
            "frame_slab_high_water",
            &e.frame_slab_high_water.to_string(),
        );
        out.push(',');
        json_num(
            &mut out,
            "csma_capped_deferrals",
            &e.csma_capped_deferrals.to_string(),
        );
        out.push(',');
        json_num(
            &mut out,
            "csma_sorts_saved",
            &e.csma_sorts_saved.to_string(),
        );
        out.push(',');
        json_num(&mut out, "timer_events", &e.timer_events.to_string());
        out.push(',');
        json_num(&mut out, "deliver_events", &e.deliver_events.to_string());
        out.push(',');
        json_num(&mut out, "command_events", &e.command_events.to_string());
        out.push(',');
        json_num(
            &mut out,
            "maintenance_events",
            &e.maintenance_events.to_string(),
        );
        out.push(',');
        json_num(&mut out, "fault_events", &e.fault_events.to_string());
        out.push('}');
        if let Some(name) = &self.trace_file {
            out.push(',');
            json_str(&mut out, "trace_file", name);
        }
        if let Some(name) = &self.timeseries_file {
            out.push(',');
            json_str(&mut out, "timeseries_file", name);
        }
        if let Some(name) = &self.profile_file {
            out.push(',');
            json_str(&mut out, "profile_file", name);
        }
        if let Some(audit) = &self.audit {
            out.push_str(",\"audit\":");
            out.push_str(&audit.to_json());
        }
        out.push('}');
        out
    }
}

/// Everything a campaign produced.
#[derive(Debug)]
pub struct CampaignReport {
    /// One record per cell, in [`CampaignSpec::cells`] order regardless of
    /// which thread finished first.
    pub cells: Vec<CellRecord>,
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock time of the whole campaign, ms.
    pub wall_clock_ms: f64,
}

impl CampaignReport {
    /// The record at the given sweep coordinates, if the campaign ran it
    /// (the first matching record when the sweep has several fault-plan
    /// entries — filter `cells` by `fault` name to disambiguate).
    pub fn cell(
        &self,
        workload: &str,
        strategy: Strategy,
        grid_n: usize,
        field_seed: u64,
    ) -> Option<&CellRecord> {
        self.cells.iter().find(|c| {
            c.workload == workload
                && c.strategy == strategy
                && c.grid_n == grid_n
                && c.field_seed == field_seed
        })
    }

    /// The whole report as JSON lines: one [`CellRecord::to_json`] object
    /// per line, in cell order (the `BENCH_campaign.json` shape).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for cell in &self.cells {
            out.push_str(&cell.to_json());
            out.push('\n');
        }
        out
    }
}

/// Makes an axis name safe for a file name (slashes, spaces and other
/// non-alphanumerics become `_`).
fn slug(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Warm-start sharing key: cells agreeing on `(strategy, grid_n,
/// field_seed, fault index)` replay the same prefix and share one
/// checkpoint; only the workload axis varies within a group.
type GroupKey = (Strategy, usize, u64, usize);

/// The full configuration a cell runs under: coordinates applied over the
/// base, the fault axis's plan injected, timeseries defaulted on when the
/// campaign writes timeseries files. Shared by cold runs and the warm-start
/// prefix, which must agree on everything except the trace sink.
fn cell_config(spec: &CampaignSpec, cell: &CellSpec) -> ExperimentConfig {
    let mut config = cell.config(&spec.base);
    config.faults = spec.faults[cell.fault].plan.clone();
    if spec.timeseries_dir.is_some() && config.timeseries.is_none() {
        config.timeseries = Some(Default::default());
    }
    config
}

/// Runs one cell and wraps its results into a record. With `prefix` set,
/// the cell resumes from the group's shared checkpoint instead of
/// simulating the pre-workload prefix itself.
fn run_cell(spec: &CampaignSpec, cell: &CellSpec, prefix: Option<&[u8]>) -> CellRecord {
    let workload = &spec.workloads[cell.workload];
    let fault = &spec.faults[cell.fault];
    let mut config = cell_config(spec, cell);
    let trace_file = spec.trace_dir.as_ref().and_then(|dir| {
        let name = format!(
            "trace-{}-{}-{}-{}-{}.jsonl",
            cell.index,
            slug(&workload.name),
            cell.strategy,
            cell.grid_n,
            slug(&fault.name),
        );
        std::fs::create_dir_all(dir).ok()?;
        let sink = JsonLinesSink::create(dir.join(&name)).ok()?;
        config.trace = TraceHandle::new(sink);
        Some(name)
    });
    if spec.profile_dir.is_some() {
        config.profile = ProfileHandle::enabled();
    }
    let start = Instant::now();
    let mut report = match prefix {
        Some(bytes) => RunSession::restore(bytes, &config, &workload.events)
            .expect("the group prefix checkpoint was produced under this configuration")
            .finish(),
        None => run_experiment(&config, &workload.events),
    };
    let wall_clock_ms = start.elapsed().as_secs_f64() * 1000.0;
    config.trace.flush();
    // Trace↔answer reconciliation: with both the auditor and tracing on,
    // read the written trace back and check that the answer counts it
    // reconstructs equal the run report's. Post-hoc by construction — the
    // run is already finished. An unreadable or unparsable trace counts as
    // a skipped check, not a violation (an absent artifact proves nothing).
    if let (Some(audit), Some(dir), Some(name)) =
        (report.audit.as_mut(), &spec.trace_dir, &trace_file)
    {
        let summarized = std::fs::read_to_string(dir.join(name))
            .ok()
            .and_then(|text| summarize_trace(&text, AUDIT_SUMMARY_EPOCH_MS).ok());
        match summarized {
            Some(summary) => {
                let answers: BTreeMap<u64, u64> = report
                    .answers
                    .iter()
                    .map(|(qid, v)| (qid.0, v.len() as u64))
                    .collect();
                audit.check_trace_answers(&summary, &answers);
            }
            None => audit.checks_skipped += 1,
        }
    }
    let timeseries_file = spec
        .timeseries_dir
        .as_ref()
        .zip(report.timeseries.as_ref())
        .and_then(|(dir, ts)| {
            let name = format!(
                "timeseries-{}-{}-{}-{}-{}.json",
                cell.index,
                slug(&workload.name),
                cell.strategy,
                cell.grid_n,
                slug(&fault.name),
            );
            std::fs::create_dir_all(dir).ok()?;
            std::fs::write(dir.join(&name), ts.to_json()).ok()?;
            Some(name)
        });
    let profile_file = spec
        .profile_dir
        .as_ref()
        .zip(report.profile.as_ref())
        .and_then(|(dir, profile)| {
            let name = format!(
                "profile-{}-{}-{}-{}-{}.json",
                cell.index,
                slug(&workload.name),
                cell.strategy,
                cell.grid_n,
                slug(&fault.name),
            );
            std::fs::create_dir_all(dir).ok()?;
            std::fs::write(dir.join(&name), profile.to_json()).ok()?;
            Some(name)
        });
    CellRecord {
        workload: workload.name.clone(),
        strategy: cell.strategy,
        grid_n: cell.grid_n,
        field_seed: cell.field_seed,
        fault: fault.name.clone(),
        wall_clock_ms,
        workload_events: workload.events.len(),
        queries_answered: report.answers.len(),
        answer_epochs: report.answers.values().map(Vec::len).sum(),
        avg_synthetic_count: report.avg_synthetic_count,
        avg_benefit_ratio: report.avg_benefit_ratio,
        optimizer: report.optimizer_stats,
        completeness: report.completeness,
        metrics: report.metrics.snapshot(),
        engine: report.engine,
        trace_file,
        energy_mj: report.energy_mj,
        max_node_energy_mj: report.max_node_energy_mj,
        timeseries_file,
        profile_file,
        audit: report.audit,
    }
}

/// Observational campaign counters shared by the workers and the heartbeat
/// thread. Everything here is telemetry: loads and stores are `Relaxed`,
/// and no simulation decision ever reads these values.
struct ProgressState {
    started: Instant,
    total: usize,
    threads: usize,
    completed: AtomicUsize,
    running: AtomicUsize,
    /// Sum of completed cells' wall-clock times, µs (u64 so workers can
    /// accumulate without a lock).
    wall_sum_us: AtomicU64,
}

impl ProgressState {
    fn wall_ms(&self) -> f64 {
        self.started.elapsed().as_secs_f64() * 1000.0
    }

    /// ETA extrapolation: mean completed-cell wall time × remaining cells
    /// ÷ worker threads. `None` until the first cell completes. A coarse
    /// estimate by design — cells vary in cost — but it converges as the
    /// sweep progresses, which is what a week-long soak campaign needs.
    fn eta_ms(&self) -> Option<f64> {
        let completed = self.completed.load(Ordering::Relaxed);
        if completed == 0 {
            return None;
        }
        let mean_ms = self.wall_sum_us.load(Ordering::Relaxed) as f64 / 1000.0 / completed as f64;
        let remaining = self.total.saturating_sub(completed) as f64;
        Some(mean_ms * remaining / self.threads as f64)
    }
}

/// [`run_cell`] wrapped in progress telemetry: started/finished events
/// around the run, and — when the worker panics — a `cell-failed` event
/// naming the dead cell, flushed before the panic resumes so the observer
/// keeps the context even though the campaign aborts.
fn run_cell_observed(
    spec: &CampaignSpec,
    cell: &CellSpec,
    prefix: Option<&[u8]>,
    warm: bool,
    state: &ProgressState,
) -> CellRecord {
    let workload = &spec.workloads[cell.workload].name;
    let fault = &spec.faults[cell.fault].name;
    spec.progress.emit(&CampaignEvent::CellStarted {
        wall_ms: state.wall_ms(),
        index: cell.index,
        workload: workload.clone(),
        strategy: cell.strategy,
        grid_n: cell.grid_n,
        field_seed: cell.field_seed,
        fault: fault.clone(),
        warm,
    });
    state.running.fetch_add(1, Ordering::Relaxed);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_cell(spec, cell, prefix)
    }));
    state.running.fetch_sub(1, Ordering::Relaxed);
    let record = match result {
        Ok(record) => record,
        Err(panic) => {
            spec.progress.emit(&CampaignEvent::CellFailed {
                wall_ms: state.wall_ms(),
                index: cell.index,
                workload: workload.clone(),
                strategy: cell.strategy,
                grid_n: cell.grid_n,
                field_seed: cell.field_seed,
                fault: fault.clone(),
            });
            spec.progress.flush();
            std::panic::resume_unwind(panic)
        }
    };
    state
        .wall_sum_us
        .fetch_add((record.wall_clock_ms * 1000.0) as u64, Ordering::Relaxed);
    let completed = state.completed.fetch_add(1, Ordering::Relaxed) + 1;
    spec.progress.emit(&CampaignEvent::CellFinished {
        wall_ms: state.wall_ms(),
        index: cell.index,
        workload: record.workload.clone(),
        strategy: cell.strategy,
        grid_n: cell.grid_n,
        field_seed: cell.field_seed,
        fault: record.fault.clone(),
        warm,
        cell_wall_ms: record.wall_clock_ms,
        sim_ms: spec.base.duration.as_ms(),
        events_processed: record.engine.events_processed,
        events_per_sec: events_per_sec(record.engine.events_processed, record.wall_clock_ms),
        audit_violations: record
            .audit
            .as_ref()
            .map_or(0, |a| a.violations.len() as u64),
        completed,
        total: state.total,
        eta_ms: state.eta_ms(),
    });
    record
}

/// Runs the campaign over one worker thread per available CPU.
pub fn run_campaign(spec: &CampaignSpec) -> CampaignReport {
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    run_campaign_with(spec, threads)
}

/// Runs the campaign on exactly one thread, in cell order — the oracle the
/// parallel runner's determinism is tested against.
pub fn run_campaign_sequential(spec: &CampaignSpec) -> CampaignReport {
    run_campaign_with(spec, 1)
}

/// Runs the campaign over `threads` worker threads (clamped to `1..=cells`).
///
/// Workers pull cells from a shared atomic cursor, so scheduling is dynamic
/// — a thread that drew a cheap 4×4 baseline cell moves on while another is
/// still inside an 8×8 two-tier cell — but each record lands in its cell's
/// slot, so the report order is the deterministic [`CampaignSpec::cells`]
/// order no matter the interleaving.
pub fn run_campaign_with(spec: &CampaignSpec, threads: usize) -> CampaignReport {
    let cells = spec.cells();
    let started = Instant::now();
    let threads = threads.clamp(1, cells.len().max(1));
    // Warm start: one checkpointed prefix per (strategy, grid, seed, fault)
    // group, shared by that group's cells across the workload axis. Traced
    // and profiled campaigns run cold — a resumed cell's trace (or profile
    // attribution) would lack the prefix.
    let prefixes: Option<BTreeMap<GroupKey, Vec<u8>>> =
        (spec.warm_start && spec.trace_dir.is_none() && spec.profile_dir.is_none()).then(|| {
            let (prefix_events, t0) = spec.warm_prefix();
            let mut map = BTreeMap::new();
            for cell in &cells {
                map.entry((cell.strategy, cell.grid_n, cell.field_seed, cell.fault))
                    .or_insert_with(|| {
                        let config = cell_config(spec, cell);
                        let mut session = RunSession::new(&config, &prefix_events);
                        session.run_to(t0);
                        session.checkpoint()
                    });
            }
            map
        });
    let prefix_of = |cell: &CellSpec| {
        prefixes
            .as_ref()
            .map(|map| map[&(cell.strategy, cell.grid_n, cell.field_seed, cell.fault)].as_slice())
    };
    let warm = prefixes.is_some();
    let state = Arc::new(ProgressState {
        started,
        total: cells.len(),
        threads,
        completed: AtomicUsize::new(0),
        running: AtomicUsize::new(0),
        wall_sum_us: AtomicU64::new(0),
    });
    spec.progress.emit(&CampaignEvent::CampaignStarted {
        cells: cells.len(),
        threads,
        warm_start: warm,
    });
    // Observational heartbeat: a plain OS thread that only *reads* the
    // shared counters and emits telemetry on a period. It holds no
    // reference into the simulation, draws no RNG, and nothing in the
    // campaign ever branches on its existence — so an observed campaign's
    // cell records are bit-identical to an unobserved one's (pinned by the
    // golden determinism tests). Spawned only when a sink is attached.
    let stop = Arc::new(AtomicBool::new(false));
    let heartbeat = (spec.progress.is_enabled() && spec.heartbeat_ms > 0 && !cells.is_empty())
        .then(|| {
            let progress = spec.progress.clone();
            let state = Arc::clone(&state);
            let stop = Arc::clone(&stop);
            let period = Duration::from_millis(spec.heartbeat_ms);
            std::thread::spawn(move || loop {
                std::thread::park_timeout(period);
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                progress.emit(&CampaignEvent::Heartbeat {
                    wall_ms: state.wall_ms(),
                    completed: state.completed.load(Ordering::Relaxed),
                    running: state.running.load(Ordering::Relaxed),
                    total: state.total,
                    eta_ms: state.eta_ms(),
                });
            })
        });
    let records: Vec<CellRecord> = if threads == 1 {
        cells
            .iter()
            .map(|cell| run_cell_observed(spec, cell, prefix_of(cell), warm, &state))
            .collect()
    } else {
        let cursor = AtomicUsize::new(0);
        let slots: Mutex<Vec<Option<CellRecord>>> = Mutex::new(vec![None; cells.len()]);
        crossbeam::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|_| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(cell) = cells.get(i) else { break };
                    let record = run_cell_observed(spec, cell, prefix_of(cell), warm, &state);
                    slots.lock().expect("no worker panicked holding the lock")[i] = Some(record);
                });
            }
        })
        .expect("campaign worker panicked");
        slots
            .into_inner()
            .expect("workers have exited")
            .into_iter()
            .map(|r| r.expect("cursor visited every cell"))
            .collect()
    };
    if let Some(heartbeat) = heartbeat {
        stop.store(true, Ordering::Relaxed);
        heartbeat.thread().unpark();
        heartbeat
            .join()
            .expect("the heartbeat thread only reads counters and never panics");
    }
    let report = CampaignReport {
        cells: records,
        threads,
        wall_clock_ms: started.elapsed().as_secs_f64() * 1000.0,
    };
    spec.progress.emit(&CampaignEvent::CampaignFinished {
        wall_ms: report.wall_clock_ms,
        cells: report.cells.len(),
        warm_prefix_hits: if warm { report.cells.len() } else { 0 },
        audit_violations: report.audit_violations(),
    });
    spec.progress.flush();
    report
}

/// Appends `"key":"escaped value"`.
pub(crate) fn json_str(out: &mut String, key: &str, value: &str) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":\"");
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `"key":value` with `value` already rendered as a JSON number (or
/// `null`).
pub(crate) fn json_num(out: &mut String, key: &str, value: &str) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    out.push_str(value);
}

/// Renders an f64 as a JSON number; non-finite values (which valid runs never
/// produce) become `null` rather than invalid JSON.
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::FieldKind;
    use ttmqo_query::{parse_query, QueryId};
    use ttmqo_sim::{RadioParams, SimTime};

    fn tiny_spec() -> CampaignSpec {
        let workload = vec![
            WorkloadEvent::pose(
                0,
                parse_query(
                    QueryId(1),
                    "select light where 100<light<600 epoch duration 2048",
                )
                .unwrap(),
            ),
            WorkloadEvent::pose(
                0,
                parse_query(
                    QueryId(2),
                    "select light where 200<light<500 epoch duration 4096",
                )
                .unwrap(),
            ),
        ];
        let base = ExperimentConfig {
            duration: SimTime::from_ms(10 * 2048),
            radio: RadioParams::lossless(),
            field: FieldKind::Uniform,
            ..ExperimentConfig::default()
        };
        CampaignSpec::new(base)
            .strategies([Strategy::Baseline, Strategy::TwoTier])
            .grid_sizes([3])
            .workload("tiny", workload)
    }

    #[test]
    fn cells_expand_in_documented_order() {
        let spec = tiny_spec()
            .grid_sizes([3, 4])
            .field_seeds([1, 2])
            .workload("tiny2", Vec::new());
        let cells = spec.cells();
        assert_eq!(cells.len(), spec.cell_count());
        assert_eq!(cells.len(), 2 * 2 * 2 * 2);
        // Innermost axis is the strategy, outermost the workload.
        assert_eq!(
            (cells[0].workload, cells[0].grid_n, cells[0].field_seed),
            (0, 3, 1)
        );
        assert_eq!(cells[0].strategy, Strategy::Baseline);
        assert_eq!(cells[1].strategy, Strategy::TwoTier);
        assert_eq!(cells[2].field_seed, 2);
        assert_eq!(cells[4].grid_n, 4);
        assert_eq!(cells[8].workload, 1);
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.index, i);
        }
    }

    #[test]
    fn report_preserves_cell_order_and_counts() {
        let spec = tiny_spec();
        let report = run_campaign_with(&spec, 2);
        assert_eq!(report.cells.len(), 2);
        assert_eq!(report.cells[0].strategy, Strategy::Baseline);
        assert_eq!(report.cells[1].strategy, Strategy::TwoTier);
        for cell in &report.cells {
            assert_eq!(cell.workload, "tiny");
            assert_eq!(cell.workload_events, 2);
            assert_eq!(cell.queries_answered, 2);
            assert!(cell.answer_epochs > 0);
            assert!(cell.avg_transmission_time_pct() > 0.0);
            assert!(cell.wall_clock_ms >= 0.0);
        }
        // Only the two-tier cell carries optimizer stats.
        assert!(report.cells[0].optimizer.is_none());
        assert!(report.cells[1].optimizer.is_some());
        let found = report
            .cell("tiny", Strategy::TwoTier, 3, spec.base.field_seed)
            .expect("lookup by coordinates");
        assert_eq!(found.strategy, Strategy::TwoTier);
        assert!(report.cell("tiny", Strategy::InNetOnly, 3, 0).is_none());
    }

    #[test]
    fn jsonl_has_one_wellformed_record_per_cell() {
        let report = run_campaign_with(&tiny_spec(), 2);
        let jsonl = report.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
            assert!(line.contains("\"workload\":\"tiny\""));
            assert!(line.contains("\"metrics\":{"));
            assert!(line.contains("\"avg_transmission_time_pct\":"));
            assert!(line.contains("\"energy_mj\":"));
            assert!(line.contains("\"max_node_energy_mj\":"));
            assert!(line.contains("\"tx_count\":{"));
            // Balanced braces and quotes — cheap well-formedness checks that
            // don't need a JSON parser.
            assert_eq!(
                line.matches('{').count(),
                line.matches('}').count(),
                "unbalanced braces in {line}"
            );
            assert_eq!(line.matches('"').count() % 2, 0);
            let sanitized = line
                .replace("\"optimizer\":null", "")
                .replace("\"mean_repair_latency_ms\":null", "");
            assert!(!sanitized.contains("null"), "unexpected null in {line}");
        }
        assert!(jsonl.contains("\"strategy\":\"baseline\""));
        assert!(jsonl.contains("\"strategy\":\"two-tier\""));
    }

    #[test]
    fn json_escaping_handles_special_characters() {
        let mut out = String::new();
        json_str(&mut out, "k", "a\"b\\c\nd\u{1}e");
        assert_eq!(out, "\"k\":\"a\\\"b\\\\c\\nd\\u0001e\"");
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
    }

    #[test]
    fn fault_axis_expands_cells_and_marks_records() {
        use ttmqo_sim::NodeId;
        let spec = tiny_spec().strategies([Strategy::TwoTier]).fault_plan(
            "crash-one",
            FaultPlan::scripted(vec![(NodeId(8), 3 * 2048, None)]),
        );
        assert_eq!(spec.cell_count(), 2, "none + crash-one");
        let report = run_campaign_with(&spec, 2);
        assert_eq!(report.cells[0].fault, "none");
        assert_eq!(report.cells[1].fault, "crash-one");
        // The healthy lossless cell answers every expected epoch (row
        // completeness is below 1 by design here: expected rows are a static
        // upper bound that ignores the workload's value predicates); the
        // faulty cell's accounting visibly diverges from it.
        assert_eq!(report.cells[0].completeness.min_epoch_ratio(), 1.0);
        assert_eq!(report.cells[0].completeness.repairs_triggered, 0);
        assert_ne!(report.cells[0].completeness, report.cells[1].completeness);
        let jsonl = report.to_jsonl();
        assert!(jsonl.contains("\"fault\":\"none\""));
        assert!(jsonl.contains("\"fault\":\"crash-one\""));
        assert!(jsonl.contains("\"completeness\":{\"min_epoch_ratio\":"));
        assert!(jsonl.contains("\"orphaned_nodes\":"));
    }

    #[test]
    fn timeseries_output_writes_one_file_per_cell() {
        let dir = std::env::temp_dir().join(format!("ttmqo-ts-campaign-{}", std::process::id()));
        let spec = tiny_spec().timeseries_output(&dir);
        let report = run_campaign_sequential(&spec);
        assert_eq!(report.cells.len(), 2);
        for cell in &report.cells {
            let name = cell
                .timeseries_file
                .as_ref()
                .expect("timeseries file written");
            let text = std::fs::read_to_string(dir.join(name)).expect("file readable");
            assert!(text.starts_with("{\"schema_version\":"));
            assert!(text.contains("\"windows\":["));
            assert!(text.contains("\"queries\":{"));
            assert!(cell.energy_mj > 0.0);
            assert!(cell.max_node_energy_mj > 0.0);
            assert!(cell.energy_mj >= cell.max_node_energy_mj);
        }
        let jsonl = report.to_jsonl();
        assert!(jsonl.contains("\"timeseries_file\":\"timeseries-0-tiny-baseline-3-none.json\""));
        assert!(jsonl.contains("\"timeseries_file\":\"timeseries-1-tiny-two-tier-3-none.json\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn profile_output_writes_one_file_per_cell() {
        let dir = std::env::temp_dir().join(format!("ttmqo-prof-campaign-{}", std::process::id()));
        let spec = tiny_spec().profile_output(&dir);
        let report = run_campaign_sequential(&spec);
        assert_eq!(report.cells.len(), 2);
        for cell in &report.cells {
            let name = cell.profile_file.as_ref().expect("profile file written");
            let text = std::fs::read_to_string(dir.join(name)).expect("file readable");
            assert!(text.starts_with("{\"schema_version\":"));
            assert!(text.contains("\"phases\":["));
            assert!(text.contains("\"name\":\"deliver\""));
        }
        let jsonl = report.to_jsonl();
        assert!(jsonl.contains("\"profile_file\":\"profile-0-tiny-baseline-3-none.json\""));
        assert!(jsonl.contains("\"profile_file\":\"profile-1-tiny-two-tier-3-none.json\""));
        // Profiling must not perturb behaviour: an unprofiled run of the
        // same spec agrees on every deterministic field.
        let plain = run_campaign_sequential(&tiny_spec());
        for (p, c) in plain.cells.iter().zip(&report.cells) {
            assert_eq!(p.metrics, c.metrics);
            assert_eq!(p.engine, c.engine);
            assert_eq!(p.completeness, c.completeness);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn auditing_with_tracing_reconciles_the_trace() {
        let dir = std::env::temp_dir().join(format!("ttmqo-audit-campaign-{}", std::process::id()));
        let plain = run_campaign_sequential(&tiny_spec().audit());
        let traced = run_campaign_sequential(&tiny_spec().audit().trace_output(&dir));
        for (p, t) in plain.cells.iter().zip(&traced.cells) {
            let pa = p.audit.as_ref().expect("audited cell carries a report");
            let ta = t.audit.as_ref().expect("audited cell carries a report");
            assert!(pa.is_clean(), "untraced audit clean, got {pa}");
            assert!(ta.is_clean(), "traced audit clean, got {ta}");
            // The traced campaign reads each cell's trace back and runs the
            // trace↔answer reconciliation on top of the standing checks.
            assert_eq!(
                ta.checks_run,
                pa.checks_run + 1,
                "exactly one extra check (trace↔answers) on the traced run"
            );
            // Auditing plus tracing still moves no bits of behaviour.
            assert_eq!(p.metrics, t.metrics);
            assert_eq!(p.engine, t.engine);
        }
        let jsonl = traced.to_jsonl();
        assert!(jsonl.contains("\"audit\":{\"schema_version\":"));
        assert!(jsonl.contains("\"violations\":[]"));
        // Unaudited campaigns keep their records audit-free.
        let bare = run_campaign_sequential(&tiny_spec());
        assert!(bare.cells.iter().all(|c| c.audit.is_none()));
        assert!(!bare.to_jsonl().contains("\"audit\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn zero_workload_campaign_is_empty() {
        let base = ExperimentConfig::default();
        let spec = CampaignSpec::new(base);
        assert_eq!(spec.cell_count(), 0);
        let report = run_campaign_with(&spec, 4);
        assert!(report.cells.is_empty());
        assert_eq!(report.to_jsonl(), "");
    }
}
