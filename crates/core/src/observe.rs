//! Campaign observatory: live progress telemetry and cross-cell rollups.
//!
//! A campaign is hundreds of independent cells; until now it ran dark —
//! the only output was the final [`CampaignReport`] after the last cell.
//! This module adds the fleet-level observability layer:
//!
//! * **Progress events** — [`CampaignEvent`]s stream from
//!   [`run_campaign_with`](crate::run_campaign_with) through a
//!   [`ProgressHandle`] as cells start, finish and fail, with a periodic
//!   heartbeat and an ETA extrapolated from completed-cell rates. The
//!   channel obeys the `trace` contract: emission never draws simulation
//!   RNG and never branches on simulated state, so a campaign with a
//!   progress sink attached produces bit-identical cell records to one
//!   without. Event *contents* include wall-clock fields and are therefore
//!   machine-dependent; the deterministic parts (cell coordinates, event
//!   counts, completion order of the sequential runner) are not.
//! * **Rollups** — [`CampaignRollup::from_records`] aggregates the per-cell
//!   records into per-axis marginals (workload / strategy / grid / fault),
//!   top-N hotspot cells, and campaign totals, serialized as the single
//!   `campaign-report.json` object ([`CampaignRollup::to_json`]) the
//!   `report_diff` example gates on, plus a human markdown summary
//!   ([`CampaignRollup::to_markdown`]). Every marginal is an exact sum (or
//!   min/max) over the records it covers — integer counters reconcile
//!   exactly, f64 sums fold in deterministic cell order.
//!
//! The third observability leg, the standing invariant auditor, lives in
//! [`ttmqo_sim::AuditReport`] and is wired through
//! [`ExperimentConfig::audit`](crate::ExperimentConfig::audit); the rollup
//! carries its violation totals.

use crate::campaign::{json_f64, json_num, json_str, CampaignReport, CellRecord};
use crate::runner::Strategy;
use std::fmt;
use std::io::Write;
use std::sync::{Arc, Mutex};
use ttmqo_sim::SCHEMA_VERSION;

/// How many hotspot cells a rollup keeps.
pub const HOTSPOT_TOP_N: usize = 5;

/// One progress event on a campaign's telemetry channel.
///
/// `wall_ms` fields are host wall-clock milliseconds since the campaign
/// started — observational, machine-dependent, and absent from every
/// determinism comparison. Everything naming cells (index, coordinates)
/// follows the deterministic [`CampaignSpec::cells`](crate::CampaignSpec)
/// order.
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignEvent {
    /// The campaign accepted its spec and is about to run.
    CampaignStarted {
        /// Cells the sweep expands to.
        cells: usize,
        /// Worker threads.
        threads: usize,
        /// Whether warm-started prefix sharing is in force.
        warm_start: bool,
    },
    /// A worker picked up a cell.
    CellStarted {
        /// Wall-clock ms since campaign start.
        wall_ms: f64,
        /// Position in the deterministic cell order.
        index: usize,
        /// Workload name.
        workload: String,
        /// Strategy coordinate.
        strategy: Strategy,
        /// Grid-side coordinate.
        grid_n: usize,
        /// Field-seed coordinate.
        field_seed: u64,
        /// Fault-plan name.
        fault: String,
        /// Whether the cell resumes from a warm-start prefix checkpoint.
        warm: bool,
    },
    /// A cell finished and its record landed in its slot.
    CellFinished {
        /// Wall-clock ms since campaign start.
        wall_ms: f64,
        /// Position in the deterministic cell order.
        index: usize,
        /// Workload name.
        workload: String,
        /// Strategy coordinate.
        strategy: Strategy,
        /// Grid-side coordinate.
        grid_n: usize,
        /// Field-seed coordinate.
        field_seed: u64,
        /// Fault-plan name.
        fault: String,
        /// Whether the cell resumed from a warm-start prefix checkpoint.
        warm: bool,
        /// The cell's own wall-clock time, ms.
        cell_wall_ms: f64,
        /// Simulated horizon of the cell, ms.
        sim_ms: u64,
        /// Engine events the cell processed.
        events_processed: u64,
        /// Engine events per wall-clock second (0 for a 0 ms cell).
        events_per_sec: f64,
        /// Audit violations in the cell's record (0 when unaudited).
        audit_violations: u64,
        /// Cells completed so far, this one included.
        completed: usize,
        /// Total cells in the campaign.
        total: usize,
        /// Estimated wall-clock ms to completion, extrapolated from the
        /// mean completed-cell wall time over the remaining cells and
        /// thread count. `None` until the first cell completes.
        eta_ms: Option<f64>,
    },
    /// A cell's worker panicked. The campaign still aborts (the panic is
    /// resumed after this event flushes), but the observer learns *which*
    /// cell died rather than losing the whole sweep's context.
    CellFailed {
        /// Wall-clock ms since campaign start.
        wall_ms: f64,
        /// Position in the deterministic cell order.
        index: usize,
        /// Workload name.
        workload: String,
        /// Strategy coordinate.
        strategy: Strategy,
        /// Grid-side coordinate.
        grid_n: usize,
        /// Field-seed coordinate.
        field_seed: u64,
        /// Fault-plan name.
        fault: String,
    },
    /// Periodic liveness tick from the observational heartbeat thread.
    Heartbeat {
        /// Wall-clock ms since campaign start.
        wall_ms: f64,
        /// Cells completed so far.
        completed: usize,
        /// Cells currently inside a worker.
        running: usize,
        /// Total cells in the campaign.
        total: usize,
        /// Estimated wall-clock ms to completion (see
        /// [`CampaignEvent::CellFinished::eta_ms`]).
        eta_ms: Option<f64>,
    },
    /// Every cell completed.
    CampaignFinished {
        /// Wall-clock ms the whole campaign took.
        wall_ms: f64,
        /// Cells executed.
        cells: usize,
        /// Cells that resumed from a warm-start prefix checkpoint.
        warm_prefix_hits: usize,
        /// Total audit violations across every cell record.
        audit_violations: u64,
    },
}

impl CampaignEvent {
    /// Stable kebab-case tag carried in the JSON `ev` field.
    pub fn kind(&self) -> &'static str {
        match self {
            CampaignEvent::CampaignStarted { .. } => "campaign-started",
            CampaignEvent::CellStarted { .. } => "cell-started",
            CampaignEvent::CellFinished { .. } => "cell-finished",
            CampaignEvent::CellFailed { .. } => "cell-failed",
            CampaignEvent::Heartbeat { .. } => "heartbeat",
            CampaignEvent::CampaignFinished { .. } => "campaign-finished",
        }
    }

    /// One JSON object per event, `{"ev":"<kind>",...}` — a line of the
    /// progress JSONL stream. Every variant destructures exhaustively: a
    /// field added without a serialization decision here is a compile
    /// error.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128);
        out.push('{');
        json_str(&mut out, "ev", self.kind());
        match self {
            CampaignEvent::CampaignStarted {
                cells,
                threads,
                warm_start,
            } => {
                out.push(',');
                json_num(&mut out, "cells", &cells.to_string());
                out.push(',');
                json_num(&mut out, "threads", &threads.to_string());
                out.push(',');
                json_num(&mut out, "warm_start", &warm_start.to_string());
            }
            CampaignEvent::CellStarted {
                wall_ms,
                index,
                workload,
                strategy,
                grid_n,
                field_seed,
                fault,
                warm,
            } => {
                out.push(',');
                json_num(&mut out, "wall_ms", &json_f64(*wall_ms));
                out.push(',');
                push_cell_coords(
                    &mut out,
                    *index,
                    workload,
                    *strategy,
                    *grid_n,
                    *field_seed,
                    fault,
                );
                out.push(',');
                json_num(&mut out, "warm", &warm.to_string());
            }
            CampaignEvent::CellFinished {
                wall_ms,
                index,
                workload,
                strategy,
                grid_n,
                field_seed,
                fault,
                warm,
                cell_wall_ms,
                sim_ms,
                events_processed,
                events_per_sec,
                audit_violations,
                completed,
                total,
                eta_ms,
            } => {
                out.push(',');
                json_num(&mut out, "wall_ms", &json_f64(*wall_ms));
                out.push(',');
                push_cell_coords(
                    &mut out,
                    *index,
                    workload,
                    *strategy,
                    *grid_n,
                    *field_seed,
                    fault,
                );
                out.push(',');
                json_num(&mut out, "warm", &warm.to_string());
                out.push(',');
                json_num(&mut out, "cell_wall_ms", &json_f64(*cell_wall_ms));
                out.push(',');
                json_num(&mut out, "sim_ms", &sim_ms.to_string());
                out.push(',');
                json_num(&mut out, "events_processed", &events_processed.to_string());
                out.push(',');
                json_num(&mut out, "events_per_sec", &json_f64(*events_per_sec));
                out.push(',');
                json_num(&mut out, "audit_violations", &audit_violations.to_string());
                out.push(',');
                json_num(&mut out, "completed", &completed.to_string());
                out.push(',');
                json_num(&mut out, "total", &total.to_string());
                out.push(',');
                push_eta(&mut out, *eta_ms);
            }
            CampaignEvent::CellFailed {
                wall_ms,
                index,
                workload,
                strategy,
                grid_n,
                field_seed,
                fault,
            } => {
                out.push(',');
                json_num(&mut out, "wall_ms", &json_f64(*wall_ms));
                out.push(',');
                push_cell_coords(
                    &mut out,
                    *index,
                    workload,
                    *strategy,
                    *grid_n,
                    *field_seed,
                    fault,
                );
            }
            CampaignEvent::Heartbeat {
                wall_ms,
                completed,
                running,
                total,
                eta_ms,
            } => {
                out.push(',');
                json_num(&mut out, "wall_ms", &json_f64(*wall_ms));
                out.push(',');
                json_num(&mut out, "completed", &completed.to_string());
                out.push(',');
                json_num(&mut out, "running", &running.to_string());
                out.push(',');
                json_num(&mut out, "total", &total.to_string());
                out.push(',');
                push_eta(&mut out, *eta_ms);
            }
            CampaignEvent::CampaignFinished {
                wall_ms,
                cells,
                warm_prefix_hits,
                audit_violations,
            } => {
                out.push(',');
                json_num(&mut out, "wall_ms", &json_f64(*wall_ms));
                out.push(',');
                json_num(&mut out, "cells", &cells.to_string());
                out.push(',');
                json_num(&mut out, "warm_prefix_hits", &warm_prefix_hits.to_string());
                out.push(',');
                json_num(&mut out, "audit_violations", &audit_violations.to_string());
            }
        }
        out.push('}');
        out
    }
}

fn push_cell_coords(
    out: &mut String,
    index: usize,
    workload: &str,
    strategy: Strategy,
    grid_n: usize,
    field_seed: u64,
    fault: &str,
) {
    json_num(out, "index", &index.to_string());
    out.push(',');
    json_str(out, "workload", workload);
    out.push(',');
    json_str(out, "strategy", &strategy.to_string());
    out.push(',');
    json_num(out, "grid_n", &grid_n.to_string());
    out.push(',');
    json_num(out, "field_seed", &field_seed.to_string());
    out.push(',');
    json_str(out, "fault", fault);
}

fn push_eta(out: &mut String, eta_ms: Option<f64>) {
    json_num(
        out,
        "eta_ms",
        &eta_ms.map_or_else(|| "null".to_string(), json_f64),
    );
}

/// Header line every progress JSONL stream starts with.
pub fn progress_header() -> String {
    format!("{{\"schema_version\":{SCHEMA_VERSION},\"format\":\"ttmqo-campaign-progress\"}}")
}

/// Receiver of campaign progress events. Implementations run on campaign
/// worker threads and the heartbeat thread (behind the handle's mutex), so
/// they should be quick; slow sinks delay telemetry, never simulation
/// results.
pub trait ProgressSink: Send {
    /// Called once per event, in emission order.
    fn event(&mut self, event: &CampaignEvent);
    /// Flush buffered output (called at campaign end and around failures).
    fn flush(&mut self) {}
}

/// Cloneable, optionally-attached progress channel — the campaign analogue
/// of [`ttmqo_sim::TraceHandle`]. The default disabled handle costs one
/// `Option` check per emission site and keeps campaign behaviour identical
/// to a build without the observatory.
#[derive(Clone, Default)]
pub struct ProgressHandle(Option<Arc<Mutex<dyn ProgressSink>>>);

impl fmt::Debug for ProgressHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("ProgressHandle")
            .field(&if self.0.is_some() {
                "enabled"
            } else {
                "disabled"
            })
            .finish()
    }
}

impl ProgressHandle {
    /// The no-op handle (same as `ProgressHandle::default()`).
    pub fn disabled() -> Self {
        ProgressHandle(None)
    }

    /// A handle delivering events to `sink`.
    pub fn new(sink: impl ProgressSink + 'static) -> Self {
        ProgressHandle(Some(Arc::new(Mutex::new(sink))))
    }

    /// A handle over an existing shared sink — lets a caller keep a typed
    /// `Arc<Mutex<MemoryProgress>>` clone to read the events back.
    pub fn shared(sink: Arc<Mutex<dyn ProgressSink>>) -> Self {
        ProgressHandle(Some(sink))
    }

    /// Whether a sink is attached.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Delivers `event` (no-op when disabled).
    pub fn emit(&self, event: &CampaignEvent) {
        if let Some(sink) = &self.0 {
            sink.lock().expect("progress sink poisoned").event(event);
        }
    }

    /// Flushes the attached sink, if any.
    pub fn flush(&self) {
        if let Some(sink) = &self.0 {
            sink.lock().expect("progress sink poisoned").flush();
        }
    }
}

/// Sink writing progress as JSON lines: the [`progress_header`] first, then
/// one [`CampaignEvent::to_json`] object per line.
pub struct JsonLinesProgress {
    out: Box<dyn Write + Send>,
}

impl JsonLinesProgress {
    /// Wraps any writer (the header is written immediately).
    pub fn new(mut out: impl Write + Send + 'static) -> std::io::Result<Self> {
        writeln!(out, "{}", progress_header())?;
        Ok(JsonLinesProgress { out: Box::new(out) })
    }

    /// Creates (truncating) a progress file at `path`, buffered.
    pub fn create(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Self::new(std::io::BufWriter::new(file))
    }
}

impl fmt::Debug for JsonLinesProgress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JsonLinesProgress").finish_non_exhaustive()
    }
}

impl ProgressSink for JsonLinesProgress {
    fn event(&mut self, event: &CampaignEvent) {
        // Ignore write errors at event granularity (telemetry must never
        // abort the campaign); flush reports them implicitly.
        let _ = writeln!(self.out, "{}", event.to_json());
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

/// In-memory sink for tests: keeps every event.
#[derive(Debug, Default)]
pub struct MemoryProgress {
    events: Vec<CampaignEvent>,
}

impl MemoryProgress {
    /// The events received so far, in emission order.
    pub fn events(&self) -> &[CampaignEvent] {
        &self.events
    }
}

impl ProgressSink for MemoryProgress {
    fn event(&mut self, event: &CampaignEvent) {
        self.events.push(event.clone());
    }
}

/// One axis value's aggregate over the cell records that carry it: exact
/// sums of the integer counters, deterministic-order sums of the f64
/// fields, min/max where a sum is meaningless.
#[derive(Debug, Clone, PartialEq)]
pub struct AxisMarginal {
    /// The axis value (a workload name, a strategy name, a grid side
    /// rendered as text, a fault-plan name).
    pub key: String,
    /// Cells aggregated.
    pub cells: usize,
    /// Sum of the cells' wall-clock times, ms.
    pub total_wall_ms: f64,
    /// Sum of engine events processed.
    pub events_processed: u64,
    /// Sum of timer-phase engine events.
    pub timer_events: u64,
    /// Sum of deliver-phase engine events.
    pub deliver_events: u64,
    /// Sum of command-phase engine events.
    pub command_events: u64,
    /// Sum of maintenance-phase engine events.
    pub maintenance_events: u64,
    /// Sum of fault-phase engine events.
    pub fault_events: u64,
    /// Sum of `(query, epoch)` answers attributed to user queries.
    pub answer_epochs: u64,
    /// Sum of whole-run energy, mJ.
    pub energy_mj: f64,
    /// Max over the cells' hottest-node energies, mJ.
    pub max_node_energy_mj: f64,
    /// Worst per-query epoch completeness across the cells.
    pub min_epoch_ratio: f64,
    /// Sum of repairs triggered.
    pub repairs_triggered: u64,
    /// Sum of audit violations (0 when the cells ran unaudited).
    pub audit_violations: u64,
}

impl AxisMarginal {
    fn new(key: String) -> Self {
        AxisMarginal {
            key,
            cells: 0,
            total_wall_ms: 0.0,
            events_processed: 0,
            timer_events: 0,
            deliver_events: 0,
            command_events: 0,
            maintenance_events: 0,
            fault_events: 0,
            answer_epochs: 0,
            energy_mj: 0.0,
            max_node_energy_mj: 0.0,
            min_epoch_ratio: 1.0,
            repairs_triggered: 0,
            audit_violations: 0,
        }
    }

    fn add(&mut self, rec: &CellRecord) {
        self.cells += 1;
        self.total_wall_ms += rec.wall_clock_ms;
        self.events_processed += rec.engine.events_processed;
        self.timer_events += rec.engine.timer_events;
        self.deliver_events += rec.engine.deliver_events;
        self.command_events += rec.engine.command_events;
        self.maintenance_events += rec.engine.maintenance_events;
        self.fault_events += rec.engine.fault_events;
        self.answer_epochs += rec.answer_epochs as u64;
        self.energy_mj += rec.energy_mj;
        self.max_node_energy_mj = self.max_node_energy_mj.max(rec.max_node_energy_mj);
        self.min_epoch_ratio = self.min_epoch_ratio.min(rec.completeness.min_epoch_ratio());
        self.repairs_triggered += rec.completeness.repairs_triggered;
        self.audit_violations += cell_violations(rec);
    }

    fn to_json(&self) -> String {
        // Exhaustive destructuring: every marginal field gets a
        // serialization decision or the build breaks.
        let AxisMarginal {
            key,
            cells,
            total_wall_ms,
            events_processed,
            timer_events,
            deliver_events,
            command_events,
            maintenance_events,
            fault_events,
            answer_epochs,
            energy_mj,
            max_node_energy_mj,
            min_epoch_ratio,
            repairs_triggered,
            audit_violations,
        } = self;
        let mut out = String::with_capacity(256);
        out.push('{');
        json_str(&mut out, "key", key);
        out.push(',');
        json_num(&mut out, "cells", &cells.to_string());
        out.push(',');
        json_num(&mut out, "total_wall_ms", &json_f64(*total_wall_ms));
        out.push(',');
        json_num(&mut out, "events_processed", &events_processed.to_string());
        out.push(',');
        json_num(&mut out, "timer_events", &timer_events.to_string());
        out.push(',');
        json_num(&mut out, "deliver_events", &deliver_events.to_string());
        out.push(',');
        json_num(&mut out, "command_events", &command_events.to_string());
        out.push(',');
        json_num(
            &mut out,
            "maintenance_events",
            &maintenance_events.to_string(),
        );
        out.push(',');
        json_num(&mut out, "fault_events", &fault_events.to_string());
        out.push(',');
        json_num(&mut out, "answer_epochs", &answer_epochs.to_string());
        out.push(',');
        json_num(&mut out, "energy_mj", &json_f64(*energy_mj));
        out.push(',');
        json_num(
            &mut out,
            "max_node_energy_mj",
            &json_f64(*max_node_energy_mj),
        );
        out.push(',');
        json_num(&mut out, "min_epoch_ratio", &json_f64(*min_epoch_ratio));
        out.push(',');
        json_num(
            &mut out,
            "repairs_triggered",
            &repairs_triggered.to_string(),
        );
        out.push(',');
        json_num(&mut out, "audit_violations", &audit_violations.to_string());
        out.push('}');
        out
    }
}

/// One of the campaign's most expensive cells, by engine events processed
/// (a deterministic cost proxy — wall time would rank differently on every
/// machine; it rides along as information).
#[derive(Debug, Clone, PartialEq)]
pub struct HotspotCell {
    /// Position in the deterministic cell order.
    pub index: usize,
    /// Workload name.
    pub workload: String,
    /// Strategy coordinate.
    pub strategy: Strategy,
    /// Grid-side coordinate.
    pub grid_n: usize,
    /// Field-seed coordinate.
    pub field_seed: u64,
    /// Fault-plan name.
    pub fault: String,
    /// Engine events the cell processed (the ranking key).
    pub events_processed: u64,
    /// The cell's wall-clock time, ms (informational, machine-dependent).
    pub cell_wall_ms: f64,
    /// Engine events per wall-clock second (informational).
    pub events_per_sec: f64,
}

impl HotspotCell {
    fn to_json(&self) -> String {
        let HotspotCell {
            index,
            workload,
            strategy,
            grid_n,
            field_seed,
            fault,
            events_processed,
            cell_wall_ms,
            events_per_sec,
        } = self;
        let mut out = String::with_capacity(160);
        out.push('{');
        push_cell_coords(
            &mut out,
            *index,
            workload,
            *strategy,
            *grid_n,
            *field_seed,
            fault,
        );
        out.push(',');
        json_num(&mut out, "events_processed", &events_processed.to_string());
        out.push(',');
        json_num(&mut out, "cell_wall_ms", &json_f64(*cell_wall_ms));
        out.push(',');
        json_num(&mut out, "events_per_sec", &json_f64(*events_per_sec));
        out.push('}');
        out
    }
}

/// Engine events per wall-clock second (0 when the wall time is 0 — a
/// degenerate timer, not a division).
pub fn events_per_sec(events_processed: u64, wall_ms: f64) -> f64 {
    if wall_ms > 0.0 {
        events_processed as f64 / (wall_ms / 1000.0)
    } else {
        0.0
    }
}

/// Audit violations carried by one cell record (0 when unaudited).
fn cell_violations(rec: &CellRecord) -> u64 {
    rec.audit.as_ref().map_or(0, |a| a.violations.len() as u64)
}

/// Cross-cell aggregation of a campaign: totals, per-axis marginals, and
/// the top-[`HOTSPOT_TOP_N`] hotspot cells — the `campaign-report.json`
/// document.
///
/// Every integer field is an exact sum over the records; each axis's
/// marginals therefore partition the totals (the sum of any axis's
/// `events_processed` equals the campaign's `events_processed`, and so on
/// for every summed counter). The f64 sums fold in deterministic cell
/// order, so recomputing them from the same records is bit-identical.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignRollup {
    /// Cells aggregated.
    pub cells: usize,
    /// Cells that carried an [`ttmqo_sim::AuditReport`].
    pub audited_cells: usize,
    /// Total audit violations across every record.
    pub audit_violations: u64,
    /// Sum of per-cell wall-clock times, ms (CPU time, not campaign
    /// elapsed time — parallel campaigns overlap cells).
    pub total_wall_ms: f64,
    /// Mean per-cell wall-clock time, ms (0 for an empty campaign).
    pub mean_wall_ms: f64,
    /// The slowest single cell's wall-clock time, ms.
    pub max_wall_ms: f64,
    /// Sum of engine events processed.
    pub events_processed: u64,
    /// Sum of `(query, epoch)` answers attributed to user queries.
    pub answer_epochs: u64,
    /// Sum of whole-run energy, mJ.
    pub energy_mj: f64,
    /// Max over the cells' hottest-node energies, mJ.
    pub max_node_energy_mj: f64,
    /// Marginals over the workload axis, first-seen order.
    pub by_workload: Vec<AxisMarginal>,
    /// Marginals over the strategy axis, first-seen order.
    pub by_strategy: Vec<AxisMarginal>,
    /// Marginals over the grid-size axis, first-seen order.
    pub by_grid: Vec<AxisMarginal>,
    /// Marginals over the fault-plan axis, first-seen order.
    pub by_fault: Vec<AxisMarginal>,
    /// The campaign's most expensive cells by `events_processed`
    /// (deterministic; ties break toward the earlier cell index).
    pub hotspots: Vec<HotspotCell>,
}

impl CampaignRollup {
    /// Aggregates `records` (in campaign cell order — index `i` of the
    /// slice is cell index `i`).
    pub fn from_records(records: &[CellRecord]) -> Self {
        let mut rollup = CampaignRollup {
            cells: records.len(),
            audited_cells: 0,
            audit_violations: 0,
            total_wall_ms: 0.0,
            mean_wall_ms: 0.0,
            max_wall_ms: 0.0,
            events_processed: 0,
            answer_epochs: 0,
            energy_mj: 0.0,
            max_node_energy_mj: 0.0,
            by_workload: Vec::new(),
            by_strategy: Vec::new(),
            by_grid: Vec::new(),
            by_fault: Vec::new(),
            hotspots: Vec::new(),
        };
        fn axis_add(axis: &mut Vec<AxisMarginal>, key: String, rec: &CellRecord) {
            match axis.iter_mut().find(|m| m.key == key) {
                Some(m) => m.add(rec),
                None => {
                    let mut m = AxisMarginal::new(key);
                    m.add(rec);
                    axis.push(m);
                }
            }
        }
        for rec in records {
            rollup.total_wall_ms += rec.wall_clock_ms;
            rollup.max_wall_ms = rollup.max_wall_ms.max(rec.wall_clock_ms);
            rollup.events_processed += rec.engine.events_processed;
            rollup.answer_epochs += rec.answer_epochs as u64;
            rollup.energy_mj += rec.energy_mj;
            rollup.max_node_energy_mj = rollup.max_node_energy_mj.max(rec.max_node_energy_mj);
            if rec.audit.is_some() {
                rollup.audited_cells += 1;
            }
            rollup.audit_violations += cell_violations(rec);
            axis_add(&mut rollup.by_workload, rec.workload.clone(), rec);
            axis_add(&mut rollup.by_strategy, rec.strategy.to_string(), rec);
            axis_add(&mut rollup.by_grid, rec.grid_n.to_string(), rec);
            axis_add(&mut rollup.by_fault, rec.fault.clone(), rec);
        }
        if !records.is_empty() {
            rollup.mean_wall_ms = rollup.total_wall_ms / records.len() as f64;
        }
        let mut ranked: Vec<usize> = (0..records.len()).collect();
        ranked.sort_by(|&a, &b| {
            records[b]
                .engine
                .events_processed
                .cmp(&records[a].engine.events_processed)
                .then(a.cmp(&b))
        });
        rollup.hotspots = ranked
            .into_iter()
            .take(HOTSPOT_TOP_N)
            .map(|i| {
                let rec = &records[i];
                HotspotCell {
                    index: i,
                    workload: rec.workload.clone(),
                    strategy: rec.strategy,
                    grid_n: rec.grid_n,
                    field_seed: rec.field_seed,
                    fault: rec.fault.clone(),
                    events_processed: rec.engine.events_processed,
                    cell_wall_ms: rec.wall_clock_ms,
                    events_per_sec: events_per_sec(rec.engine.events_processed, rec.wall_clock_ms),
                }
            })
            .collect();
        rollup
    }

    /// Whether no audited cell reported a violation. An unaudited campaign
    /// is vacuously clean — gate on `audited_cells` too if auditing was
    /// supposed to be on.
    pub fn is_clean(&self) -> bool {
        self.audit_violations == 0
    }

    /// The single `campaign-report.json` object. Wall-clock fields end in
    /// `_wall_ms` and are compared lower-better with a noise floor by
    /// [`crate::compare`]; `audit_violations` leaves gate at exactly 0;
    /// everything else is deterministic and compared exact.
    pub fn to_json(&self) -> String {
        // Exhaustive destructuring (the MetricsSnapshot idiom).
        let CampaignRollup {
            cells,
            audited_cells,
            audit_violations,
            total_wall_ms,
            mean_wall_ms,
            max_wall_ms,
            events_processed,
            answer_epochs,
            energy_mj,
            max_node_energy_mj,
            by_workload,
            by_strategy,
            by_grid,
            by_fault,
            hotspots,
        } = self;
        let mut out = String::with_capacity(2048);
        out.push('{');
        json_num(&mut out, "schema_version", &SCHEMA_VERSION.to_string());
        out.push(',');
        json_num(&mut out, "cells", &cells.to_string());
        out.push(',');
        json_num(&mut out, "audited_cells", &audited_cells.to_string());
        out.push(',');
        json_num(&mut out, "audit_violations", &audit_violations.to_string());
        out.push(',');
        json_num(&mut out, "total_wall_ms", &json_f64(*total_wall_ms));
        out.push(',');
        json_num(&mut out, "mean_wall_ms", &json_f64(*mean_wall_ms));
        out.push(',');
        json_num(&mut out, "max_wall_ms", &json_f64(*max_wall_ms));
        out.push(',');
        json_num(&mut out, "events_processed", &events_processed.to_string());
        out.push(',');
        json_num(&mut out, "answer_epochs", &answer_epochs.to_string());
        out.push(',');
        json_num(&mut out, "energy_mj", &json_f64(*energy_mj));
        out.push(',');
        json_num(
            &mut out,
            "max_node_energy_mj",
            &json_f64(*max_node_energy_mj),
        );
        for (name, axis) in [
            ("by_workload", by_workload),
            ("by_strategy", by_strategy),
            ("by_grid", by_grid),
            ("by_fault", by_fault),
        ] {
            out.push_str(&format!(",\"{name}\":["));
            for (i, m) in axis.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&m.to_json());
            }
            out.push(']');
        }
        out.push_str(",\"hotspots\":[");
        for (i, h) in hotspots.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&h.to_json());
        }
        out.push_str("]}");
        out
    }

    /// Human markdown summary: campaign totals, one table per axis, and
    /// the hotspot table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("# Campaign report\n\n");
        out.push_str(&format!(
            "- cells: {} ({} audited, {} audit violations)\n",
            self.cells, self.audited_cells, self.audit_violations
        ));
        out.push_str(&format!(
            "- wall: {:.1} ms total, {:.1} ms mean, {:.1} ms max per cell\n",
            self.total_wall_ms, self.mean_wall_ms, self.max_wall_ms
        ));
        out.push_str(&format!(
            "- engine events: {}, answer epochs: {}\n",
            self.events_processed, self.answer_epochs
        ));
        out.push_str(&format!(
            "- energy: {:.1} mJ total, {:.1} mJ hottest node\n",
            self.energy_mj, self.max_node_energy_mj
        ));
        for (title, axis) in [
            ("By workload", &self.by_workload),
            ("By strategy", &self.by_strategy),
            ("By grid", &self.by_grid),
            ("By fault", &self.by_fault),
        ] {
            out.push_str(&format!("\n## {title}\n\n"));
            out.push_str(
                "| key | cells | wall ms | events | answers | energy mJ | min epoch ratio | repairs | violations |\n\
                 |---|---|---|---|---|---|---|---|---|\n",
            );
            for m in axis {
                out.push_str(&format!(
                    "| {} | {} | {:.1} | {} | {} | {:.1} | {:.3} | {} | {} |\n",
                    m.key,
                    m.cells,
                    m.total_wall_ms,
                    m.events_processed,
                    m.answer_epochs,
                    m.energy_mj,
                    m.min_epoch_ratio,
                    m.repairs_triggered,
                    m.audit_violations,
                ));
            }
        }
        out.push_str("\n## Hotspots (by engine events)\n\n");
        out.push_str(
            "| cell | workload | strategy | grid | fault | events | wall ms | events/s |\n\
             |---|---|---|---|---|---|---|---|\n",
        );
        for h in &self.hotspots {
            out.push_str(&format!(
                "| {} | {} | {} | {} | {} | {} | {:.1} | {:.0} |\n",
                h.index,
                h.workload,
                h.strategy,
                h.grid_n,
                h.fault,
                h.events_processed,
                h.cell_wall_ms,
                h.events_per_sec,
            ));
        }
        out
    }
}

impl CampaignReport {
    /// The cross-cell rollup of this campaign's records (see
    /// [`CampaignRollup::from_records`]).
    pub fn rollup(&self) -> CampaignRollup {
        CampaignRollup::from_records(&self.cells)
    }

    /// Total audit violations across every cell record (0 when the
    /// campaign ran unaudited).
    pub fn audit_violations(&self) -> u64 {
        self.cells.iter().map(cell_violations).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ttmqo_sim::{AuditCheck, AuditReport, AuditViolation, EngineStats};

    fn record(
        workload: &str,
        strategy: Strategy,
        grid_n: usize,
        fault: &str,
        events: u64,
        violations: usize,
    ) -> CellRecord {
        CellRecord {
            workload: workload.to_string(),
            strategy,
            grid_n,
            field_seed: 7,
            fault: fault.to_string(),
            wall_clock_ms: 10.0,
            workload_events: 2,
            queries_answered: 2,
            answer_epochs: 4,
            avg_synthetic_count: 1.0,
            avg_benefit_ratio: 0.0,
            optimizer: None,
            completeness: Default::default(),
            metrics: Default::default(),
            engine: EngineStats {
                events_processed: events,
                timer_events: events,
                ..EngineStats::default()
            },
            trace_file: None,
            energy_mj: 100.0,
            max_node_energy_mj: 10.0,
            timeseries_file: None,
            profile_file: None,
            audit: (violations > 0).then(|| AuditReport {
                checks_run: 5,
                checks_skipped: 0,
                violations: (0..violations)
                    .map(|i| AuditViolation {
                        check: AuditCheck::PhaseAccounting,
                        subject: format!("seeded {i}"),
                        expected: "0".to_string(),
                        actual: "1".to_string(),
                    })
                    .collect(),
            }),
        }
    }

    fn sample_records() -> Vec<CellRecord> {
        vec![
            record("A", Strategy::Baseline, 4, "none", 100, 0),
            record("A", Strategy::TwoTier, 4, "none", 80, 0),
            record("B", Strategy::Baseline, 8, "crash", 400, 2),
            record("B", Strategy::TwoTier, 8, "crash", 300, 0),
        ]
    }

    #[test]
    fn marginals_partition_the_totals_on_every_axis() {
        let records = sample_records();
        let rollup = CampaignRollup::from_records(&records);
        assert_eq!(rollup.cells, 4);
        assert_eq!(rollup.events_processed, 880);
        assert_eq!(rollup.answer_epochs, 16);
        assert_eq!(rollup.audited_cells, 1);
        assert_eq!(rollup.audit_violations, 2);
        assert!(!rollup.is_clean());
        for axis in [
            &rollup.by_workload,
            &rollup.by_strategy,
            &rollup.by_grid,
            &rollup.by_fault,
        ] {
            assert_eq!(
                axis.iter().map(|m| m.events_processed).sum::<u64>(),
                rollup.events_processed
            );
            assert_eq!(axis.iter().map(|m| m.cells).sum::<usize>(), rollup.cells);
            assert_eq!(
                axis.iter().map(|m| m.audit_violations).sum::<u64>(),
                rollup.audit_violations
            );
        }
        // First-seen axis order follows cell order.
        assert_eq!(rollup.by_workload[0].key, "A");
        assert_eq!(rollup.by_strategy[0].key, "baseline");
        assert_eq!(rollup.by_fault[1].key, "crash");
    }

    #[test]
    fn hotspots_rank_by_events_with_index_tiebreak() {
        let mut records = sample_records();
        records.push(record("C", Strategy::Baseline, 4, "none", 400, 0));
        let rollup = CampaignRollup::from_records(&records);
        assert_eq!(rollup.hotspots.len(), 5);
        // 400 (index 2) ties 400 (index 4): the earlier cell wins.
        assert_eq!(rollup.hotspots[0].index, 2);
        assert_eq!(rollup.hotspots[1].index, 4);
        assert_eq!(rollup.hotspots[2].events_processed, 300);
        // Top-N clamps to the record count.
        let small = CampaignRollup::from_records(&records[..2]);
        assert_eq!(small.hotspots.len(), 2);
    }

    #[test]
    fn rollup_json_is_wellformed_and_single_line() {
        let rollup = CampaignRollup::from_records(&sample_records());
        let json = rollup.to_json();
        assert!(json.starts_with("{\"schema_version\":"));
        assert!(!json.contains('\n'));
        assert!(json.contains("\"audit_violations\":2"));
        assert!(json.contains("\"by_strategy\":[{\"key\":\"baseline\""));
        assert!(json.contains("\"hotspots\":[{\"index\":2"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert_eq!(json.matches('"').count() % 2, 0);

        let md = rollup.to_markdown();
        assert!(md.contains("# Campaign report"));
        assert!(md.contains("## By strategy"));
        assert!(md.contains("| two-tier |"));
        assert!(md.contains("## Hotspots"));
    }

    #[test]
    fn empty_campaign_rolls_up_to_zeroes() {
        let rollup = CampaignRollup::from_records(&[]);
        assert_eq!(rollup.cells, 0);
        assert_eq!(rollup.mean_wall_ms, 0.0);
        assert!(rollup.hotspots.is_empty());
        assert!(rollup.is_clean());
        let json = rollup.to_json();
        assert!(json.contains("\"by_workload\":[]"));
        assert!(json.contains("\"hotspots\":[]"));
    }

    #[test]
    fn progress_events_serialize_every_variant() {
        let events = [
            CampaignEvent::CampaignStarted {
                cells: 4,
                threads: 2,
                warm_start: true,
            },
            CampaignEvent::CellStarted {
                wall_ms: 1.5,
                index: 0,
                workload: "A".to_string(),
                strategy: Strategy::TwoTier,
                grid_n: 4,
                field_seed: 7,
                fault: "none".to_string(),
                warm: true,
            },
            CampaignEvent::CellFinished {
                wall_ms: 9.0,
                index: 0,
                workload: "A".to_string(),
                strategy: Strategy::TwoTier,
                grid_n: 4,
                field_seed: 7,
                fault: "none".to_string(),
                warm: true,
                cell_wall_ms: 7.5,
                sim_ms: 20480,
                events_processed: 1000,
                events_per_sec: 133333.0,
                audit_violations: 0,
                completed: 1,
                total: 4,
                eta_ms: Some(22.5),
            },
            CampaignEvent::CellFailed {
                wall_ms: 10.0,
                index: 1,
                workload: "A".to_string(),
                strategy: Strategy::Baseline,
                grid_n: 4,
                field_seed: 7,
                fault: "none".to_string(),
            },
            CampaignEvent::Heartbeat {
                wall_ms: 11.0,
                completed: 1,
                running: 2,
                total: 4,
                eta_ms: None,
            },
            CampaignEvent::CampaignFinished {
                wall_ms: 30.0,
                cells: 4,
                warm_prefix_hits: 4,
                audit_violations: 0,
            },
        ];
        for ev in &events {
            let json = ev.to_json();
            assert!(
                json.starts_with(&format!("{{\"ev\":\"{}\"", ev.kind())),
                "{json}"
            );
            assert_eq!(json.matches('{').count(), json.matches('}').count());
            assert_eq!(json.matches('"').count() % 2, 0);
        }
        assert!(events[2].to_json().contains("\"eta_ms\":22.5"));
        assert!(events[4].to_json().contains("\"eta_ms\":null"));
        assert!(progress_header().contains("ttmqo-campaign-progress"));
    }

    #[test]
    fn progress_handle_and_sinks_deliver_in_order() {
        let sink = Arc::new(Mutex::new(MemoryProgress::default()));
        let handle = ProgressHandle::shared(sink.clone());
        assert!(handle.is_enabled());
        assert!(!ProgressHandle::disabled().is_enabled());
        handle.emit(&CampaignEvent::CampaignStarted {
            cells: 1,
            threads: 1,
            warm_start: false,
        });
        handle.emit(&CampaignEvent::CampaignFinished {
            wall_ms: 1.0,
            cells: 1,
            warm_prefix_hits: 0,
            audit_violations: 0,
        });
        handle.flush();
        let sink = sink.lock().unwrap();
        assert_eq!(sink.events().len(), 2);
        assert_eq!(sink.events()[0].kind(), "campaign-started");
        assert_eq!(sink.events()[1].kind(), "campaign-finished");

        // The JSONL sink writes a header plus one line per event.
        #[derive(Clone, Default)]
        struct Buf(Arc<Mutex<Vec<u8>>>);
        impl Write for Buf {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let buf = Buf::default();
        let handle = ProgressHandle::new(JsonLinesProgress::new(buf.clone()).unwrap());
        handle.emit(&CampaignEvent::Heartbeat {
            wall_ms: 0.5,
            completed: 0,
            running: 1,
            total: 1,
            eta_ms: None,
        });
        handle.flush();
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], progress_header());
        assert!(lines[1].starts_with("{\"ev\":\"heartbeat\""));
    }

    #[test]
    fn events_per_sec_guards_the_zero_wall_case() {
        assert_eq!(events_per_sec(1000, 0.0), 0.0);
        assert_eq!(events_per_sec(1000, 500.0), 2000.0);
    }
}
