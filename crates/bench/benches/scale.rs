//! Supplementary scalability experiments (beyond the paper's figures):
//!
//! * S1 — end-to-end average transmission time vs. number of concurrent
//!   queries (the paper's §4.3 scalability claim, measured in the network
//!   rather than at the optimizer);
//! * S2 — grid vs. random uniform deployments: the scheme does not depend on
//!   the regular grid the paper evaluates on;
//! * S3 — robustness to distance-dependent loss;
//! * S4 — big-grid deployments (16×16 → 64×64): the savings claim holds at
//!   three orders of magnitude more nodes than the paper's 8×8 ceiling.

use ttmqo_bench::print_table;
use ttmqo_core::{run_experiment, ExperimentConfig, Strategy, WorkloadEvent};
use ttmqo_sim::{RadioParams, SimTime, Topology};
use ttmqo_workloads::{selectivity_workload, SelectivityWorkloadParams};

fn workload(n_queries: usize) -> Vec<WorkloadEvent> {
    selectivity_workload(&SelectivityWorkloadParams {
        n_queries,
        selectivity: 0.7,
        aggregation_fraction: 0.25,
        seed: 99,
        ..SelectivityWorkloadParams::default()
    })
}

fn main() {
    // S1: query-count scaling, 16 nodes.
    let mut rows = Vec::new();
    for n in [2usize, 4, 8, 16, 32] {
        let mut tx = [0.0f64; 2];
        for (i, strategy) in [Strategy::Baseline, Strategy::TwoTier]
            .into_iter()
            .enumerate()
        {
            let config = ExperimentConfig {
                strategy,
                grid_n: 4,
                duration: SimTime::from_ms(64 * 2048),
                ..ExperimentConfig::default()
            };
            tx[i] = run_experiment(&config, &workload(n)).avg_transmission_time_pct();
        }
        rows.push(vec![
            n.to_string(),
            format!("{:.4}", tx[0]),
            format!("{:.4}", tx[1]),
            format!("{:.1}%", 100.0 * (1.0 - tx[1] / tx[0])),
        ]);
    }
    print_table(
        "S1 — end-to-end scalability with the number of concurrent queries (16 nodes)",
        &["queries", "baseline tx %", "TTMQO tx %", "savings"],
        &rows,
    );

    // S2: grid vs random uniform deployment, 8 queries.
    let mut rows = Vec::new();
    for (label, topo) in [
        ("4x4 grid (paper)", Topology::grid(4).expect("grid")),
        (
            "16 random / 70ft²",
            Topology::random_uniform(16, 70.0, 50.0, 11).expect("random"),
        ),
        (
            "64 random / 150ft²",
            Topology::random_uniform(64, 150.0, 50.0, 12).expect("random"),
        ),
    ] {
        let mut tx = [0.0f64; 2];
        for (i, strategy) in [Strategy::Baseline, Strategy::TwoTier]
            .into_iter()
            .enumerate()
        {
            let config = ExperimentConfig {
                strategy,
                topology_override: Some(topo.clone()),
                duration: SimTime::from_ms(64 * 2048),
                ..ExperimentConfig::default()
            };
            tx[i] = run_experiment(&config, &workload(8)).avg_transmission_time_pct();
        }
        rows.push(vec![
            label.to_string(),
            format!("{}", topo.max_level()),
            format!("{:.4}", tx[0]),
            format!("{:.4}", tx[1]),
            format!("{:.1}%", 100.0 * (1.0 - tx[1] / tx[0])),
        ]);
    }
    print_table(
        "S2 — deployment shape (8 queries)",
        &[
            "deployment",
            "max level",
            "baseline tx %",
            "TTMQO tx %",
            "savings",
        ],
        &rows,
    );

    // S3: distance-dependent loss.
    let mut rows = Vec::new();
    for (label, radio) in [
        ("lossless", RadioParams::lossless()),
        ("collisions (default)", RadioParams::default()),
        (
            "collisions + distance loss",
            RadioParams {
                distance_loss: true,
                ..RadioParams::default()
            },
        ),
    ] {
        let mut tx = [0.0f64; 2];
        for (i, strategy) in [Strategy::Baseline, Strategy::TwoTier]
            .into_iter()
            .enumerate()
        {
            let config = ExperimentConfig {
                strategy,
                grid_n: 4,
                radio: radio.clone(),
                duration: SimTime::from_ms(64 * 2048),
                ..ExperimentConfig::default()
            };
            tx[i] = run_experiment(&config, &workload(8)).avg_transmission_time_pct();
        }
        rows.push(vec![
            label.to_string(),
            format!("{:.4}", tx[0]),
            format!("{:.4}", tx[1]),
            format!("{:.1}%", 100.0 * (1.0 - tx[1] / tx[0])),
        ]);
    }
    print_table(
        "S3 — radio reliability models (8 queries, 16 nodes)",
        &["radio model", "baseline tx %", "TTMQO tx %", "savings"],
        &rows,
    );

    // S4: big-grid deployments. Larger grids run fewer epochs — enough for
    // every query's slowest epoch class to fire many rounds — so the whole
    // ladder stays a bench, not a campaign.
    let mut rows = Vec::new();
    for (grid_n, epochs) in [(16usize, 16u64), (32, 8), (64, 4)] {
        let mut tx = [0.0f64; 2];
        for (i, strategy) in [Strategy::Baseline, Strategy::TwoTier]
            .into_iter()
            .enumerate()
        {
            let config = ExperimentConfig {
                strategy,
                grid_n,
                duration: SimTime::from_ms(epochs * 2048),
                ..ExperimentConfig::default()
            };
            tx[i] = run_experiment(&config, &workload(8)).avg_transmission_time_pct();
        }
        rows.push(vec![
            format!("{grid_n}x{grid_n}"),
            (grid_n * grid_n).to_string(),
            format!("{:.4}", tx[0]),
            format!("{:.4}", tx[1]),
            format!("{:.1}%", 100.0 * (1.0 - tx[1] / tx[0])),
        ]);
    }
    print_table(
        "S4 — big-grid deployments (8 queries)",
        &["grid", "nodes", "baseline tx %", "TTMQO tx %", "savings"],
        &rows,
    );
}
