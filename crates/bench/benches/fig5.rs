//! Regenerates Figure 5: percentage of transmission-time savings vs.
//! predicate selectivity for three query mixes (100% acquisition, 50/50,
//! 100% aggregation), 8 concurrent queries on the 4×4 grid.
//!
//! The whole 3 × 5 sweep is one [`fig5_campaign`] — 30 cells executed in
//! parallel by the campaign runner, then read back in figure order.
//!
//! Paper reference shapes: savings grow with selectivity for every mix;
//! 100% acquisition at selectivity 1 saves ≈89.7% (vs. the theoretical 7/8,
//! because fewer messages also mean fewer collisions and retransmissions);
//! 100% aggregation jumps sharply at selectivity 1 (identical predicates are
//! the only case tier 1 can merge, and equal partials share frames).

use ttmqo_bench::{fig5_campaign, fig5_points, print_table};
use ttmqo_core::run_campaign;

const DURATION_EPOCHS: u64 = 96;
const MIXES: [f64; 3] = [0.0, 0.5, 1.0];
const SELECTIVITIES: [f64; 5] = [0.2, 0.4, 0.6, 0.8, 1.0];

fn main() {
    let spec = fig5_campaign(&MIXES, &SELECTIVITIES, DURATION_EPOCHS, 7);
    let report = run_campaign(&spec);
    let mut rows = Vec::new();
    for (p, mix_label) in fig5_points(&report, &MIXES, &SELECTIVITIES)
        .into_iter()
        .zip(
            ["100% acquisition", "50% acq / 50% agg", "100% aggregation"]
                .into_iter()
                .flat_map(|m| std::iter::repeat_n(m, SELECTIVITIES.len())),
        )
    {
        rows.push(vec![
            mix_label.to_string(),
            format!("{:.1}", p.selectivity),
            format!("{:.4}", p.baseline_tx_pct),
            format!("{:.4}", p.ttmqo_tx_pct),
            format!("{:.1}%", p.savings_pct()),
        ]);
    }
    print_table(
        &format!(
            "Figure 5 — transmission-time savings vs predicate selectivity \
             (8 queries, 16 nodes; {} cells on {} threads in {:.1} s)",
            report.cells.len(),
            report.threads,
            report.wall_clock_ms / 1000.0
        ),
        &[
            "mix",
            "selectivity",
            "baseline tx %",
            "TTMQO tx %",
            "savings",
        ],
        &rows,
    );
}
