//! Regenerates Figure 5: percentage of transmission-time savings vs.
//! predicate selectivity for three query mixes (100% acquisition, 50/50,
//! 100% aggregation), 8 concurrent queries on the 4×4 grid.
//!
//! Paper reference shapes: savings grow with selectivity for every mix;
//! 100% acquisition at selectivity 1 saves ≈89.7% (vs. the theoretical 7/8,
//! because fewer messages also mean fewer collisions and retransmissions);
//! 100% aggregation jumps sharply at selectivity 1 (identical predicates are
//! the only case tier 1 can merge, and equal partials share frames).

use ttmqo_bench::{fig5_savings, print_table};

const DURATION_EPOCHS: u64 = 96;

fn main() {
    let mut rows = Vec::new();
    for (mix_label, agg_fraction) in [
        ("100% acquisition", 0.0),
        ("50% acq / 50% agg", 0.5),
        ("100% aggregation", 1.0),
    ] {
        for selectivity in [0.2, 0.4, 0.6, 0.8, 1.0] {
            let p = fig5_savings(agg_fraction, selectivity, DURATION_EPOCHS, 7);
            rows.push(vec![
                mix_label.to_string(),
                format!("{selectivity:.1}"),
                format!("{:.4}", p.baseline_tx_pct),
                format!("{:.4}", p.ttmqo_tx_pct),
                format!("{:.1}%", p.savings_pct()),
            ]);
        }
    }
    print_table(
        "Figure 5 — transmission-time savings vs predicate selectivity (8 queries, 16 nodes)",
        &[
            "mix",
            "selectivity",
            "baseline tx %",
            "TTMQO tx %",
            "savings",
        ],
        &rows,
    );
}
