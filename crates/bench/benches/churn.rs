//! Churn bench: Tier-1 streaming admission/departure throughput, indexed vs
//! exhaustive, with regression tracking against the previous run.
//!
//! Writes `BENCH_churn.json` (JSON lines, two records per scenario: the
//! indexed run and its exhaustive twin). If a previous report exists the
//! admitted/sec delta per record is printed, so admission-path regressions
//! show up as a negative column rather than a silent drift.
//!
//! `CHURN_BENCH_SCALE=smoke` shrinks the schedules for CI smoke runs.

use ttmqo_bench::{
    churn_pair, parse_prior_churn_report, print_table, ChurnBenchParams, CHURN_REPORT_FILE,
};

fn main() {
    let smoke = std::env::var("CHURN_BENCH_SCALE").as_deref() == Ok("smoke");
    let prior = std::fs::read_to_string(CHURN_REPORT_FILE)
        .map(|text| parse_prior_churn_report(&text))
        .unwrap_or_default();

    let mut rows = Vec::new();
    let mut lines = Vec::new();
    for params in ChurnBenchParams::default_scenarios(smoke) {
        let (indexed, exhaustive) = churn_pair(&params);
        for r in [indexed, exhaustive] {
            let delta = prior
                .iter()
                .find(|(name, _)| *name == r.name)
                .map(|(_, prev)| format!("{:+.1}%", 100.0 * (r.admitted_per_sec / prev - 1.0)))
                .unwrap_or_else(|| "-".to_string());
            rows.push(vec![
                r.name.clone(),
                r.admitted.to_string(),
                r.peak_live.to_string(),
                r.peak_synthetics.to_string(),
                format!("{:.0}", r.admitted_per_sec),
                delta,
                format!("{:.0}", r.admit_p50_us),
                format!("{:.0}", r.admit_p99_us),
                r.scanned.to_string(),
                r.pruned.to_string(),
                if r.speedup_vs_exhaustive > 0.0 {
                    format!("{:.2}x", r.speedup_vs_exhaustive)
                } else {
                    "-".to_string()
                },
            ]);
            lines.push(r.to_json());
        }
    }
    print_table(
        "Churn bench — Tier-1 streaming admission/departure",
        &[
            "scenario",
            "admitted",
            "peak live",
            "peak syn",
            "admit/s",
            "vs prior",
            "p50 µs",
            "p99 µs",
            "scanned",
            "pruned",
            "speedup",
        ],
        &rows,
    );

    let report = lines.join("\n") + "\n";
    match std::fs::write(CHURN_REPORT_FILE, report) {
        Ok(()) => eprintln!("wrote {} records to {CHURN_REPORT_FILE}", lines.len()),
        Err(e) => eprintln!("could not write {CHURN_REPORT_FILE}: {e}"),
    }
}
