//! Checkpoint bench: snapshot size, save/restore latency and warm-start
//! speedup, with regression tracking against the previous run.
//!
//! Writes `BENCH_checkpoint.json` (JSON lines, one record per scenario).
//! If a previous report exists the save-latency delta per record is
//! printed, so serialization regressions show up as a column rather than a
//! silent drift. The `resume_matches` / `warm_matches` fields are hard
//! bit-identity checks — the bench aborts if either is false.
//!
//! `CHECKPOINT_BENCH_SCALE=smoke` shrinks the grids for CI smoke runs.

use ttmqo_bench::{
    checkpoint_bench, parse_prior_checkpoint_report, print_table, CheckpointBenchParams,
    CHECKPOINT_REPORT_FILE,
};

fn main() {
    let smoke = std::env::var("CHECKPOINT_BENCH_SCALE").as_deref() == Ok("smoke");
    let prior = std::fs::read_to_string(CHECKPOINT_REPORT_FILE)
        .map(|text| parse_prior_checkpoint_report(&text))
        .unwrap_or_default();

    let mut rows = Vec::new();
    let mut lines = Vec::new();
    for params in CheckpointBenchParams::default_scenarios(smoke) {
        let r = checkpoint_bench(&params);
        assert!(
            r.resume_matches,
            "{}: resumed run diverged from the uninterrupted run",
            r.name
        );
        assert!(
            r.warm_matches,
            "{}: warm-started sweep diverged from the cold sweep",
            r.name
        );
        let delta = prior
            .iter()
            .find(|(name, _)| *name == r.name)
            .map(|(_, prev)| format!("{:+.1}%", 100.0 * (r.save_s / prev.max(1e-9) - 1.0)))
            .unwrap_or_else(|| "-".to_string());
        rows.push(vec![
            r.name.clone(),
            format!("{:.1} KiB", r.snapshot_bytes as f64 / 1024.0),
            format!("{:.2}", r.save_s * 1e3),
            delta,
            format!("{:.2}", r.restore_s * 1e3),
            format!("{:.2}x", r.warmstart_speedup),
            if r.resume_matches && r.warm_matches {
                "bit-identical".to_string()
            } else {
                "DIVERGED".to_string()
            },
        ]);
        lines.push(r.to_json());
    }
    print_table(
        "Checkpoint bench — snapshot size, save/restore latency, warm start",
        &[
            "scenario",
            "snapshot",
            "save ms",
            "vs prior",
            "restore ms",
            "warm speedup",
            "identity",
        ],
        &rows,
    );

    let report = lines.join("\n") + "\n";
    match std::fs::write(CHECKPOINT_REPORT_FILE, report) {
        Ok(()) => eprintln!("wrote {} records to {CHECKPOINT_REPORT_FILE}", lines.len()),
        Err(e) => eprintln!("could not write {CHECKPOINT_REPORT_FILE}: {e}"),
    }
}
