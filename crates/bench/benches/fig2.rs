//! Regenerates the Figure 2 worked example: per-epoch message counts and
//! nodes involved, TinyDB fixed-tree routing vs. the TTMQO DAG.
//!
//! Paper reference: acquisition 20 msgs / 8 nodes vs 12 msgs / 6 nodes;
//! aggregation 14 msgs vs 7 (ours packs node B's two per-query partials into
//! one frame, measuring 6).

use ttmqo_bench::{fig2_counts, print_table};

fn main() {
    let mut rows = Vec::new();
    for (label, aggregation, paper) in [
        ("acquisition", false, "20/8n vs 12/6n"),
        ("aggregation", true, "14 vs 7"),
    ] {
        let (tinydb, ttmqo) = fig2_counts(aggregation);
        rows.push(vec![
            label.to_string(),
            format!(
                "{:.1} msgs / {} nodes",
                tinydb.messages_per_epoch, tinydb.nodes_involved
            ),
            format!(
                "{:.1} msgs / {} nodes",
                ttmqo.messages_per_epoch, ttmqo.nodes_involved
            ),
            paper.to_string(),
        ]);
    }
    print_table(
        "Figure 2 — worked routing example (per epoch, both queries)",
        &["variant", "TinyDB (fixed tree)", "TTMQO (DAG)", "paper"],
        &rows,
    );
}
