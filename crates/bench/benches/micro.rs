//! Criterion micro-benchmarks of the hot paths: query parsing, the merge
//! algebra, optimizer insertion, and raw simulation throughput.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ttmqo_core::{run_experiment, BaseStationOptimizer, CostModel, ExperimentConfig, Strategy};
use ttmqo_query::{integrate, parse_query, QueryId};
use ttmqo_sim::SimTime;
use ttmqo_stats::{LevelStats, SelectivityEstimator};
use ttmqo_workloads::{random_workload, workload_a, RandomWorkloadParams, ATTR_MENU};

fn bench_parser(c: &mut Criterion) {
    c.bench_function("parse_query", |b| {
        b.iter(|| {
            parse_query(
                QueryId(1),
                std::hint::black_box(
                    "select nodeid, light, temp where 100 < light < 900 and temp >= 0 \
                     epoch duration 4096",
                ),
            )
            .unwrap()
        })
    });
}

fn bench_integrate(c: &mut Criterion) {
    let a = parse_query(
        QueryId(1),
        "select light where 280<light<600 epoch duration 2048",
    )
    .unwrap();
    let b2 = parse_query(
        QueryId(2),
        "select light, temp where 100<light<300 epoch duration 4096",
    )
    .unwrap();
    c.bench_function("integrate_pair", |b| {
        b.iter(|| {
            integrate(
                QueryId(100),
                std::hint::black_box(&a),
                std::hint::black_box(&b2),
            )
        })
    });
}

fn fresh_optimizer() -> BaseStationOptimizer {
    let model = CostModel::new(
        4.0,
        0.2,
        LevelStats::from_counts([7, 20, 36]),
        SelectivityEstimator::uniform(),
    );
    BaseStationOptimizer::new(model, 0.6)
}

fn bench_optimizer_insert(c: &mut Criterion) {
    let events = random_workload(&RandomWorkloadParams {
        n_queries: 100,
        target_concurrency: 24.0,
        seed: 5,
        ..RandomWorkloadParams::default()
    });
    let queries: Vec<_> = events
        .iter()
        .filter_map(|e| match &e.action {
            ttmqo_core::WorkloadAction::Pose(q) => Some(q.clone()),
            _ => None,
        })
        .collect();
    c.bench_function("optimizer_insert_100_random", |b| {
        b.iter_batched(
            fresh_optimizer,
            |mut opt| {
                for q in &queries {
                    let _ = opt.insert(q.clone());
                }
                opt.synthetic_count()
            },
            BatchSize::SmallInput,
        )
    });
    // Menu access keeps the import meaningful even if unused elsewhere.
    std::hint::black_box(ATTR_MENU);
}

fn bench_simulation(c: &mut Criterion) {
    c.bench_function("simulate_workload_a_16_nodes_24_epochs", |b| {
        b.iter(|| {
            let config = ExperimentConfig {
                strategy: Strategy::TwoTier,
                grid_n: 4,
                duration: SimTime::from_ms(24 * 2048),
                ..ExperimentConfig::default()
            };
            run_experiment(&config, &workload_a())
                .metrics
                .tx_count_total()
        })
    });
}

criterion_group!(
    benches,
    bench_parser,
    bench_integrate,
    bench_optimizer_insert,
    bench_simulation
);
criterion_main!(benches);
