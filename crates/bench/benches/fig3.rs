//! Regenerates Figure 3: average transmission time for workloads A/B/C on
//! 16- and 64-node grids under all four strategies.
//!
//! Paper reference shapes: on A both single tiers save heavily (≈61% at 16
//! nodes, ≈75% at 64); on B the in-network tier clearly beats the
//! base-station tier and its edge grows with network size; on C the tiers
//! are mutually complementary (two-tier best, up to ≈82%), with the
//! base-station tier ahead at 16 nodes and the in-network tier ahead at 64.

use ttmqo_bench::{fig3_matrix, print_table, FIG3_DURATION_EPOCHS};

fn main() {
    let cells = fig3_matrix(FIG3_DURATION_EPOCHS);
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                format!("WORKLOAD_{}", c.workload),
                c.nodes.to_string(),
                c.strategy.to_string(),
                format!("{:.4}", c.avg_tx_pct),
                format!("{:+.1}%", c.savings_pct),
            ]
        })
        .collect();
    print_table(
        "Figure 3 — average transmission time (% of node time spent transmitting)",
        &[
            "workload",
            "nodes",
            "strategy",
            "avg tx time %",
            "savings vs baseline",
        ],
        &rows,
    );
}
