//! Runs the whole evaluation — Figure 3's static workloads plus Figure 4-style
//! adaptive workloads, each × {16, 64} nodes × all four strategies — as one
//! parallel campaign, and writes the per-run observability records to
//! `BENCH_campaign.json` (JSON lines, one record per cell).
//!
//! Also times the same sweep sequentially to report the thread-pool speedup;
//! per-cell metrics are asserted identical between the two runs (the cells
//! are independent deterministic simulations, so parallelism must be an
//! observational no-op).

use ttmqo_bench::{paper_campaign, print_table, write_report, CAMPAIGN_REPORT_FILE};
use ttmqo_core::{run_campaign, run_campaign_sequential};

fn main() {
    // ~1/4 of the figures' duration: minutes, not tens of minutes, while
    // still exercising every axis of the sweep.
    let spec = paper_campaign(24, 60);
    eprintln!(
        "campaign: {} cells (workloads {:?} × grids {:?} × strategies {})",
        spec.cell_count(),
        spec.workloads
            .iter()
            .map(|w| w.name.as_str())
            .collect::<Vec<_>>(),
        spec.grid_sizes,
        spec.strategies.len(),
    );

    let parallel = run_campaign(&spec);
    let sequential = run_campaign_sequential(&spec);
    for (p, s) in parallel.cells.iter().zip(&sequential.cells) {
        assert_eq!(
            p.metrics, s.metrics,
            "parallel and sequential runs diverged at {}/{}/{}",
            p.workload, p.strategy, p.grid_n
        );
    }

    let rows: Vec<Vec<String>> = parallel
        .cells
        .iter()
        .map(|c| {
            vec![
                c.workload.clone(),
                (c.grid_n * c.grid_n).to_string(),
                c.strategy.to_string(),
                format!("{:.4}", c.avg_transmission_time_pct()),
                c.answer_epochs.to_string(),
                format!("{:.0}", c.wall_clock_ms),
            ]
        })
        .collect();
    print_table(
        "Campaign — all figure sweeps, parallel",
        &[
            "workload",
            "nodes",
            "strategy",
            "avg tx time %",
            "answer epochs",
            "cell wall ms",
        ],
        &rows,
    );
    eprintln!(
        "wall clock: parallel {:.0} ms on {} threads vs sequential {:.0} ms \
         (speedup {:.2}x); per-cell metrics identical",
        parallel.wall_clock_ms,
        parallel.threads,
        sequential.wall_clock_ms,
        sequential.wall_clock_ms / parallel.wall_clock_ms.max(1e-9),
    );

    match write_report(&parallel, CAMPAIGN_REPORT_FILE) {
        Ok(()) => eprintln!(
            "wrote {} records to {CAMPAIGN_REPORT_FILE}",
            parallel.cells.len()
        ),
        Err(e) => eprintln!("could not write {CAMPAIGN_REPORT_FILE}: {e}"),
    }
}
