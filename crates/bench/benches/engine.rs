//! Engine hot-path microbenchmark: transmit/deliver throughput and frame-slab
//! footprint, with regression tracking against the previous run.
//!
//! Writes `BENCH_engine.json` (JSON lines, one record per scenario). If a
//! previous report exists it is read first and the events/sec delta per
//! scenario is printed, so perf regressions in the engine show up as a
//! negative column rather than a silent drift.
//!
//! `ENGINE_BENCH_SCALE=smoke` shrinks the simulated duration for CI smoke
//! runs (the numbers still land in the report, labelled by the same scenario
//! names).

use ttmqo_bench::{
    engine_microbench, parse_prior_report, print_table, twotier_bench, EngineBenchParams,
    EngineBenchResult, TwoTierBenchParams, ENGINE_REPORT_FILE,
};

fn main() {
    let smoke = std::env::var("ENGINE_BENCH_SCALE").as_deref() == Ok("smoke");
    // Full scale: 10 simulated minutes per paper-scale scenario (the
    // big-grid rows shrink the duration, see `default_scenarios`); smoke:
    // enough simulated time to exercise retries and collisions while
    // staying trivial for CI.
    let duration_ms = if smoke { 30_000 } else { 600_000 };
    // Two-tier rows replay Workload A end to end; durations are in epochs
    // (2048 ms) so every row sees complete result rounds.
    let twotier_duration_ms = if smoke { 16 * 2048 } else { 64 * 2048 };
    let prior = std::fs::read_to_string(ENGINE_REPORT_FILE)
        .map(|text| parse_prior_report(&text))
        .unwrap_or_default();

    let mut rows = Vec::new();
    let mut lines = Vec::new();
    let mut push_result = |r: EngineBenchResult| {
        let delta = prior
            .iter()
            .find(|(name, _)| *name == r.name)
            .map(|(_, prev_eps)| format!("{:+.1}%", 100.0 * (r.events_per_sec / prev_eps - 1.0)))
            .unwrap_or_else(|| "-".to_string());
        rows.push(vec![
            r.name.clone(),
            (r.grid_n * r.grid_n).to_string(),
            format!("{:.4}", r.wall_s),
            format!("{:.4}", r.topo_build_s),
            r.events.to_string(),
            format!("{:.0}", r.events_per_sec),
            delta,
            r.stats.frame_slab_high_water.to_string(),
            r.stats.csma_capped_deferrals.to_string(),
            r.stats.csma_sorts_saved.to_string(),
        ]);
        lines.push(r.to_json());
    };
    for params in EngineBenchParams::default_scenarios(duration_ms) {
        push_result(engine_microbench(&params));
    }
    for params in TwoTierBenchParams::default_scenarios(twotier_duration_ms) {
        push_result(twotier_bench(&params));
    }
    print_table(
        "Engine microbench — transmit/deliver hot path",
        &[
            "scenario",
            "nodes",
            "wall s",
            "topo s",
            "events",
            "events/s",
            "vs prior",
            "slab high-water",
            "csma caps",
            "sorts saved",
        ],
        &rows,
    );

    let report = lines.join("\n") + "\n";
    match std::fs::write(ENGINE_REPORT_FILE, report) {
        Ok(()) => eprintln!("wrote {} records to {ENGINE_REPORT_FILE}", lines.len()),
        Err(e) => eprintln!("could not write {ENGINE_REPORT_FILE}: {e}"),
    }
}
