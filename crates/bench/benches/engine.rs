//! Engine hot-path microbenchmark: transmit/deliver throughput and frame-slab
//! footprint, with regression tracking against the previous run.
//!
//! Writes `BENCH_engine.json` (JSON lines, one record per scenario). If a
//! previous report exists it is read first and the events/sec delta per
//! scenario is printed, so perf regressions in the engine show up as a
//! negative column rather than a silent drift.
//!
//! Every scenario runs with the per-phase profiler attached, so the report
//! rows carry `*_wall_us` attribution and the table shows where engine time
//! goes (deliver vs interference marking vs the rest). A separate
//! profiler-overhead check re-runs one scenario with profiling off and
//! asserts the profiled throughput is within 2% — the profiler's contract.
//!
//! `ENGINE_BENCH_SCALE=smoke` shrinks the simulated duration for CI smoke
//! runs (the numbers still land in the report, labelled by the same scenario
//! names).

use ttmqo_bench::{
    engine_microbench, parse_prior_report, print_table, twotier_bench, EngineBenchParams,
    EngineBenchResult, TwoTierBenchParams, ENGINE_REPORT_FILE,
};
use ttmqo_sim::ProfilePhase;

/// A phase's share of the row's measured wall time, as a table cell.
fn phase_pct(r: &EngineBenchResult, phase: ProfilePhase) -> String {
    match &r.profile {
        Some(profile) => {
            let pct = profile.get(phase).wall_ns as f64 / (r.wall_s * 1e9).max(1.0) * 100.0;
            format!("{pct:.1}%")
        }
        None => "-".to_string(),
    }
}

/// Best-of-N events/sec with profiling off vs on, interleaved so scheduler
/// and thermal drift hit both sides equally; returns the overhead percent.
fn measure_overhead(probe: &EngineBenchParams, reps: usize) -> f64 {
    let off_params = EngineBenchParams {
        profiled: false,
        ..probe.clone()
    };
    let mut off = 0f64;
    let mut on = 0f64;
    for _ in 0..reps {
        off = off.max(engine_microbench(&off_params).events_per_sec);
        on = on.max(engine_microbench(probe).events_per_sec);
    }
    100.0 * (1.0 - on / off)
}

/// Same interleaved best-of-N shape for the standing auditor: audit off vs
/// on over the end-to-end two-tier row. Also asserts the audited runs come
/// back clean — a bench row with violations is a correctness bug, not noise.
fn measure_audit_overhead(probe: &TwoTierBenchParams, reps: usize) -> f64 {
    let off_params = TwoTierBenchParams {
        audited: false,
        ..probe.clone()
    };
    let on_params = TwoTierBenchParams {
        audited: true,
        ..probe.clone()
    };
    let mut off = 0f64;
    let mut on = 0f64;
    for _ in 0..reps {
        off = off.max(twotier_bench(&off_params).events_per_sec);
        let audited = twotier_bench(&on_params);
        assert_eq!(
            audited.audit_violations,
            Some(0),
            "audited {} run must be violation-free",
            probe.name
        );
        on = on.max(audited.events_per_sec);
    }
    100.0 * (1.0 - on / off)
}

fn main() {
    let smoke = std::env::var("ENGINE_BENCH_SCALE").as_deref() == Ok("smoke");
    // Full scale: 10 simulated minutes per paper-scale scenario (the
    // big-grid rows shrink the duration, see `default_scenarios`); smoke:
    // enough simulated time to exercise retries and collisions while
    // staying trivial for CI.
    let duration_ms = if smoke { 30_000 } else { 600_000 };
    // Two-tier rows replay Workload A end to end; durations are in epochs
    // (2048 ms) so every row sees complete result rounds.
    let twotier_duration_ms = if smoke { 16 * 2048 } else { 64 * 2048 };
    let prior = std::fs::read_to_string(ENGINE_REPORT_FILE)
        .map(|text| parse_prior_report(&text))
        .unwrap_or_default();

    let mut rows = Vec::new();
    let mut lines = Vec::new();
    let mut push_result = |r: EngineBenchResult| {
        let delta = prior
            .iter()
            .find(|(name, _)| *name == r.name)
            .map(|(_, prev_eps)| format!("{:+.1}%", 100.0 * (r.events_per_sec / prev_eps - 1.0)))
            .unwrap_or_else(|| "-".to_string());
        rows.push(vec![
            r.name.clone(),
            (r.grid_n * r.grid_n).to_string(),
            format!("{:.4}", r.wall_s),
            format!("{:.4}", r.topo_build_s),
            r.events.to_string(),
            format!("{:.0}", r.events_per_sec),
            delta,
            phase_pct(&r, ProfilePhase::Deliver),
            phase_pct(&r, ProfilePhase::InterferenceMark),
            phase_pct(&r, ProfilePhase::Timer),
            r.stats.frame_slab_high_water.to_string(),
            r.stats.csma_capped_deferrals.to_string(),
            r.stats.csma_sorts_saved.to_string(),
        ]);
        lines.push(r.to_json());
    };
    for params in EngineBenchParams::default_scenarios(duration_ms) {
        push_result(engine_microbench(&params));
    }
    for params in TwoTierBenchParams::default_scenarios(twotier_duration_ms) {
        push_result(twotier_bench(&params));
    }
    print_table(
        "Engine microbench — transmit/deliver hot path",
        &[
            "scenario",
            "nodes",
            "wall s",
            "topo s",
            "events",
            "events/s",
            "vs prior",
            "deliver%",
            "interf%",
            "timer%",
            "slab high-water",
            "csma caps",
            "sorts saved",
        ],
        &rows,
    );

    // Profiler-overhead gate: same scenario, interleaved best-of-3 with
    // profiling off vs on. The profiled hot path is a register increment
    // and a branch per event (one timestamp pair per SAMPLE_INTERVAL
    // events); if that ever costs ≥2% of throughput the contract is broken
    // and the smoke run should fail loudly. Wall-clock noise on a shared
    // box swings single measurements by a couple percent either way, so a
    // breach is re-measured up to twice before failing — a real regression
    // breaches every attempt.
    let probe = EngineBenchParams::default_scenarios(duration_ms)
        .into_iter()
        .find(|p| p.name == "flood-8x8-csma")
        .expect("default scenario set has the 8x8 CSMA row");
    let mut overhead_pct = f64::INFINITY;
    for attempt in 1..=3 {
        overhead_pct = overhead_pct.min(measure_overhead(&probe, 3));
        eprintln!(
            "profiler overhead on {} (attempt {attempt}): best so far {overhead_pct:+.2}%",
            probe.name
        );
        if overhead_pct < 2.0 {
            break;
        }
    }
    assert!(
        overhead_pct < 2.0,
        "profiler overhead {overhead_pct:.2}% breaches the <2% budget on every attempt",
    );

    // Auditor-overhead gate, same shape: the standing invariant auditor is
    // pure end-of-run arithmetic over counters the run produces anyway, so
    // arming it must not cost simulation throughput. The 16×16 two-tier row
    // (the smallest end-to-end scenario) is the probe; a shorter horizon
    // keeps the gate cheap while still running full protocol traffic.
    let audit_probe = TwoTierBenchParams {
        duration_ms: twotier_duration_ms / 2,
        ..TwoTierBenchParams::default_scenarios(twotier_duration_ms)
            .into_iter()
            .find(|p| p.name == "twotier-16x16")
            .expect("default scenario set has the 16x16 two-tier row")
    };
    let mut audit_overhead_pct = f64::INFINITY;
    for attempt in 1..=3 {
        audit_overhead_pct = audit_overhead_pct.min(measure_audit_overhead(&audit_probe, 3));
        eprintln!(
            "auditor overhead on {} (attempt {attempt}): best so far {audit_overhead_pct:+.2}%",
            audit_probe.name
        );
        if audit_overhead_pct < 2.0 {
            break;
        }
    }
    assert!(
        audit_overhead_pct < 2.0,
        "auditor overhead {audit_overhead_pct:.2}% breaches the <2% budget on every attempt",
    );

    let report = lines.join("\n") + "\n";
    match std::fs::write(ENGINE_REPORT_FILE, report) {
        Ok(()) => eprintln!("wrote {} records to {ENGINE_REPORT_FILE}", lines.len()),
        Err(e) => eprintln!("could not write {ENGINE_REPORT_FILE}: {e}"),
    }
}
