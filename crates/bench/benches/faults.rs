//! Fault-subsystem benchmark: end-to-end TTMQO runs under each fault-plan
//! element, with healing outcomes and regression tracking.
//!
//! Writes `BENCH_faults.json` (JSON lines, one record per scenario). The
//! `healthy-8x8` row runs the exact fault-free configuration through the
//! same harness, so its throughput is the baseline the faulty rows are read
//! against — and its trajectory across commits guards the no-fault hot path.
//!
//! `FAULT_BENCH_SCALE=smoke` shrinks the simulated duration for CI smoke
//! runs (the numbers still land in the report, labelled by the same
//! scenario names).

use ttmqo_bench::{
    fault_bench, parse_prior_faults_report, print_table, FaultBenchParams, FAULTS_REPORT_FILE,
};

fn main() {
    let smoke = std::env::var("FAULT_BENCH_SCALE").as_deref() == Ok("smoke");
    // Full scale: 48 epochs covers crash (epoch 8), detection, re-election,
    // and a long recovered tail; smoke: enough epochs for the crashes and
    // the first repairs while staying trivial for CI.
    let duration_epochs = if smoke { 20 } else { 48 };
    let prior = std::fs::read_to_string(FAULTS_REPORT_FILE)
        .map(|text| parse_prior_faults_report(&text))
        .unwrap_or_default();

    let mut rows = Vec::new();
    let mut lines = Vec::new();
    for params in FaultBenchParams::default_scenarios(duration_epochs) {
        let r = fault_bench(&params);
        let delta = prior
            .iter()
            .find(|(name, _)| *name == r.name)
            .map(|(_, prev)| format!("{:+.1}%", 100.0 * (r.sim_ms_per_wall_s / prev - 1.0)))
            .unwrap_or_else(|| "-".to_string());
        rows.push(vec![
            r.name.clone(),
            (r.grid_n * r.grid_n).to_string(),
            format!("{:.4}", r.wall_s),
            format!("{:.0}", r.sim_ms_per_wall_s),
            delta,
            format!("{:.3}", r.min_epoch_ratio),
            format!("{:.3}", r.min_row_ratio),
            r.repairs_triggered.to_string(),
            r.orphaned_nodes.to_string(),
        ]);
        lines.push(r.to_json());
    }
    print_table(
        "Fault bench — healing throughput and answer completeness",
        &[
            "scenario",
            "nodes",
            "wall s",
            "sim ms/s",
            "vs prior",
            "epoch ratio",
            "row ratio",
            "repairs",
            "orphans",
        ],
        &rows,
    );

    let report = lines.join("\n") + "\n";
    match std::fs::write(FAULTS_REPORT_FILE, report) {
        Ok(()) => eprintln!("wrote {} records to {FAULTS_REPORT_FILE}", lines.len()),
        Err(e) => eprintln!("could not write {FAULTS_REPORT_FILE}: {e}"),
    }
}
