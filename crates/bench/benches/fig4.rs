//! Regenerates Figure 4: the adaptive random workload of §4.3.
//!
//! * 4(a) — benefit ratio vs. number of concurrent queries (8 → 48), α=0.6.
//!   Paper: grows from ≈32% to ≈82%.
//! * 4(b) — benefit ratio vs. α at 8 concurrent queries. Paper: best ≈0.6.
//! * 4(c) — average number of synthetic queries vs. concurrency × α.
//!   Paper: < 4 synthetic queries even at 48 concurrent; slightly fewer as α
//!   grows.
//!
//! These are pure tier-1 measurements: the workload is replayed through the
//! base-station optimizer (500 queries, ≈40 s mean arrival) and statistics
//! are time-weighted.

use ttmqo_bench::{optimizer_sweep, print_table};
use ttmqo_workloads::{random_workload, RandomWorkloadParams};

fn workload(concurrency: f64, seed: u64) -> Vec<ttmqo_core::WorkloadEvent> {
    random_workload(&RandomWorkloadParams {
        n_queries: 500,
        target_concurrency: concurrency,
        seed,
        ..RandomWorkloadParams::default()
    })
}

fn main() {
    // Figure 4(a): benefit ratio vs concurrency at α = 0.6.
    let mut rows = Vec::new();
    for concurrency in [8.0, 16.0, 24.0, 32.0, 40.0, 48.0] {
        let sweep = optimizer_sweep(&workload(concurrency, 42), 0.6, 4);
        rows.push(vec![
            format!("{concurrency:.0}"),
            format!("{:.1}%", 100.0 * sweep.benefit_ratio),
            format!("{:.2}", sweep.avg_user_count),
        ]);
    }
    print_table(
        "Figure 4(a) — benefit ratio vs concurrent queries (α = 0.6; paper: ≈32% → ≈82%)",
        &["target concurrency", "benefit ratio", "measured avg users"],
        &rows,
    );

    // Figure 4(b): benefit ratio vs α at 8 concurrent queries. The gross
    // ratio ignores re-optimization traffic; the net column charges each
    // injection/abortion one network flood (16 nodes × ≈7.8 ms airtime),
    // which is what creates the paper's interior optimum.
    let flood_airtime_ms = 16.0 * 7.8;
    let mut rows = Vec::new();
    for alpha in [0.0, 0.2, 0.4, 0.6, 0.8, 1.0, 1.5, 2.5, 4.0, 8.0] {
        let sweep = optimizer_sweep(&workload(8.0, 42), alpha, 4);
        rows.push(vec![
            format!("{alpha:.1}"),
            format!("{:.2}%", 100.0 * sweep.benefit_ratio),
            format!("{:.2}%", 100.0 * sweep.net_benefit_ratio(flood_airtime_ms)),
            format!("{}", sweep.injections + sweep.abortions),
        ]);
    }
    print_table(
        "Figure 4(b) — benefit ratio vs α (8 concurrent; paper: peak near α = 0.6)",
        &[
            "alpha",
            "gross benefit ratio",
            "net of reopt floods",
            "network ops",
        ],
        &rows,
    );

    // Figure 4(c): synthetic query count vs concurrency × α.
    let mut rows = Vec::new();
    for concurrency in [8.0, 16.0, 24.0, 32.0, 40.0, 48.0] {
        for alpha in [0.2, 0.6, 1.0] {
            let sweep = optimizer_sweep(&workload(concurrency, 42), alpha, 4);
            rows.push(vec![
                format!("{concurrency:.0}"),
                format!("{alpha:.1}"),
                format!("{:.2}", sweep.avg_synthetic_count),
                format!("{}", sweep.max_synthetic_count),
                format!(
                    "{}/{}",
                    sweep.absorbed_insertions + sweep.absorbed_terminations,
                    1000
                ),
            ]);
        }
    }
    print_table(
        "Figure 4(c) — avg synthetic queries vs concurrency × α (paper: < 4 at 48 concurrent)",
        &[
            "concurrency",
            "alpha",
            "avg synthetics",
            "peak",
            "absorbed events",
        ],
        &rows,
    );
}
