//! Ablation benches for the design choices DESIGN.md §6 calls out:
//!
//! 1. recursive re-insertion in Algorithm 1 (on/off);
//! 2. benefit-*rate* vs raw-benefit greedy ranking;
//! 3. dynamic query-aware parent selection vs fixed link-quality tree;
//! 4. α-gated lazy termination vs always-rebuild (α = 0);
//! 5. adaptive statistics (§3.1.2's maintained data distributions) vs the
//!    uniform assumption, on a spatially correlated (non-uniform) field.

use ttmqo_bench::{optimizer_sweep_with, print_table};
use ttmqo_core::{
    run_experiment, ExperimentConfig, FieldKind, OptimizerOptions, Strategy, TtmqoConfig,
};
use ttmqo_sim::SimTime;
use ttmqo_workloads::{random_workload, workload_c, RandomWorkloadParams};

fn main() {
    let events = random_workload(&RandomWorkloadParams {
        n_queries: 500,
        target_concurrency: 16.0,
        seed: 42,
        ..RandomWorkloadParams::default()
    });

    // 1 + 2 + 4: optimizer-level ablations on the random workload.
    let variants: [(&str, OptimizerOptions); 5] = [
        ("paper (reinsert, rate, α=0.6)", OptimizerOptions::default()),
        (
            "no recursive re-insertion",
            OptimizerOptions {
                reinsert: false,
                ..OptimizerOptions::default()
            },
        ),
        (
            "rank by raw benefit",
            OptimizerOptions {
                rank_by_rate: false,
                ..OptimizerOptions::default()
            },
        ),
        (
            "always rebuild (α=0)",
            OptimizerOptions {
                alpha: 0.0,
                ..OptimizerOptions::default()
            },
        ),
        (
            "never rebuild (α=∞)",
            OptimizerOptions {
                alpha: 1e12,
                ..OptimizerOptions::default()
            },
        ),
    ];
    let rows: Vec<Vec<String>> = variants
        .iter()
        .map(|(label, options)| {
            let sweep = optimizer_sweep_with(&events, *options, 4);
            vec![
                label.to_string(),
                format!("{:.1}%", 100.0 * sweep.benefit_ratio),
                format!("{:.2}", sweep.avg_synthetic_count),
                format!("{}", sweep.injections + sweep.abortions),
            ]
        })
        .collect();
    print_table(
        "Ablation — tier-1 optimizer variants (random workload, 16 concurrent)",
        &["variant", "benefit ratio", "avg synthetics", "network ops"],
        &rows,
    );

    // 3: dynamic parent selection vs fixed tree, in-network tier only.
    let mut rows = Vec::new();
    for (label, dynamic) in [
        ("dynamic DAG parents (paper)", true),
        ("fixed link-quality tree", false),
    ] {
        let config = ExperimentConfig {
            strategy: Strategy::InNetOnly,
            grid_n: 8,
            duration: SimTime::from_ms(96 * 2048),
            innetwork: TtmqoConfig {
                dynamic_parents: dynamic,
                ..TtmqoConfig::default()
            },
            ..ExperimentConfig::default()
        };
        let report = run_experiment(&config, &workload_c());
        rows.push(vec![
            label.to_string(),
            format!("{:.4}", report.avg_transmission_time_pct()),
            format!("{}", report.metrics.tx_count(ttmqo_sim::MsgKind::Result)),
        ]);
    }
    print_table(
        "Ablation — in-network parent selection (workload C, 64 nodes)",
        &["variant", "avg tx time %", "result msgs"],
        &rows,
    );

    // 5: adaptive statistics vs the uniform assumption on a correlated
    // field. Arrivals are staggered (8 epochs apart) so that by the time the
    // later queries are optimized the base station has observed enough rows
    // to have learned the real distribution.
    let staggered: Vec<ttmqo_core::WorkloadEvent> = workload_c()
        .into_iter()
        .enumerate()
        .map(|(i, mut e)| {
            e.at = SimTime::from_ms(i as u64 * 8 * 2048);
            e
        })
        .collect();
    let mut rows = Vec::new();
    for (label, adaptive) in [
        ("uniform assumption (paper's default)", false),
        ("adaptive statistics (§3.1.2)", true),
    ] {
        let config = ExperimentConfig {
            strategy: Strategy::TwoTier,
            grid_n: 4,
            duration: SimTime::from_ms(160 * 2048),
            field: FieldKind::Correlated,
            adaptive_statistics: adaptive,
            ..ExperimentConfig::default()
        };
        let report = run_experiment(&config, &staggered);
        rows.push(vec![
            label.to_string(),
            format!("{:.4}", report.avg_transmission_time_pct()),
            format!("{:.2}", report.avg_synthetic_count),
            format!("{:.1}%", 100.0 * report.avg_benefit_ratio),
        ]);
    }
    print_table(
        "Ablation — selectivity statistics (workload C, correlated field, 16 nodes)",
        &[
            "variant",
            "avg tx time %",
            "avg synthetics",
            "benefit ratio",
        ],
        &rows,
    );
}
