//! Engine microbenchmark: transmit/deliver hot-path throughput with a
//! regression-tracking JSON report (`BENCH_engine.json`).
//!
//! Every figure in the paper is replayed through `Simulator`'s
//! transmit/deliver loop thousands of epochs per campaign cell, so that loop
//! gates how many cells a campaign can sweep. This module isolates it: a
//! deliberately trivial [`NodeApp`] (periodic broadcast + unicast to an
//! upper neighbour, payloads with real heap content) drives the engine with
//! almost no application logic, so wall-clock time is engine time. The
//! report records events/sec plus the engine's frame-slab counters — the
//! high-water mark is the peak number of in-flight frames and serves as the
//! run's peak-memory proxy (the slab recycles slots, so it must stay flat as
//! simulated time grows).

use std::time::Instant;
use ttmqo_core::{run_experiment, ExperimentConfig, Strategy};
use ttmqo_sim::{
    ConstantField, Ctx, Destination, EngineStats, MsgKind, NodeApp, NodeId, ProfileHandle,
    ProfilePhase, ProfileReport, RadioParams, SimConfig, SimTime, Simulator, Topology,
};
use ttmqo_workloads::workload_a;

/// One engine-bench scenario: a grid flooded with periodic traffic.
#[derive(Debug, Clone)]
pub struct EngineBenchParams {
    /// Scenario name carried into the report.
    pub name: String,
    /// Grid side (nodes = `grid_n²`).
    pub grid_n: usize,
    /// Simulated duration, ms.
    pub duration_ms: u64,
    /// Per-node broadcast period, ms.
    pub interval_ms: u64,
    /// Payload length in `u64` words — real heap content, so the cost of
    /// cloning payloads per receiver (what `Arc` sharing eliminates) shows.
    pub payload_words: usize,
    /// Whether the CSMA/collision model runs (the paper's default).
    pub collisions: bool,
    /// Engine seed.
    pub seed: u64,
    /// Whether the run attaches a [`ProfileHandle`] — the report then gains
    /// the per-phase wall-time breakdown. Off for the overhead-comparison
    /// baseline rows.
    pub profiled: bool,
}

impl EngineBenchParams {
    /// The default scenario set: both grids of the paper with collisions on,
    /// a collision-free variant isolating the delivery path, and the
    /// big-grid ladder (16×16 / 32×32 / 64×64) exercising the event queue
    /// and topology build at thousand-node scale.
    ///
    /// The offered load is kept below channel capacity (two 64-byte frames
    /// per 500 ms is ~7% airtime per node at the paper's radio speed, well
    /// under the medium's share even for an interior node hearing eight
    /// neighbours). A saturated scenario would grow the transmit backlog —
    /// and with it the in-flight frame population — linearly with simulated
    /// time, measuring queue growth rather than engine speed and defeating
    /// the slab's flat-footprint property.
    ///
    /// `duration_ms` is the simulated duration of the small (paper-scale)
    /// rows; the big-grid rows shrink it so every row processes a
    /// comparable event count (events scale linearly with nodes at fixed
    /// local density).
    pub fn default_scenarios(duration_ms: u64) -> Vec<EngineBenchParams> {
        let base = |name: &str, grid_n, collisions, duration_ms| EngineBenchParams {
            name: name.to_string(),
            grid_n,
            duration_ms,
            interval_ms: 500,
            payload_words: 8,
            collisions,
            seed: 0xE161E,
            profiled: true,
        };
        vec![
            base("flood-4x4-csma", 4, true, duration_ms),
            base("flood-8x8-csma", 8, true, duration_ms),
            base("flood-8x8-lossless", 8, false, duration_ms),
            base("flood-16x16-csma", 16, true, duration_ms / 5),
            base("flood-32x32-csma", 32, true, duration_ms / 10),
            base("flood-64x64-csma", 64, true, duration_ms / 20),
        ]
    }
}

/// One end-to-end two-tier row of the engine bench: the full TTMQO stack
/// (Tier-1 optimizer, in-network tier, runner) on a big grid, so the report
/// tracks how the engine scales under real protocol traffic — SRT floods,
/// epoch-synchronized results, maintenance beacons — not just synthetic
/// flood load.
#[derive(Debug, Clone)]
pub struct TwoTierBenchParams {
    /// Scenario name carried into the report.
    pub name: String,
    /// Grid side (nodes = `grid_n²`).
    pub grid_n: usize,
    /// Simulated duration, ms.
    pub duration_ms: u64,
    /// Whether the run arms the standing invariant auditor
    /// (`ExperimentConfig::audit`) — the report row then gains an
    /// `audit_violations` count. Off for the overhead-comparison baseline
    /// rows, like `profiled` on the flood rows.
    pub audited: bool,
}

impl TwoTierBenchParams {
    /// The big-grid two-tier ladder. `duration_ms` is the 16×16 row's
    /// simulated duration; larger grids shrink it like the flood rows do.
    pub fn default_scenarios(duration_ms: u64) -> Vec<TwoTierBenchParams> {
        let base = |name: &str, grid_n, duration_ms| TwoTierBenchParams {
            name: name.to_string(),
            grid_n,
            duration_ms,
            audited: false,
        };
        vec![
            base("twotier-16x16", 16, duration_ms),
            base("twotier-32x32", 32, duration_ms / 2),
            base("twotier-64x64", 64, duration_ms / 4),
        ]
    }
}

/// Measured results of one scenario.
#[derive(Debug, Clone)]
pub struct EngineBenchResult {
    /// Scenario name.
    pub name: String,
    /// Grid side.
    pub grid_n: usize,
    /// Simulated duration, ms.
    pub duration_ms: u64,
    /// Host wall-clock of the run, seconds (excludes the topology build,
    /// which is reported separately as `topo_build_s`).
    pub wall_s: f64,
    /// Host wall-clock of the topology build (neighbour lists + BFS levels)
    /// for this scenario's grid, seconds.
    pub topo_build_s: f64,
    /// Engine events processed (transmit deliveries, timers, commands).
    pub events: u64,
    /// `events / wall_s` — the headline throughput.
    pub events_per_sec: f64,
    /// Frames put on the air.
    pub tx_frames: u64,
    /// Frames handed to apps (`on_message` + `on_overhear`).
    pub delivered: u64,
    /// Engine slab/event counters at the end of the run.
    pub stats: EngineStats,
    /// Per-phase wall-time attribution, when the run was profiled.
    pub profile: Option<ProfileReport>,
    /// Standing-auditor violation count, when the run was audited
    /// (two-tier rows with [`TwoTierBenchParams::audited`] set).
    pub audit_violations: Option<u64>,
}

/// The trivial traffic generator: every `interval_ms` each node broadcasts
/// one frame and unicasts one to an upper neighbour (toward the base
/// station), with heap-backed payloads. All logic beyond counting is in the
/// engine.
#[derive(Debug)]
struct FloodApp {
    template: Vec<u64>,
    interval_ms: u64,
    parent: Option<NodeId>,
    delivered: u64,
}

impl NodeApp for FloodApp {
    type Payload = Vec<u64>;
    type Command = ();
    type Output = ();

    fn on_start(&mut self, ctx: &mut Ctx<'_, Vec<u64>, ()>) {
        self.parent = ctx.topology().default_parent(ctx.node());
        // Deterministic phase stagger so the whole grid doesn't transmit in
        // the same microsecond.
        let phase = 1 + ctx.rand_u64() % self.interval_ms;
        ctx.set_timer(phase, 0);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Vec<u64>, ()>, _key: u64) {
        let bytes = self.template.len() * 8;
        ctx.send(
            Destination::Broadcast,
            MsgKind::Maintenance,
            bytes,
            self.template.clone(),
        );
        if let Some(parent) = self.parent {
            ctx.send(
                Destination::Unicast(parent),
                MsgKind::Result,
                bytes,
                self.template.clone(),
            );
        }
        ctx.set_timer(self.interval_ms, 0);
    }

    fn on_message(&mut self, _: &mut Ctx<'_, Vec<u64>, ()>, _: NodeId, _: MsgKind, p: &Vec<u64>) {
        self.delivered += 1;
        std::hint::black_box(p.first().copied());
    }

    fn on_command(&mut self, _: &mut Ctx<'_, Vec<u64>, ()>, _cmd: ()) {}

    fn on_overhear(&mut self, _: &mut Ctx<'_, Vec<u64>, ()>, _: NodeId, _: MsgKind, p: &Vec<u64>) {
        self.delivered += 1;
        std::hint::black_box(p.first().copied());
    }
}

/// Runs one scenario and measures it.
pub fn engine_microbench(params: &EngineBenchParams) -> EngineBenchResult {
    let topo_start = Instant::now();
    let topo = Topology::grid(params.grid_n).expect("valid bench grid");
    let topo_build_s = topo_start.elapsed().as_secs_f64();
    let radio = RadioParams {
        collisions: params.collisions,
        ..RadioParams::default()
    };
    let config = SimConfig {
        seed: params.seed,
        // The flood app is the traffic source; no engine beacons on top.
        maintenance_interval_ms: None,
        ..SimConfig::default()
    };
    let template: Vec<u64> = (0..params.payload_words as u64).collect();
    let interval_ms = params.interval_ms;
    let mut sim: Simulator<FloodApp> =
        Simulator::new(topo, radio, config, Box::new(ConstantField), move |_, _| {
            FloodApp {
                template: template.clone(),
                interval_ms,
                parent: None,
                delivered: 0,
            }
        });
    let profile = if params.profiled {
        ProfileHandle::enabled()
    } else {
        ProfileHandle::disabled()
    };
    sim.set_profile(profile.clone());
    let start = Instant::now();
    sim.run_until(SimTime::from_ms(params.duration_ms));
    let wall_s = start.elapsed().as_secs_f64();

    let delivered: u64 = (0..params.grid_n * params.grid_n)
        .map(|i| sim.node(NodeId(i as u16)).delivered)
        .sum();
    let stats = sim.engine_stats();
    let events = stats.events_processed;
    EngineBenchResult {
        name: params.name.clone(),
        grid_n: params.grid_n,
        duration_ms: params.duration_ms,
        wall_s,
        topo_build_s,
        events,
        events_per_sec: events as f64 / wall_s.max(1e-9),
        tx_frames: sim.metrics().tx_count_total(),
        delivered,
        stats,
        profile: profile.report(),
        audit_violations: None,
    }
}

/// Runs one end-to-end two-tier scenario (Workload A through the full TTMQO
/// stack) and measures it with the same report shape as the flood rows.
/// `delivered` counts result rows delivered at the base station.
pub fn twotier_bench(params: &TwoTierBenchParams) -> EngineBenchResult {
    let topo_start = Instant::now();
    let topo = Topology::grid(params.grid_n).expect("valid bench grid");
    let topo_build_s = topo_start.elapsed().as_secs_f64();
    let config = ExperimentConfig {
        strategy: Strategy::TwoTier,
        grid_n: params.grid_n,
        duration: SimTime::from_ms(params.duration_ms),
        topology_override: Some(topo),
        profile: ProfileHandle::enabled(),
        audit: params.audited,
        ..ExperimentConfig::default()
    };
    let start = Instant::now();
    let report = run_experiment(&config, &workload_a());
    let wall_s = start.elapsed().as_secs_f64();

    let delivered: u64 = report
        .completeness
        .per_query
        .values()
        .map(|qc| qc.delivered_rows)
        .sum();
    let events = report.engine.events_processed;
    EngineBenchResult {
        name: params.name.clone(),
        grid_n: params.grid_n,
        duration_ms: params.duration_ms,
        wall_s,
        topo_build_s,
        events,
        events_per_sec: events as f64 / wall_s.max(1e-9),
        tx_frames: report.metrics.tx_count_total(),
        delivered,
        stats: report.engine,
        profile: report.profile,
        audit_violations: report
            .audit
            .as_ref()
            .map(|audit| audit.violations.len() as u64),
    }
}

impl EngineBenchResult {
    /// One JSON object (one line of `BENCH_engine.json`). Profiled rows gain
    /// trailing per-phase wall-time fields (`timer_wall_us` …
    /// `interference_wall_us`), which the report-diff gate treats as
    /// lower-is-better timing fields like `wall_s`.
    pub fn to_json(&self) -> String {
        let s = &self.stats;
        let mut out = format!(
            "{{\"schema_version\":{},\"name\":\"{}\",\"grid_n\":{},\"duration_ms\":{},\"wall_s\":{:.6},\
             \"topo_build_s\":{:.6},\
             \"events\":{},\"events_per_sec\":{:.1},\"tx_frames\":{},\"delivered\":{},\
             \"frames_total\":{},\"slab_len\":{},\"slab_high_water\":{},\
             \"frames_in_flight\":{},\"csma_capped_deferrals\":{},\"csma_sorts_saved\":{}",
            ttmqo_sim::SCHEMA_VERSION,
            self.name,
            self.grid_n,
            self.duration_ms,
            self.wall_s,
            self.topo_build_s,
            self.events,
            self.events_per_sec,
            self.tx_frames,
            self.delivered,
            s.frames_total,
            s.frame_slab_len,
            s.frame_slab_high_water,
            s.frames_in_flight,
            s.csma_capped_deferrals,
            s.csma_sorts_saved,
        );
        if let Some(profile) = &self.profile {
            for (key, phase) in [
                ("timer_wall_us", ProfilePhase::Timer),
                ("deliver_wall_us", ProfilePhase::Deliver),
                ("command_wall_us", ProfilePhase::Command),
                ("maintenance_wall_us", ProfilePhase::Maintenance),
                ("fault_wall_us", ProfilePhase::Fault),
                ("csma_wall_us", ProfilePhase::CsmaSense),
                ("interference_wall_us", ProfilePhase::InterferenceMark),
            ] {
                out.push_str(&format!(",\"{key}\":{}", profile.get(phase).wall_us()));
            }
        }
        if let Some(violations) = self.audit_violations {
            out.push_str(&format!(",\"audit_violations\":{violations}"));
        }
        out.push('}');
        out
    }
}

/// Default file the engine bench writes its JSON-lines report to.
pub const ENGINE_REPORT_FILE: &str = "BENCH_engine.json";

/// Extracts `(name, events_per_sec)` pairs from a previous report so the
/// bench can print the perf trajectory without a JSON parser dependency.
pub fn parse_prior_report(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(name) = field_str(line, "name") else {
            continue;
        };
        let Some(eps) = field_f64(line, "events_per_sec") else {
            continue;
        };
        out.push((name, eps));
    }
    out
}

pub(crate) fn field_str(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\":\"");
    let start = line.find(&tag)? + tag.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

pub(crate) fn field_f64(line: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\":");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> EngineBenchParams {
        // Sub-saturated like the default scenarios: ~9% airtime per node, so
        // the in-flight population is set by traffic density, not run length.
        EngineBenchParams {
            name: "tiny".into(),
            grid_n: 3,
            duration_ms: 20_000,
            interval_ms: 400,
            payload_words: 8,
            collisions: true,
            seed: 7,
            profiled: true,
        }
    }

    #[test]
    fn microbench_counts_events_and_bounds_slab() {
        let r = engine_microbench(&tiny());
        assert!(r.events > 0 && r.tx_frames > 0 && r.delivered > 0);
        assert!(r.events_per_sec > 0.0);
        assert!(r.stats.frames_total >= r.tx_frames);
        // The slab recycles: its footprint is in-flight frames, an order of
        // magnitude (and asymptotically unboundedly) below total
        // transmissions.
        assert!((r.stats.frame_slab_high_water as u64) * 10 < r.stats.frames_total);
        // Only frames still on the air at the horizon occupy slots.
        assert!(r.stats.frames_in_flight <= r.stats.frame_slab_high_water);
    }

    #[test]
    fn slab_high_water_is_flat_in_simulated_time() {
        // The acceptance criterion of the slab rewrite: 10× more simulated
        // time must not grow the peak in-flight footprint (it is set by
        // traffic density, not run length).
        let short = engine_microbench(&tiny());
        let long = engine_microbench(&EngineBenchParams {
            duration_ms: 200_000,
            ..tiny()
        });
        assert!(long.stats.frames_total > 5 * short.stats.frames_total);
        assert!(
            long.stats.frame_slab_high_water <= short.stats.frame_slab_high_water * 2,
            "slab high-water must stay flat: {} (short) vs {} (10× longer)",
            short.stats.frame_slab_high_water,
            long.stats.frame_slab_high_water,
        );
    }

    #[test]
    fn microbench_is_deterministic() {
        let a = engine_microbench(&tiny());
        let b = engine_microbench(&tiny());
        assert_eq!(a.events, b.events);
        assert_eq!(a.tx_frames, b.tx_frames);
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.stats.frame_slab_high_water, b.stats.frame_slab_high_water);
    }

    #[test]
    fn profiling_changes_no_counts_and_adds_phase_fields() {
        let on = engine_microbench(&tiny());
        let off = engine_microbench(&EngineBenchParams {
            profiled: false,
            ..tiny()
        });
        // The profiler is pure observation: event-for-event identical runs.
        assert_eq!(on.events, off.events);
        assert_eq!(on.tx_frames, off.tx_frames);
        assert_eq!(on.delivered, off.delivered);
        assert_eq!(on.stats, off.stats);
        // The profiled row carries a report whose event attribution matches
        // the engine's own counters; the unprofiled row carries none.
        let profile = on.profile.as_ref().expect("profiled run has a report");
        let attributed: u64 = [
            ProfilePhase::Timer,
            ProfilePhase::Deliver,
            ProfilePhase::Command,
            ProfilePhase::Maintenance,
            ProfilePhase::Fault,
        ]
        .into_iter()
        .map(|p| profile.get(p).events)
        .sum();
        assert_eq!(attributed, on.events);
        assert!(off.profile.is_none());
        assert!(on.to_json().contains("\"deliver_wall_us\":"));
        assert!(!off.to_json().contains("deliver_wall_us"));
    }

    #[test]
    fn report_round_trips_through_parser() {
        let r = engine_microbench(&tiny());
        let json = r.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        let parsed = parse_prior_report(&json);
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].0, "tiny");
        assert!((parsed[0].1 - r.events_per_sec).abs() / r.events_per_sec < 1e-3);
    }
}
