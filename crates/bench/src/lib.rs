//! Figure-regeneration harness for the TTMQO reproduction.
//!
//! Each function here computes the data behind one of the paper's figures;
//! the `benches/` binaries print them as tables (`cargo bench -p ttmqo-bench`
//! regenerates every figure). Keeping the logic in the library lets the test
//! suite assert the figures' *shapes* cheaply.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod campaign;
pub mod checkpoint;
pub mod churn;
pub mod engine;
pub mod faults;
pub mod fig2;
pub mod fig34;
pub mod fig5;
pub mod table;

pub use campaign::{paper_campaign, write_report, CAMPAIGN_REPORT_FILE};
pub use checkpoint::{
    checkpoint_bench, parse_prior_checkpoint_report, CheckpointBenchParams, CheckpointBenchResult,
    CHECKPOINT_REPORT_FILE,
};
pub use churn::{
    churn_bench, churn_pair, parse_prior_churn_report, ChurnBenchParams, ChurnBenchResult,
    CHURN_REPORT_FILE,
};
pub use engine::{
    engine_microbench, parse_prior_report, twotier_bench, EngineBenchParams, EngineBenchResult,
    TwoTierBenchParams, ENGINE_REPORT_FILE,
};
pub use faults::{
    fault_bench, parse_prior_faults_report, FaultBenchParams, FaultBenchResult, FAULTS_REPORT_FILE,
    FAULT_BENCH_EPOCH_MS,
};
pub use fig2::{fig2_counts, Fig2Counts};
pub use fig34::{
    fig3_campaign, fig3_matrix, optimizer_sweep, optimizer_sweep_with, Fig3Cell, OptimizerSweep,
    FIG3_DURATION_EPOCHS,
};
pub use fig5::{fig5_campaign, fig5_cell_name, fig5_points, fig5_savings, Fig5Point};
pub use table::print_table;
