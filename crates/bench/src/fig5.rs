//! Harness for Figure 5: transmission-time savings vs. predicate
//! selectivity, for different acquisition/aggregation mixes.

use ttmqo_core::{run_experiment, ExperimentConfig, Strategy};
use ttmqo_sim::SimTime;
use ttmqo_workloads::{selectivity_workload, SelectivityWorkloadParams};

/// One data point of Figure 5.
#[derive(Debug, Clone, Copy)]
pub struct Fig5Point {
    /// Fraction of aggregation queries in the 8-query mix.
    pub aggregation_fraction: f64,
    /// Predicate selectivity.
    pub selectivity: f64,
    /// Baseline average transmission time, percent.
    pub baseline_tx_pct: f64,
    /// Two-tier TTMQO average transmission time, percent.
    pub ttmqo_tx_pct: f64,
}

impl Fig5Point {
    /// Percentage of transmission time saved by TTMQO over the baseline.
    pub fn savings_pct(&self) -> f64 {
        if self.baseline_tx_pct <= 0.0 {
            0.0
        } else {
            100.0 * (1.0 - self.ttmqo_tx_pct / self.baseline_tx_pct)
        }
    }
}

/// Measures one Figure 5 point: 8 concurrent queries of the given mix and
/// selectivity on the 4×4 grid, baseline vs. the full TTMQO scheme.
pub fn fig5_savings(
    aggregation_fraction: f64,
    selectivity: f64,
    duration_epochs: u64,
    seed: u64,
) -> Fig5Point {
    let workload = selectivity_workload(&SelectivityWorkloadParams {
        aggregation_fraction,
        selectivity,
        seed,
        ..SelectivityWorkloadParams::default()
    });
    let mut tx = [0.0f64; 2];
    for (i, strategy) in [Strategy::Baseline, Strategy::TwoTier]
        .into_iter()
        .enumerate()
    {
        let config = ExperimentConfig {
            strategy,
            grid_n: 4,
            duration: SimTime::from_ms(duration_epochs * 2048),
            ..ExperimentConfig::default()
        };
        tx[i] = run_experiment(&config, &workload).avg_transmission_time_pct();
    }
    Fig5Point {
        aggregation_fraction,
        selectivity,
        baseline_tx_pct: tx[0],
        ttmqo_tx_pct: tx[1],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn savings_grow_with_selectivity_for_acquisition() {
        // The Figure 5 shape: higher selectivity ⇒ more similar queries ⇒
        // larger savings. At selectivity 1.0 with 8 identical acquisition
        // queries the paper reports ≈89.7% (theoretical 7/8 = 87.5%).
        let low = fig5_savings(0.0, 0.3, 48, 1);
        let high = fig5_savings(0.0, 1.0, 48, 1);
        assert!(
            high.savings_pct() > low.savings_pct(),
            "savings must grow: {:.1}% -> {:.1}%",
            low.savings_pct(),
            high.savings_pct()
        );
        assert!(
            high.savings_pct() > 75.0,
            "identical acquisition queries should save ≳ 7/8: {:.1}%",
            high.savings_pct()
        );
    }

    #[test]
    fn full_aggregation_mix_saves_at_full_selectivity() {
        let p = fig5_savings(1.0, 1.0, 48, 2);
        assert!(
            p.savings_pct() > 50.0,
            "8 identical MAX queries must share heavily: {:.1}%",
            p.savings_pct()
        );
    }
}
