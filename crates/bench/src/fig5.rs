//! Harness for Figure 5: transmission-time savings vs. predicate
//! selectivity, for different acquisition/aggregation mixes.
//!
//! The sweep runs as one [`CampaignSpec`]: every `(mix, selectivity)` pair
//! becomes a named campaign workload (its events generated up front by
//! [`selectivity_workload`]), crossed with {baseline, two-tier} on the 4×4
//! grid. [`run_campaign`] then executes all cells in parallel and
//! [`fig5_points`] reads the figure back out of the report.

use ttmqo_core::{run_campaign, CampaignReport, CampaignSpec, ExperimentConfig, Strategy};
use ttmqo_sim::SimTime;
use ttmqo_workloads::{selectivity_workload, SelectivityWorkloadParams};

/// One data point of Figure 5.
#[derive(Debug, Clone, Copy)]
pub struct Fig5Point {
    /// Fraction of aggregation queries in the 8-query mix.
    pub aggregation_fraction: f64,
    /// Predicate selectivity.
    pub selectivity: f64,
    /// Baseline average transmission time, percent.
    pub baseline_tx_pct: f64,
    /// Two-tier TTMQO average transmission time, percent.
    pub ttmqo_tx_pct: f64,
}

impl Fig5Point {
    /// Percentage of transmission time saved by TTMQO over the baseline.
    pub fn savings_pct(&self) -> f64 {
        if self.baseline_tx_pct <= 0.0 {
            0.0
        } else {
            100.0 * (1.0 - self.ttmqo_tx_pct / self.baseline_tx_pct)
        }
    }
}

/// Campaign-workload name of the Figure 5 cell at the given coordinates.
pub fn fig5_cell_name(aggregation_fraction: f64, selectivity: f64) -> String {
    format!("agg{aggregation_fraction:.2}-sel{selectivity:.2}")
}

/// Builds the Figure 5 sweep as one campaign: the cross product of the given
/// mixes and selectivities, each pair's 8-query workload generated here and
/// attached to the spec under [`fig5_cell_name`], × {baseline, two-tier} on
/// the 4×4 grid.
pub fn fig5_campaign(
    mixes: &[f64],
    selectivities: &[f64],
    duration_epochs: u64,
    seed: u64,
) -> CampaignSpec {
    let base = ExperimentConfig {
        duration: SimTime::from_ms(duration_epochs * 2048),
        ..ExperimentConfig::default()
    };
    let mut spec = CampaignSpec::new(base)
        .strategies([Strategy::Baseline, Strategy::TwoTier])
        .grid_sizes([4]);
    for &aggregation_fraction in mixes {
        for &selectivity in selectivities {
            let events = selectivity_workload(&SelectivityWorkloadParams {
                aggregation_fraction,
                selectivity,
                seed,
                ..SelectivityWorkloadParams::default()
            });
            spec = spec.workload(fig5_cell_name(aggregation_fraction, selectivity), events);
        }
    }
    spec
}

/// Reads the Figure 5 points back out of a report produced by running
/// [`fig5_campaign`] over the same mixes and selectivities, in mix-major,
/// selectivity-minor order.
///
/// # Panics
///
/// Panics if the report is missing a cell of the sweep (it was produced from
/// a different spec).
pub fn fig5_points(
    report: &CampaignReport,
    mixes: &[f64],
    selectivities: &[f64],
) -> Vec<Fig5Point> {
    let tx_pct = |name: &str, strategy: Strategy| {
        report
            .cells
            .iter()
            .find(|c| c.workload == name && c.strategy == strategy)
            .unwrap_or_else(|| panic!("report is missing cell {name}/{strategy}"))
            .avg_transmission_time_pct()
    };
    let mut points = Vec::with_capacity(mixes.len() * selectivities.len());
    for &aggregation_fraction in mixes {
        for &selectivity in selectivities {
            let name = fig5_cell_name(aggregation_fraction, selectivity);
            points.push(Fig5Point {
                aggregation_fraction,
                selectivity,
                baseline_tx_pct: tx_pct(&name, Strategy::Baseline),
                ttmqo_tx_pct: tx_pct(&name, Strategy::TwoTier),
            });
        }
    }
    points
}

/// Measures one Figure 5 point: 8 concurrent queries of the given mix and
/// selectivity on the 4×4 grid, baseline vs. the full TTMQO scheme. A thin
/// wrapper over a single-pair [`fig5_campaign`].
pub fn fig5_savings(
    aggregation_fraction: f64,
    selectivity: f64,
    duration_epochs: u64,
    seed: u64,
) -> Fig5Point {
    let mixes = [aggregation_fraction];
    let selectivities = [selectivity];
    let spec = fig5_campaign(&mixes, &selectivities, duration_epochs, seed);
    let report = run_campaign(&spec);
    fig5_points(&report, &mixes, &selectivities)
        .pop()
        .expect("single-pair sweep has exactly one point")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ttmqo_core::run_campaign_with;

    #[test]
    fn savings_grow_with_selectivity_for_acquisition() {
        // The Figure 5 shape: higher selectivity ⇒ more similar queries ⇒
        // larger savings. At selectivity 1.0 with 8 identical acquisition
        // queries the paper reports ≈89.7% (theoretical 7/8 = 87.5%).
        let low = fig5_savings(0.0, 0.3, 48, 1);
        let high = fig5_savings(0.0, 1.0, 48, 1);
        assert!(
            high.savings_pct() > low.savings_pct(),
            "savings must grow: {:.1}% -> {:.1}%",
            low.savings_pct(),
            high.savings_pct()
        );
        assert!(
            high.savings_pct() > 75.0,
            "identical acquisition queries should save ≳ 7/8: {:.1}%",
            high.savings_pct()
        );
    }

    #[test]
    fn full_aggregation_mix_saves_at_full_selectivity() {
        let p = fig5_savings(1.0, 1.0, 48, 2);
        assert!(
            p.savings_pct() > 50.0,
            "8 identical MAX queries must share heavily: {:.1}%",
            p.savings_pct()
        );
    }

    #[test]
    fn campaign_covers_the_sweep_and_points_read_back() {
        let mixes = [0.0, 1.0];
        let selectivities = [0.5, 1.0];
        let spec = fig5_campaign(&mixes, &selectivities, 16, 3);
        // 4 workloads × 1 grid × 1 seed × 2 strategies.
        assert_eq!(spec.cell_count(), 8);
        assert!(spec
            .workloads
            .iter()
            .any(|w| w.name == fig5_cell_name(1.0, 0.5)));
        let report = run_campaign_with(&spec, 2);
        let points = fig5_points(&report, &mixes, &selectivities);
        assert_eq!(points.len(), 4);
        assert_eq!(
            (points[0].aggregation_fraction, points[0].selectivity),
            (0.0, 0.5)
        );
        assert_eq!(
            (points[3].aggregation_fraction, points[3].selectivity),
            (1.0, 1.0)
        );
        for p in &points {
            assert!(p.baseline_tx_pct > 0.0);
            assert!(p.ttmqo_tx_pct > 0.0);
        }
    }
}
