//! Minimal fixed-width table printing for the figure harnesses.

/// Prints a titled, fixed-width table to stdout.
///
/// # Examples
///
/// ```
/// ttmqo_bench::print_table(
///     "demo",
///     &["x", "y"],
///     &[vec!["1".into(), "2".into()]],
/// );
/// ```
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    println!("\n=== {title} ===");
    let header_line: Vec<String> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| format!("{h:>width$}", width = widths[i]))
        .collect();
    println!("{}", header_line.join("  "));
    println!("{}", "-".repeat(header_line.join("  ").len()));
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>width$}", width = widths.get(i).copied().unwrap_or(0)))
            .collect();
        println!("{}", line.join("  "));
    }
}

#[cfg(test)]
mod tests {
    use super::print_table;

    #[test]
    fn prints_without_panicking() {
        print_table(
            "t",
            &["a", "bbbb"],
            &[vec!["123456".into(), "1".into()], vec!["1".into()]],
        );
    }
}
