//! Reproduction of the paper's Figure 2 worked example.
//!
//! An 9-node topology (base station + A…H) where nodes D, E, F, G, H hold
//! data for query `q_i` and D, G, H for `q_j`. The paper counts, per epoch:
//!
//! * acquisition: TinyDB 20 messages / 8 nodes involved, versus the DAG's
//!   12 messages / 6 nodes (A and C sleep);
//! * aggregation: TinyDB 14 messages versus 7 with shared early aggregation
//!   (our shared frame packs both queries' partials into *one* message at
//!   node B, so we measure 6).

use ttmqo_core::{TtmqoApp, TtmqoConfig};
use ttmqo_query::{parse_query, Attribute, Query, QueryId};
use ttmqo_sim::{
    Metrics, MsgKind, NodeApp, NodeId, Position, RadioParams, SensorField, SimConfig, SimTime,
    Simulator, Topology,
};
use ttmqo_tinydb::{Command, Output, TinyDbApp, TinyDbConfig};

/// Node indices of the figure (0 is the base station).
pub const NAMES: [&str; 9] = ["BS", "A", "B", "C", "D", "E", "F", "G", "H"];

/// The Figure 2 topology: levels BS / {A,B} / {C,D,E,F} / {G,H}, with
/// G in range of both C (its TinyDB parent) and D (its DAG alternative),
/// and H in range of both D and E.
pub fn fig2_topology() -> Topology {
    let positions = vec![
        Position { x: 0.0, y: 0.0 },    // 0 BS
        Position { x: -40.0, y: 30.0 }, // 1 A
        Position { x: 40.0, y: 30.0 },  // 2 B
        Position { x: -40.0, y: 80.0 }, // 3 C (parent A)
        Position { x: 40.0, y: 80.0 },  // 4 D (parent B)
        Position { x: 80.0, y: 60.0 },  // 5 E (parent B)
        Position { x: 2.0, y: 60.0 },   // 6 F (parent B)
        Position { x: -2.0, y: 106.0 }, // 7 G (parent C; D in range)
        Position { x: 78.0, y: 108.0 }, // 8 H (parent D; E in range)
    ];
    Topology::from_positions(positions, 50.0).expect("figure topology is connected")
}

/// Constant per-node field realizing the figure's data placement:
/// light = 500 at D, E, F, G, H (else 100); temp = 50 at D, G, H (else 10).
#[derive(Debug, Clone, Copy, Default)]
pub struct Fig2Field;

impl SensorField for Fig2Field {
    fn reading(&self, node: NodeId, attr: Attribute, _t: SimTime) -> f64 {
        let qi_nodes = [4u16, 5, 6, 7, 8]; // D E F G H
        let qj_nodes = [4u16, 7, 8]; // D G H
        match attr {
            Attribute::NodeId => node.0 as f64,
            Attribute::Light => {
                if qi_nodes.contains(&node.0) {
                    500.0
                } else {
                    100.0
                }
            }
            Attribute::Temp => {
                if qj_nodes.contains(&node.0) {
                    50.0
                } else {
                    10.0
                }
            }
            _ => 0.0,
        }
    }
}

/// The figure's two queries, acquisition or aggregation flavour.
pub fn fig2_queries(aggregation: bool) -> (Query, Query) {
    if aggregation {
        (
            parse_query(
                QueryId(1),
                "select max(light) where light >= 400 epoch duration 2048",
            )
            .unwrap(),
            parse_query(
                QueryId(2),
                "select max(temp) where temp >= 30 epoch duration 2048",
            )
            .unwrap(),
        )
    } else {
        (
            parse_query(
                QueryId(1),
                "select light where light >= 400 epoch duration 2048",
            )
            .unwrap(),
            parse_query(
                QueryId(2),
                "select temp where temp >= 30 epoch duration 2048",
            )
            .unwrap(),
        )
    }
}

/// Measured steady-state counts for one protocol variant.
#[derive(Debug, Clone, Copy)]
pub struct Fig2Counts {
    /// Result messages per epoch (both queries together).
    pub messages_per_epoch: f64,
    /// Number of nodes that transmitted anything in the steady window.
    pub nodes_involved: usize,
}

fn measure<A>(mut sim: Simulator<A>, q1: Query, q2: Query) -> Fig2Counts
where
    A: NodeApp<Command = Command, Output = Output>,
{
    sim.schedule_command(SimTime::ZERO, NodeId::BASE_STATION, Command::Pose(q1));
    sim.schedule_command(SimTime::ZERO, NodeId::BASE_STATION, Command::Pose(q2));
    // Warm up 4 epochs, then measure 8 steady epochs.
    sim.run_until(SimTime::from_ms(4 * 2048));
    let before: Metrics = sim.metrics().clone();
    sim.run_until(SimTime::from_ms(12 * 2048));
    let after = sim.metrics();

    let messages = after.tx_count(MsgKind::Result) - before.tx_count(MsgKind::Result);
    let involved = (0..9usize)
        .filter(|&n| after.node_tx_busy_ms(n) - before.node_tx_busy_ms(n) > 1e-9)
        .count();
    Fig2Counts {
        messages_per_epoch: messages as f64 / 8.0,
        nodes_involved: involved,
    }
}

/// Runs the worked example and returns (TinyDB counts, TTMQO counts).
pub fn fig2_counts(aggregation: bool) -> (Fig2Counts, Fig2Counts) {
    let radio = RadioParams::lossless();
    let config = SimConfig {
        maintenance_interval_ms: None,
        ..SimConfig::default()
    };
    let (q1, q2) = fig2_queries(aggregation);

    let tinydb = measure(
        Simulator::new(
            fig2_topology(),
            radio.clone(),
            config.clone(),
            Box::new(Fig2Field),
            |_, _| TinyDbApp::new(TinyDbConfig::default()),
        ),
        q1.clone(),
        q2.clone(),
    );
    let ttmqo = measure(
        Simulator::new(
            fig2_topology(),
            radio,
            config,
            Box::new(Fig2Field),
            |_, _| TtmqoApp::new(TtmqoConfig::default()),
        ),
        q1,
        q2,
    );
    (tinydb, ttmqo)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_matches_figure_levels_and_parents() {
        let t = fig2_topology();
        let level = |i: u16| t.level(NodeId(i));
        assert_eq!(level(0), 0);
        assert_eq!((level(1), level(2)), (1, 1)); // A B
        assert_eq!((level(3), level(4), level(5), level(6)), (2, 2, 2, 2)); // C D E F
        assert_eq!((level(7), level(8)), (3, 3)); // G H

        // TinyDB's fixed parents.
        assert_eq!(t.default_parent(NodeId(3)), Some(NodeId(1)), "C -> A");
        assert_eq!(t.default_parent(NodeId(4)), Some(NodeId(2)), "D -> B");
        assert_eq!(t.default_parent(NodeId(7)), Some(NodeId(3)), "G -> C");
        assert_eq!(t.default_parent(NodeId(8)), Some(NodeId(4)), "H -> D");
        // The DAG alternative edges the example depends on.
        assert!(t.in_range(NodeId(7), NodeId(4)), "G must reach D");
        assert!(t.in_range(NodeId(8), NodeId(4)), "H must reach D");
    }

    #[test]
    fn acquisition_counts_match_the_paper() {
        let (tinydb, ttmqo) = fig2_counts(false);
        // Paper: 20 vs 12 messages, 8 vs 6 nodes.
        assert_eq!(tinydb.messages_per_epoch.round() as u64, 20);
        assert_eq!(ttmqo.messages_per_epoch.round() as u64, 12);
        assert_eq!(tinydb.nodes_involved, 8);
        assert_eq!(ttmqo.nodes_involved, 6);
    }

    #[test]
    fn aggregation_counts_match_the_paper() {
        let (tinydb, ttmqo) = fig2_counts(true);
        // Paper: 14 vs 7. Our shared frame also packs B's two per-query
        // partials together, saving one more message (6).
        assert_eq!(tinydb.messages_per_epoch.round() as u64, 14);
        assert!(
            (6..=7).contains(&(ttmqo.messages_per_epoch.round() as u64)),
            "got {}",
            ttmqo.messages_per_epoch
        );
    }
}
