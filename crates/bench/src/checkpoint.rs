//! Checkpoint bench: snapshot size, save/restore latency and warm-started
//! campaign speedup, with a regression-tracking JSON report
//! (`BENCH_checkpoint.json`).
//!
//! Each scenario runs one experiment to a mid-run instant, measures
//! [`RunSession::checkpoint`] and [`RunSession::restore`] over several
//! iterations, verifies the resumed run's report is bit-identical to the
//! uninterrupted run's (`resume_matches` — an exact gate field, not a
//! timing), then times the same sweep cold versus warm-started
//! ([`CampaignSpec::warm_start`]) and records the wall-clock ratio as
//! `warmstart_speedup`. `snapshot_bytes` is deterministic per scenario;
//! `save_s`/`restore_s`/`warmstart_speedup` are timing fields under the
//! report diff's direction-aware thresholds.
//!
//! `CHECKPOINT_BENCH_SCALE=smoke` shrinks the grids and durations for CI.

use std::time::Instant;
use ttmqo_core::{
    run_campaign_sequential, CampaignSpec, ExperimentConfig, RunSession, Strategy, WorkloadAction,
    WorkloadEvent,
};
use ttmqo_sim::SimTime;
use ttmqo_workloads::{workload_a, workload_b};

/// One checkpoint-bench scenario.
#[derive(Debug, Clone)]
pub struct CheckpointBenchParams {
    /// Scenario name carried into the report.
    pub name: String,
    /// Grid side (nodes = `grid_n²`).
    pub grid_n: usize,
    /// Run length in 2048 ms base epochs.
    pub duration_epochs: u64,
    /// Mid-run instant the checkpoint is taken at, in base epochs.
    pub checkpoint_epoch: u64,
    /// Warm-start sweep: both workloads run the common base queries from
    /// t = 0 and diverge at this epoch (one adds extra queries there), so
    /// the shared prefix the campaign checkpoints covers the *live* base
    /// workload over `[0, offset)`.
    pub warm_offset_epochs: u64,
    /// Save/restore timing iterations (the mean is reported).
    pub iters: usize,
}

impl CheckpointBenchParams {
    /// The default scenario set: the paper's 4×4 grid plus a big-grid cell.
    pub fn default_scenarios(smoke: bool) -> Vec<CheckpointBenchParams> {
        let base = |name: &str, grid_n, duration_epochs, checkpoint_epoch, warm_offset_epochs| {
            CheckpointBenchParams {
                name: name.to_string(),
                grid_n,
                duration_epochs,
                checkpoint_epoch,
                warm_offset_epochs,
                iters: if smoke { 3 } else { 10 },
            }
        };
        if smoke {
            vec![
                base("checkpoint-4x4", 4, 12, 6, 4),
                base("checkpoint-8x8", 8, 8, 4, 3),
            ]
        } else {
            vec![
                base("checkpoint-4x4", 4, 24, 12, 8),
                base("checkpoint-16x16", 16, 12, 6, 4),
                base("checkpoint-32x32", 32, 8, 4, 3),
            ]
        }
    }
}

/// Measured results of one checkpoint scenario.
#[derive(Debug, Clone)]
pub struct CheckpointBenchResult {
    /// Scenario name.
    pub name: String,
    /// Size of the mid-run snapshot document, bytes (deterministic).
    pub snapshot_bytes: u64,
    /// Mean wall-clock of one `checkpoint()` call, seconds.
    pub save_s: f64,
    /// Mean wall-clock of one `restore()` call, seconds.
    pub restore_s: f64,
    /// Whether the resumed run's report matched the uninterrupted run's
    /// debug rendering byte for byte (must always be `true`).
    pub resume_matches: bool,
    /// Cold sweep wall-clock, seconds.
    pub cold_wall_s: f64,
    /// Warm-started sweep wall-clock, seconds.
    pub warm_wall_s: f64,
    /// `cold_wall_s / warm_wall_s` (higher is better).
    pub warmstart_speedup: f64,
    /// Whether the warm sweep's records matched the cold sweep's after
    /// stripping the wall-clock field (must always be `true`).
    pub warm_matches: bool,
    /// Whole-scenario wall-clock, seconds.
    pub wall_s: f64,
}

/// Delays every event by `offset_ms` and renumbers its query ids by
/// `id_offset` (so the delayed queries can ride on top of a base workload
/// whose ids they would otherwise collide with).
fn shifted(events: Vec<WorkloadEvent>, offset_ms: u64, id_offset: u64) -> Vec<WorkloadEvent> {
    events
        .into_iter()
        .map(|e| match e.action {
            WorkloadAction::Pose(q) => WorkloadEvent::pose(
                e.at.as_ms() + offset_ms,
                q.with_id(ttmqo_query::QueryId(q.id().0 + id_offset)),
            ),
            WorkloadAction::Terminate(qid) => WorkloadEvent::terminate(
                e.at.as_ms() + offset_ms,
                ttmqo_query::QueryId(qid.0 + id_offset),
            ),
        })
        .collect()
}

/// Removes the (non-deterministic) wall-clock field from a campaign record
/// line so cold and warm records can be compared exactly.
fn strip_wall_clock(line: &str) -> String {
    match line.find("\"wall_clock_ms\":") {
        Some(start) => {
            let rest = &line[start..];
            let end = rest.find(',').map_or(line.len(), |c| start + c + 1);
            format!("{}{}", &line[..start], &line[end..])
        }
        None => line.to_string(),
    }
}

/// Runs one checkpoint scenario and measures it.
pub fn checkpoint_bench(params: &CheckpointBenchParams) -> CheckpointBenchResult {
    const EPOCH_MS: u64 = 2048;
    let whole = Instant::now();
    let config = ExperimentConfig {
        strategy: Strategy::TwoTier,
        grid_n: params.grid_n,
        duration: SimTime::from_ms(params.duration_epochs * EPOCH_MS),
        ..ExperimentConfig::default()
    };
    let workload = workload_a();
    let cut = SimTime::from_ms(params.checkpoint_epoch * EPOCH_MS);

    // Straight run (the oracle) and the prefix the snapshot is taken from.
    let straight = format!("{:?}", RunSession::new(&config, &workload).finish());
    let mut session = RunSession::new(&config, &workload);
    session.run_to(cut);

    let iters = params.iters.max(1);
    let mut bytes = Vec::new();
    let save_start = Instant::now();
    for _ in 0..iters {
        bytes = session.checkpoint();
    }
    let save_s = save_start.elapsed().as_secs_f64() / iters as f64;
    let snapshot_bytes = bytes.len() as u64;

    let mut restored = None;
    let restore_start = Instant::now();
    for _ in 0..iters {
        restored = Some(
            RunSession::restore(&bytes, &config, &workload)
                .expect("the bench's own checkpoint restores"),
        );
    }
    let restore_s = restore_start.elapsed().as_secs_f64() / iters as f64;
    let resumed = format!(
        "{:?}",
        restored
            .expect("at least one restore iteration ran")
            .finish()
    );
    let resume_matches = resumed == straight;

    // Warm-start sweep: every workload runs workload A's queries from
    // t = 0 and diverges at the offset epoch, where two of them pose
    // (differently renumbered) workload B queries on top. The campaign's
    // shared prefix is therefore the live base workload over `[0, offset)`
    // — the work warm start simulates once per group instead of per cell.
    let offset_ms = params.warm_offset_epochs * EPOCH_MS;
    let base_events = workload_a();
    let mut with_b = base_events.clone();
    with_b.extend(shifted(workload_b(), offset_ms, 100));
    let mut with_late_b = base_events.clone();
    with_late_b.extend(shifted(workload_b(), 2 * offset_ms, 200));
    let spec = CampaignSpec::new(config)
        .strategies([Strategy::TwoTier])
        .grid_sizes([params.grid_n])
        .workload("base", base_events)
        .workload("base+b", with_b)
        .workload("base+late-b", with_late_b);
    let cold_start = Instant::now();
    let cold = run_campaign_sequential(&spec);
    let cold_wall_s = cold_start.elapsed().as_secs_f64();
    let warm_spec = spec.warm_start();
    let warm_start = Instant::now();
    let warm = run_campaign_sequential(&warm_spec);
    let warm_wall_s = warm_start.elapsed().as_secs_f64();
    let warm_matches = cold.cells.len() == warm.cells.len()
        && cold
            .to_jsonl()
            .lines()
            .zip(warm.to_jsonl().lines())
            .all(|(c, w)| strip_wall_clock(c) == strip_wall_clock(w));

    CheckpointBenchResult {
        name: params.name.clone(),
        snapshot_bytes,
        save_s,
        restore_s,
        resume_matches,
        cold_wall_s,
        warm_wall_s,
        warmstart_speedup: cold_wall_s / warm_wall_s.max(1e-9),
        warm_matches,
        wall_s: whole.elapsed().as_secs_f64(),
    }
}

impl CheckpointBenchResult {
    /// One JSON object (one line of `BENCH_checkpoint.json`).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"schema_version\":{},\"name\":\"{}\",\"snapshot_bytes\":{},\
             \"save_s\":{:.6},\"restore_s\":{:.6},\"resume_matches\":{},\
             \"cold_wall_s\":{:.6},\"warm_wall_s\":{:.6},\"warmstart_speedup\":{:.3},\
             \"warm_matches\":{},\"wall_s\":{:.6}}}",
            ttmqo_sim::SCHEMA_VERSION,
            self.name,
            self.snapshot_bytes,
            self.save_s,
            self.restore_s,
            self.resume_matches,
            self.cold_wall_s,
            self.warm_wall_s,
            self.warmstart_speedup,
            self.warm_matches,
            self.wall_s,
        )
    }
}

/// Default file the checkpoint bench writes its JSON-lines report to.
pub const CHECKPOINT_REPORT_FILE: &str = "BENCH_checkpoint.json";

/// Extracts `(name, save_s)` pairs from a previous report.
pub fn parse_prior_checkpoint_report(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(name) = crate::engine::field_str(line, "name") else {
            continue;
        };
        let Some(save_s) = crate::engine::field_f64(line, "save_s") else {
            continue;
        };
        out.push((name, save_s));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CheckpointBenchParams {
        CheckpointBenchParams {
            name: "tiny".into(),
            grid_n: 3,
            duration_epochs: 8,
            checkpoint_epoch: 4,
            warm_offset_epochs: 2,
            iters: 1,
        }
    }

    #[test]
    fn bench_verifies_bit_identity_and_measures() {
        let r = checkpoint_bench(&tiny());
        assert!(r.resume_matches, "resume must be bit-identical");
        assert!(r.warm_matches, "warm-started sweep must be bit-identical");
        assert!(r.snapshot_bytes > 0);
        assert!(r.save_s >= 0.0 && r.restore_s >= 0.0);
        assert!(r.warmstart_speedup > 0.0);
    }

    #[test]
    fn report_round_trips_through_parser() {
        let r = checkpoint_bench(&tiny());
        let json = r.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"resume_matches\":true"));
        let parsed = parse_prior_checkpoint_report(&json);
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].0, "tiny");
    }

    #[test]
    fn wall_clock_stripping_is_exact() {
        let line = "{\"a\":1,\"wall_clock_ms\":12.5,\"b\":2}";
        assert_eq!(strip_wall_clock(line), "{\"a\":1,\"b\":2}");
        assert_eq!(strip_wall_clock("{\"a\":1}"), "{\"a\":1}");
    }
}
