//! Churn bench: streaming admission/departure throughput of the Tier-1
//! optimizer, with a regression-tracking JSON report (`BENCH_churn.json`).
//!
//! The bench replays a seeded arrival/departure schedule (the
//! [`churn_workload`] template process) straight into a
//! [`BaseStationOptimizer`] — no simulator, no radio — so wall-clock time
//! is admission time. Every scenario runs twice, once with the candidate
//! index and once in `exhaustive` reference mode, and the report carries
//! both records plus the indexed record's `speedup_vs_exhaustive`. The
//! decision counters (`admitted`, `final_synthetics`, `scanned`, `pruned`)
//! are deterministic per seed and gate exactly in the report diff; only the
//! throughput/latency fields are timing.

use std::time::Instant;
use ttmqo_core::{BaseStationOptimizer, CostModel, OptimizerOptions, WorkloadAction};
use ttmqo_stats::{Histogram, LevelStats, SelectivityEstimator};
use ttmqo_workloads::{churn_workload, ChurnWorkloadParams};

/// One churn-bench scenario.
#[derive(Debug, Clone)]
pub struct ChurnBenchParams {
    /// Scenario name carried into the report (without the `-indexed` /
    /// `-exhaustive` suffix).
    pub name: String,
    /// Total arrivals (each also departs).
    pub n_queries: usize,
    /// Template-menu size: small menus churn near-identical queries (most
    /// arrivals absorb), large menus keep the synthetic set big and make
    /// candidate scanning the bottleneck.
    pub n_templates: usize,
    /// Steady-state live query count (Little's law).
    pub target_concurrency: f64,
    /// Fraction of aggregation templates. Acquisitions merge aggressively
    /// (a broad acquisition covers almost anything epoch-compatible), so
    /// mixed workloads collapse to a handful of synthetics; aggregation
    /// templates with distinct predicate sets each keep their own synthetic
    /// and are what pushes the running set to ≥ 1k.
    pub aggregation_fraction: f64,
    /// Admit arrivals in batches of this size via `insert_batch` (≤ 1 =
    /// one `insert` per arrival). Departures flush a pending batch first,
    /// so the admission order stays faithful to the schedule.
    pub batch: usize,
    /// Score every synthetic on admission (the reference linear scan)
    /// instead of the candidate index.
    pub exhaustive: bool,
    /// Workload seed.
    pub seed: u64,
}

impl ChurnBenchParams {
    /// The default scenario set: a mid-size churn, a ≥ 1k-live churn where
    /// the linear scan hurts, and the 1k churn admitted in batches.
    pub fn default_scenarios(smoke: bool) -> Vec<ChurnBenchParams> {
        let base = |name: &str, n_queries, n_templates, target, agg, batch| ChurnBenchParams {
            name: name.to_string(),
            n_queries,
            n_templates,
            target_concurrency: target,
            aggregation_fraction: agg,
            batch,
            exhaustive: false,
            seed: 0xC0FFEE,
        };
        if smoke {
            vec![
                base("churn-64", 400, 128, 64.0, 0.3, 0),
                base("churn-64-agg", 400, 512, 64.0, 1.0, 0),
                base("churn-64-agg-batch16", 400, 512, 64.0, 1.0, 16),
            ]
        } else {
            vec![
                base("churn-256", 3_000, 1_024, 256.0, 0.3, 0),
                base("churn-1k-agg", 8_000, 8_192, 1_000.0, 1.0, 0),
                base("churn-1k-agg-batch64", 8_000, 8_192, 1_000.0, 1.0, 64),
            ]
        }
    }
}

/// Measured results of one churn run (one mode of one scenario).
#[derive(Debug, Clone)]
pub struct ChurnBenchResult {
    /// Scenario name with the `-indexed` / `-exhaustive` mode suffix.
    pub name: String,
    /// Total arrivals admitted.
    pub admitted: u64,
    /// Departures processed.
    pub departed: u64,
    /// Peak concurrently live user queries.
    pub peak_live: u64,
    /// Peak concurrently running synthetic queries.
    pub peak_synthetics: u64,
    /// Live user queries when the schedule ended.
    pub final_users: u64,
    /// Running synthetic queries when the schedule ended.
    pub final_synthetics: u64,
    /// Candidate evaluations performed (deterministic).
    pub scanned: u64,
    /// Candidates the index pruned (deterministic; 0 when exhaustive).
    pub pruned: u64,
    /// Wall-clock spent admitting (inserts only), seconds.
    pub admit_wall_s: f64,
    /// Wall-clock of the whole replay (inserts + departures), seconds.
    pub wall_s: f64,
    /// Arrivals admitted per second of admission wall-clock.
    pub admitted_per_sec: f64,
    /// Median per-arrival admission latency, µs.
    pub admit_p50_us: f64,
    /// 99th-percentile per-arrival admission latency, µs.
    pub admit_p99_us: f64,
    /// Worst per-arrival admission latency, µs.
    pub admit_max_us: f64,
    /// Indexed admission wall vs the exhaustive twin (filled by
    /// [`churn_pair`]; 0 on exhaustive records).
    pub speedup_vs_exhaustive: f64,
    /// Admission-latency histogram (µs), for display.
    pub latency_hist: Histogram,
}

/// Builds the bench's base-station cost model: the paper's radio constants
/// over a mid-size tree. No node positions — the churn templates carry no
/// regions, and pure admission throughput should not depend on a topology.
fn bench_optimizer(exhaustive: bool) -> BaseStationOptimizer {
    let model = CostModel::new(
        4.0,
        0.2,
        LevelStats::from_counts([8, 16, 24, 16]),
        SelectivityEstimator::uniform(),
    );
    BaseStationOptimizer::with_options(
        model,
        OptimizerOptions {
            exhaustive,
            ..OptimizerOptions::default()
        },
    )
}

/// Replays one churn schedule through the optimizer and measures it.
pub fn churn_bench(params: &ChurnBenchParams) -> ChurnBenchResult {
    let events = churn_workload(&ChurnWorkloadParams {
        n_queries: params.n_queries,
        n_templates: params.n_templates,
        target_concurrency: params.target_concurrency,
        aggregation_fraction: params.aggregation_fraction,
        seed: params.seed,
        ..ChurnWorkloadParams::default()
    });
    let mut opt = bench_optimizer(params.exhaustive);
    let batch_size = params.batch.max(1);
    let mut pending = Vec::with_capacity(batch_size);
    let mut latencies_us: Vec<f64> = Vec::with_capacity(params.n_queries);
    let mut admit_wall_s = 0.0f64;
    let mut departed = 0u64;
    let mut peak_live = 0u64;
    let mut peak_synthetics = 0u64;

    let flush = |opt: &mut BaseStationOptimizer, pending: &mut Vec<ttmqo_query::Query>| {
        if pending.is_empty() {
            return (0.0, 0usize);
        }
        let n = pending.len();
        let start = Instant::now();
        if n == 1 {
            opt.insert(pending.pop().expect("non-empty"))
                .expect("fresh id");
        } else {
            opt.insert_batch(std::mem::take(pending))
                .expect("fresh ids");
        }
        (start.elapsed().as_secs_f64(), n)
    };

    let whole = Instant::now();
    for event in events {
        match event.action {
            WorkloadAction::Pose(query) => {
                pending.push(query);
                if pending.len() >= batch_size {
                    let (wall, n) = flush(&mut opt, &mut pending);
                    admit_wall_s += wall;
                    latencies_us.extend(std::iter::repeat_n(wall * 1e6 / n as f64, n));
                }
            }
            WorkloadAction::Terminate(qid) => {
                let (wall, n) = flush(&mut opt, &mut pending);
                admit_wall_s += wall;
                latencies_us.extend(std::iter::repeat_n(wall * 1e6 / n as f64, n));
                opt.remove(qid);
                departed += 1;
            }
        }
        peak_live = peak_live.max(opt.user_count() as u64);
        peak_synthetics = peak_synthetics.max(opt.synthetic_count() as u64);
    }
    let (wall, n) = flush(&mut opt, &mut pending);
    admit_wall_s += wall;
    latencies_us.extend(std::iter::repeat_n(wall * 1e6 / n as f64, n));
    let wall_s = whole.elapsed().as_secs_f64();

    latencies_us.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let quantile = |q: f64| -> f64 {
        if latencies_us.is_empty() {
            return 0.0;
        }
        let idx = ((latencies_us.len() - 1) as f64 * q).round() as usize;
        latencies_us[idx]
    };
    let admit_max_us = latencies_us.last().copied().unwrap_or(0.0);
    let mut latency_hist =
        Histogram::new(0.0, (admit_max_us * 1.001).max(1.0), 32).expect("valid bounds");
    for v in &latencies_us {
        latency_hist.add(*v);
    }

    let stats = opt.index_stats();
    let mode = if params.exhaustive {
        "exhaustive"
    } else {
        "indexed"
    };
    ChurnBenchResult {
        name: format!("{}-{}", params.name, mode),
        admitted: opt.stats().inserted,
        departed,
        peak_live,
        peak_synthetics,
        final_users: opt.user_count() as u64,
        final_synthetics: opt.synthetic_count() as u64,
        scanned: stats.scanned,
        pruned: stats.pruned,
        admit_wall_s,
        wall_s,
        admitted_per_sec: opt.stats().inserted as f64 / admit_wall_s.max(1e-9),
        admit_p50_us: quantile(0.5),
        admit_p99_us: quantile(0.99),
        admit_max_us,
        speedup_vs_exhaustive: 0.0,
        latency_hist,
    }
}

/// Runs a scenario in both modes and fills the indexed record's
/// `speedup_vs_exhaustive` (exhaustive admission wall / indexed admission
/// wall). Returns `(indexed, exhaustive)`.
pub fn churn_pair(params: &ChurnBenchParams) -> (ChurnBenchResult, ChurnBenchResult) {
    let mut indexed = churn_bench(&ChurnBenchParams {
        exhaustive: false,
        ..params.clone()
    });
    let exhaustive = churn_bench(&ChurnBenchParams {
        exhaustive: true,
        ..params.clone()
    });
    indexed.speedup_vs_exhaustive = exhaustive.admit_wall_s / indexed.admit_wall_s.max(1e-9);
    (indexed, exhaustive)
}

impl ChurnBenchResult {
    /// One JSON object (one line of `BENCH_churn.json`).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"schema_version\":{},\"name\":\"{}\",\"admitted\":{},\"departed\":{},\
             \"peak_live\":{},\"peak_synthetics\":{},\"final_users\":{},\"final_synthetics\":{},\
             \"scanned\":{},\"pruned\":{},\"wall_s\":{:.6},\"admitted_per_sec\":{:.1},\
             \"admit_p50_us\":{:.2},\"admit_p99_us\":{:.2},\"admit_max_us\":{:.2},\
             \"speedup_vs_exhaustive\":{:.3}}}",
            ttmqo_sim::SCHEMA_VERSION,
            self.name,
            self.admitted,
            self.departed,
            self.peak_live,
            self.peak_synthetics,
            self.final_users,
            self.final_synthetics,
            self.scanned,
            self.pruned,
            self.wall_s,
            self.admitted_per_sec,
            self.admit_p50_us,
            self.admit_p99_us,
            self.admit_max_us,
            self.speedup_vs_exhaustive,
        )
    }
}

/// Default file the churn bench writes its JSON-lines report to.
pub const CHURN_REPORT_FILE: &str = "BENCH_churn.json";

/// Extracts `(name, admitted_per_sec)` pairs from a previous report.
pub fn parse_prior_churn_report(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(name) = crate::engine::field_str(line, "name") else {
            continue;
        };
        let Some(aps) = crate::engine::field_f64(line, "admitted_per_sec") else {
            continue;
        };
        out.push((name, aps));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(batch: usize, exhaustive: bool) -> ChurnBenchParams {
        ChurnBenchParams {
            name: "tiny".into(),
            n_queries: 150,
            n_templates: 48,
            target_concurrency: 24.0,
            aggregation_fraction: 0.5,
            batch,
            exhaustive,
            seed: 11,
        }
    }

    #[test]
    fn churn_replay_drains_and_counts() {
        let r = churn_bench(&tiny(0, false));
        assert_eq!(r.admitted, 150);
        assert_eq!(r.departed, 150);
        assert_eq!(r.final_users, 0, "every arrival departs");
        assert_eq!(r.final_synthetics, 0, "drained optimizer holds nothing");
        assert!(r.peak_live > 0 && r.peak_synthetics > 0);
        assert!(r.peak_live < 150, "churn must not accumulate arrivals");
        assert!(r.admitted_per_sec > 0.0);
        assert!(r.admit_p50_us <= r.admit_p99_us && r.admit_p99_us <= r.admit_max_us);
        assert_eq!(r.latency_hist.total(), 150);
    }

    #[test]
    fn decision_counters_are_deterministic_and_mode_invariant() {
        let a = churn_bench(&tiny(0, false));
        let b = churn_bench(&tiny(0, false));
        assert_eq!(a.scanned, b.scanned);
        assert_eq!(a.pruned, b.pruned);
        assert_eq!(a.peak_synthetics, b.peak_synthetics);

        // The index changes what is *scanned*, never what is decided.
        let ex = churn_bench(&tiny(0, true));
        assert_eq!(a.admitted, ex.admitted);
        assert_eq!(a.peak_synthetics, ex.peak_synthetics);
        assert_eq!(a.final_synthetics, ex.final_synthetics);
        assert_eq!(ex.pruned, 0);
        assert!(a.scanned <= ex.scanned);
    }

    #[test]
    fn batched_replay_matches_per_query_decisions() {
        let single = churn_bench(&tiny(0, false));
        let batched = churn_bench(&tiny(16, false));
        assert_eq!(batched.admitted, single.admitted);
        assert_eq!(batched.departed, single.departed);
        assert_eq!(batched.final_users, 0);
        assert_eq!(batched.final_synthetics, 0);
    }

    #[test]
    fn pair_fills_speedup_on_the_indexed_record() {
        let (indexed, exhaustive) = churn_pair(&tiny(0, false));
        assert!(indexed.name.ends_with("-indexed"));
        assert!(exhaustive.name.ends_with("-exhaustive"));
        assert!(indexed.speedup_vs_exhaustive > 0.0);
        assert_eq!(exhaustive.speedup_vs_exhaustive, 0.0);
    }

    #[test]
    fn report_round_trips_through_parser() {
        let r = churn_bench(&tiny(0, false));
        let json = r.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        let parsed = parse_prior_churn_report(&json);
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].0, "tiny-indexed");
        assert!((parsed[0].1 - r.admitted_per_sec).abs() / r.admitted_per_sec.max(1e-9) < 1e-3);
    }
}
