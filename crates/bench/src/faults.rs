//! Fault-subsystem benchmark: end-to-end TTMQO runs under a [`FaultPlan`],
//! with a regression-tracking JSON report (`BENCH_faults.json`).
//!
//! Two questions gate the fault subsystem:
//!
//! 1. **Does the overlay cost anything when absent?** The `healthy-*`
//!    scenario runs the exact fault-free configuration (empty plan, failure
//!    detector off) through the same harness, so its simulated-ms-per-second
//!    throughput is the baseline every faulty row is compared against — and
//!    the row itself tracks regressions of the no-fault hot path across
//!    commits, complementing `BENCH_engine.json`'s app-free flood numbers.
//! 2. **What does healing cost and deliver?** The faulty scenarios exercise
//!    each plan element (scripted crashes, sampled churn with reboots, a
//!    link-degradation window) and record the healing outcomes next to the
//!    throughput: answer completeness, repairs triggered, repair latency,
//!    and orphaned-node counts.

use std::time::Instant;
use ttmqo_core::{run_experiment, ExperimentConfig, RunReport, Strategy, WorkloadEvent};
use ttmqo_query::{parse_query, QueryId};
use ttmqo_sim::{
    FaultPlan, LinkDegradation, NodeId, RadioParams, RandomCrashes, SimConfig, SimTime,
};

use crate::engine::{field_f64, field_str};

/// Epoch length of the bench workload, ms (the paper's default epoch).
pub const FAULT_BENCH_EPOCH_MS: u64 = 2048;

/// One fault-bench scenario: a TTMQO run over a grid with a fault plan.
#[derive(Debug, Clone)]
pub struct FaultBenchParams {
    /// Scenario name carried into the report.
    pub name: String,
    /// Grid side (nodes = `grid_n²`).
    pub grid_n: usize,
    /// Simulated duration in epochs of [`FAULT_BENCH_EPOCH_MS`].
    pub duration_epochs: u64,
    /// What goes wrong during the run (empty = the healthy baseline).
    pub plan: FaultPlan,
    /// An additional query posed at t=0 next to the standard full select
    /// (e.g. a single-source query whose source the plan kills, so the
    /// base station's missing-result repair shows up in the report).
    pub extra_query: Option<String>,
    /// Engine seed.
    pub seed: u64,
}

impl FaultBenchParams {
    /// The default scenario set: the healthy baseline plus one scenario per
    /// fault-plan element, all on the paper's 8×8 grid.
    ///
    /// The crash population of `crash-10pct-8x8` is the acceptance-test set
    /// (six scattered nodes ≈ 10% of the 63 sensing nodes, crashing at epoch
    /// 8 without recovery), so the bench's completeness column reproduces
    /// the criterion the test suite asserts.
    pub fn default_scenarios(duration_epochs: u64) -> Vec<FaultBenchParams> {
        let e = FAULT_BENCH_EPOCH_MS;
        let base = |name: &str, plan| FaultBenchParams {
            name: name.to_string(),
            grid_n: 8,
            duration_epochs,
            plan,
            extra_query: None,
            seed: 0xFA171,
        };
        vec![
            base("healthy-8x8", FaultPlan::default()),
            base(
                "crash-10pct-8x8",
                FaultPlan::scripted(
                    [10u16, 19, 28, 37, 46, 55]
                        .map(|n| (NodeId(n), 8 * e, None))
                        .to_vec(),
                ),
            ),
            base(
                "churn-25pct-8x8",
                FaultPlan {
                    seed: 0xC0FFEE,
                    random_crashes: Some(RandomCrashes {
                        fraction: 0.25,
                        from_ms: 4 * e,
                        until_ms: 12 * e,
                        outage_ms: Some(8 * e),
                    }),
                    ..FaultPlan::default()
                },
            ),
            FaultBenchParams {
                // The sole source of the extra query dies: the base
                // station's missing-result detector must fire and the
                // repair-latency column becomes non-null.
                extra_query: Some("select light where nodeid = 37 epoch duration 2048".to_string()),
                ..base(
                    "repair-singleton-8x8",
                    FaultPlan::scripted(vec![(NodeId(37), 8 * e, None)]),
                )
            },
            base(
                "degraded-8x8",
                FaultPlan {
                    degradations: vec![LinkDegradation {
                        from_ms: 8 * e,
                        until_ms: 16 * e,
                        added_loss: 0.3,
                    }],
                    ..FaultPlan::default()
                },
            ),
        ]
    }
}

/// Measured results of one fault-bench scenario.
#[derive(Debug, Clone)]
pub struct FaultBenchResult {
    /// Scenario name.
    pub name: String,
    /// Grid side.
    pub grid_n: usize,
    /// Simulated duration, ms.
    pub duration_ms: u64,
    /// Host wall-clock of the run, seconds.
    pub wall_s: f64,
    /// Simulated ms advanced per wall second — the headline throughput
    /// (higher is better; the healthy row is the no-overlay baseline).
    pub sim_ms_per_wall_s: f64,
    /// Frames put on the air.
    pub tx_frames: u64,
    /// Retransmissions caused by loss or collision.
    pub retransmissions: u64,
    /// Unicast frames abandoned after exhausting retries.
    pub gave_up: u64,
    /// Results dropped at nodes with data but no live route.
    pub orphaned_drops: u64,
    /// Distinct nodes that ever orphan-dropped a result.
    pub orphaned_nodes: u64,
    /// Worst per-query epoch completeness over the whole run.
    pub min_epoch_ratio: f64,
    /// Worst per-query row completeness over the whole run.
    pub min_row_ratio: f64,
    /// Tier-1 re-optimizations triggered by the missing-result detector.
    pub repairs_triggered: u64,
    /// Mean repair latency, ms (`None` when no repair was triggered).
    pub mean_repair_latency_ms: Option<f64>,
}

/// Runs one scenario — a full TwoTier experiment under the plan — and
/// measures it.
pub fn fault_bench(params: &FaultBenchParams) -> FaultBenchResult {
    let duration_ms = params.duration_epochs * FAULT_BENCH_EPOCH_MS;
    let config = ExperimentConfig {
        strategy: Strategy::TwoTier,
        grid_n: params.grid_n,
        duration: SimTime::from_ms(duration_ms),
        // Lossless channel: every retransmission, give-up, and missing row
        // in the report is attributable to the fault plan, not ambient loss.
        radio: RadioParams::lossless(),
        sim: SimConfig {
            seed: params.seed,
            maintenance_interval_ms: None,
            ..SimConfig::default()
        },
        faults: params.plan.clone(),
        ..ExperimentConfig::default()
    };
    let mut workload = vec![WorkloadEvent::pose(
        0,
        parse_query(QueryId(1), "select light epoch duration 2048").expect("valid bench query"),
    )];
    if let Some(text) = &params.extra_query {
        workload.push(WorkloadEvent::pose(
            0,
            parse_query(QueryId(2), text).expect("valid extra bench query"),
        ));
    }
    let start = Instant::now();
    let report: RunReport = run_experiment(&config, &workload);
    let wall_s = start.elapsed().as_secs_f64();

    let m = report.metrics.snapshot();
    let c = &report.completeness;
    FaultBenchResult {
        name: params.name.clone(),
        grid_n: params.grid_n,
        duration_ms,
        wall_s,
        sim_ms_per_wall_s: duration_ms as f64 / wall_s.max(1e-9),
        tx_frames: m.tx_count_total(),
        retransmissions: m.retransmissions,
        gave_up: m.gave_up,
        orphaned_drops: m.orphaned_drops,
        orphaned_nodes: m.orphaned_nodes,
        min_epoch_ratio: c.min_epoch_ratio(),
        min_row_ratio: c.min_row_ratio(),
        repairs_triggered: c.repairs_triggered,
        mean_repair_latency_ms: c.mean_repair_latency_ms(),
    }
}

impl FaultBenchResult {
    /// One JSON object (one line of `BENCH_faults.json`).
    pub fn to_json(&self) -> String {
        let latency = self
            .mean_repair_latency_ms
            .map_or_else(|| "null".to_string(), |v| format!("{v:.1}"));
        format!(
            "{{\"schema_version\":{},\"name\":\"{}\",\"grid_n\":{},\"duration_ms\":{},\"wall_s\":{:.6},\
             \"sim_ms_per_wall_s\":{:.1},\"tx_frames\":{},\"retransmissions\":{},\
             \"gave_up\":{},\"orphaned_drops\":{},\"orphaned_nodes\":{},\
             \"min_epoch_ratio\":{:.6},\"min_row_ratio\":{:.6},\
             \"repairs_triggered\":{},\"mean_repair_latency_ms\":{}}}",
            ttmqo_sim::SCHEMA_VERSION,
            self.name,
            self.grid_n,
            self.duration_ms,
            self.wall_s,
            self.sim_ms_per_wall_s,
            self.tx_frames,
            self.retransmissions,
            self.gave_up,
            self.orphaned_drops,
            self.orphaned_nodes,
            self.min_epoch_ratio,
            self.min_row_ratio,
            self.repairs_triggered,
            latency,
        )
    }
}

/// Default file the fault bench writes its JSON-lines report to.
pub const FAULTS_REPORT_FILE: &str = "BENCH_faults.json";

/// Extracts `(name, sim_ms_per_wall_s)` pairs from a previous report so the
/// bench can print the throughput trajectory without a JSON parser
/// dependency.
pub fn parse_prior_faults_report(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(name) = field_str(line, "name") else {
            continue;
        };
        let Some(thr) = field_f64(line, "sim_ms_per_wall_s") else {
            continue;
        };
        out.push((name, thr));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(plan: FaultPlan) -> FaultBenchParams {
        FaultBenchParams {
            name: "tiny".into(),
            grid_n: 4,
            duration_epochs: 12,
            plan,
            extra_query: None,
            seed: 7,
        }
    }

    fn one_crash() -> FaultPlan {
        // A relay (not a leaf) crashing mid-epoch: its children's rows are
        // lost until the failure detector re-elects around it, so the run's
        // completeness visibly dips below the healthy baseline. Node 6 is
        // the busiest relay of the 4×4 grid under this seed.
        FaultPlan::scripted(vec![(NodeId(6), 4 * FAULT_BENCH_EPOCH_MS + 1, None)])
    }

    #[test]
    fn healthy_scenario_reports_full_completeness_and_no_overlay_effects() {
        let r = fault_bench(&tiny(FaultPlan::default()));
        assert!(r.wall_s > 0.0 && r.sim_ms_per_wall_s > 0.0);
        assert!(r.tx_frames > 0);
        assert_eq!(r.min_epoch_ratio, 1.0);
        assert_eq!(r.min_row_ratio, 1.0);
        assert_eq!(r.repairs_triggered, 0);
        assert_eq!(r.mean_repair_latency_ms, None);
        assert_eq!(r.orphaned_drops, 0);
        assert_eq!(r.orphaned_nodes, 0);
    }

    #[test]
    fn crashed_scenario_loses_rows_relative_to_healthy() {
        let healthy = fault_bench(&tiny(FaultPlan::default()));
        let faulty = fault_bench(&tiny(one_crash()));
        // The relay's children keep unicasting into the dead node until the
        // retry budget exhausts, and their rows are lost until re-election,
        // so the whole-run row completeness drops below the healthy 1.0.
        assert!(
            faulty.min_row_ratio < healthy.min_row_ratio,
            "faulty {faulty:?} vs healthy {healthy:?}"
        );
        assert!(faulty.min_row_ratio > 0.0);
        assert!(faulty.gave_up > 0, "{faulty:?}");
    }

    #[test]
    fn fault_bench_is_deterministic() {
        let a = fault_bench(&tiny(one_crash()));
        let b = fault_bench(&tiny(one_crash()));
        assert_eq!(a.tx_frames, b.tx_frames);
        assert_eq!(a.retransmissions, b.retransmissions);
        assert_eq!(a.gave_up, b.gave_up);
        assert_eq!(a.orphaned_drops, b.orphaned_drops);
        assert_eq!(a.min_epoch_ratio, b.min_epoch_ratio);
        assert_eq!(a.min_row_ratio, b.min_row_ratio);
        assert_eq!(a.repairs_triggered, b.repairs_triggered);
    }

    #[test]
    fn report_round_trips_through_parser() {
        let r = fault_bench(&tiny(FaultPlan::default()));
        let json = r.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        // No repair ran, so the latency field is a JSON null, not a number.
        assert!(json.contains("\"mean_repair_latency_ms\":null"));
        let parsed = parse_prior_faults_report(&json);
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].0, "tiny");
        assert!((parsed[0].1 - r.sim_ms_per_wall_s).abs() / r.sim_ms_per_wall_s < 1e-3);
    }

    #[test]
    fn default_scenarios_cover_every_plan_element() {
        let scenarios = FaultBenchParams::default_scenarios(24);
        assert_eq!(scenarios.len(), 5);
        assert!(scenarios[0].plan.is_empty());
        assert!(!scenarios[1].plan.crashes.is_empty());
        assert!(scenarios[2].plan.random_crashes.is_some());
        assert!(scenarios[3].extra_query.is_some());
        assert!(scenarios[4].plan.has_loss_elements());
        for s in &scenarios {
            assert_eq!(s.duration_epochs, 24);
        }
    }

    #[test]
    fn singleton_crash_triggers_a_repair_with_measured_latency() {
        // Grid-4 version of the repair-singleton scenario, with a reboot:
        // the only node matching the extra query goes dark long enough for
        // the missing-result detector to fire, then comes back, so the
        // repair has a subsequent answer and its latency is measurable.
        let mut params = tiny(FaultPlan::scripted(vec![(
            NodeId(15),
            4 * FAULT_BENCH_EPOCH_MS,
            Some(9 * FAULT_BENCH_EPOCH_MS),
        )]));
        params.extra_query = Some("select light where nodeid = 15 epoch duration 2048".into());
        // Leave enough post-reboot epochs for the node to rejoin (re-learn
        // the query from neighbours, re-route) and answer the repair.
        params.duration_epochs = 20;
        let r = fault_bench(&params);
        assert!(r.repairs_triggered >= 1, "{r:?}");
        assert!(r.mean_repair_latency_ms.is_some(), "{r:?}");
        assert!(r.to_json().contains("\"repairs_triggered\":"));
    }
}
