//! The paper-wide campaign: every figure's sweep as one parallel run with a
//! JSON-lines report (`BENCH_campaign.json`).
//!
//! Figures 3–5 are all grids of independent experiment cells; this module
//! folds them into a single [`CampaignSpec`] so `cargo bench -p ttmqo-bench
//! --bench campaign` executes the whole evaluation N-way parallel and leaves
//! one observability record per run behind for dashboards and regression
//! diffing.

use std::io::Write as _;
use std::path::Path;
use ttmqo_core::{CampaignReport, CampaignSpec, ExperimentConfig, Strategy};
use ttmqo_sim::SimTime;
use ttmqo_workloads::{random_workload, RandomWorkloadParams};

/// Default file the campaign bench writes its JSON-lines report to.
pub const CAMPAIGN_REPORT_FILE: &str = "BENCH_campaign.json";

/// The full evaluation sweep: the Figure 3 static workloads (A/B/C) plus
/// Figure 4-style adaptive random workloads at low and high concurrency,
/// each × {4×4, 8×8} grids × all four strategies.
///
/// `duration_epochs` scales simulated time (the figures use
/// [`crate::FIG3_DURATION_EPOCHS`]; smaller values give quick smoke runs).
/// `random_queries` sizes the adaptive workloads (the paper uses 500; the
/// bench default keeps it small enough for minutes-long laptop runs).
pub fn paper_campaign(duration_epochs: u64, random_queries: usize) -> CampaignSpec {
    let base = ExperimentConfig {
        duration: SimTime::from_ms(duration_epochs * 2048),
        ..ExperimentConfig::default()
    };
    // The paper's generator spreads arrivals 40 s apart over hours; compress
    // the inter-arrival so all `random_queries` arrivals land inside the
    // first ~80% of whatever duration this campaign runs, leaving the tail
    // for the last arrivals to produce answers.
    let mean_arrival_ms = (duration_epochs * 2048) as f64 * 0.8 / random_queries.max(1) as f64;
    let adaptive = |target_concurrency: f64, seed: u64| {
        random_workload(&RandomWorkloadParams {
            n_queries: random_queries,
            mean_arrival_ms,
            target_concurrency,
            seed,
            ..RandomWorkloadParams::default()
        })
    };
    CampaignSpec::new(base)
        .strategies(Strategy::ALL)
        .grid_sizes([4, 8])
        .workload("A", ttmqo_workloads::workload_a())
        .workload("B", ttmqo_workloads::workload_b())
        .workload("C", ttmqo_workloads::workload_c())
        .workload("adaptive-8", adaptive(8.0, 0xF164))
        .workload("adaptive-24", adaptive(24.0, 0xF164))
}

/// Writes a campaign report as JSON lines.
///
/// # Errors
///
/// Propagates any I/O error from creating or writing the file.
pub fn write_report(report: &CampaignReport, path: impl AsRef<Path>) -> std::io::Result<()> {
    let mut file = std::fs::File::create(path)?;
    file.write_all(report.to_jsonl().as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ttmqo_core::run_campaign_with;

    #[test]
    fn paper_campaign_covers_every_figure_axis() {
        let spec = paper_campaign(24, 40);
        // 5 workloads × 2 grids × 1 seed × 4 strategies.
        assert_eq!(spec.cell_count(), 40);
        let names: Vec<&str> = spec.workloads.iter().map(|w| w.name.as_str()).collect();
        assert_eq!(names, ["A", "B", "C", "adaptive-8", "adaptive-24"]);
        // The adaptive workloads really carry the requested query count.
        assert_eq!(spec.workloads[3].events.len(), 80); // 40 poses + 40 terms
    }

    #[test]
    fn report_file_round_trips_as_jsonl() {
        let spec = paper_campaign(4, 6)
            .grid_sizes([3])
            .strategies([Strategy::Baseline, Strategy::TwoTier]);
        let report = run_campaign_with(&spec, 2);
        let dir = std::env::temp_dir().join("ttmqo-campaign-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(CAMPAIGN_REPORT_FILE);
        write_report(&report, &path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), spec.cell_count());
        assert!(text.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
        std::fs::remove_file(&path).ok();
    }
}
